# Convenience targets for the reproduction workflow.

PYTHON ?= python3
GOLDEN_DIR ?= tests/data/golden

.PHONY: install test bench bench-cache bench-tensor bench-warm report \
	check check-inject check-chaos doctor serve serve-smoke \
	refresh-golden figures export metrics trace fuzz clean

install:
	pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-verbose:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Cold-vs-warm guard for the two-tier run cache; writes BENCH_PR4.json
# (see docs/performance.md).
bench-cache:
	$(PYTHON) -m pytest benchmarks/test_cache_cold_warm.py --benchmark-only

# Tensor-engine guard: cold-report wall-clock and batch-vs-per-cell
# speedup + equivalence on a dense sensitivity grid; writes
# BENCH_PR6.json (see docs/performance.md).
bench-tensor:
	$(PYTHON) -m pytest benchmarks/test_tensor_sweep.py --benchmark-only

# Warm-path latency guard: two cold + two warm fresh-process reports
# through the packed index, byte-compared against the golden; writes
# BENCH_PR9.json (see docs/performance.md, "Warm path").
bench-warm:
	$(PYTHON) -m pytest benchmarks/test_warm_latency.py --benchmark-only

report:
	$(PYTHON) -m repro report

check:
	$(PYTHON) -m repro check --full

check-inject:
	$(PYTHON) -m repro check --inject; test $$? -eq 1

# Inject real faults (worker kill, disk error) into a live sweep and
# require byte-identical output (see docs/robustness.md).
check-chaos:
	$(PYTHON) -m repro check --chaos --fast

# Runtime health probes: pool spawn, disk-cache RW + verify, locking,
# quarantine history, telemetry registry, service journal.
doctor:
	$(PYTHON) -m repro doctor

# Foreground simulation service on the default port (Ctrl-C drains).
serve:
	$(PYTHON) -m repro serve

# End-to-end service gate: boot a real server, POST a run job, require
# the result byte-identical to the CLI, dedup a duplicate, drain on
# SIGTERM (see docs/service.md).
serve-smoke:
	$(PYTHON) scripts/serve_smoke.py

# Regenerate the golden snapshot fixtures.  Deliberate act: review the
# fixture diff before committing (see docs/modeling.md, "Validation").
refresh-golden:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} \
	  $(PYTHON) -m repro.check.golden $(GOLDEN_DIR)

figures:
	$(PYTHON) -c "from repro.eval.svg import write_figures; \
	  print(*write_figures('figures'), sep='\n')"

export:
	$(PYTHON) -c "from repro.eval.export import write_json; \
	  print(write_json('results.json'))"

# Per-run metrics manifest of the Table 3 sweep (JSON lines, one record
# per kernel/machine with config hash) — the cross-PR bench trajectory.
metrics:
	$(PYTHON) -c "from repro.eval.tables import run_table3; \
	  from repro.trace.export import write_metrics_manifest; \
	  print(write_metrics_manifest('BENCH_PR3.json', run_table3()))"

# Seeded scenario fuzz sweep through the pipeline invariants; writes
# the deterministic manifest (see docs/scenarios.md).
fuzz:
	$(PYTHON) -m repro pipeline fuzz --seed 0 --count 200 --jobs 2 \
	  --manifest fuzz_manifest.json

# Chrome trace + utilization timeline of the canonical VIRAM corner turn.
trace:
	$(PYTHON) -m repro trace corner_turn viram --format chrome -o trace.json
	$(PYTHON) -m repro trace corner_turn viram --format svg -o timeline.svg

clean:
	rm -rf figures results.json trace.json timeline.svg \
	  fuzz_manifest.json .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
