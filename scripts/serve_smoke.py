#!/usr/bin/env python3
"""End-to-end smoke test for ``repro serve`` (the CI service gate).

Boots a real server subprocess on an ephemeral port with isolated
state directories, then walks the service contract:

1. the ready-file handshake appears and ``/healthz`` answers 200;
2. a ``run`` job POSTed to ``/v1/jobs`` is admitted (202) and reaches
   ``DONE``;
3. its result bytes are **identical** to ``repro run ... --json``
   stdout — the service and the CLI are the same computation;
4. an identical second POST dedups (200, same job id);
5. SIGTERM drains the server, which exits 0.

Run locally with ``make serve-smoke``.  Exits non-zero with a labelled
message on the first failed step.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
KERNEL, MACHINE = "corner_turn", "viram"


def fail(step: str, detail: str) -> None:
    print(f"serve-smoke FAIL [{step}]: {detail}", file=sys.stderr)
    sys.exit(1)


def request(method: str, url: str, body=None, timeout=30.0):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    env = dict(
        os.environ,
        PYTHONPATH=os.pathsep.join(
            p for p in (str(REPO / "src"),
                        os.environ.get("PYTHONPATH", "")) if p
        ),
        REPRO_SERVICE_DIR=str(tmp / "svc"),
        REPRO_DISK_CACHE_DIR=str(tmp / "cache"),
        REPRO_OBS_DIR=str(tmp / "obs"),
    )
    env.pop("REPRO_CHAOS", None)
    ready = tmp / "ready.json"

    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--ready-file", str(ready)],
        env=env, cwd=str(tmp),
    )
    try:
        deadline = time.monotonic() + 60
        while not ready.is_file():
            if server.poll() is not None:
                fail("start", f"server exited rc={server.returncode}")
            if time.monotonic() > deadline:
                fail("start", "ready file never appeared")
            time.sleep(0.05)
        url = json.loads(ready.read_text())["url"]

        status, _ = request("GET", url + "/healthz")
        if status != 200:
            fail("healthz", f"expected 200, got {status}")

        payload = {"kind": "run",
                   "params": {"kernel": KERNEL, "machine": MACHINE}}
        status, body = request("POST", url + "/v1/jobs", payload)
        record = json.loads(body)
        if status != 202 or record.get("outcome") != "admitted":
            fail("submit", f"status={status} record={record}")
        jid = record["job"]

        deadline = time.monotonic() + 120
        state = None
        while time.monotonic() < deadline:
            status, body = request("GET", f"{url}/v1/jobs/{jid}")
            state = json.loads(body).get("state")
            if state in ("DONE", "FAILED"):
                break
            time.sleep(0.05)
        if state != "DONE":
            fail("poll", f"job ended {state!r}")

        status, service_bytes = request(
            "GET", f"{url}/v1/jobs/{jid}/result"
        )
        if status != 200:
            fail("result", f"expected 200, got {status}")

        cli = subprocess.run(
            [sys.executable, "-m", "repro", "run", KERNEL, MACHINE,
             "--json"],
            env=env, cwd=str(tmp), capture_output=True, check=True,
        )
        if service_bytes != cli.stdout:
            fail(
                "cli-parity",
                f"service result ({len(service_bytes)} bytes) differs "
                f"from CLI --json stdout ({len(cli.stdout)} bytes)",
            )

        status, body = request("POST", url + "/v1/jobs", payload)
        duplicate = json.loads(body)
        if status != 200 or duplicate.get("outcome") != "deduped":
            fail("dedup", f"status={status} record={duplicate}")
        if duplicate.get("job") != jid:
            fail("dedup", "duplicate request produced a different job id")

        server.send_signal(signal.SIGTERM)
        rc = server.wait(timeout=60)
        if rc != 0:
            fail("drain", f"SIGTERM exit code {rc}")

        print(
            "serve-smoke OK: admitted -> DONE, result byte-identical "
            f"to CLI ({len(service_bytes)} bytes), duplicate deduped "
            f"to {jid}, SIGTERM drained with exit 0"
        )
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)


if __name__ == "__main__":
    main()
