"""Tests for the atomic artifact writers in :mod:`repro.ioutil`."""

from __future__ import annotations

import json
import os

import pytest

from repro.ioutil import atomic_write_bytes, atomic_write_json, atomic_write_text


class TestAtomicWrites:
    def test_text_roundtrip_without_staging_residue(self, tmp_path):
        target = tmp_path / "artifact.txt"
        atomic_write_text(target, "line one\n")
        assert target.read_text() == "line one\n"
        assert os.listdir(tmp_path) == ["artifact.txt"]

    def test_bytes_roundtrip(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write_bytes(target, b"\x00\xff")
        assert target.read_bytes() == b"\x00\xff"

    def test_json_has_trailing_newline(self, tmp_path):
        target = tmp_path / "bench.json"
        atomic_write_json(target, {"b": 2, "a": 1}, sort_keys=True)
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1, "b": 2}

    def test_replaces_existing_artifact(self, tmp_path):
        target = tmp_path / "artifact.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_creates_missing_parent_directories(self, tmp_path):
        target = tmp_path / "deep" / "er" / "artifact.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "artifact.txt"
        target.write_text("precious")

        def refuse_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", refuse_replace)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(target, "half-written garbage")
        monkeypatch.undo()
        assert target.read_text() == "precious"
        assert os.listdir(tmp_path) == ["artifact.txt"]
