"""Tests for the chaos harness (:mod:`repro.resilience.chaos`):
spec parsing, cross-process token budgets, and the injection hooks."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import ConfigError
from repro.resilience import chaos


class TestSpecParsing:
    def test_basic_budgets(self):
        spec = chaos.parse_spec("kill=1,disk=2")
        assert spec.budget("kill") == 1
        assert spec.budget("disk") == 2
        assert spec.budget("corrupt") == 0

    def test_parameters(self):
        spec = chaos.parse_spec("hang=1,hang_s=3.5,dir=/tmp/x")
        assert spec.hang_s == 3.5
        assert spec.state_dir == "/tmp/x"

    def test_describe_orders_faults(self):
        assert chaos.parse_spec("disk=1,kill=2").describe() == "kill=2,disk=1"

    def test_unknown_fault_rejected(self):
        with pytest.raises(ConfigError, match="unknown chaos fault"):
            chaos.parse_spec("explode=1")

    def test_malformed_token_rejected(self):
        with pytest.raises(ConfigError, match="name=value"):
            chaos.parse_spec("kill")

    def test_non_integer_budget_rejected(self):
        with pytest.raises(ConfigError, match="integer budget"):
            chaos.parse_spec("kill=lots")

    def test_active_spec_off_by_default(self):
        assert chaos.active_spec() is None

    def test_service_scenarios_on_by_default(self):
        assert chaos.parse_spec("kill=1").service == 1

    def test_service_toggle(self):
        assert chaos.parse_spec("kill=1,service=0").service == 0

    def test_service_toggle_rejects_non_integer(self):
        with pytest.raises(ConfigError, match="service"):
            chaos.parse_spec("service=maybe")


class TestReplayCommandSuffix:
    def _report(self):
        from repro.check.report import FAIL, PASS, CheckReport

        report = CheckReport(tier="chaos")
        report.add("chaos.report.identical", FAIL, "diverged")
        report.add("chaos.injections.fired", PASS)
        report.add("chaos.service.drain", FAIL, "")
        return report

    def test_failures_carry_the_replay_command(self):
        report = self._report()
        chaos._embed_replay_command(report, "kill=1,disk=1", fast=True)
        failures = [r for r in report.results if r.status == "fail"]
        assert failures, "fixture must contain failures"
        for row in failures:
            assert "replay: python -m repro check --chaos" in row.detail
            assert "'kill=1,disk=1'" in row.detail

    def test_passes_are_left_alone(self):
        report = self._report()
        chaos._embed_replay_command(report, "kill=1", fast=True)
        (ok,) = [r for r in report.results if r.status == "pass"]
        assert "replay" not in ok.detail

    def test_full_tier_replays_with_full_flag(self):
        report = self._report()
        chaos._embed_replay_command(report, "kill=1", fast=False)
        assert any("--full" in r.detail for r in report.results)

    def test_suffix_is_idempotent(self):
        report = self._report()
        chaos._embed_replay_command(report, "kill=1", fast=True)
        chaos._embed_replay_command(report, "kill=1", fast=True)
        (row,) = [
            r for r in report.results
            if r.name == "chaos.report.identical"
        ]
        assert row.detail.count("replay:") == 1


class TestTokenBudget:
    def _spec(self, tmp_path, text):
        return chaos.parse_spec(f"{text},dir={tmp_path}")

    def test_budget_exhausts(self, tmp_path):
        spec = self._spec(tmp_path, "kill=2")
        assert chaos.claim("kill", spec)
        assert chaos.claim("kill", spec)
        assert not chaos.claim("kill", spec)

    def test_zero_budget_never_fires(self, tmp_path):
        spec = self._spec(tmp_path, "kill=1")
        assert not chaos.claim("disk", spec)

    def test_reset_returns_tokens(self, tmp_path):
        spec = self._spec(tmp_path, "disk=1")
        assert chaos.claim("disk", spec)
        assert not chaos.claim("disk", spec)
        chaos.reset_tokens(spec)
        assert chaos.claim("disk", spec)

    def test_tokens_claimed_census(self, tmp_path):
        spec = self._spec(tmp_path, "kill=2,disk=1")
        chaos.claim("kill", spec)
        chaos.claim("disk", spec)
        claimed = chaos.tokens_claimed(spec)
        assert claimed["kill"] == 1
        assert claimed["disk"] == 1
        assert claimed["corrupt"] == 0


class TestHooks:
    def test_dead_pid_is_actually_dead(self):
        from repro.perf.diskcache import _pid_alive

        assert not _pid_alive(chaos.dead_pid())

    def test_on_disk_read_raises_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", f"disk=1,dir={tmp_path}")
        with pytest.raises(OSError, match="injected disk read error"):
            chaos.on_disk_read(tmp_path / "entry.run")
        chaos.on_disk_read(tmp_path / "entry.run")  # budget spent: no-op

    def test_on_lock_acquire_plants_stale_lock(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", f"lock=1,dir={tmp_path}")
        lock = tmp_path / "store" / ".lock"
        chaos.on_lock_acquire(lock)
        record = json.loads(lock.read_text())
        from repro.perf.diskcache import _pid_alive

        assert not _pid_alive(int(record["pid"]))
        assert time.time() - lock.stat().st_mtime > 3000

    def test_on_disk_insert_flips_a_byte(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", f"corrupt=1,dir={tmp_path}")
        entry = tmp_path / "entry.run"
        entry.write_bytes(b"payload")
        chaos.on_disk_insert(entry)
        blob = entry.read_bytes()
        assert blob[:-1] == b"payloa"
        assert blob[-1] == b"d"[0] ^ 0xFF

    def test_hooks_are_noops_without_chaos(self, tmp_path):
        entry = tmp_path / "entry.run"
        entry.write_bytes(b"payload")
        chaos.on_disk_read(entry)
        chaos.on_disk_insert(entry)
        chaos.on_lock_acquire(tmp_path / ".lock")
        assert entry.read_bytes() == b"payload"
        assert not (tmp_path / ".lock").exists()


class TestChaosCheck:
    def test_converges_under_transient_disk_error(self):
        # One injected read error: the retry heals it, the report must
        # converge, and nothing may degrade to serial.
        report = chaos.run_chaos_check("disk=1", jobs=2, fast=True)
        names = {r.name: r.status for r in report.results}
        assert report.ok, report.render(verbose=True)
        assert names["chaos.report.identical"] == "pass"
        assert names["chaos.supervisor.no-degradation"] == "pass"
