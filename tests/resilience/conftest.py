"""Fixtures for the resilience tests."""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def clean_resilience(monkeypatch):
    """Zero the resilience counters and strip chaos from the
    environment so every test reads deltas from a known baseline."""
    from repro.resilience.stats import RESILIENCE

    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_CHAOS_DIR", raising=False)
    RESILIENCE.reset()
    yield
    RESILIENCE.reset()
