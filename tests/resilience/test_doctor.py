"""Tests for the ``repro doctor`` health-probe battery."""

from __future__ import annotations

import pytest

from repro.perf.diskcache import DISK_CACHE
from repro.resilience.doctor import (
    FAIL,
    PASS,
    WARN,
    ProbeResult,
    exit_code,
    probe_disk_cache_verify,
    probe_quarantine,
    render_doctor,
    run_doctor,
)


def _status(results, name):
    (match,) = [r for r in results if r.name == name]
    return match


class TestHealthyEnvironment:
    def test_full_battery_passes(self):
        results = run_doctor()
        assert exit_code(results) == 0
        statuses = {r.name: r.status for r in results}
        # Pool spawn may legitimately WARN in constrained sandboxes;
        # everything else must pass outright on a healthy store.
        for name in (
            "probe.disk-cache-rw",
            "probe.disk-cache-verify",
            "probe.lock",
            "probe.quarantine",
            "probe.telemetry",
            "probe.obs",
        ):
            assert statuses[name] == PASS, render_doctor(results)
        assert statuses["probe.pool-spawn"] in (PASS, WARN)
        assert "verdict: HEALTHY" in render_doctor(results)

    def test_probe_leaves_no_residue_in_store(self):
        keys_before = set(DISK_CACHE.keys())
        run_doctor()
        assert set(DISK_CACHE.keys()) == keys_before


class TestUnhealthyEnvironment:
    def test_corrupt_store_fails_verify_probe(self):
        key = "cafef00d" * 8
        DISK_CACHE.insert(key, {"v": 1})
        DISK_CACHE.corrupt_bytes(key)
        result = probe_disk_cache_verify()
        assert result.status == FAIL
        assert key[:12] in result.detail

    def test_corrupt_store_makes_doctor_exit_nonzero(self):
        key = "cafef00d" * 8
        DISK_CACHE.insert(key, {"v": 1})
        DISK_CACHE.corrupt_bytes(key)
        results = run_doctor()
        assert exit_code(results) == 2
        rendered = render_doctor(results)
        assert "verdict: UNHEALTHY" in rendered
        assert "probe.disk-cache-verify" in rendered.rsplit("verdict", 1)[1]

    def test_quarantined_entries_warn_not_fail(self):
        key = "cafef00d" * 8
        DISK_CACHE.insert(key, {"v": 1})
        DISK_CACHE.corrupt_bytes(key)
        assert DISK_CACHE.lookup(key) is None  # heals: moves to quarantine
        result = probe_quarantine()
        assert result.status == WARN
        assert "kept for forensics" in result.detail
        assert exit_code(run_doctor()) == 0

    def test_crashing_probe_becomes_fail_row(self, monkeypatch):
        import repro.resilience.doctor as doctor_mod

        def exploding():
            raise RuntimeError("probe went sideways")

        monkeypatch.setattr(
            doctor_mod, "PROBES", (("exploding", exploding),)
        )
        results = run_doctor()
        assert results == [
            ProbeResult(
                "probe.exploding", FAIL,
                "probe crashed: RuntimeError: probe went sideways",
            )
        ]
        assert exit_code(results) == 2


class TestObsProbe:
    def test_healthy_layer_passes(self):
        from repro.obs.history import append_history, build_record
        from repro.resilience.doctor import probe_obs

        append_history(
            build_record(
                "report", [], session="a" * 12, exit_code=0, wall_seconds=1.0
            )
        )
        result = probe_obs()
        assert result.status == PASS
        assert "1 history record(s) parseable" in result.detail

    def test_disabled_layer_warns(self, monkeypatch):
        from repro.resilience.doctor import probe_obs

        monkeypatch.setenv("REPRO_OBS", "0")
        result = probe_obs()
        assert result.status == WARN
        assert "REPRO_OBS=0" in result.detail

    def test_unwritable_ledger_dir_fails(self, tmp_path, monkeypatch):
        from repro.resilience.doctor import probe_obs

        blocker = tmp_path / "obs-as-file"
        blocker.write_text("in the way")
        monkeypatch.setenv("REPRO_OBS_DIR", str(blocker))
        result = probe_obs()
        assert result.status == FAIL
        assert "ledger dir not writable" in result.detail

    def test_corrupt_history_line_quarantined_not_trusted(self):
        from repro.obs.history import (
            append_history,
            build_record,
            history_path,
            read_history,
        )
        from repro.resilience.doctor import probe_obs

        path = history_path()
        append_history(
            build_record(
                "report", [], session="a" * 12, exit_code=0, wall_seconds=1.0
            )
        )
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn": ')
        result = probe_obs()
        assert result.status == WARN
        assert "quarantined" in result.detail
        # The probe healed the file: a re-read is clean, and the torn
        # line survives as forensic evidence next to it.
        records, corrupt = read_history(path)
        assert len(records) == 1 and not corrupt
        assert path.with_suffix(".quarantine").exists()
