"""Tests for the ``repro doctor`` health-probe battery."""

from __future__ import annotations

import pytest

from repro.perf.diskcache import DISK_CACHE
from repro.resilience.doctor import (
    FAIL,
    PASS,
    WARN,
    ProbeResult,
    exit_code,
    probe_disk_cache_verify,
    probe_quarantine,
    render_doctor,
    run_doctor,
)


def _status(results, name):
    (match,) = [r for r in results if r.name == name]
    return match


class TestHealthyEnvironment:
    def test_full_battery_passes(self):
        results = run_doctor()
        assert exit_code(results) == 0
        statuses = {r.name: r.status for r in results}
        # Pool spawn may legitimately WARN in constrained sandboxes;
        # everything else must pass outright on a healthy store.
        for name in (
            "probe.disk-cache-rw",
            "probe.disk-cache-verify",
            "probe.lock",
            "probe.quarantine",
            "probe.telemetry",
        ):
            assert statuses[name] == PASS, render_doctor(results)
        assert statuses["probe.pool-spawn"] in (PASS, WARN)
        assert "verdict: HEALTHY" in render_doctor(results)

    def test_probe_leaves_no_residue_in_store(self):
        keys_before = set(DISK_CACHE.keys())
        run_doctor()
        assert set(DISK_CACHE.keys()) == keys_before


class TestUnhealthyEnvironment:
    def test_corrupt_store_fails_verify_probe(self):
        key = "cafef00d" * 8
        DISK_CACHE.insert(key, {"v": 1})
        DISK_CACHE.corrupt_bytes(key)
        result = probe_disk_cache_verify()
        assert result.status == FAIL
        assert key[:12] in result.detail

    def test_corrupt_store_makes_doctor_exit_nonzero(self):
        key = "cafef00d" * 8
        DISK_CACHE.insert(key, {"v": 1})
        DISK_CACHE.corrupt_bytes(key)
        results = run_doctor()
        assert exit_code(results) == 2
        rendered = render_doctor(results)
        assert "verdict: UNHEALTHY" in rendered
        assert "probe.disk-cache-verify" in rendered.rsplit("verdict", 1)[1]

    def test_quarantined_entries_warn_not_fail(self):
        key = "cafef00d" * 8
        DISK_CACHE.insert(key, {"v": 1})
        DISK_CACHE.corrupt_bytes(key)
        assert DISK_CACHE.lookup(key) is None  # heals: moves to quarantine
        result = probe_quarantine()
        assert result.status == WARN
        assert "kept for forensics" in result.detail
        assert exit_code(run_doctor()) == 0

    def test_crashing_probe_becomes_fail_row(self, monkeypatch):
        import repro.resilience.doctor as doctor_mod

        def exploding():
            raise RuntimeError("probe went sideways")

        monkeypatch.setattr(
            doctor_mod, "PROBES", (("exploding", exploding),)
        )
        results = run_doctor()
        assert results == [
            ProbeResult(
                "probe.exploding", FAIL,
                "probe crashed: RuntimeError: probe went sideways",
            )
        ]
        assert exit_code(results) == 2
