"""Tests for the disk cache's self-healing paths: quarantine of
damaged entries, read-retry under injected I/O errors, stale-lock
breaking, and the prune mtime re-check."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.perf.diskcache import DiskCache, STALE_LOCK_AGE
from repro.resilience import chaos
from repro.resilience.stats import RESILIENCE

KEY = "deadbeef" * 8


@pytest.fixture
def dc(tmp_path):
    cache = DiskCache(directory=tmp_path / "store", respect_env=False)
    cache.insert(KEY, {"answer": 42})
    return cache


class TestQuarantine:
    def test_zero_byte_entry_quarantined(self, dc):
        path = dc._path(KEY)
        path.write_bytes(b"")
        assert dc.lookup(KEY) is None
        assert not path.exists()
        assert (dc.quarantine_dir() / f"{KEY}.run").exists()
        assert dc.quarantined == 1
        assert dc.corrupt == 1

    def test_truncated_entry_quarantined(self, dc):
        path = dc._path(KEY)
        path.write_bytes(path.read_bytes()[:10])
        assert dc.lookup(KEY) is None
        assert dc.quarantined == 1

    def test_incident_record_is_structured(self, dc):
        dc.corrupt_bytes(KEY)
        assert dc.lookup(KEY) is None
        (incident,) = dc.incidents()
        assert incident["key"] == KEY
        assert incident["action"] == "quarantined"
        assert incident["pid"] == os.getpid()
        assert "digest mismatch" in incident["reason"]
        assert incident["quarantined_to"].endswith(f"{KEY}.run")

    def test_key_recovers_after_quarantine(self, dc):
        dc.corrupt_bytes(KEY)
        assert dc.lookup(KEY) is None
        assert dc.insert(KEY, {"answer": 43})
        assert dc.lookup(KEY) == {"answer": 43}

    def test_quarantine_counts_in_resilience_telemetry(self, dc):
        before = RESILIENCE.get("quarantined")
        dc.corrupt_bytes(KEY)
        dc.lookup(KEY)
        assert RESILIENCE.get("quarantined") == before + 1

    def test_lookup_never_raises_on_missing_store(self, tmp_path):
        cache = DiskCache(directory=tmp_path / "nowhere", respect_env=False)
        assert cache.lookup(KEY) is None
        assert cache.misses == 1

    def test_clear_resets_healing_counters(self, dc):
        dc.corrupt_bytes(KEY)
        dc.lookup(KEY)
        dc.clear()
        assert dc.quarantined == 0
        assert dc.io_retries == 0


class TestReadRetry:
    def test_transient_error_healed_by_retry(self, dc, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CHAOS", f"disk=1,dir={dc.root() / '.chaos'}"
        )
        assert dc.lookup(KEY) == {"answer": 42}
        assert dc.hits == 1
        assert dc.io_retries == 1
        assert RESILIENCE.get("io_errors") == 1
        assert RESILIENCE.get("io_retries") == 1

    def test_persistent_error_degrades_to_miss(self, dc, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CHAOS", f"disk=2,dir={dc.root() / '.chaos'}"
        )
        assert dc.lookup(KEY) is None
        assert dc.misses == 1
        assert RESILIENCE.get("io_errors") == 2
        # The entry itself is fine: with chaos off the key still serves.
        monkeypatch.delenv("REPRO_CHAOS")
        assert dc.lookup(KEY) == {"answer": 42}


class TestStaleLock:
    def _plant(self, dc, pid, age=2 * STALE_LOCK_AGE, raw=None):
        lock = dc.root() / ".lock"
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_bytes(
            raw if raw is not None
            else json.dumps({"pid": pid, "time": time.time() - age}).encode()
        )
        old = time.time() - age
        os.utime(lock, (old, old))
        return lock

    def test_dead_pid_lock_is_broken(self, dc):
        self._plant(dc, chaos.dead_pid())
        before = RESILIENCE.get("locks_broken")
        with dc._interprocess_lock():
            pass
        assert RESILIENCE.get("locks_broken") == before + 1
        # The new holder recorded itself into the fresh lock file.
        record = json.loads((dc.root() / ".lock").read_bytes())
        assert record["pid"] == os.getpid()

    def test_live_pid_lock_is_not_broken(self, dc):
        self._plant(dc, os.getpid())
        before = RESILIENCE.get("locks_broken")
        with dc._interprocess_lock():
            pass
        assert RESILIENCE.get("locks_broken") == before

    def test_young_lock_is_not_broken(self, dc):
        self._plant(dc, chaos.dead_pid(), age=1.0)
        before = RESILIENCE.get("locks_broken")
        with dc._interprocess_lock():
            pass
        assert RESILIENCE.get("locks_broken") == before

    def test_unparseable_lock_is_not_broken(self, dc):
        self._plant(dc, 0, raw=b"not json at all")
        before = RESILIENCE.get("locks_broken")
        with dc._interprocess_lock():
            pass
        assert RESILIENCE.get("locks_broken") == before


class TestPruneSafety:
    def test_entry_refreshed_since_scan_is_spared(self, dc, monkeypatch):
        # Report scan mtimes 10 s older than reality, as if every entry
        # were touched between the scan and the unlink.
        real = DiskCache._entries

        def stale_scan(self):
            return [(p, m - 10.0, s) for p, m, s in real(self)]

        monkeypatch.setattr(DiskCache, "_entries", stale_scan)
        assert dc.prune(max_entries=0) == 0
        assert dc._path(KEY).exists()

    def test_vanished_entry_is_tolerated(self, dc, monkeypatch):
        real = DiskCache._entries
        ghost = dc._path(KEY).with_name("ghost.run")

        def with_ghost(self):
            return real(self) + [(ghost, 0.0, 1)]

        monkeypatch.setattr(DiskCache, "_entries", with_ghost)
        # Both entries over cap: the ghost vanishes mid-unlink, the
        # real entry is evicted, no exception escapes.
        assert dc.prune(max_entries=0) == 1
        assert not dc._path(KEY).exists()
