"""Tests for the supervised process-pool executor
(:mod:`repro.resilience.supervisor`).

The worker tasks live at module level so the pool can pickle them; the
"fail exactly once" tasks coordinate through ``O_CREAT|O_EXCL`` token
files, the same cross-process budget mechanism the chaos harness uses.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.errors import (
    DeadlineExceeded,
    MappingError,
    TransientError,
    WorkerCrashError,
)
from repro.resilience.stats import RESILIENCE
from repro.resilience.supervisor import (
    RetryPolicy,
    Supervisor,
    default_policy,
)

#: Fast policy for tests: tight backoff, generous deadline.
FAST = RetryPolicy(max_retries=2, backoff=0.001, deadline=60.0)

NO_SLEEP = staticmethod(lambda s: None)


def _claim(token: str) -> bool:
    """First caller (across processes) wins the token."""
    try:
        fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _echo_chunk(cells):
    return [value * 2 for value in cells]


def _kill_once_chunk(cells):
    for value, token in cells:
        if token and _claim(token):
            os.kill(os.getpid(), signal.SIGKILL)
    return [value * 2 for value, _ in cells]


def _hang_once_chunk(cells):
    import time

    for value, token in cells:
        if token and _claim(token):
            time.sleep(5.0)
    return [value * 2 for value, _ in cells]


def _hang_always_chunk(cells):
    import time

    time.sleep(5.0)
    return list(cells)


def _poison_chunk(cells):
    out = []
    for cell in cells:
        if cell == "poison":
            os.kill(os.getpid(), signal.SIGKILL)
        out.append(cell.upper())
    return out


def _raise_chunk(cells):
    raise MappingError("boom from the work itself")


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(backoff=0.1, jitter=0.5)
        assert policy.delay(2, token="t") == policy.delay(2, token="t")

    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(backoff=0.1, multiplier=2.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(2.0 * policy.delay(0))

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(backoff=0.1, multiplier=1.0, jitter=0.25)
        for attempt in range(8):
            delay = policy.delay(attempt, token="x")
            assert 0.075 <= delay <= 0.125

    def test_default_policy_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "7")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.5")
        monkeypatch.setenv("REPRO_CHUNK_DEADLINE", "12.5")
        policy = default_policy()
        assert policy.max_retries == 7
        assert policy.backoff == 0.5
        assert policy.deadline == 12.5

    def test_zero_deadline_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_DEADLINE", "0")
        assert default_policy().deadline is None


class TestSupervisorHappyPath:
    def test_results_in_chunk_order(self):
        sup = Supervisor(2, policy=FAST, task=_echo_chunk, sleep=lambda s: None)
        assert sup.run([[1, 2], [3], [4, 5]]) == [[2, 4], [6], [8, 10]]

    def test_empty_chunk_list(self):
        sup = Supervisor(2, policy=FAST, task=_echo_chunk)
        assert sup.run([]) == []


class TestWorkerCrashRecovery:
    def test_sigkilled_worker_is_retried(self, tmp_path):
        token = str(tmp_path / "kill.token")
        chunks = [[(1, token), (2, None)], [(3, None)]]
        before = RESILIENCE.get("retries")
        crashes = RESILIENCE.get("worker_crashes")
        restarts = RESILIENCE.get("pool_restarts")
        sup = Supervisor(2, policy=FAST, task=_kill_once_chunk,
                         sleep=lambda s: None)
        assert sup.run(chunks) == [[2, 4], [6]]
        assert RESILIENCE.get("retries") > before
        assert RESILIENCE.get("worker_crashes") > crashes
        assert RESILIENCE.get("pool_restarts") > restarts

    def test_poisoned_cell_isolated_and_reported(self, tmp_path):
        chunks = [["alpha", "poison", "beta"]]
        policy = RetryPolicy(max_retries=1, backoff=0.001, deadline=60.0)
        sup = Supervisor(2, policy=policy, task=_poison_chunk,
                         sleep=lambda s: None)
        isolated = RESILIENCE.get("isolated_cells")
        failed = RESILIENCE.get("failed_cells")
        with pytest.raises(WorkerCrashError) as excinfo:
            sup.run(chunks)
        assert RESILIENCE.get("isolated_cells") == isolated + 3
        assert RESILIENCE.get("failed_cells") == failed + 1
        incident = excinfo.value.incident
        assert incident["failed_cells"] == [
            {
                "chunk": 0,
                "cell": 1,
                "attempts": 2,
                "error": incident["failed_cells"][0]["error"],
            }
        ]
        assert "BrokenProcessPool" in incident["failed_cells"][0]["error"]


class TestDeadline:
    def test_hung_chunk_retried_after_deadline(self, tmp_path):
        token = str(tmp_path / "hang.token")
        policy = RetryPolicy(max_retries=2, backoff=0.001, deadline=1.0)
        sup = Supervisor(2, policy=policy, task=_hang_once_chunk,
                         sleep=lambda s: None)
        exceeded = RESILIENCE.get("deadline_exceeded")
        assert sup.run([[(5, token)]]) == [[10]]
        assert RESILIENCE.get("deadline_exceeded") > exceeded

    def test_always_hanging_cell_raises_deadline_exceeded(self):
        policy = RetryPolicy(max_retries=0, backoff=0.001, deadline=0.5)
        sup = Supervisor(1, policy=policy, task=_hang_always_chunk,
                         sleep=lambda s: None)
        with pytest.raises(DeadlineExceeded) as excinfo:
            sup.run([[1]])
        failed = excinfo.value.incident["failed_cells"]
        assert failed and failed[0]["chunk"] == 0


class TestErrorClassification:
    def test_mapping_error_propagates_unchanged(self):
        sup = Supervisor(2, policy=FAST, task=_raise_chunk,
                         sleep=lambda s: None)
        with pytest.raises(MappingError, match="boom from the work"):
            sup.run([[1], [2]])

    def test_pool_spawn_failure_raises_transient(self, monkeypatch):
        import concurrent.futures

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no fork in this sandbox")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", ExplodingPool
        )
        sup = Supervisor(2, policy=FAST, task=_echo_chunk)
        with pytest.raises(TransientError, match="pool unavailable"):
            sup.run([[1]])

    def test_unpicklable_payload_raises_transient(self):
        sup = Supervisor(2, policy=FAST, task=_echo_chunk,
                         sleep=lambda s: None)
        with pytest.raises(TransientError):
            sup.run([[lambda: None]])
