"""Tests for the trace exporters (:mod:`repro.trace.export`)."""

import json
import xml.etree.ElementTree as ET

import pytest

from repro.errors import ExperimentError
from repro.mappings import registry
from repro.perf.cache import cache_key
from repro.trace.export import (
    MANIFEST_SCHEMA,
    chrome_busy_by_track,
    chrome_track_names,
    manifest_record,
    metrics_manifest_lines,
    timeline_svg,
    to_chrome,
    utilization_timelines,
    write_chrome,
    write_metrics_manifest,
)
from repro.trace.run import trace_run
from repro.trace.tracer import Tracer


def small_tracer():
    tr = Tracer()
    tr.span("seg", "dram/x", 10.0, args={"words": 4})
    tr.span("seg", "dram/x", 5.0)
    tr.instant("lookup", "cache/l1", args={"hits": 3})
    tr.span("cat", "accounting/compute", 7.0)
    tr.count("dram.x.words", 4.0)
    return tr


class TestToChrome:
    def test_metadata_names_every_track(self):
        doc = to_chrome(small_tracer())
        names = chrome_track_names(doc)
        assert sorted(names.values()) == [
            "accounting/compute",
            "cache/l1",
            "dram/x",
        ]
        # tids follow first-appearance order.
        assert names[0] == "dram/x"
        assert names[1] == "cache/l1"

    def test_span_and_instant_records(self):
        doc = to_chrome(small_tracer())
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert len(spans) == 3
        assert len(instants) == 1
        first = spans[0]
        assert first["ts"] == 0.0 and first["dur"] == 10.0
        assert first["args"] == {"words": 4}
        assert instants[0]["s"] == "t"
        assert all(e["pid"] == 0 for e in spans + instants)

    def test_other_data_carries_counters_and_clock(self):
        doc = to_chrome(small_tracer())
        other = doc["otherData"]
        assert other["counters"] == {"dram.x.words": 4.0}
        assert "cycle" in other["clock"]

    def test_json_serializable(self):
        doc = to_chrome(small_tracer())
        assert json.loads(json.dumps(doc)) == doc

    def test_busy_round_trip_matches_tracer(self):
        tr = small_tracer()
        assert chrome_busy_by_track(to_chrome(tr)) == tr.busy_by_track()

    def test_real_run_round_trip(self):
        run, tracer = trace_run("corner_turn", "viram")
        doc = to_chrome(tracer)
        busy = chrome_busy_by_track(doc)
        accounting = sum(
            v for k, v in busy.items() if k.startswith("accounting/")
        )
        assert accounting == pytest.approx(run.cycles)
        assert doc["otherData"]["runs"][0]["kernel"] == "corner_turn"

    def test_write_chrome(self, tmp_path):
        path = write_chrome(tmp_path / "t.json", small_tracer())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) > 0


class TestUtilizationTimelines:
    def test_accounting_tracks_first(self):
        timelines = utilization_timelines(small_tracer())
        assert list(timelines)[0] == "accounting/compute"
        assert "dram/x" in timelines

    def test_empty_tracks_omitted(self):
        tr = small_tracer()
        tr.instant("only-instants", "engine")
        timelines = utilization_timelines(tr)
        assert "engine" not in timelines


class TestTimelineSvg:
    def test_empty_tracer_raises(self):
        with pytest.raises(ExperimentError):
            timeline_svg(Tracer())

    def test_svg_parses_with_rows_and_busy_rects(self):
        svg = timeline_svg(small_tracer(), title="unit test")
        root = ET.fromstring(svg)
        rows = [
            r
            for r in root.iter("{http://www.w3.org/2000/svg}rect")
            if r.get("class") == "row"
        ]
        busy = [
            r
            for r in root.iter("{http://www.w3.org/2000/svg}rect")
            if r.get("class") == "busy"
        ]
        assert len(rows) == 2  # accounting/compute and dram/x
        assert busy, "no busy rectangles rendered"
        tracks = {r.get("data-track") for r in busy}
        assert tracks == {"accounting/compute", "dram/x"}
        texts = [t.text for t in root.iter("{http://www.w3.org/2000/svg}text")]
        assert "unit test" in texts

    def test_default_title_names_runs(self):
        _, tracer = trace_run("corner_turn", "viram")
        svg = timeline_svg(tracer)
        assert "corner_turn/viram" in svg


class TestManifest:
    def test_manifest_record_fields(self):
        run = registry.run("corner_turn", "viram")
        key = cache_key("corner_turn", "viram", {})
        record = manifest_record(run, config_hash=key)
        assert record["schema"] == MANIFEST_SCHEMA
        assert record["config_hash"] == key
        assert record["run_id"] == key[:12]
        assert record["kernel"] == "corner_turn"
        assert record["machine"] == "viram"
        assert record["cycles"] == run.cycles

    def test_manifest_record_with_counters(self):
        run, tracer = trace_run("corner_turn", "viram")
        record = manifest_record(
            run,
            config_hash=cache_key("corner_turn", "viram", {}),
            counters=tracer.counters,
        )
        assert record["trace_counters"]["trace.runs"] == 1.0

    def test_lines_sorted_and_deterministic(self):
        results = {
            ("corner_turn", "viram"): registry.run("corner_turn", "viram"),
            ("beam_steering", "ppc"): registry.run("beam_steering", "ppc"),
        }
        lines = metrics_manifest_lines(results)
        records = [json.loads(line) for line in lines]
        pairs = [(r["kernel"], r["machine"]) for r in records]
        assert pairs == [("beam_steering", "ppc"), ("corner_turn", "viram")]
        assert lines == metrics_manifest_lines(results)

    def test_write_metrics_manifest(self, tmp_path):
        results = {
            ("corner_turn", "viram"): registry.run("corner_turn", "viram")
        }
        path = write_metrics_manifest(tmp_path / "m.jsonl", results)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["schema"] == MANIFEST_SCHEMA
