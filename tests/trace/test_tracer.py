"""Tests for the core tracer (:mod:`repro.trace.tracer`)."""

import pytest

from repro.trace.tracer import (
    INSTANT,
    SPAN,
    TraceEvent,
    Tracer,
    active_tracer,
    tracing,
)


class TestTraceEvent:
    def test_span_end_and_class(self):
        e = TraceEvent("seg", "dram/viram-onchip", SPAN, ts=10.0, dur=5.0)
        assert e.end == 15.0
        assert e.resource_class == "dram"

    def test_classless_track(self):
        e = TraceEvent("refill", "tlb", SPAN, ts=0.0, dur=1.0)
        assert e.resource_class == "tlb"

    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError):
            TraceEvent("x", "t", "B", ts=0.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            TraceEvent("x", "t", SPAN, ts=0.0, dur=-1.0)

    def test_rejects_negative_timestamp(self):
        with pytest.raises(ValueError):
            TraceEvent("x", "t", SPAN, ts=-1.0)


class TestSpanPlacement:
    def test_cursor_places_spans_back_to_back(self):
        tr = Tracer()
        a = tr.span("a", "t", 10.0)
        b = tr.span("b", "t", 5.0)
        assert (a.ts, a.end) == (0.0, 10.0)
        assert (b.ts, b.end) == (10.0, 15.0)
        assert tr.cursor("t") == 15.0

    def test_cursors_are_per_track(self):
        tr = Tracer()
        tr.span("a", "t1", 10.0)
        b = tr.span("b", "t2", 5.0)
        assert b.ts == 0.0

    def test_explicit_start_advances_cursor_only_forward(self):
        tr = Tracer()
        tr.span("late", "t", 5.0, start=100.0)
        assert tr.cursor("t") == 105.0
        tr.span("early", "t", 1.0, start=2.0)
        # An earlier real interval must not rewind the cursor.
        assert tr.cursor("t") == 105.0

    def test_instant_defaults_to_cursor(self):
        tr = Tracer()
        tr.span("a", "t", 7.0)
        i = tr.instant("tick", "t")
        assert i.phase == INSTANT
        assert i.ts == 7.0
        assert i.dur == 0.0


class TestCountersAndReset:
    def test_count_accumulates(self):
        tr = Tracer()
        tr.count("hits")
        tr.count("hits", 4.0)
        assert tr.counters == {"hits": 5.0}

    def test_clear_drops_everything(self):
        tr = Tracer()
        tr.span("a", "t", 1.0)
        tr.count("c")
        tr.clear()
        assert tr.n_events == 0
        assert tr.counters == {}
        assert tr.cursor("t") == 0.0
        assert tr.runs == ()


class TestReading:
    def test_tracks_in_first_appearance_order(self):
        tr = Tracer()
        tr.span("a", "z", 1.0)
        tr.span("b", "a", 1.0)
        tr.span("c", "z", 1.0)
        assert tr.tracks() == ("z", "a")

    def test_busy_by_track_ignores_instants(self):
        tr = Tracer()
        tr.span("a", "t", 3.0)
        tr.instant("i", "t")
        tr.span("b", "t", 4.0)
        assert tr.busy_by_track() == {"t": 7.0}

    def test_busy_by_class_groups_first_component(self):
        tr = Tracer()
        tr.span("a", "dram/x", 3.0)
        tr.span("b", "dram/y", 4.0)
        tr.span("c", "tlb", 1.0)
        assert tr.busy_by_class() == {"dram": 7.0, "tlb": 1.0}

    def test_segments_merge_adjacent_and_overlapping(self):
        tr = Tracer()
        tr.span("a", "t", 5.0, start=0.0)
        tr.span("b", "t", 5.0, start=5.0)  # back-to-back: merges
        tr.span("c", "t", 2.0, start=20.0)
        tr.span("d", "t", 5.0, start=21.0)  # overlaps c
        assert tr.segments("t") == [(0.0, 10.0), (20.0, 26.0)]

    def test_segments_drop_zero_duration(self):
        tr = Tracer()
        tr.span("z", "t", 0.0)
        assert tr.segments("t") == []

    def test_utilization(self):
        tr = Tracer()
        tr.span("a", "t", 5.0, start=0.0)
        assert tr.utilization("t", horizon=10.0) == pytest.approx(0.5)
        # Default horizon: the latest event end across all tracks.
        tr.span("b", "other", 15.0, start=5.0)
        assert tr.utilization("t") == pytest.approx(5.0 / 20.0)


class TestAttachRun:
    def test_accounting_timeline_and_run_record(self):
        from repro.mappings import registry

        run = registry.run("corner_turn", "viram")
        tr = Tracer()
        tr.attach_run(run, run_id="abc123")
        busy = tr.busy_by_track()
        for category, cycles in run.breakdown.items():
            assert busy[f"accounting/{category}"] == pytest.approx(cycles)
        assert sum(
            v for k, v in busy.items() if k.startswith("accounting/")
        ) == pytest.approx(run.cycles)
        (rec,) = tr.runs
        assert rec["kernel"] == "corner_turn"
        assert rec["machine"] == "viram"
        assert rec["run_id"] == "abc123"
        assert rec["cycles"] == run.cycles
        assert rec["window"] == (0.0, run.breakdown.total)
        assert tr.counters["trace.runs"] == 1.0

    def test_successive_runs_tile_successive_windows(self):
        from repro.mappings import registry

        run = registry.run("corner_turn", "viram")
        tr = Tracer()
        tr.attach_run(run)
        tr.attach_run(run)
        first, second = tr.runs
        assert second["window"][0] == first["window"][1]
        total = tr.busy_by_class()["accounting"]
        assert total == pytest.approx(2 * run.cycles)


class TestTracingContext:
    def test_off_by_default(self):
        assert active_tracer() is None

    def test_installs_and_restores(self):
        with tracing() as tr:
            assert active_tracer() is tr
        assert active_tracer() is None

    def test_nested_contexts_shadow_and_restore(self):
        with tracing() as outer:
            with tracing() as inner:
                assert inner is not outer
                assert active_tracer() is inner
            assert active_tracer() is outer
        assert active_tracer() is None

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert active_tracer() is None

    def test_accepts_existing_tracer(self):
        tr = Tracer()
        with tracing(tr) as got:
            assert got is tr
