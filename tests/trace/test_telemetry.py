"""Tests for the unified metrics registry (:mod:`repro.trace.telemetry`)."""

import json

import pytest

from repro.sim.accounting import CycleBreakdown
from repro.sim.stats import Counter
from repro.trace.telemetry import (
    TELEMETRY,
    TelemetryRegistry,
    breakdown_source,
    counter_source,
)
from repro.trace.tracer import tracing


class TestRegistration:
    def test_register_and_snapshot(self):
        reg = TelemetryRegistry()
        reg.register("demo", lambda: {"a": 1, "b": 2.5})
        assert reg.snapshot() == {"demo.a": 1, "demo.b": 2.5}
        assert reg.namespaces() == ("demo",)

    def test_duplicate_namespace_raises(self):
        reg = TelemetryRegistry()
        reg.register("demo", lambda: {})
        with pytest.raises(ValueError):
            reg.register("demo", lambda: {})

    def test_replace_allows_reregistration(self):
        reg = TelemetryRegistry()
        reg.register("demo", lambda: {"a": 1})
        reg.register("demo", lambda: {"a": 2}, replace=True)
        assert reg.read("demo.a") == 2

    def test_invalid_namespace_rejected(self):
        reg = TelemetryRegistry()
        with pytest.raises(ValueError):
            reg.register("", lambda: {})
        with pytest.raises(ValueError):
            reg.register(".leading", lambda: {})

    def test_unregister_is_idempotent(self):
        reg = TelemetryRegistry()
        reg.register("demo", lambda: {"a": 1})
        reg.unregister("demo")
        reg.unregister("demo")
        assert reg.snapshot() == {}

    def test_scoped_registers_for_context_only(self):
        reg = TelemetryRegistry()
        with reg.scoped("tmp", lambda: {"x": 9}):
            assert reg.read("tmp.x") == 9
        assert "tmp" not in reg.namespaces()

    def test_scoped_unregisters_on_exception(self):
        reg = TelemetryRegistry()
        with pytest.raises(RuntimeError):
            with reg.scoped("tmp", lambda: {}):
                raise RuntimeError("boom")
        assert "tmp" not in reg.namespaces()


class TestSnapshotErrors:
    def test_failing_source_is_isolated(self):
        reg = TelemetryRegistry()

        def broken():
            raise RuntimeError("no data")

        reg.register("bad", broken)
        reg.register("good", lambda: {"a": 1})
        snap = reg.snapshot()
        assert snap["good.a"] == 1
        assert snap["bad.error"] == "RuntimeError: no data"

    def test_read_missing_raises_keyerror(self):
        reg = TelemetryRegistry()
        with pytest.raises(KeyError):
            reg.read("nope.metric")


class TestAdapters:
    def test_counter_source(self):
        c = Counter("dram")
        c.add("activations", 3)
        c.add("refreshes", 1)
        values = counter_source(c)()
        assert values["activations"] == 3
        assert values["refreshes"] == 1
        assert values["total"] == 4

    def test_breakdown_source(self):
        b = CycleBreakdown({"compute": 100.0, "memory": 50.0})
        values = breakdown_source(b)()
        assert values["compute"] == 100.0
        assert values["memory"] == 50.0
        assert values["total"] == 150.0


class TestRendering:
    def test_render_empty(self):
        reg = TelemetryRegistry()
        assert "no sources" in reg.render()

    def test_render_aligned_lines(self):
        reg = TelemetryRegistry()
        reg.register("demo", lambda: {"hits": 3, "misses": 1})
        text = reg.render()
        assert text.startswith("telemetry:")
        assert "demo.hits" in text
        assert "demo.misses" in text

    def test_export_json_is_sorted_and_parseable(self):
        reg = TelemetryRegistry()
        reg.register("b", lambda: {"z": 1})
        reg.register("a", lambda: {"y": 2})
        data = json.loads(reg.export_json())
        assert data == {"b.z": 1, "a.y": 2}
        assert reg.export_json() == json.dumps(data, indent=2, sort_keys=True)


class TestDefaultRegistry:
    def test_default_namespaces_present(self):
        namespaces = TELEMETRY.namespaces()
        assert "perf.timers" in namespaces
        assert "perf.cache" in namespaces
        assert "trace" in namespaces

    def test_trace_source_empty_when_tracing_off(self):
        snap = TELEMETRY.snapshot()
        assert not any(k.startswith("trace.") for k in snap)

    def test_trace_source_reports_active_tracer(self):
        with tracing() as tracer:
            tracer.count("demo.counter", 2.0)
            tracer.span("a", "t", 1.0)
            snap = TELEMETRY.snapshot()
        assert snap["trace.demo.counter"] == 2.0
        assert snap["trace.events"] == 1
        # And nothing leaks after the context closes.
        assert "trace.events" not in TELEMETRY.snapshot()

    def test_cache_source_reports_run_cache_stats(self):
        snap = TELEMETRY.snapshot()
        cache_keys = {k for k in snap if k.startswith("perf.cache.")}
        assert cache_keys  # hits/misses/bypasses/entries, shape-agnostic


class TestEmptyAndPartialRegistries:
    """Pin the render()/export_json() contract on degenerate registries.

    The --perf view and the metrics-history recorder both call these on
    whatever the registry happens to hold; the exact empty-state strings
    are load-bearing (scripts grep for them)."""

    def test_render_distinguishes_no_sources_from_no_values(self):
        reg = TelemetryRegistry()
        assert reg.render() == "telemetry: (no sources registered)"
        reg.register("quiet", lambda: {})
        assert reg.render() == "telemetry: (no values)"

    def test_export_json_on_empty_registry(self):
        reg = TelemetryRegistry()
        assert json.loads(reg.export_json()) == {}

    def test_partially_unregistered_registry_still_renders(self):
        reg = TelemetryRegistry()
        reg.register("keep", lambda: {"a": 1})
        reg.register("drop", lambda: {"b": 2})
        reg.unregister("drop")
        assert json.loads(reg.export_json()) == {"keep.a": 1}
        text = reg.render()
        assert "keep.a" in text and "drop.b" not in text
        # Dropping the last source lands back on the no-sources string.
        reg.unregister("keep")
        assert reg.render() == "telemetry: (no sources registered)"

    def test_duplicate_register_names_the_namespace(self):
        reg = TelemetryRegistry()
        reg.register("demo", lambda: {})
        with pytest.raises(ValueError, match="'demo' already registered"):
            reg.register("demo", lambda: {})


class TestScopedInterleavings:
    def test_unregister_mid_scoped_is_not_clobbered_by_exit(self):
        reg = TelemetryRegistry()
        with reg.scoped("tmp", lambda: {"x": 1}):
            reg.unregister("tmp")
            # Another party claims the name while the scope is open.
            reg.register("tmp", lambda: {"x": 2})
        # Exit must leave the other party's source alone.
        assert reg.read("tmp.x") == 2

    def test_scoped_exit_after_replace_leaves_replacement(self):
        reg = TelemetryRegistry()
        with reg.scoped("tmp", lambda: {"x": 1}):
            reg.register("tmp", lambda: {"x": 3}, replace=True)
        assert reg.read("tmp.x") == 3

    def test_scoped_removes_only_its_own_source(self):
        reg = TelemetryRegistry()
        source = lambda: {"x": 1}  # noqa: E731
        with reg.scoped("tmp", source):
            pass
        assert "tmp" not in reg.namespaces()


class TestObsNamespace:
    def test_obs_registered_by_default(self):
        assert "obs" in TELEMETRY.namespaces()

    def test_obs_empty_when_no_recorder_active(self):
        snap = TELEMETRY.snapshot()
        assert not any(k.startswith("obs.") for k in snap)

    def test_obs_census_under_recording(self):
        from repro.obs.ledger import record, recording

        with recording() as rec:
            record("sweep.plan", requests=1)
            record("sweep.plan", requests=2)
            snap = TELEMETRY.snapshot()
        assert snap["obs.session"] == rec.session
        assert snap["obs.events"] == 2
        assert snap["obs.write_errors"] == 0
        assert snap["obs.events.sweep.plan"] == 2
        # Nothing leaks once the recorder is uninstalled.
        assert "obs.events" not in TELEMETRY.snapshot()
