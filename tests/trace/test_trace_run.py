"""The tracer overhead contract: tracing observes, never perturbs.

Satellite coverage for the observability PR: a traced run's modelled
numbers are identical to an untraced run's, trace state never leaks
between runs, and the registry's memoization cache is bypassed (not
polluted) while tracing is active.
"""

import pytest

from repro.mappings import registry
from repro.perf.cache import RUN_CACHE, cache_key
from repro.trace.run import trace_run
from repro.trace.tracer import active_tracer, tracing

PAIRS = [
    ("corner_turn", "viram"),
    ("cslc", "imagine"),
    ("beam_steering", "raw"),
    ("corner_turn", "ppc"),
]


class TestNoninterference:
    @pytest.mark.parametrize("kernel,machine", PAIRS)
    def test_traced_run_matches_untraced(self, kernel, machine):
        baseline = registry.run(kernel, machine)
        traced, tracer = trace_run(kernel, machine)
        assert traced.cycles == baseline.cycles
        assert traced.breakdown.as_dict() == baseline.breakdown.as_dict()
        assert traced.ops.as_dict() == baseline.ops.as_dict()
        assert traced.functional_ok == baseline.functional_ok
        assert tracer.n_events > 0

    def test_traced_run_with_options_matches(self):
        baseline = registry.run("cslc", "raw", balanced=False)
        traced, _ = trace_run("cslc", "raw", balanced=False)
        assert traced.cycles == baseline.cycles


class TestNoStateLeaks:
    def test_tracer_off_after_trace_run(self):
        trace_run("corner_turn", "viram")
        assert active_tracer() is None

    def test_tracer_restored_after_exception(self):
        with pytest.raises(Exception):
            with tracing():
                registry.run("no_such_kernel", "viram")
        assert active_tracer() is None

    def test_consecutive_runs_use_fresh_tracers(self):
        _, first = trace_run("corner_turn", "viram")
        _, second = trace_run("corner_turn", "viram")
        assert first is not second
        assert first.n_events == second.n_events
        assert first.counters == second.counters

    def test_shared_tracer_accumulates_both_runs(self):
        _, solo = trace_run("corner_turn", "viram")
        _, shared = trace_run("corner_turn", "viram")
        trace_run("beam_steering", "viram", tracer=shared)
        assert shared.counters["trace.runs"] == 2.0
        assert shared.n_events > solo.n_events


class TestCacheBypass:
    def test_traced_run_bypasses_and_never_inserts(self):
        RUN_CACHE.clear()
        key = cache_key("corner_turn", "viram", {})
        bypasses_before = RUN_CACHE.bypasses
        trace_run("corner_turn", "viram")
        assert RUN_CACHE.bypasses == bypasses_before + 1
        assert key not in RUN_CACHE.keys()

    def test_traced_run_ignores_poisoned_cache_entry(self):
        # A cache hit would replay no events AND could serve stale data;
        # tracing must execute fresh even when an entry exists.
        RUN_CACHE.clear()
        baseline = registry.run("corner_turn", "viram")  # populates cache
        key = cache_key("corner_turn", "viram", {})
        assert key in RUN_CACHE.keys()
        traced, tracer = trace_run("corner_turn", "viram")
        assert traced is not baseline
        assert traced.cycles == baseline.cycles
        assert tracer.n_events > 0

    def test_untraced_runs_still_cache(self):
        RUN_CACHE.clear()
        registry.run("corner_turn", "viram")
        key = cache_key("corner_turn", "viram", {})
        assert key in RUN_CACHE.keys()


class TestDisabledTracingIsInert:
    def test_table3_csv_identical_with_and_without_prior_tracing(
        self, small_workloads
    ):
        from repro.eval.export import table3_csv
        from repro.eval.tables import run_table3

        before = table3_csv(run_table3(small_workloads))
        trace_run("corner_turn", "viram")  # exercise tracing in between
        after = table3_csv(run_table3(small_workloads))
        assert before == after
