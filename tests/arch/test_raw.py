"""Tests for :mod:`repro.arch.raw`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.raw.config import RawConfig
from repro.arch.raw.machine import RAW_SPEC, RawMachine
from repro.arch.raw.network import (
    StaticNetwork,
    dynamic_packet_words,
    port_coords,
    route_hops,
    transfer_latency,
    xy_route_links,
)
from repro.errors import CapacityError, ConfigError


class TestConfig:
    def test_published_values(self):
        """§2.3's numbers."""
        c = RawConfig()
        assert c.tiles == 16
        assert c.tile_sram_kib == 128
        assert c.aggregate_local_memory_bytes == 2 * 1024 * 1024
        assert c.onchip_words_per_cycle == 16
        assert c.offchip_words_per_cycle == 28

    def test_spec_matches_table2(self):
        assert RAW_SPEC.clock_mhz == 300
        assert RAW_SPEC.n_alus == 16
        assert RAW_SPEC.peak_gflops == 4.64

    def test_invalid(self):
        with pytest.raises(ConfigError):
            RawConfig(mesh_rows=0)
        with pytest.raises(ConfigError):
            RawConfig(tile_data_kib=256)  # exceeds tile SRAM


class TestNetworkLatency:
    def test_nearest_neighbor_is_three_cycles(self):
        """§2.3: 'a latency of three cycles between nearest neighbor
        tiles.'"""
        assert transfer_latency(RawConfig(), (0, 0), (0, 1)) == 3

    def test_one_cycle_per_extra_hop(self):
        """§2.3: 'One additional cycle of latency is added for each
        hop.'"""
        c = RawConfig()
        assert transfer_latency(c, (0, 0), (0, 2)) == 4
        assert transfer_latency(c, (0, 0), (3, 3)) == 3 + 5

    def test_local_is_free(self):
        assert transfer_latency(RawConfig(), (1, 1), (1, 1)) == 0

    def test_route_hops(self):
        assert route_hops((0, 0), (2, 3)) == 5

    def test_xy_route_links(self):
        links = xy_route_links((0, 0), (1, 2))
        assert links == [
            ((0, 0), (0, 1)),
            ((0, 1), (0, 2)),
            ((0, 2), (1, 2)),
        ]


class TestStaticNetwork:
    def test_flow_accumulates_on_links(self):
        net = StaticNetwork(RawConfig())
        net.add_flow((0, 0), (0, 2), 100)
        net.add_flow((0, 1), (0, 2), 50)
        assert net.max_link_words == 150  # shared (0,1)->(0,2) link

    def test_feasibility(self):
        net = StaticNetwork(RawConfig())
        net.add_flow((0, 0), (0, 1), 100)
        assert net.check_feasible(100)
        assert not net.check_feasible(99)

    def test_out_of_mesh_rejected(self):
        net = StaticNetwork(RawConfig())
        with pytest.raises(ConfigError):
            net.add_flow((0, 0), (9, 9), 1)

    def test_negative_flow_rejected(self):
        with pytest.raises(ConfigError):
            StaticNetwork(RawConfig()).add_flow((0, 0), (0, 1), -1)

    def test_reset(self):
        net = StaticNetwork(RawConfig())
        net.add_flow((0, 0), (0, 1), 5)
        net.reset()
        assert net.max_link_words == 0


class TestDynamicNetwork:
    def test_header_plus_payload(self):
        """§2.3: 'A packet contains header and data.'"""
        assert dynamic_packet_words(RawConfig(), 4) == 5

    def test_small_payload_padded(self):
        """§2.3: 'If the data is smaller than a packet, dummy data is
        added.'"""
        assert dynamic_packet_words(RawConfig(), 0) == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            dynamic_packet_words(RawConfig(), -1)


class TestPorts:
    def test_sixteen_ports_on_4x4(self):
        """§2.3: 16 peripheral ports on the 4x4 prototype."""
        coords = port_coords(RawConfig())
        assert len(coords) == 16
        # Corner tiles attach to two ports each.
        assert coords.count((0, 0)) == 2

    def test_interior_excluded_on_larger_mesh(self):
        coords = port_coords(RawConfig(mesh_rows=6, mesh_cols=6))
        assert (2, 2) not in coords
        assert len(coords) == 24


class TestMachine:
    def test_tile_cycles_single_issue(self):
        m = RawMachine()
        assert m.tile_cycles(1000) == 1000

    def test_cache_stall_fraction(self):
        """Stalls are the calibrated fraction of total time (§4.3: <10%)."""
        m = RawMachine()
        busy = 920.0
        stall = m.cache_stall_cycles(busy)
        assert stall / (busy + stall) == pytest.approx(
            m.cal.cache_stall_fraction
        )

    def test_distribute_73_over_16(self):
        """§4.3: 'some tiles processed five sets while others processed
        four.'"""
        m = RawMachine()
        shares = m.distribute(73)
        assert sorted(set(shares)) == [4, 5]
        assert shares.count(5) == 9
        assert sum(shares) == 73

    def test_imbalance_and_balanced_makespans(self):
        m = RawMachine()
        per_set = 100.0
        assert m.imbalance_makespan(per_set, 73) == 500.0
        assert m.balanced_makespan(per_set, 73) == pytest.approx(456.25)

    def test_imbalance_idle_fraction_is_about_8_percent(self):
        m = RawMachine()
        idle = 1 - m.balanced_makespan(1.0, 73) / m.imbalance_makespan(1.0, 73)
        assert idle == pytest.approx(0.0875)

    def test_offchip_time(self):
        m = RawMachine()
        assert m.offchip_time(280) == 10.0

    def test_onchip_issue_time(self):
        m = RawMachine()
        assert m.onchip_issue_time(160) == 10.0

    def test_tile_memory_capacity(self):
        m = RawMachine()
        m.tile_memories[0].allocate("block", 64 * 64 * 4)  # 16 KB fits
        with pytest.raises(CapacityError):
            m.tile_memories[0].allocate("second", 20 * 1024)

    def test_negative_inputs(self):
        m = RawMachine()
        with pytest.raises(ConfigError):
            m.tile_cycles(-1)
        with pytest.raises(ConfigError):
            m.distribute(-1)


@given(st.integers(0, 500), st.integers(1, 64))
def test_distribute_conserves_items(n_items, tiles):
    m = RawMachine(config=RawConfig(mesh_rows=1, mesh_cols=tiles))
    shares = m.distribute(n_items)
    assert sum(shares) == n_items
    assert max(shares) - min(shares) <= 1
