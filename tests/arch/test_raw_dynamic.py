"""Tests for :mod:`repro.arch.raw.dynamic` — the dynamic network."""

import pytest

from repro.arch.raw.config import RawConfig
from repro.arch.raw.dynamic import (
    MAX_PAYLOAD_WORDS,
    Message,
    cslc_set_delivery,
    deliver,
    segment,
)
from repro.errors import ConfigError


class TestMessage:
    def test_invalid(self):
        with pytest.raises(ConfigError):
            Message((0, 0), (0, 1), 0)
        with pytest.raises(ConfigError):
            Message((0, 0), (0, 1), 4, inject_time=-1.0)


class TestSegmentation:
    def test_single_packet(self):
        sizes = segment(Message((0, 0), (0, 1), 8), RawConfig())
        assert sizes == [9]  # 8 payload + 1 header

    def test_large_message_segmented(self):
        sizes = segment(Message((0, 0), (0, 1), 70), RawConfig())
        assert len(sizes) == 3  # 31 + 31 + 8
        assert sizes[0] == MAX_PAYLOAD_WORDS + 1
        assert sizes[-1] == 8 + 1

    def test_tiny_payload_padded(self):
        """§2.3: 'If the data is smaller than a packet, dummy data is
        added' — every packet carries at least one payload word plus the
        header."""
        sizes = segment(Message((0, 0), (0, 1), 1), RawConfig())
        assert sizes == [2]


class TestDelivery:
    def test_single_hop_time(self):
        result = deliver([Message((0, 0), (0, 1), 8)])
        delivery = result.deliveries[0]
        assert delivery.complete_time == pytest.approx(9.0)
        assert delivery.packets == 1

    def test_multi_hop_adds_latency(self):
        near = deliver([Message((0, 0), (0, 1), 8)]).makespan
        far = deliver([Message((0, 0), (0, 3), 8)]).makespan
        assert far > near

    def test_local_message_immediate(self):
        result = deliver([Message((1, 1), (1, 1), 8)])
        assert result.deliveries[0].complete_time == 0.0

    def test_shared_link_contention(self):
        """Two messages crossing the same link serialise on it."""
        messages = [
            Message((0, 0), (0, 2), 20),
            Message((0, 1), (0, 2), 20),
        ]
        together = deliver(messages).makespan
        alone = deliver(messages[:1]).makespan
        assert together > alone

    def test_disjoint_routes_parallel(self):
        messages = [
            Message((0, 0), (0, 1), 20),
            Message((3, 0), (3, 1), 20),
        ]
        together = deliver(messages).makespan
        alone = deliver(messages[:1]).makespan
        assert together == pytest.approx(alone)

    def test_injection_time_respected(self):
        result = deliver([Message((0, 0), (0, 1), 8, inject_time=100.0)])
        assert result.deliveries[0].complete_time >= 100.0

    def test_wire_words_include_headers(self):
        result = deliver([Message((0, 0), (0, 1), 62)])
        assert result.total_wire_words == 62 + 2  # two packet headers

    def test_empty_traffic(self):
        result = deliver([])
        assert result.makespan == 0.0
        assert result.busiest_link_words == 0.0


class TestCslcDelivery:
    def test_one_message_per_tile(self):
        result = cslc_set_delivery()
        assert len(result.deliveries) == 16

    def test_delivery_fits_stall_budget(self):
        """§4.3: '<10% of the execution time is spent on memory stalls' —
        the working-set delivery bandwidth must not be the limiter."""
        from repro.arch.raw.tile import execute_program, fft_program
        from repro.kernels.fft import FFTPlan, radix2_radices

        delivery = cslc_set_delivery()
        plan = FFTPlan(128, radix2_radices(128))
        compute = execute_program(fft_program(plan, transforms=6)).cycles
        assert delivery.makespan < 0.10 * compute

    def test_headers_overhead_small(self):
        result = cslc_set_delivery()
        payload = 16 * 6 * 256
        overhead = result.total_wire_words - payload
        assert overhead / payload < 0.05
