"""Tests for :mod:`repro.arch.viram.isa` — the vector-stream validator."""

import pytest

from repro.arch.viram.isa import (
    VectorInstruction,
    fft_stream,
    schedule_stream,
)
from repro.arch.viram.machine import ViramMachine
from repro.errors import ConfigError, ScheduleError
from repro.kernels.fft import FFTPlan


class TestInstruction:
    def test_unknown_unit(self):
        with pytest.raises(ConfigError):
            VectorInstruction("x", "simd", 8)

    def test_negative_elements(self):
        with pytest.raises(ConfigError):
            VectorInstruction("x", "fp", -1)


class TestScheduleStream:
    def test_independent_instructions_pipeline(self):
        stream = [
            VectorInstruction(f"i{k}", "fp", 64) for k in range(10)
        ]
        sched = schedule_stream(stream)
        # 10 x 64 element-ops at 8/cycle, no dead time: 80 cycles.
        assert sched.makespan == pytest.approx(80)
        assert sched.dead_time_total == 0.0

    def test_dependent_chain_pays_dead_time(self):
        machine = ViramMachine()
        stream = [
            VectorInstruction("a", "fp", 64),
            VectorInstruction("b", "fp", 64, deps=("a",)),
        ]
        sched = schedule_stream(stream, machine)
        assert sched.dead_time_total == machine.cal.vector_dead_time
        assert sched.makespan == pytest.approx(
            16 + machine.cal.vector_dead_time
        )

    def test_cross_unit_overlap(self):
        """Shuffles on VFU1 overlap FP on VFU0 when independent."""
        stream = [
            VectorInstruction("sh", "shuffle", 640),
            VectorInstruction("fp", "fp", 640),
        ]
        sched = schedule_stream(stream)
        assert sched.makespan == pytest.approx(80)

    def test_strided_memory_rate(self):
        stream = [VectorInstruction("ld", "load", 64, strided=True)]
        sched = schedule_stream(stream)
        assert sched.makespan == pytest.approx(16)  # 4 words/cycle

    def test_sequential_memory_rate(self):
        stream = [VectorInstruction("st", "store", 64)]
        sched = schedule_stream(stream)
        assert sched.makespan == pytest.approx(8)

    def test_unknown_dep_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_stream([VectorInstruction("a", "fp", 8, deps=("z",))])

    def test_duplicate_name_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_stream(
                [
                    VectorInstruction("a", "fp", 8),
                    VectorInstruction("a", "fp", 8),
                ]
            )


class TestFftStreamValidation:
    """The scheduled stream must sit just below the composite model: the
    schedule charges dead time only on true dependency chains and hides
    shuffles under FP where the dataflow allows, so it lower-bounds the
    mapping's calibrated (paper-anchored) accounting."""

    def test_element_op_totals_match_censuses(self):
        machine = ViramMachine()
        plan = FFTPlan(128)
        stream = fft_stream(plan, batch=64, machine=machine)
        fp = sum(i.elements for i in stream if i.unit == "fp")
        sh = sum(i.elements for i in stream if i.unit == "shuffle")
        assert fp == pytest.approx(plan.flops() * 64)
        assert sh == pytest.approx(plan.shuffle_census().permutes * 64)

    def test_schedule_brackets_composite(self):
        machine = ViramMachine()
        plan = FFTPlan(128)
        stream = fft_stream(plan, batch=64, machine=machine)
        sched = schedule_stream(stream, machine)
        flops = plan.flops() * 64
        permutes = plan.shuffle_census().permutes * 64
        composite = (
            machine.fp_issue_cycles(flops)
            + machine.vfu_cycles(permutes)
            * machine.cal.shuffle_exposed_fraction
            + machine.dead_time(machine.instruction_count(flops + permutes))
        )
        ratio = sched.makespan / composite
        assert 0.55 < ratio <= 1.0

    def test_fp_issue_is_the_floor(self):
        machine = ViramMachine()
        plan = FFTPlan(128)
        sched = schedule_stream(fft_stream(plan, machine=machine), machine)
        assert sched.makespan >= machine.fp_issue_cycles(plan.flops() * 64)

    def test_smaller_batch_scales_down(self):
        machine = ViramMachine()
        plan = FFTPlan(64)
        full = schedule_stream(fft_stream(plan, batch=64), machine)
        half = schedule_stream(fft_stream(plan, batch=32), machine)
        assert half.makespan < full.makespan

    def test_invalid_batch(self):
        with pytest.raises(ConfigError):
            fft_stream(FFTPlan(64), batch=0)
        with pytest.raises(ConfigError):
            fft_stream(FFTPlan(64), batch=128)
