"""Route-correctness checks against networkx (independent graph oracle).

The static-network feasibility analysis hinges on XY routes being valid
mesh paths of minimal length; networkx's shortest-path machinery on the
same mesh graph is the oracle.
"""

import pytest

networkx = pytest.importorskip("networkx")

from hypothesis import given
from hypothesis import strategies as st

from repro.arch.raw.config import RawConfig
from repro.arch.raw.network import route_hops, xy_route_links


def mesh_graph(config: RawConfig):
    return networkx.grid_2d_graph(config.mesh_rows, config.mesh_cols)


coords = st.tuples(st.integers(0, 3), st.integers(0, 3))


@given(coords, coords)
def test_xy_route_is_a_valid_minimal_path(src, dst):
    config = RawConfig()
    graph = mesh_graph(config)
    links = xy_route_links(src, dst)
    # Links chain src -> dst along existing mesh edges.
    node = src
    for a, b in links:
        assert a == node
        assert graph.has_edge(a, b)
        node = b
    assert node == dst
    # Length equals the graph-theoretic shortest path.
    expected = networkx.shortest_path_length(graph, src, dst)
    assert len(links) == expected
    assert route_hops(src, dst) == expected


def test_all_pairs_route_lengths_match_networkx():
    config = RawConfig()
    graph = mesh_graph(config)
    lengths = dict(networkx.all_pairs_shortest_path_length(graph))
    for src in graph.nodes:
        for dst in graph.nodes:
            assert route_hops(src, dst) == lengths[src][dst]
