"""Tests for :mod:`repro.arch.imagine.microcode`."""

import pytest

from repro.arch.imagine.config import ImagineConfig
from repro.arch.imagine.microcode import (
    build_fft_cluster_dag,
    validate_fft_schedule,
)
from repro.errors import ConfigError
from repro.kernels.fft import FFTPlan, radix2_radices


class TestDagConstruction:
    def test_arithmetic_conserved_across_clusters(self):
        """Every butterfly is owned by exactly one cluster, so the eight
        per-cluster DAGs together perform exactly the transform's
        arithmetic census."""
        plan = FFTPlan(128)
        total_adds = 0.0
        total_muls = 0.0
        for cluster in range(8):
            dag = build_fft_cluster_dag(plan, cluster=cluster)
            total_adds += dag.mix.adds
            total_muls += dag.mix.muls
        counts = plan.op_counts()
        assert total_adds == pytest.approx(counts.adds)
        assert total_muls == pytest.approx(counts.muls)

    def test_comm_only_on_crossing_stages(self):
        """With 16-point partitions only the span-32 stage of a 128-point
        radix-4 transform crosses clusters: 32 owned butterflies x 3
        remote complex operands x 2 words = 192... per cluster: the
        cluster owns 1/8 of the 32 butterflies' first elements... every
        butterfly of that stage has its first element in one partition;
        cluster 0 owns 4 of them? No: span 32, k in [0,32), first
        elements are k in [0,32) -> cluster 0 owns k in [0,16): 16
        butterflies x 3 remote inputs x 2 words = 96?  The DAG counts
        what it builds; assert the structural facts instead."""
        plan = FFTPlan(128)
        parallel = build_fft_cluster_dag(plan, parallel=True)
        independent = build_fft_cluster_dag(plan, parallel=False)
        assert parallel.mix.comms > 0
        assert independent.mix.comms == 0
        assert parallel.mix.adds == independent.mix.adds

    def test_all_deps_are_earlier_ops(self):
        dag = build_fft_cluster_dag(FFTPlan(64))
        for i, op in enumerate(dag.ops):
            assert all(0 <= d < i for d in op.deps), i

    def test_radix2_plan_supported(self):
        dag = build_fft_cluster_dag(FFTPlan(32, radix2_radices(32)))
        assert dag.mix.adds > 0

    def test_indivisible_size_rejected(self):
        with pytest.raises(ConfigError):
            build_fft_cluster_dag(FFTPlan(4))  # 4 points / 8 clusters

    def test_cluster_zero_is_busiest(self):
        """Ownership by first element concentrates early-stage work on
        the low clusters, so validating against cluster 0's schedule is
        the conservative (busiest-cluster) choice."""
        plan = FFTPlan(128)
        mixes = [
            build_fft_cluster_dag(plan, cluster=c).mix.total
            for c in range(8)
        ]
        assert mixes[0] == max(mixes)


class TestScheduleValidation:
    def test_list_schedule_at_least_bound(self):
        v = validate_fft_schedule(FFTPlan(128))
        assert v.packing_inefficiency >= 1.0

    def test_inefficiency_in_calibrated_band(self):
        """The calibration's 1.15 packing factor must sit inside the
        band the genuine schedules produce for the paper's FFT."""
        ineffs = [
            validate_fft_schedule(FFTPlan(n)).packing_inefficiency
            for n in (32, 64, 128)
        ]
        assert min(ineffs) <= 1.15 <= max(ineffs) + 0.25

    def test_parallel_at_least_independent(self):
        par = validate_fft_schedule(FFTPlan(128), parallel=True)
        ind = validate_fft_schedule(FFTPlan(128), parallel=False)
        assert par.list_cycles >= ind.list_cycles

    def test_summary_text(self):
        v = validate_fft_schedule(FFTPlan(32))
        assert "resource bound" in v.summary
