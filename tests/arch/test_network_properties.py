"""Property tests across the Raw network models and the Imagine stream
executor: conservation and bound invariants that must hold for any
traffic or program."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.imagine.machine import ImagineMachine
from repro.arch.imagine.stream_program import StreamProgram, execute
from repro.arch.raw.config import RawConfig
from repro.arch.raw.dynamic import Message, deliver
from repro.memory.streams import Sequential

coords = st.tuples(st.integers(0, 3), st.integers(0, 3))


@st.composite
def message_sets(draw):
    n = draw(st.integers(1, 8))
    messages = []
    for _ in range(n):
        src = draw(coords)
        dst = draw(coords)
        words = draw(st.integers(1, 120))
        inject = draw(st.floats(0, 100))
        messages.append(Message(src, dst, words, inject_time=inject))
    return messages


@settings(max_examples=40, deadline=None)
@given(message_sets())
def test_dynamic_network_invariants(messages):
    result = deliver(messages, RawConfig())
    # Every message delivered exactly once.
    assert len(result.deliveries) == len(messages)
    # Wire words >= payload (headers + padding only add).
    payload = sum(m.words for m in messages)
    assert result.total_wire_words >= payload
    # Completion never precedes injection; makespan covers all.
    for d in result.deliveries:
        assert d.complete_time >= d.message.inject_time
        assert d.complete_time <= result.makespan + 1e-9
    # The busiest link carries at most all wire words.
    assert result.busiest_link_words <= result.total_wire_words + 1e-9


@settings(max_examples=40, deadline=None)
@given(message_sets())
def test_dynamic_network_serial_upper_bound(messages):
    """Makespan never exceeds last injection + fully serialised service
    over the worst route (a crude upper bound every schedule beats)."""
    result = deliver(messages, RawConfig())
    serial = max(m.inject_time for m in messages) + sum(
        (m.words + m.words // 31 + 1) * 7 for m in messages
    )
    assert result.makespan <= serial


@st.composite
def stream_programs(draw):
    program = StreamProgram()
    n = draw(st.integers(1, 10))
    names = []
    base = 0
    for i in range(n):
        kind = draw(st.sampled_from(["load", "store", "kernel"]))
        deps = ()
        if names and draw(st.booleans()):
            deps = (draw(st.sampled_from(names)),)
        name = f"op{i}"
        if kind == "kernel":
            program.kernel(name, draw(st.floats(0, 500)), deps=deps)
        else:
            words = draw(st.integers(1, 400))
            if kind == "load":
                program.load(name, Sequential(base, words), deps=deps)
            else:
                program.store(name, Sequential(base, words), deps=deps)
            base += words
        names.append(name)
    return program


@settings(max_examples=40, deadline=None)
@given(stream_programs())
def test_stream_program_invariants(program):
    machine = ImagineMachine()
    schedule = execute(program, machine)
    # Makespan bounds: at least the busiest resource, at most the sum of
    # both resources' busy time (full serialisation).
    lower = max(schedule.memory_busy, schedule.cluster_busy)
    upper = schedule.memory_busy + schedule.cluster_busy
    assert schedule.makespan >= lower - 1e-9
    assert schedule.makespan <= upper + 1e-9
    # Every op got an interval, ordered sanely.
    assert len(schedule.op_intervals) == len(program)
    for start, end in schedule.op_intervals.values():
        assert end >= start >= 0.0
