"""Tests for :mod:`repro.arch.viram`."""

import pytest

from repro.arch.viram.config import ViramConfig
from repro.arch.viram.machine import VIRAM_SPEC, ViramMachine, padded_pitch
from repro.errors import CapacityError, ConfigError
from repro.memory.streams import Sequential, Strided


class TestConfig:
    def test_published_values(self):
        """§2.1's numbers."""
        c = ViramConfig()
        assert c.clock_hz == 200e6
        assert c.max_vl_32bit == 64
        assert c.seq_words_per_cycle == 8
        assert c.strided_words_per_cycle == 4
        assert c.total_banks == 8  # two wings of four banks
        assert c.vector_register_file_bytes == 8 * 1024
        assert c.onchip_dram_bytes == 13 * 1024 * 1024

    def test_spec_matches_table2(self):
        assert VIRAM_SPEC.clock_mhz == 200
        assert VIRAM_SPEC.n_alus == 16
        assert VIRAM_SPEC.peak_gflops == 3.2

    def test_invalid_configs(self):
        with pytest.raises(ConfigError):
            ViramConfig(clock_hz=0)
        with pytest.raises(ConfigError):
            ViramConfig(address_generators=0)
        with pytest.raises(ConfigError):
            ViramConfig(vector_register_bits=100)  # not word multiple


class TestMemory:
    def test_sequential_rate(self):
        m = ViramMachine()
        cost = m.load(Sequential(0, 800), strided=False)
        assert cost.issue_cycles == 100.0

    def test_strided_rate_is_address_generator_bound(self):
        m = ViramMachine()
        cost = m.load(Strided(0, 800, 2048), strided=True)
        assert cost.issue_cycles == 200.0

    def test_tlb_sees_accesses(self):
        m = ViramMachine()
        m.load(Sequential(0, 8), strided=False)
        assert m.tlb.accesses > 0

    def test_capacity_check(self):
        m = ViramMachine()
        m.check_fits_onchip(13 * 1024 * 1024, "exact fit")
        with pytest.raises(CapacityError):
            m.check_fits_onchip(14 * 1024 * 1024, "too big")

    def test_reset_clears_state(self):
        m = ViramMachine()
        m.load(Strided(0, 64, 2048), strided=True)
        m.reset()
        assert m.dram.total_activations == 0
        assert m.tlb.misses == 0


class TestVectorIssue:
    def test_vfu_rate(self):
        m = ViramMachine()
        assert m.vfu_cycles(80) == 10.0

    def test_fp_restricted_to_vfu0(self):
        """The x1.52 mechanism: FP runs at 8/cycle, not 16."""
        m = ViramMachine()
        assert m.fp_issue_cycles(160) == 20.0

    def test_fp_unrestricted_variant(self):
        m = ViramMachine(config=ViramConfig(fp_on_vfu0_only=False))
        assert m.fp_issue_cycles(160) == 10.0

    def test_instruction_count_default_vl(self):
        m = ViramMachine()
        assert m.instruction_count(640) == 10.0

    def test_instruction_count_custom_vl(self):
        m = ViramMachine()
        assert m.instruction_count(640, vl=16) == 40.0

    def test_instruction_count_invalid_vl(self):
        m = ViramMachine()
        with pytest.raises(ConfigError):
            m.instruction_count(10, vl=0)
        with pytest.raises(ConfigError):
            m.instruction_count(10, vl=65)

    def test_dead_time(self):
        m = ViramMachine()
        assert m.dead_time(10) == 10 * m.cal.vector_dead_time

    def test_negative_inputs_rejected(self):
        m = ViramMachine()
        with pytest.raises(ConfigError):
            m.vfu_cycles(-1)
        with pytest.raises(ConfigError):
            m.dead_time(-1)

    def test_blocks_for(self):
        m = ViramMachine()
        assert m.blocks_for(64, 32, 16) == 8
        with pytest.raises(ConfigError):
            m.blocks_for(65, 32, 16)


class TestPaddedPitch:
    def test_canonical_matrix_needs_no_pad(self):
        """1024 words/row over 1024-word DRAM rows: advance 1 is already
        coprime with 8 banks."""
        m = ViramMachine()
        assert padded_pitch(1024, m) == 1024

    def test_conflicting_pitch_padded(self):
        m = ViramMachine()
        pitch = padded_pitch(2048, m)  # advance 2 -> conflicts
        assert pitch > 2048
        assert (pitch // 1024) % 2 == 1
