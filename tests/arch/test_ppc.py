"""Tests for :mod:`repro.arch.ppc`."""

import pytest

from repro.arch.ppc.config import PpcConfig
from repro.arch.ppc.machine import ALTIVEC_SPEC, PPC_SPEC, PpcMachine
from repro.errors import ConfigError


class TestConfig:
    def test_published_values(self):
        c = PpcConfig()
        assert c.clock_hz == 1e9
        assert c.issue_width == 3
        assert c.altivec_width == 4
        assert c.l1_lines == 1024
        assert c.l2_lines == 8192
        assert c.l1_line_words == 8

    def test_specs_match_table2(self):
        assert PPC_SPEC.clock_mhz == 1000
        assert PPC_SPEC.n_alus == 4
        assert PPC_SPEC.peak_gflops == 5.0
        assert ALTIVEC_SPEC.flops_per_cycle == 8.0

    def test_invalid(self):
        with pytest.raises(ConfigError):
            PpcConfig(issue_width=0)
        with pytest.raises(ConfigError):
            PpcConfig(l1_size_bytes=1000)  # not line multiple


class TestIssue:
    def test_three_wide(self):
        m = PpcMachine()
        assert m.issue_cycles(9) == 3.0

    def test_vector_one_per_cycle(self):
        m = PpcMachine()
        assert m.vector_issue_cycles(7) == 7.0

    def test_negative_rejected(self):
        m = PpcMachine()
        with pytest.raises(ConfigError):
            m.issue_cycles(-1)
        with pytest.raises(ConfigError):
            m.vector_issue_cycles(-1)


class TestStalls:
    def test_scalar_fp(self):
        m = PpcMachine()
        assert m.scalar_fp_stall_cycles(10) == 10 * m.cal.fp_dependency_stall

    def test_trig(self):
        m = PpcMachine()
        assert m.trig_cycles(5) == 5 * m.cal.trig_call_cycles

    def test_vector(self):
        m = PpcMachine()
        assert m.vector_stall_cycles(2) == pytest.approx(
            2 * m.cal.vector_dependency_stall_per_butterfly
        )

    def test_cache_cost_helpers(self):
        m = PpcMachine()
        assert m.l2_hit_stall(10) == 10 * m.cal.l2_hit_cycles
        assert m.memory_miss_stall(1) == pytest.approx(
            m.cal.l2_hit_cycles + m.cal.dram_latency_cycles
        )

    def test_negative_rejected(self):
        m = PpcMachine()
        for fn in (
            m.scalar_fp_stall_cycles,
            m.trig_cycles,
            m.vector_stall_cycles,
            m.l2_hit_stall,
            m.memory_miss_stall,
        ):
            with pytest.raises(ConfigError):
                fn(-1)


class TestHierarchy:
    def test_fresh_hierarchy_is_cold(self):
        m = PpcMachine()
        h1 = m.make_hierarchy()
        h1.run_trace([0])
        h2 = m.make_hierarchy()
        result = h2.run_trace([0])
        assert result.l1.misses == 1  # not warmed by h1

    def test_geometry_from_config(self):
        m = PpcMachine()
        h = m.make_hierarchy()
        assert h.l1.config.size_bytes == 32 * 1024
        assert h.l2.config.size_bytes == 256 * 1024
        assert h.memory_latency == m.cal.dram_latency_cycles
