"""Tests for :mod:`repro.arch.imagine.stream_program`."""

import pytest

from repro.arch.imagine.machine import ImagineMachine
from repro.arch.imagine.stream_program import (
    StreamOp,
    StreamProgram,
    execute,
)
from repro.errors import ScheduleError
from repro.memory.streams import Sequential


@pytest.fixture
def machine():
    return ImagineMachine()


class TestProgramConstruction:
    def test_builder_methods(self):
        p = StreamProgram()
        p.load("a", Sequential(0, 8))
        p.kernel("k", 100.0, deps=("a",))
        p.store("out", Sequential(8, 8), deps=("k",))
        assert len(p) == 3
        assert [op.kind for op in p.ops] == ["load", "kernel", "store"]

    def test_duplicate_name_rejected(self):
        p = StreamProgram()
        p.load("a", Sequential(0, 8))
        with pytest.raises(ScheduleError):
            p.load("a", Sequential(0, 8))

    def test_forward_dep_rejected(self):
        p = StreamProgram()
        with pytest.raises(ScheduleError):
            p.kernel("k", 1.0, deps=("ghost",))

    def test_kernel_with_pattern_rejected(self):
        with pytest.raises(ScheduleError):
            StreamOp("k", "kernel", pattern=Sequential(0, 1))

    def test_memory_op_needs_pattern(self):
        with pytest.raises(ScheduleError):
            StreamOp("l", "load")

    def test_bad_kind(self):
        with pytest.raises(ScheduleError):
            StreamOp("x", "dma")


class TestExecution:
    def test_dependent_chain_serialises(self, machine):
        p = StreamProgram()
        p.load("a", Sequential(0, 200))  # 200 ctrl-cycles / 2 = 100
        p.kernel("k", 50.0, deps=("a",))
        p.store("out", Sequential(200, 200), deps=("k",))
        schedule = execute(p, machine)
        assert schedule.makespan == pytest.approx(100 + 50 + 100, rel=0.05)

    def test_kernel_overlaps_independent_memory(self, machine):
        """Software pipelining: a prefetch issued before the kernel runs
        under it."""
        p = StreamProgram()
        p.load("a", Sequential(0, 200))
        p.load("b", Sequential(200, 200))  # prefetch for the next round
        p.kernel("k", 150.0, deps=("a",))
        schedule = execute(p, machine)
        # b runs on the memory system while k runs on the clusters.
        assert schedule.makespan == pytest.approx(100 + 150, rel=0.05)

    def test_memory_stripes_across_controllers(self, machine):
        p = StreamProgram()
        p.load("a", Sequential(0, 1000))
        schedule = execute(p, machine)
        assert schedule.makespan == pytest.approx(
            1000 / machine.config.memory_words_per_cycle, rel=0.05
        )

    def test_memory_wall_and_exposure(self, machine):
        p = StreamProgram()
        p.load("a", Sequential(0, 200))
        p.kernel("k", 500.0, deps=("a",))
        schedule = execute(p, machine)
        assert schedule.memory_wall == pytest.approx(100, rel=0.05)
        assert schedule.exposed_over_memory == pytest.approx(500, rel=0.05)

    def test_gather_derated(self, machine):
        from repro.memory.streams import Gather

        p = StreamProgram()
        p.load("g", Gather(0, list(range(100))), gather=True)
        schedule = execute(p, machine)
        assert schedule.memory_busy == pytest.approx(
            100 * machine.cal.gather_derate
            / machine.config.memory_words_per_cycle
        )

    def test_op_intervals_reported(self, machine):
        p = StreamProgram()
        p.load("a", Sequential(0, 20))
        p.kernel("k", 5.0, deps=("a",))
        schedule = execute(p, machine)
        assert schedule.op_intervals["k"][0] == pytest.approx(
            schedule.op_intervals["a"][1]
        )

    def test_in_order_memory_no_backfill(self, machine):
        """The memory system serves streams in issue order: a later load
        cannot jump a blocked store (why the mappings emit programs in
        software-pipelined order)."""
        p = StreamProgram()
        p.load("a", Sequential(0, 20))
        p.kernel("k", 400.0, deps=("a",))
        p.store("out", Sequential(100, 20), deps=("k",))
        p.load("late", Sequential(200, 20))
        schedule = execute(p, machine)
        assert schedule.op_intervals["late"][0] >= (
            schedule.op_intervals["out"][1] - 1e-9
        )
