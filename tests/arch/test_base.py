"""Tests for :mod:`repro.arch.base`."""

import pytest

from repro.arch.base import KernelRun, MachineSpec
from repro.errors import ConfigError
from repro.kernels.opcount import OpCounts
from repro.sim.accounting import CycleBreakdown


def make_spec(**overrides):
    defaults = dict(
        name="toy",
        display_name="Toy",
        clock_hz=100e6,
        n_alus=4,
        peak_gflops=1.0,
        flops_per_cycle=8.0,
    )
    defaults.update(overrides)
    return MachineSpec(**defaults)


def make_run(cycles=1000.0, flops=4000.0):
    return KernelRun(
        kernel="toy_kernel",
        machine="toy",
        spec=make_spec(),
        breakdown=CycleBreakdown({"compute": cycles}),
        ops=OpCounts(adds=flops),
    )


class TestMachineSpec:
    def test_clock_mhz(self):
        assert make_spec().clock_mhz == 100.0

    @pytest.mark.parametrize(
        "field,value",
        [
            ("clock_hz", 0.0),
            ("n_alus", 0),
            ("peak_gflops", 0.0),
            ("flops_per_cycle", -1.0),
        ],
    )
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ConfigError):
            make_spec(**{field: value})


class TestKernelRun:
    def test_cycles_and_kilocycles(self):
        run = make_run(cycles=5000.0)
        assert run.cycles == 5000.0
        assert run.kilocycles == 5.0

    def test_seconds_at_clock(self):
        run = make_run(cycles=100e6)  # one second at 100 MHz
        assert run.seconds == pytest.approx(1.0)

    def test_flops_per_cycle_and_peak(self):
        run = make_run(cycles=1000.0, flops=4000.0)
        assert run.flops_per_cycle == 4.0
        assert run.percent_of_peak == 0.5

    def test_gflops(self):
        run = make_run(cycles=1000.0, flops=4000.0)
        assert run.gflops == pytest.approx(4.0 * 100e6 / 1e9)

    def test_zero_cycles_safe(self):
        run = make_run(cycles=0.0)
        assert run.flops_per_cycle == 0.0

    def test_summary_mentions_key_facts(self):
        run = make_run()
        text = run.summary()
        assert "toy_kernel" in text
        assert "Toy" in text
        assert "functional check: ok" in text

    def test_summary_reports_failure(self):
        run = make_run()
        run.functional_ok = False
        assert "FAILED" in run.summary()

    def test_metrics_in_summary(self):
        run = make_run()
        run.metrics["answer"] = 42
        assert "answer" in run.summary()
