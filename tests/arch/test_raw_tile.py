"""Tests for :mod:`repro.arch.raw.tile` — the per-tile pipeline executor."""

import pytest

from repro.arch.raw.machine import RawMachine
from repro.arch.raw.tile import (
    Segment,
    TileProgram,
    execute_program,
    fft_program,
)
from repro.errors import ConfigError
from repro.kernels.fft import FFTPlan, radix2_radices


class TestSegments:
    def test_unknown_category(self):
        with pytest.raises(ConfigError):
            Segment("simd", 1)

    def test_negative_count(self):
        with pytest.raises(ConfigError):
            Segment("alu", -1)


class TestProgram:
    def test_totals(self):
        p = TileProgram(
            body=(Segment("alu", 10), Segment("load", 4)), iterations=3
        )
        assert p.instructions_per_iteration == 14
        assert p.total_instructions == 42
        assert p.category_totals() == {"alu": 30.0, "load": 12.0}

    def test_negative_iterations(self):
        with pytest.raises(ConfigError):
            TileProgram(body=(), iterations=-1)


class TestExecution:
    def test_pure_alu_is_cpi_one(self):
        p = TileProgram(body=(Segment("alu", 100),), iterations=1)
        result = execute_program(p)
        assert result.cycles == 100
        assert result.cpi == 1.0

    def test_load_use_bubbles(self):
        p = TileProgram(body=(Segment("load", 10),), iterations=1)
        result = execute_program(p, load_use_fraction=0.5)
        assert result.load_use_bubbles == 5
        assert result.cycles == 15

    def test_branch_bubbles(self):
        p = TileProgram(
            body=(Segment("alu", 8), Segment("branch", 2)), iterations=5
        )
        result = execute_program(p)
        assert result.branch_bubbles == 10

    def test_switch_port_conflicts(self):
        p = TileProgram(
            body=(Segment("load", 4), Segment("store", 2)), iterations=10
        )
        result = execute_program(
            p, load_use_fraction=0.0, switch_words_per_iteration=3.0
        )
        assert result.memory_port_conflicts == 30  # min(60 slots, 30 words)

    def test_conflicts_bounded_by_memory_slots(self):
        p = TileProgram(body=(Segment("load", 1),), iterations=2)
        result = execute_program(
            p, load_use_fraction=0.0, switch_words_per_iteration=100.0
        )
        assert result.memory_port_conflicts == 2

    def test_invalid_fraction(self):
        p = TileProgram(body=(), iterations=1)
        with pytest.raises(ConfigError):
            execute_program(p, load_use_fraction=1.5)

    def test_empty_program(self):
        result = execute_program(TileProgram(body=(), iterations=5))
        assert result.cycles == 0
        assert result.cpi == 0.0


class TestFftProgramValidation:
    """The executor must reproduce the block-level Raw CSLC accounting:
    same instruction totals, and total cycles within ~12% once the
    hazard bubbles stand in for the calibrated stall fraction."""

    PLAN = FFTPlan(128, radix2_radices(128))

    def test_instruction_totals_match_census(self):
        program = fft_program(self.PLAN)
        mem = self.PLAN.memory_census()
        butterflies = sum(s.butterflies for s in self.PLAN.stages)
        totals = program.category_totals()
        assert totals["load"] == pytest.approx(mem.loads)
        assert totals["store"] == pytest.approx(mem.stores)
        assert totals["alu"] == pytest.approx(mem.flops)
        assert totals["addr"] == pytest.approx(5.0 * butterflies)

    def test_cycles_close_to_block_model(self):
        machine = RawMachine()
        program = fft_program(self.PLAN, transforms=6)
        executed = execute_program(program)
        block_busy = machine.tile_cycles(program.total_instructions)
        block_total = block_busy + machine.cache_stall_cycles(block_busy)
        assert executed.cycles == pytest.approx(block_total, rel=0.12)

    def test_stall_fraction_in_paper_band(self):
        """§4.3: stalls under 10-ish percent of execution time."""
        executed = execute_program(fft_program(self.PLAN))
        assert executed.stall_fraction < 0.20

    def test_transforms_scale_linearly(self):
        one = execute_program(fft_program(self.PLAN, transforms=1))
        six = execute_program(fft_program(self.PLAN, transforms=6))
        assert six.cycles == pytest.approx(6 * one.cycles)

    def test_invalid_transforms(self):
        with pytest.raises(ConfigError):
            fft_program(self.PLAN, transforms=0)
