"""Tests for :mod:`repro.arch.imagine`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.imagine.cluster import (
    ClusterOpMix,
    MicroOp,
    cluster_schedule_cycles,
    list_schedule_cycles,
)
from repro.arch.imagine.config import ImagineConfig
from repro.arch.imagine.machine import IMAGINE_SPEC, ImagineMachine
from repro.errors import CapacityError, ConfigError, ScheduleError
from repro.memory.streams import Gather, Sequential


class TestConfig:
    def test_published_values(self):
        """§2.2's numbers."""
        c = ImagineConfig()
        assert c.clusters == 8
        assert c.alus_per_cluster == 6
        assert c.total_alus == 48
        assert c.srf_bytes == 128 * 1024
        assert c.memory_words_per_cycle == 2

    def test_spec_matches_table2(self):
        assert IMAGINE_SPEC.clock_mhz == 300
        assert IMAGINE_SPEC.n_alus == 48
        assert IMAGINE_SPEC.peak_gflops == 14.4

    def test_invalid(self):
        with pytest.raises(ConfigError):
            ImagineConfig(clusters=0)
        with pytest.raises(ConfigError):
            ImagineConfig(srf_bytes=64)


class TestClusterOpMix:
    def test_add_and_scale(self):
        a = ClusterOpMix(adds=3, muls=2) + ClusterOpMix(adds=1, comms=4)
        assert a.adds == 4 and a.comms == 4
        assert a.scaled(2).muls == 4
        assert a.total == 10

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            ClusterOpMix(adds=-1)
        with pytest.raises(ConfigError):
            ClusterOpMix(adds=1).scaled(-1)


class TestResourceBound:
    def test_adder_bound(self):
        mix = ClusterOpMix(adds=30)
        assert cluster_schedule_cycles(mix, ImagineConfig()) == 10.0

    def test_multiplier_bound(self):
        mix = ClusterOpMix(adds=3, muls=30)
        assert cluster_schedule_cycles(mix, ImagineConfig()) == 15.0

    def test_inefficiency(self):
        mix = ClusterOpMix(adds=30)
        assert cluster_schedule_cycles(mix, ImagineConfig(), 1.5) == 15.0

    def test_invalid_inefficiency(self):
        with pytest.raises(ConfigError):
            cluster_schedule_cycles(ClusterOpMix(), ImagineConfig(), 0.9)


class TestListScheduler:
    def test_empty(self):
        assert list_schedule_cycles([], ImagineConfig()) == 0

    def test_independent_adds_pack_three_wide(self):
        ops = [MicroOp("add") for _ in range(9)]
        assert list_schedule_cycles(ops, ImagineConfig()) == 3

    def test_dependency_chain_is_critical_path(self):
        ops = [MicroOp("add", deps=(i - 1,) if i else ()) for i in range(5)]
        assert list_schedule_cycles(ops, ImagineConfig()) == 5

    def test_latency_respected(self):
        ops = [MicroOp("mul", latency=4), MicroOp("add", deps=(0,))]
        assert list_schedule_cycles(ops, ImagineConfig()) == 5

    def test_unknown_fu_rejected(self):
        with pytest.raises(ScheduleError):
            list_schedule_cycles([MicroOp("fpu")], ImagineConfig())

    def test_forward_dependency_rejected(self):
        with pytest.raises(ScheduleError):
            list_schedule_cycles([MicroOp("add", deps=(1,))], ImagineConfig())

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "mul", "div", "comm"]),
                st.booleans(),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_list_schedule_never_beats_resource_bound(self, spec):
        """The dependency-aware schedule is always >= the resource bound
        the machine model uses."""
        ops = []
        for i, (fu, dep_prev) in enumerate(spec):
            deps = (i - 1,) if dep_prev and i else ()
            ops.append(MicroOp(fu, deps=deps))
        config = ImagineConfig()
        mix = ClusterOpMix(
            adds=sum(1 for op in ops if op.fu == "add"),
            muls=sum(1 for op in ops if op.fu == "mul"),
            divs=sum(1 for op in ops if op.fu == "div"),
            comms=sum(1 for op in ops if op.fu == "comm"),
        )
        bound = cluster_schedule_cycles(mix, config)
        assert list_schedule_cycles(ops, config) >= bound - 1e-9


class TestMachine:
    def test_stream_cycles_sequential(self):
        m = ImagineMachine()
        cycles = m.stream_cycles(Sequential(0, 1000), kind="read")
        assert cycles >= 1000.0  # one word per controller-cycle + rows

    def test_gather_derated(self):
        m = ImagineMachine()
        plain = m.stream_cycles(Sequential(0, 100), kind="read")
        m.reset()
        gathered = m.stream_cycles(
            Gather(0, list(range(100))), kind="read", gather=True
        )
        assert gathered == pytest.approx(100 * m.cal.gather_derate)
        assert gathered > plain

    def test_memory_time_spreads_over_controllers(self):
        m = ImagineMachine()
        assert m.memory_time(1000.0) == 500.0

    def test_network_port_rate(self):
        m = ImagineMachine()
        assert m.network_port_time(1000) == 500.0

    def test_kernel_cycles_comm_exposed(self):
        """Comm words add exposed time even when the comm unit itself is
        not the resource bound (§4.3's ~30% parallel-FFT penalty)."""
        m = ImagineMachine()
        without = m.kernel_cycles(ClusterOpMix(adds=300))
        with_comm = m.kernel_cycles(ClusterOpMix(adds=300, comms=50))
        assert with_comm == pytest.approx(
            without + 50 * m.cal.comm_exposure
        )

    def test_kernel_startups(self):
        m = ImagineMachine()
        assert m.kernel_startups(3) == 3 * m.cal.kernel_startup
        with pytest.raises(ConfigError):
            m.kernel_startups(-1)

    def test_srf_capacity_enforced(self):
        m = ImagineMachine()
        with pytest.raises(CapacityError):
            m.srf.allocate("too-big", 256 * 1024)

    def test_spread_over_clusters(self):
        m = ImagineMachine()
        assert m.spread_over_clusters(80) == 10.0

    def test_reset(self):
        m = ImagineMachine()
        m.srf.allocate("x", 1024)
        m.stream_cycles(Sequential(0, 10), kind="read")
        m.reset()
        assert m.srf.used_bytes == 0
        assert m.dram.total_words == 0
