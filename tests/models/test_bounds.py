"""Tests for :mod:`repro.models.bounds` — the §2.5 performance models."""

import pytest

from repro.errors import ConfigError
from repro.mappings.registry import KERNELS, MACHINES, run
from repro.models.bounds import (
    beam_steering_bound,
    corner_turn_bound,
    cslc_bound,
    kernel_bound,
)


class TestCornerTurnBounds:
    def test_viram_uses_onchip_rate(self):
        """2M words at 8 words/cycle."""
        bound = corner_turn_bound("viram")
        assert bound.memory_cycles == pytest.approx(2 * 1024 * 1024 / 8)
        assert bound.binding == "memory"

    def test_imagine_uses_offchip_rate(self):
        bound = corner_turn_bound("imagine")
        assert bound.memory_cycles == pytest.approx(2 * 1024 * 1024 / 2)

    def test_raw_is_issue_rate_bound(self):
        """§4.2: on Raw the load/store issue rate limits, not the
        ports."""
        bound = corner_turn_bound("raw")
        assert bound.binding == "compute"
        assert bound.bound_cycles == pytest.approx(2 * 1024 * 1024 / 16)

    def test_ordering_matches_paper(self):
        """Model-expected order: Raw fastest, Imagine slowest of the
        three research machines (as Table 3 then confirms)."""
        raw = corner_turn_bound("raw").bound_cycles
        viram = corner_turn_bound("viram").bound_cycles
        imagine = corner_turn_bound("imagine").bound_cycles
        assert raw < viram < imagine


class TestCSLCBounds:
    def test_viram_peak_basis_is_16_ops(self):
        """§4.3's 'predicted by peak performance' uses the Table 2 peak
        (both vector units)."""
        bound = cslc_bound("viram")
        run_ = run("cslc", "viram")
        assert bound.compute_cycles == pytest.approx(
            run_.ops.flops / 16.0
        )

    def test_imagine_bound_far_below_measured(self):
        """At the §2.5 level Imagine's CSLC bound is its 2-word/cycle
        stream interface; the measured kernel sits ~3.5x above either
        bound (startup-dominated, §4.3)."""
        bound = cslc_bound("imagine")
        measured = run("cslc", "imagine")
        assert measured.cycles > 2.5 * bound.bound_cycles

    def test_raw_uses_radix2_ops(self):
        """Raw's bound counts its own (radix-2) algorithm's operations."""
        raw = cslc_bound("raw")
        imagine = cslc_bound("imagine")
        # Raw: more flops over 16 ALUs; Imagine: fewer flops over 48.
        assert raw.compute_cycles > imagine.compute_cycles


class TestBeamSteeringBounds:
    def test_viram_56_percent_lower_bound(self):
        """§4.4: the compute bound is 56% of VIRAM's simulated time."""
        bound = beam_steering_bound("viram")
        run_ = run("beam_steering", "viram")
        assert bound.compute_cycles / run_.cycles == pytest.approx(
            0.56, abs=0.05
        )

    def test_imagine_memory_bound(self):
        bound = beam_steering_bound("imagine")
        assert bound.binding == "memory"


class TestBoundIsLowerBound:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("machine", MACHINES)
    def test_achieved_never_beats_bound(self, kernel, machine):
        """§2.5's purpose: the model upper-bounds performance, so the
        modelled cycles must be >= the bound everywhere."""
        bound = kernel_bound(kernel, machine)
        achieved = run(kernel, machine)
        assert achieved.cycles >= bound.bound_cycles * 0.999


class TestDispatch:
    def test_unknown_kernel(self):
        with pytest.raises(ConfigError):
            kernel_bound("matmul", "raw")

    def test_unknown_machine(self):
        with pytest.raises(ConfigError):
            corner_turn_bound("trips")
