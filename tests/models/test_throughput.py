"""Tests for :mod:`repro.models.throughput` — Tables 1 and 2."""

import pytest

from repro.models.throughput import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    peak_throughput_table,
    processor_parameter_table,
)


class TestTable1:
    def test_derived_values_match_published(self):
        """Table 1 must fall out of the machine configs exactly."""
        for row in peak_throughput_table():
            paper = PAPER_TABLE1[row.machine]
            assert row.onchip_words_per_cycle == paper["onchip"], row.machine
            assert row.offchip_words_per_cycle == paper["offchip"], row.machine
            assert (
                row.computation_words_per_cycle == paper["computation"]
            ), row.machine

    def test_three_machines(self):
        machines = [r.machine for r in peak_throughput_table()]
        assert machines == ["viram", "imagine", "raw"]

    def test_raw_offchip_highest(self):
        """Table 1's standout: Raw's 28-word/cycle off-chip interface."""
        rows = {r.machine: r for r in peak_throughput_table()}
        assert rows["raw"].offchip_words_per_cycle > max(
            rows["viram"].offchip_words_per_cycle,
            rows["imagine"].offchip_words_per_cycle,
        )

    def test_imagine_computation_highest(self):
        rows = {r.machine: r for r in peak_throughput_table()}
        assert rows["imagine"].computation_words_per_cycle == max(
            r.computation_words_per_cycle for r in rows.values()
        )


class TestTable2:
    def test_derived_values_match_published(self):
        for row in processor_parameter_table():
            clock, alus, gflops = PAPER_TABLE2[row.machine]
            assert row.clock_mhz == clock, row.machine
            assert row.n_alus == alus, row.machine
            assert row.peak_gflops == pytest.approx(gflops), row.machine

    def test_four_machines_in_paper_order(self):
        machines = [r.machine for r in processor_parameter_table()]
        assert machines == ["ppc", "viram", "imagine", "raw"]
