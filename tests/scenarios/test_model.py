"""Scenario model: validation, identity, and cache-key transparency."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.kernels.workloads import (
    canonical_corner_turn,
    small_beam_steering,
    small_corner_turn,
    small_cslc,
)
from repro.perf.cache import cache_key
from repro.scenarios import (
    STAGE_ORDER,
    Scenario,
    StageSpec,
    canonical_scenario,
    scenario_for_workloads,
    small_scenario,
    stage,
)


class TestStageSpec:
    def test_rejects_unknown_kernel(self):
        with pytest.raises(ConfigError, match="unknown stage kernel"):
            StageSpec("matmul")

    def test_rejects_wrong_workload_type(self):
        with pytest.raises(ConfigError, match="takes a CSLCWorkload"):
            StageSpec("cslc", workload=small_corner_turn())

    def test_rejects_unsorted_options(self):
        with pytest.raises(ConfigError, match="sorted tuple"):
            StageSpec(
                "cslc", options=(("streamed_fft", True), ("balanced", False))
            )

    def test_stage_helper_sorts_options(self):
        spec = stage("cslc", streamed_fft=True, balanced=False)
        assert spec.options == (
            ("balanced", False),
            ("streamed_fft", True),
        )

    def test_resolved_workload_defaults_to_canonical(self):
        assert (
            StageSpec("corner_turn").resolved_workload()
            == canonical_corner_turn()
        )

    def test_output_words(self):
        assert StageSpec(
            "corner_turn", workload=small_corner_turn()
        ).output_words() == 128 * 128
        cslc = small_cslc()
        assert StageSpec("cslc", workload=cslc).output_words() == (
            cslc.n_mains * cslc.n_subbands * cslc.subband_len * 2
        )
        bs = small_beam_steering()
        assert (
            StageSpec("beam_steering", workload=bs).output_words()
            == bs.outputs
        )


class TestScenario:
    def test_rejects_unknown_machine(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            Scenario(machine="upmem")

    def test_rejects_empty_stages(self):
        with pytest.raises(ConfigError, match="at least one stage"):
            Scenario(machine="viram", stages=())

    def test_rejects_negative_seed(self):
        with pytest.raises(ConfigError, match="seed"):
            Scenario(machine="viram", seed=-1)

    def test_default_stages_are_the_canonical_chain(self):
        scenario = canonical_scenario("raw")
        assert tuple(s.kernel for s in scenario.stages) == STAGE_ORDER


class TestScenarioId:
    def test_equal_content_equal_id(self):
        assert (
            small_scenario("viram").scenario_id
            == small_scenario("viram").scenario_id
        )

    def test_every_field_perturbs_the_id(self):
        base = small_scenario("viram")
        variants = [
            small_scenario("raw"),
            dataclasses.replace(base, seed=1),
            dataclasses.replace(base, stages=base.stages[:2]),
            scenario_for_workloads(
                "viram", {"corner_turn": canonical_corner_turn()}
            ),
        ]
        ids = {base.scenario_id} | {v.scenario_id for v in variants}
        assert len(ids) == len(variants) + 1

    def test_id_shape(self):
        scenario_id = canonical_scenario("imagine").scenario_id
        assert len(scenario_id) == 16
        assert set(scenario_id) <= set("0123456789abcdef")


class TestStageKwargs:
    def test_canonical_stage_contributes_empty_kwargs(self):
        # The key property behind cache reuse: a canonical pipeline
        # stage mints exactly the cache key run_table3's cell minted.
        scenario = canonical_scenario("viram")
        for spec in scenario.stages:
            assert scenario.stage_kwargs(spec) == {}

    def test_small_stage_contributes_workload_only(self):
        scenario = small_scenario("ppc")
        for spec in scenario.stages:
            assert scenario.stage_kwargs(spec) == {"workload": spec.workload}

    def test_options_seed_and_calibration_appear(self):
        from repro.eval.sensitivity import perturbed_calibration

        cal = perturbed_calibration("raw", "cache_stall_fraction", 1.1)
        scenario = Scenario(
            machine="raw",
            stages=(stage("cslc", workload=small_cslc(), balanced=False),),
            seed=3,
            calibration=cal,
        )
        kwargs = scenario.stage_kwargs(scenario.stages[0])
        assert kwargs == {
            "workload": small_cslc(),
            "calibration": cal,
            "seed": 3,
            "balanced": False,
        }

    def test_stage_calibration_overrides_scenario(self):
        from repro.eval.sensitivity import perturbed_calibration

        scenario_cal = perturbed_calibration("viram", "dram_row_cycle", 1.1)
        stage_cal = perturbed_calibration("viram", "dram_row_cycle", 1.2)
        scenario = Scenario(
            machine="viram",
            stages=(
                StageSpec("corner_turn", calibration=stage_cal),
                StageSpec("cslc"),
            ),
            calibration=scenario_cal,
        )
        assert (
            scenario.stage_kwargs(scenario.stages[0])["calibration"]
            is stage_cal
        )
        assert (
            scenario.stage_kwargs(scenario.stages[1])["calibration"]
            is scenario_cal
        )

    def test_stage_kwargs_are_cacheable(self):
        scenario = small_scenario("altivec")
        for spec in scenario.stages:
            key = cache_key(
                spec.kernel, scenario.machine, scenario.stage_kwargs(spec)
            )
            assert key is not None
