"""Handoff model: level selection, pricing, and hierarchy shape."""

import pytest

from repro.errors import ConfigError
from repro.scenarios import (
    floor_cycles,
    handoff_levels,
    plan_handoff,
)


class TestHierarchies:
    def test_every_machine_has_an_unbounded_backstop(self):
        for machine in ("ppc", "altivec", "viram", "imagine", "raw"):
            levels = handoff_levels(machine)
            assert levels[-1].capacity_words is None
            assert all(
                level.capacity_words is not None for level in levels[:-1]
            )

    def test_levels_are_fastest_first(self):
        for machine in ("ppc", "altivec", "viram", "imagine", "raw"):
            rates = [
                level.words_per_cycle / level.passes
                for level in handoff_levels(machine)
            ]
            assert rates == sorted(rates, reverse=True)

    def test_ppc_and_altivec_share_the_g4_memory_system(self):
        assert handoff_levels("ppc") == handoff_levels("altivec")

    def test_unknown_machine_raises(self):
        with pytest.raises(ConfigError, match="no handoff model"):
            handoff_levels("upmem")


class TestPlanning:
    def test_payload_lands_in_first_fitting_level(self):
        # Imagine SRF holds 32 K words: a 1 K-word stream stays
        # resident, a 1 M-word stream spills to SDRAM both ways.
        small = plan_handoff("imagine", 1024)
        assert small.level == "srf"
        assert small.passes == 1
        big = plan_handoff("imagine", 1 << 20)
        assert big.level == "sdram"
        assert big.passes == 2

    def test_capacity_boundary_is_inclusive(self):
        from repro.arch.imagine.config import ImagineConfig

        srf_words = ImagineConfig().srf_words
        assert plan_handoff("imagine", srf_words).level == "srf"
        assert plan_handoff("imagine", srf_words + 1).level == "sdram"

    def test_viram_canonical_matrix_stays_on_chip(self):
        # The paper sized the 4 MB corner turn *under* VIRAM's 13 MB
        # on-chip DRAM; the handoff model must agree.
        handoff = plan_handoff("viram", 1024 * 1024)
        assert handoff.level == "onchip-dram"

    def test_cycles_arithmetic(self):
        handoff = plan_handoff("raw", 1 << 20)
        assert handoff.level == "offchip-dram"
        assert handoff.cycles == (1 << 20) * 2 / 28.0

    def test_rejects_nonpositive_payload(self):
        with pytest.raises(ConfigError, match="positive"):
            plan_handoff("viram", 0)


class TestFloor:
    def test_no_priced_handoff_beats_the_floor(self):
        for machine in ("ppc", "altivec", "viram", "imagine", "raw"):
            for words in (1, 1000, 10**6, 10**8):
                handoff = plan_handoff(machine, words)
                assert handoff.cycles >= floor_cycles(machine, words)
