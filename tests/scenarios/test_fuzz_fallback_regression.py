"""Regression: fuzzed structural overrides hit the planner's per-cell
fallback, and fallback results stay bit-identical to batched execution.

The fuzzer occasionally gives one VIRAM stage a different TLB geometry
(``P_STRUCTURAL``).  TLB entries are a *structural* calibration field —
cells that disagree on it cannot share a tensor batch, so the planner
must demote them to singletons.  This pins three things:

* seed 0 really does generate such scenarios (indices 3 and 4), so the
  fallback path stays under fuzz — if the fuzzer's sampling changes,
  this fails loudly and the indices get re-pinned;
* ``plan_units`` demotes the structurally odd cell while still batching
  its structurally uniform siblings;
* the demoted path produces results bit-identical to both the batched
  population run and a plain serial ``registry.run``.
"""

import dataclasses

from repro.calibration import DEFAULT_CALIBRATION
from repro.check.oracles import diff_runs
from repro.eval.sensitivity import perturbed_calibration
from repro.mappings import registry
from repro.perf.cache import RUN_CACHE, cache_key
from repro.perf.tensorsweep import (
    TENSOR_STATS,
    BatchGroup,
    SingleCell,
    plan_units,
)
from repro.scenarios import generate_scenarios, run_scenarios, stage_requests

#: Pinned fuzz coordinates: seed-0 scenarios carrying a structural
#: per-stage calibration override.  Re-pin if the sampling contract
#: (P_STRUCTURAL, draw order) deliberately changes.
PINNED_SEED = 0
PINNED_INDICES = (3, 4)


def _structural_stage_index(scenario):
    for i, spec in enumerate(scenario.stages):
        if spec.calibration is not None:
            return i
    return None


def _pinned_scenario(index):
    return generate_scenarios(PINNED_SEED, index + 1)[index]


class TestPinnedCoordinates:
    def test_seed0_indices_carry_structural_overrides(self):
        for index in PINNED_INDICES:
            scenario = _pinned_scenario(index)
            assert scenario.machine == "viram", index
            stage_index = _structural_stage_index(scenario)
            assert stage_index is not None, (
                f"seed {PINNED_SEED} index {index} lost its structural "
                "override — the fuzzer's sampling changed; re-pin "
                "PINNED_INDICES"
            )
            spec = scenario.stages[stage_index]
            assert (
                spec.calibration.viram.tlb_entries
                != DEFAULT_CALIBRATION.viram.tlb_entries
            )


class TestPlannerDemotion:
    def _variants(self):
        """The pinned scenario plus structurally uniform siblings.

        The siblings strip the structural override from the odd stage
        and instead perturb a *non-structural* constant, so their cells
        share a batch signature while the pinned cell stands alone.
        """
        pinned = _pinned_scenario(PINNED_INDICES[0])
        stage_index = _structural_stage_index(pinned)
        assert stage_index is not None
        siblings = []
        for factor in (None, 1.1, 1.2):
            cal = (
                None
                if factor is None
                else perturbed_calibration("viram", "dram_row_cycle", factor)
            )
            stages = list(pinned.stages)
            stages[stage_index] = dataclasses.replace(
                stages[stage_index], calibration=cal
            )
            siblings.append(
                dataclasses.replace(pinned, stages=tuple(stages))
            )
        return pinned, siblings, stage_index

    def _pairs(self, scenarios):
        pairs = []
        for scenario in scenarios:
            for request in stage_requests(scenario):
                kernel, machine, kwargs = request
                pairs.append(
                    (request, cache_key(kernel, machine, kwargs))
                )
        return pairs

    def test_structural_odd_one_out_demotes_to_single_cell(self):
        pinned, siblings, stage_index = self._variants()
        odd_kernel = pinned.stages[stage_index].kernel
        pairs = self._pairs([pinned] + siblings)

        TENSOR_STATS.reset()
        units = plan_units(pairs)
        stats = TENSOR_STATS.stats()

        odd_units = [
            u
            for u in units
            if isinstance(u, SingleCell) and u.request[0] == odd_kernel
        ]
        assert len(odd_units) == 1
        assert (
            odd_units[0].request[2]["calibration"].viram.tlb_entries
            != DEFAULT_CALIBRATION.viram.tlb_entries
        )
        # The three structurally uniform siblings still batch together.
        sibling_groups = [
            u
            for u in units
            if isinstance(u, BatchGroup) and u.kernel == odd_kernel
        ]
        assert len(sibling_groups) == 1
        assert len(sibling_groups[0]) == 3
        assert stats["fallback_cells"] == 1
        assert stats["batched_cells"] >= 3

    def test_fallback_results_bit_identical_to_batched_and_serial(self):
        pinned, siblings, _ = self._variants()
        population = [pinned] + siblings

        RUN_CACHE.clear()
        TENSOR_STATS.reset()
        pruns = run_scenarios(population)
        stats = TENSOR_STATS.stats()
        # The population actually exercised both engine paths.
        assert stats["fallback_cells"] >= 1
        assert stats["batched_cells"] >= 3

        for scenario, prun in zip(population, pruns):
            for spec, result in zip(scenario.stages, prun.stages):
                serial = registry.run(
                    spec.kernel,
                    scenario.machine,
                    cache=False,
                    **scenario.stage_kwargs(spec),
                )
                assert diff_runs(result.run, serial, rtol=0.0) == [], (
                    scenario.scenario_id,
                    spec.kernel,
                )

    def test_population_rerun_is_bit_stable(self):
        # Second pass is served from the memo cache; serving must not
        # perturb a single bit relative to the executed pass.
        pinned, siblings, _ = self._variants()
        population = [pinned] + siblings
        RUN_CACHE.clear()
        first = run_scenarios(population)
        second = run_scenarios(population)
        for a, b in zip(first, second):
            assert a.total_cycles == b.total_cycles
            for ra, rb in zip(a.stages, b.stages):
                assert diff_runs(ra.run, rb.run, rtol=0.0) == []
