"""Pipeline execution: composition law, cache transparency, telemetry."""

import json

import pytest

from repro.mappings import registry
from repro.perf.cache import RUN_CACHE
from repro.scenarios import (
    SCENARIO_STATS,
    pipeline_record,
    render_pipeline,
    run_pipeline,
    run_scenarios,
    small_scenario,
    stage_requests,
)

MACHINES = ("ppc", "altivec", "viram", "imagine", "raw")


@pytest.fixture(autouse=True)
def _fresh_scenario_stats():
    SCENARIO_STATS.reset()
    yield
    SCENARIO_STATS.reset()


class TestComposition:
    @pytest.mark.parametrize("machine", MACHINES)
    def test_total_is_stages_plus_handoffs(self, machine):
        prun = run_pipeline(small_scenario(machine))
        interleaved = 0.0
        for result in prun.stages:
            interleaved += result.run.cycles
            if result.handoff is not None:
                interleaved += result.handoff.cycles
        assert prun.total_cycles == interleaved
        assert prun.total_cycles > prun.stage_cycles > 0

    def test_last_stage_has_no_handoff(self):
        prun = run_pipeline(small_scenario("viram"))
        assert prun.stages[-1].handoff is None
        assert all(r.handoff is not None for r in prun.stages[:-1])

    def test_handoff_words_match_producer_output(self):
        prun = run_pipeline(small_scenario("imagine"))
        for result in prun.stages[:-1]:
            assert result.handoff.words == result.spec.output_words()

    def test_stage_runs_are_ordinary_registry_runs(self):
        scenario = small_scenario("raw")
        prun = run_pipeline(scenario)
        for spec, result in zip(scenario.stages, prun.stages):
            direct = registry.run(
                spec.kernel,
                scenario.machine,
                cache=False,
                **scenario.stage_kwargs(spec),
            )
            assert result.run.cycles == direct.cycles
            assert result.run.breakdown.total == direct.breakdown.total


class TestCacheTransparency:
    def test_second_run_is_served_from_the_memo_cache(self):
        scenario = small_scenario("ppc")
        run_pipeline(scenario)
        hits_before = RUN_CACHE.hits
        run_pipeline(scenario)
        assert RUN_CACHE.hits >= hits_before + len(scenario.stages)

    def test_population_level_dedup(self):
        from repro.perf import timers

        scenario = small_scenario("altivec")
        before = timers.snapshot()["counters"].get("planner.duplicates", 0)
        run_scenarios([scenario, scenario])
        after = timers.snapshot()["counters"].get("planner.duplicates", 0)
        # The twin scenario's three stages all dedup against the first.
        assert after - before >= len(scenario.stages)

    def test_stage_requests_shape(self):
        scenario = small_scenario("viram")
        requests = stage_requests(scenario)
        assert [r[0] for r in requests] == [
            s.kernel for s in scenario.stages
        ]
        assert all(r[1] == "viram" for r in requests)


class TestRecordsAndRendering:
    def test_record_is_json_safe_and_complete(self):
        prun = run_pipeline(small_scenario("viram"))
        record = pipeline_record(prun)
        text = json.dumps(record, sort_keys=True)
        assert json.loads(text) == record
        assert record["scenario_id"] == prun.scenario_id
        assert record["total_cycles"] == prun.total_cycles
        assert len(record["stages"]) == 3
        assert record["stages"][0]["handoff"]["words"] == 128 * 128
        assert "handoff" not in record["stages"][-1]

    def test_render_is_deterministic(self):
        scenario = small_scenario("imagine")
        assert render_pipeline(run_pipeline(scenario)) == render_pipeline(
            run_pipeline(scenario)
        )

    def test_render_names_machine_and_scenario(self):
        prun = run_pipeline(small_scenario("raw"))
        text = render_pipeline(prun)
        assert "== radar pipeline on Raw ==" in text
        assert prun.scenario_id in text


class TestTelemetry:
    def test_pipeline_feeds_scenario_stats(self):
        run_pipeline(small_scenario("viram"))
        snap = SCENARIO_STATS.snapshot()
        assert snap["pipelines"] == 1
        assert snap["stages"] == 3
        assert snap["handoffs"] == 2
        assert snap["stage.corner_turn"] == 1
        assert snap["handoff.onchip-dram"] == 2
        assert snap["handoff_cycles"] > 0

    def test_registered_in_telemetry_namespace(self):
        from repro.trace.telemetry import TELEMETRY

        assert "scenario" in TELEMETRY.namespaces()
        run_pipeline(small_scenario("ppc"))
        snapshot = TELEMETRY.snapshot()
        assert snapshot["scenario.pipelines"] == 1
