"""Property suite for the scenario fuzzer itself (Hypothesis).

Three contracts, fuzzed over the fuzzer's own input space:

* generation is a pure function of the seed — same ``(seed, count)``
  gives byte-identical scenario lists, and a shorter run is a prefix
  of a longer one;
* every generated scenario satisfies the mappings' structural
  preconditions by construction (blocking divisibility, sub-band
  tiling, precision ordering) and mints cacheable stage kwargs;
* ``shrink`` drives a failing scenario to a per-dimension minimum for
  monotone predicates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.perf.cache import cache_key, content_digest
from repro.scenarios import Scenario, generate_scenarios, shrink
from repro.scenarios.fuzz import (
    ACCUMULATOR_BITS,
    CT_DIMS,
    SUBBAND_LENS,
    TLB_ENTRY_CHOICES,
)

COMMON = dict(max_examples=150, deadline=None)

seeds = st.integers(min_value=0, max_value=10_000)
counts = st.integers(min_value=0, max_value=12)


class TestDeterminism:
    @settings(**COMMON)
    @given(seed=seeds, count=counts)
    def test_same_seed_same_scenarios(self, seed, count):
        first = generate_scenarios(seed, count)
        second = generate_scenarios(seed, count)
        assert first == second
        assert [s.scenario_id for s in first] == [
            s.scenario_id for s in second
        ]

    @settings(**COMMON)
    @given(seed=seeds, count=counts, extra=st.integers(0, 8))
    def test_prefix_stability(self, seed, count, extra):
        short = generate_scenarios(seed, count)
        long = generate_scenarios(seed, count + extra)
        assert long[:count] == short

    @settings(**COMMON)
    @given(seed=seeds)
    def test_scenario_ids_name_content(self, seed):
        # The id is a digest of the scenario value, nothing ambient.
        for scenario in generate_scenarios(seed, 4):
            assert scenario.scenario_id == content_digest(scenario)[:16]


class TestStructuralPreconditions:
    @settings(**COMMON)
    @given(seed=seeds, count=st.integers(1, 10))
    def test_generated_shapes_satisfy_every_mapping(self, seed, count):
        for scenario in generate_scenarios(seed, count):
            ct, cslc, bs = (s.workload for s in scenario.stages)

            # Corner turn: multiples of 64 divide by VIRAM's 16-block,
            # Raw's 64-block, and Imagine's 8-row strips alike.
            assert ct.rows % 64 == 0 and ct.cols % 64 == 0
            assert ct.rows in CT_DIMS and ct.cols in CT_DIMS

            # CSLC: power-of-two FFTs, sub-bands exactly tile samples.
            assert cslc.subband_len in SUBBAND_LENS
            assert cslc.subband_len & (cslc.subband_len - 1) == 0
            if cslc.n_subbands == 1:
                assert cslc.samples == cslc.subband_len
            else:
                span = cslc.samples - cslc.subband_len
                hop, rem = divmod(span, cslc.n_subbands - 1)
                assert rem == 0
                assert cslc.subband_len // 2 <= hop <= cslc.subband_len

            # Beam steering: phase fits in the accumulator.
            assert bs.accumulator_bits in ACCUMULATOR_BITS
            assert 0 < bs.phase_bits <= bs.accumulator_bits
            assert 16 <= bs.elements <= 256

    @settings(**COMMON)
    @given(seed=seeds, count=st.integers(1, 6))
    def test_stage_kwargs_are_always_cacheable(self, seed, count):
        for scenario in generate_scenarios(seed, count):
            for spec in scenario.stages:
                key = cache_key(
                    spec.kernel,
                    scenario.machine,
                    scenario.stage_kwargs(spec),
                )
                assert key is not None

    @settings(**COMMON)
    @given(seed=seeds, count=st.integers(1, 10))
    def test_structural_overrides_only_touch_viram_tlb(self, seed, count):
        for scenario in generate_scenarios(seed, count):
            for spec in scenario.stages:
                if spec.calibration is None:
                    continue
                assert scenario.machine == "viram"
                assert (
                    spec.calibration.viram.tlb_entries in TLB_ENTRY_CHOICES
                )

    @settings(**COMMON)
    @given(seed=seeds)
    def test_restricting_machines_is_honoured(self, seed):
        for scenario in generate_scenarios(seed, 6, machines=("raw", "ppc")):
            assert scenario.machine in ("raw", "ppc")


class TestShrinking:
    def _fuzzed(self, seed=0, index=0):
        return generate_scenarios(seed, index + 1)[index]

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 200), index=st.integers(0, 5))
    def test_trivial_predicate_shrinks_to_the_floor(self, seed, index):
        # Predicate only looks at the machine, so every dimension is
        # free to fall: the minimum is fully determined.
        scenario = self._fuzzed(seed, index)
        minimal = shrink(scenario, lambda s: s.machine == scenario.machine)

        assert minimal.machine == scenario.machine
        assert minimal.seed == 0
        assert minimal.calibration is None
        ct, cslc, bs = minimal.stages
        assert all(s.calibration is None for s in minimal.stages)
        assert all(s.options == () for s in minimal.stages)
        assert (ct.workload.rows, ct.workload.cols) == (64, 64)
        assert (
            cslc.workload.n_mains,
            cslc.workload.n_aux,
            cslc.workload.n_subbands,
            cslc.workload.subband_len,
            cslc.workload.samples,
        ) == (1, 1, 1, 16, 16)
        assert (
            bs.workload.elements,
            bs.workload.directions,
            bs.workload.dwells,
            bs.workload.phase_bits,
            bs.workload.accumulator_bits,
        ) == (16, 1, 1, 8, 16)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 200))
    def test_monotone_predicate_keeps_only_what_it_pins(self, seed):
        scenario = self._fuzzed(seed)
        threshold = scenario.stages[1].workload.subband_len

        def predicate(s: Scenario) -> bool:
            return s.stages[1].workload.subband_len >= threshold

        minimal = shrink(scenario, predicate)
        # The pinned dimension sits exactly at the threshold; everything
        # orthogonal to it fell to its floor.
        assert minimal.stages[1].workload.subband_len == threshold
        assert minimal.seed == 0
        assert minimal.calibration is None
        assert minimal.stages[0].workload.rows == 64
        assert minimal.stages[2].workload.elements == 16

    def test_result_still_satisfies_the_predicate(self):
        scenario = self._fuzzed(3)

        def predicate(s: Scenario) -> bool:
            return s.stages[0].workload.rows * s.stages[0].workload.cols >= (
                scenario.stages[0].workload.rows
                * scenario.stages[0].workload.cols
            )

        minimal = shrink(scenario, predicate)
        assert predicate(minimal)

    def test_no_single_step_reduces_further(self):
        from repro.scenarios.fuzz import _shrink_candidates

        scenario = self._fuzzed(1)
        minimal = shrink(scenario, lambda s: True)
        assert not list(_shrink_candidates(minimal))

    def test_rejects_a_passing_scenario(self):
        with pytest.raises(ConfigError, match="failing scenario"):
            shrink(self._fuzzed(0), lambda s: False)


class TestInputValidation:
    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigError, match="seed"):
            generate_scenarios(-1, 1)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError, match="count"):
            generate_scenarios(0, -1)

    def test_unknown_machine_rejected(self):
        with pytest.raises(ConfigError, match="unknown machine"):
            generate_scenarios(0, 1, machines=("upmem",))
