"""CLI surface for ``repro pipeline run`` and ``repro pipeline fuzz``."""

import json

import pytest

from repro.cli import main


class TestPipelineRun:
    def test_single_machine_report(self, capsys):
        assert main(["pipeline", "run", "--machine", "viram", "--small"]) == 0
        out = capsys.readouterr().out
        assert "== radar pipeline on VIRAM ==" in out
        assert "pipeline total:" in out
        assert out.count("stage ") == 3
        assert out.count("handoff:") == 2

    def test_all_machines_by_default(self, capsys):
        assert main(["pipeline", "run", "--small"]) == 0
        out = capsys.readouterr().out
        for name in ("PPC", "Altivec", "VIRAM", "Imagine", "Raw"):
            assert f"== radar pipeline on {name} ==" in out

    def test_json_records(self, capsys):
        assert (
            main(
                ["pipeline", "run", "--machine", "raw", "--small", "--json"]
            )
            == 0
        )
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 1
        record = records[0]
        assert record["machine"] == "raw"
        assert [s["kernel"] for s in record["stages"]] == [
            "corner_turn",
            "cslc",
            "beam_steering",
        ]
        assert record["total_cycles"] == pytest.approx(
            record["stage_cycles"] + record["handoff_cycles"]
        )

    def test_unknown_machine_fails(self, capsys):
        assert main(["pipeline", "run", "--machine", "upmem"]) == 1
        assert "unknown machine" in capsys.readouterr().err

    def test_seed_flag_changes_the_scenario_id(self, capsys):
        main(["pipeline", "run", "--machine", "ppc", "--small", "--json"])
        base = json.loads(capsys.readouterr().out)[0]["scenario_id"]
        main(
            [
                "pipeline", "run", "--machine", "ppc", "--small",
                "--json", "--seed", "5",
            ]
        )
        seeded = json.loads(capsys.readouterr().out)[0]["scenario_id"]
        assert seeded != base


class TestPipelineFuzz:
    def test_summary_line_and_exit_code(self, capsys):
        assert (
            main(
                [
                    "pipeline", "fuzz", "--seed", "11", "--count", "6",
                    "--machines", "viram,raw",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pipeline fuzz: 6 scenarios (seed 11)" in out
        assert "0 invariant violations" in out

    def test_manifest_is_deterministic_across_invocations(
        self, capsys, tmp_path
    ):
        args = ["pipeline", "fuzz", "--seed", "7", "--count", "5", "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second

        manifest = json.loads(first)
        assert manifest["schema"] == 1
        assert manifest["seed"] == 7
        assert manifest["count"] == 5
        assert manifest["violation_count"] == 0
        assert len(manifest["scenarios"]) == 5
        for record in manifest["scenarios"]:
            assert record["violations"] == []
            assert record["total_cycles"] > 0

    def test_manifest_file_matches_stdout_json(self, capsys, tmp_path):
        path = tmp_path / "manifest.json"
        assert (
            main(
                [
                    "pipeline", "fuzz", "--seed", "2", "--count", "4",
                    "--machines", "ppc", "--json", "--manifest", str(path),
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert path.read_text() == captured.out
        assert f"manifest -> {path}" in captured.err

    def test_unknown_machine_fails(self, capsys):
        assert (
            main(["pipeline", "fuzz", "--machines", "upmem", "--count", "1"])
            == 1
        )
        assert "unknown machine" in capsys.readouterr().err

    def test_zero_count_is_a_clean_noop(self, capsys):
        assert main(["pipeline", "fuzz", "--count", "0"]) == 0
        assert "0 scenarios" in capsys.readouterr().out

    def test_perf_flag_prints_scenario_stats(self, capsys):
        assert (
            main(
                [
                    "pipeline", "fuzz", "--seed", "1", "--count", "2",
                    "--machines", "altivec", "--perf",
                ]
            )
            == 0
        )
        assert "scenarios:" in capsys.readouterr().err
