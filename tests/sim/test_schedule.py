"""Tests for :mod:`repro.sim.schedule`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.sim.resources import TimelineResource
from repro.sim.schedule import DependencyScheduler, Task, critical_span


class TestBasicScheduling:
    def test_independent_tasks_on_one_resource_serialize(self):
        fu = TimelineResource("fu")
        sched = DependencyScheduler()
        a = sched.add(Task("a", fu, 5.0))
        b = sched.add(Task("b", fu, 3.0))
        assert a.start == 0.0
        assert b.start == 5.0
        assert sched.makespan == 8.0

    def test_dependency_delays_start(self):
        fu1, fu2 = TimelineResource("fu1"), TimelineResource("fu2")
        sched = DependencyScheduler()
        sched.add(Task("load", fu1, 10.0))
        compute = sched.add(Task("compute", fu2, 2.0, deps=("load",)))
        assert compute.start == 10.0

    def test_parallel_resources_overlap(self):
        fu1, fu2 = TimelineResource("fu1"), TimelineResource("fu2")
        sched = DependencyScheduler()
        sched.add(Task("a", fu1, 5.0))
        sched.add(Task("b", fu2, 5.0))
        assert sched.makespan == 5.0

    def test_earliest_bound_respected(self):
        fu = TimelineResource("fu")
        sched = DependencyScheduler()
        placed = sched.add(Task("a", fu, 1.0, earliest=42.0))
        assert placed.start == 42.0

    def test_sync_task_without_resource(self):
        fu = TimelineResource("fu")
        sched = DependencyScheduler()
        sched.add(Task("a", fu, 5.0))
        join = sched.add(Task("join", None, 0.0, deps=("a",)))
        assert join.start == 5.0
        assert join.resource is None

    def test_double_buffering_pattern(self):
        """Load(i+1) overlaps compute(i): the classic pipeline shape the
        Imagine mappings rely on."""
        mem = TimelineResource("mem")
        alu = TimelineResource("alu")
        sched = DependencyScheduler()
        for i in range(4):
            deps = (f"load{i}",) if True else ()
            sched.add(Task(f"load{i}", mem, 10.0))
            sched.add(Task(f"compute{i}", alu, 10.0, deps=(f"load{i}",)))
        # Perfect overlap: total = first load + 4 computes.
        assert sched.makespan == 50.0


class TestErrors:
    def test_duplicate_name_rejected(self):
        sched = DependencyScheduler()
        sched.add(Task("a", None, 1.0))
        with pytest.raises(ScheduleError):
            sched.add(Task("a", None, 1.0))

    def test_unknown_dependency_rejected(self):
        sched = DependencyScheduler()
        with pytest.raises(ScheduleError):
            sched.add(Task("a", None, 1.0, deps=("ghost",)))

    def test_negative_duration_rejected(self):
        with pytest.raises(ScheduleError):
            DependencyScheduler().add(Task("a", None, -1.0))

    def test_get_unknown_task(self):
        with pytest.raises(ScheduleError):
            DependencyScheduler().get("ghost")


class TestQueries:
    def test_tasks_in_submission_order(self):
        sched = DependencyScheduler()
        sched.add(Task("b", None, 1.0))
        sched.add(Task("a", None, 1.0))
        assert [t.name for t in sched.tasks] == ["b", "a"]

    def test_end_time(self):
        sched = DependencyScheduler()
        sched.add(Task("a", None, 7.0))
        assert sched.end_time("a") == 7.0

    def test_empty_makespan(self):
        assert DependencyScheduler().makespan == 0.0

    def test_critical_span(self):
        sched = DependencyScheduler()
        sched.add(Task("a", None, 3.0, earliest=2.0))
        assert critical_span(sched.tasks) == 3.0
        assert critical_span(()) == 0.0


@given(
    st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20),
    st.integers(min_value=1, max_value=4),
)
def test_makespan_bounds_property(durations, n_resources):
    """Makespan is at least the busiest-resource bound and at most the
    serial sum."""
    resources = [TimelineResource(f"r{i}") for i in range(n_resources)]
    sched = DependencyScheduler()
    for i, duration in enumerate(durations):
        sched.add(Task(f"t{i}", resources[i % n_resources], duration))
    total = sum(durations)
    busiest = max(
        sum(d for i, d in enumerate(durations) if i % n_resources == r)
        for r in range(n_resources)
    )
    assert sched.makespan >= busiest - 1e-9
    assert sched.makespan <= total + 1e-9
