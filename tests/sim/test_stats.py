"""Tests for :mod:`repro.sim.stats`."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Counter, RunningMean, geometric_mean, utilization


class TestCounter:
    def test_add_and_get(self):
        c = Counter("events")
        c.add("x", 3)
        c.add("x")
        c.add("y", 2)
        assert c.get("x") == 4
        assert c.total == 6

    def test_unknown_label_is_zero(self):
        assert Counter("c").get("nope") == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").add("x", -1)

    def test_as_dict(self):
        c = Counter("c")
        c.add("a", 1)
        assert c.as_dict() == {"a": 1}


class TestRunningMean:
    def test_mean_and_variance(self):
        rm = RunningMean()
        for v in (2.0, 4.0, 6.0):
            rm.add(v)
        assert rm.mean == pytest.approx(4.0)
        assert rm.variance == pytest.approx(4.0)
        assert rm.stddev == pytest.approx(2.0)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            RunningMean().mean

    def test_single_observation_variance_zero(self):
        rm = RunningMean()
        rm.add(5.0)
        assert rm.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    def test_matches_two_pass_formula(self, values):
        rm = RunningMean()
        for v in values:
            rm.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert rm.mean == pytest.approx(mean, abs=1e-6)
        assert rm.variance == pytest.approx(var, rel=1e-6, abs=1e-6)


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(0.01, 1e6), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geometric_mean(values)
        assert min(values) * (1 - 1e-9) <= gm <= max(values) * (1 + 1e-9)


class TestUtilization:
    def test_basic(self):
        assert utilization(5.0, 10.0) == 0.5

    def test_clamped(self):
        assert utilization(20.0, 10.0) == 1.0
        assert utilization(-1.0, 10.0) == 0.0

    def test_zero_total(self):
        assert utilization(1.0, 0.0) == 0.0
