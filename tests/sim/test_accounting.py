"""Tests for :mod:`repro.sim.accounting`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.accounting import CycleBreakdown


class TestCharge:
    def test_total_sums_categories(self):
        bd = CycleBreakdown()
        bd.charge("memory", 870.0)
        bd.charge("compute", 130.0)
        assert bd.total == 1000.0

    def test_charge_accumulates_same_category(self):
        bd = CycleBreakdown()
        bd.charge("memory", 10.0)
        bd.charge("memory", 5.0)
        assert bd.get("memory") == 15.0

    def test_negative_charge_rejected(self):
        bd = CycleBreakdown()
        with pytest.raises(ValueError):
            bd.charge("memory", -1.0)

    def test_init_from_mapping(self):
        bd = CycleBreakdown({"a": 1.0, "b": 2.0})
        assert bd.total == 3.0
        assert bd.categories() == ("a", "b")

    def test_unknown_category_reads_zero(self):
        assert CycleBreakdown().get("nope") == 0.0


class TestFractions:
    def test_fraction(self):
        bd = CycleBreakdown({"memory": 87.0, "kernel": 13.0})
        assert bd.fraction("memory") == pytest.approx(0.87)

    def test_fraction_of_empty_is_zero(self):
        assert CycleBreakdown().fraction("x") == 0.0


class TestCombinators:
    def test_merged_adds_by_category(self):
        a = CycleBreakdown({"x": 1.0, "y": 2.0})
        b = CycleBreakdown({"y": 3.0, "z": 4.0})
        merged = a.merged(b)
        assert merged.get("x") == 1.0
        assert merged.get("y") == 5.0
        assert merged.get("z") == 4.0
        # Originals untouched.
        assert a.get("y") == 2.0

    def test_scaled(self):
        bd = CycleBreakdown({"x": 2.0}).scaled(2.5)
        assert bd.get("x") == 5.0

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            CycleBreakdown({"x": 1.0}).scaled(-1.0)

    def test_equality(self):
        assert CycleBreakdown({"x": 1.0}) == CycleBreakdown({"x": 1.0})
        assert CycleBreakdown({"x": 1.0}) != CycleBreakdown({"x": 2.0})


class TestDunder:
    def test_iteration_order_is_insertion_order(self):
        bd = CycleBreakdown({"b": 1.0, "a": 2.0})
        assert list(bd) == ["b", "a"]

    def test_contains_and_len(self):
        bd = CycleBreakdown({"a": 1.0})
        assert "a" in bd
        assert "b" not in bd
        assert len(bd) == 1

    def test_format_includes_percentages(self):
        text = CycleBreakdown({"memory": 87.0, "kernel": 13.0}).format()
        assert "87.0%" in text
        assert "memory" in text


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.floats(min_value=0, max_value=1e12),
        min_size=1,
        max_size=8,
    )
)
def test_total_equals_sum_property(charges):
    bd = CycleBreakdown(charges)
    assert bd.total == pytest.approx(sum(charges.values()))


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.floats(min_value=0, max_value=1e9),
        min_size=1,
        max_size=8,
    ),
    st.floats(min_value=0, max_value=100),
)
def test_scaling_scales_total_property(charges, factor):
    bd = CycleBreakdown(charges)
    assert bd.scaled(factor).total == pytest.approx(bd.total * factor)
