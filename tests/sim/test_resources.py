"""Tests for :mod:`repro.sim.resources`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.resources import IssueSlots, ThroughputPort, TimelineResource


class TestTimelineResource:
    def test_first_grant_starts_at_request(self):
        r = TimelineResource("fu")
        grant = r.acquire(5.0, 3.0)
        assert grant.start == 5.0
        assert grant.end == 8.0

    def test_contention_delays_second_request(self):
        r = TimelineResource("fu")
        r.acquire(0.0, 10.0)
        grant = r.acquire(2.0, 1.0)
        assert grant.start == 10.0

    def test_idle_gap_allowed(self):
        r = TimelineResource("fu")
        r.acquire(0.0, 1.0)
        grant = r.acquire(100.0, 1.0)
        assert grant.start == 100.0

    def test_busy_and_transactions_tracked(self):
        r = TimelineResource("fu")
        r.acquire(0.0, 2.0)
        r.acquire(0.0, 3.0)
        assert r.busy_cycles == 5.0
        assert r.transactions == 2

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimelineResource("fu").acquire(0.0, -1.0)

    def test_utilization(self):
        r = TimelineResource("fu")
        r.acquire(0.0, 5.0)
        assert r.utilization(10.0) == 0.5
        assert r.utilization(0.0) == 0.0

    def test_reset(self):
        r = TimelineResource("fu")
        r.acquire(0.0, 5.0)
        r.reset()
        assert r.next_free == 0.0
        assert r.busy_cycles == 0.0


class TestThroughputPort:
    def test_transfer_duration(self):
        p = ThroughputPort("port", words_per_cycle=2.0)
        grant = p.transfer(0.0, 10.0)
        assert grant.duration == 5.0

    def test_overhead_adds_busy_time(self):
        p = ThroughputPort("port", words_per_cycle=2.0)
        grant = p.transfer(0.0, 10.0, overhead=3.0)
        assert grant.duration == 8.0

    def test_words_tracked(self):
        p = ThroughputPort("port", words_per_cycle=1.0)
        p.transfer(0.0, 4.0)
        p.transfer(0.0, 6.0)
        assert p.words_transferred == 10.0

    def test_transfer_cycles_does_not_reserve(self):
        p = ThroughputPort("port", words_per_cycle=4.0)
        assert p.transfer_cycles(8.0) == 2.0
        assert p.next_free == 0.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            ThroughputPort("port", words_per_cycle=0.0)

    def test_negative_words_rejected(self):
        p = ThroughputPort("port", words_per_cycle=1.0)
        with pytest.raises(ValueError):
            p.transfer(0.0, -1.0)


class TestIssueSlots:
    def test_issue_cycles(self):
        slots = IssueSlots("fe", width=3)
        assert slots.issue_cycles(9.0) == 3.0

    def test_exact_rounds_up(self):
        slots = IssueSlots("fe", width=3)
        assert slots.issue_cycles_exact(10) == 4

    def test_utilization(self):
        slots = IssueSlots("fe", width=2)
        slots.issue_cycles(10.0)
        assert slots.utilization(10.0) == 0.5

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            IssueSlots("fe", width=0)


@given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 10)), max_size=30))
def test_timeline_grants_never_overlap(requests):
    """Grants on a serial resource are disjoint and ordered."""
    r = TimelineResource("fu")
    grants = [r.acquire(earliest, duration) for earliest, duration in requests]
    for a, b in zip(grants, grants[1:]):
        assert b.start >= a.end


@given(st.lists(st.floats(0.1, 50), min_size=1, max_size=20))
def test_port_busy_equals_word_time(transfers):
    p = ThroughputPort("port", words_per_cycle=2.0)
    for words in transfers:
        p.transfer(0.0, words)
    assert p.busy_cycles == pytest.approx(sum(transfers) / 2.0)
