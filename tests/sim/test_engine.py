"""Tests for :mod:`repro.sim.engine`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        seen = []
        eng.schedule(5.0, lambda: seen.append("b"))
        eng.schedule(1.0, lambda: seen.append("a"))
        eng.run()
        assert seen == ["a", "b"]

    def test_simultaneous_events_fifo(self):
        eng = Engine()
        seen = []
        for i in range(5):
            eng.schedule(3.0, lambda i=i: seen.append(i))
        eng.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        eng = Engine()
        eng.schedule(7.5, lambda: None)
        assert eng.run() == 7.5
        assert eng.now == 7.5

    def test_schedule_after(self):
        eng = Engine()
        times = []
        eng.schedule(2.0, lambda: eng.schedule_after(3.0, lambda: times.append(eng.now)))
        eng.run()
        assert times == [5.0]

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule(10.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().schedule_after(-1.0, lambda: None)


class TestControl:
    def test_cancel_skips_event(self):
        eng = Engine()
        seen = []
        event = eng.schedule(1.0, lambda: seen.append("x"))
        event.cancel()
        eng.run()
        assert seen == []
        assert eng.events_processed == 0

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        seen = []
        eng.schedule(1.0, lambda: seen.append(1))
        eng.schedule(10.0, lambda: seen.append(10))
        eng.run(until=5.0)
        assert seen == [1]
        assert eng.now == 5.0
        assert eng.pending == 1
        eng.run()
        assert seen == [1, 10]

    def test_pending_excludes_cancelled(self):
        eng = Engine()
        events = [eng.schedule(float(i), lambda: None) for i in range(4)]
        assert eng.pending == 4
        events[1].cancel()
        events[2].cancel()
        assert eng.pending == 2
        eng.run()
        assert eng.pending == 0
        assert eng.events_processed == 2

    def test_cancel_is_idempotent(self):
        eng = Engine()
        event = eng.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert eng.pending == 0
        eng.run()
        assert eng.events_processed == 0

    def test_cancel_after_execution_is_harmless(self):
        eng = Engine()
        event = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        eng.step()
        event.cancel()
        assert eng.pending == 1
        eng.run()
        assert eng.events_processed == 2

    def test_mass_cancellation_compacts_heap(self):
        eng = Engine()
        events = [eng.schedule(float(i), lambda: None) for i in range(500)]
        for event in events[:400]:
            event.cancel()
        assert eng.pending == 100
        # The tombstones were dropped eagerly, not left for run() to
        # pop one at a time.
        assert len(eng._heap) < 500
        eng.run()
        assert eng.events_processed == 100

    def test_cancel_from_within_an_event(self):
        eng = Engine()
        seen = []
        later = eng.schedule(5.0, lambda: seen.append("late"))
        eng.schedule(1.0, later.cancel)
        eng.run()
        assert seen == []
        assert eng.events_processed == 1

    def test_cascading_events(self):
        """A process expressed as chained callbacks."""
        eng = Engine()
        ticks = []

        def tick():
            ticks.append(eng.now)
            if len(ticks) < 4:
                eng.schedule_after(2.0, tick)

        eng.schedule(0.0, tick)
        eng.run()
        assert ticks == [0.0, 2.0, 4.0, 6.0]


@given(st.lists(st.floats(0, 1000), max_size=50))
def test_events_processed_in_nondecreasing_time(times):
    eng = Engine()
    seen = []
    for t in times:
        eng.schedule(t, lambda t=t: seen.append(t))
    eng.run()
    assert seen == sorted(seen)
    assert eng.events_processed == len(times)
