"""Smoke tests: the example scripts and the top-level convenience API.

The heavyweight examples (reproduce_paper, architecture_explorer) are
exercised indirectly through the experiment-registry tests; here the two
fast ones run end to end as subprocesses, and the ``repro.run_kernel``
facade is checked directly.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name, *args, timeout=120):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExampleScripts:
    def test_quickstart(self):
        result = run_example("quickstart.py", "beam_steering")
        assert result.returncode == 0, result.stderr
        assert "Raw" in result.stdout
        assert "functional" in result.stdout

    def test_quickstart_rejects_unknown_kernel(self):
        result = run_example("quickstart.py", "raytrace")
        assert result.returncode != 0

    def test_custom_kernel(self):
        result = run_example("custom_kernel.py")
        assert result.returncode == 0, result.stderr
        assert "streaming" in result.stdout
        assert "MIMD" in result.stdout


class TestRunKernelFacade:
    def test_run_kernel(self, small_bs):
        import repro

        result = repro.run_kernel("beam_steering", "raw", workload=small_bs)
        assert result.kernel == "beam_steering"
        assert result.cycles > 0

    def test_version(self):
        import repro

        assert repro.__version__
