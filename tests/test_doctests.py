"""Run the docstring examples, keeping them honest.

Modules whose docstrings carry ``>>>`` examples are executed with
:mod:`doctest`; a stale example fails the suite like any other test.
"""

import doctest

import pytest

import repro.kernels.fft
import repro.sim.accounting
import repro.sim.engine

MODULES_WITH_EXAMPLES = [
    repro.sim.accounting,
    repro.sim.engine,
    repro.kernels.fft,
]


@pytest.mark.parametrize(
    "module", MODULES_WITH_EXAMPLES, ids=lambda m: m.__name__
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
