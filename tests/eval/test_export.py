"""Tests for :mod:`repro.eval.export`."""

import csv
import io
import json

import pytest

from repro.eval.export import (
    CSV_COLUMNS,
    SCHEMA_VERSION,
    experiment_record,
    full_document,
    kernel_run_record,
    table3_csv,
    table3_document,
    write_csv,
    write_json,
)
from repro.eval.tables import run_table3


@pytest.fixture(scope="module")
def small_results():
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    return run_table3(
        {
            "corner_turn": small_corner_turn(),
            "cslc": small_cslc(),
            "beam_steering": small_beam_steering(),
        }
    )


class TestKernelRunRecord:
    def test_json_serialisable(self, small_results):
        record = kernel_run_record(small_results[("cslc", "viram")])
        text = json.dumps(record)  # must not raise
        back = json.loads(text)
        assert back["kernel"] == "cslc"
        assert back["machine"] == "viram"
        assert back["functional_ok"] is True

    def test_breakdown_round_trips(self, small_results):
        run = small_results[("corner_turn", "raw")]
        record = kernel_run_record(run)
        assert sum(record["breakdown"].values()) == pytest.approx(run.cycles)

    def test_output_arrays_excluded(self, small_results):
        record = kernel_run_record(small_results[("corner_turn", "ppc")])
        assert "output" not in record


class TestDocuments:
    def test_table3_document(self, small_results):
        doc = table3_document(small_results)
        assert doc["schema_version"] == SCHEMA_VERSION
        assert len(doc["table3"]) == 15
        json.dumps(doc)

    def test_paper_values_attached(self, small_results):
        doc = table3_document(small_results)
        cells = {(r["kernel"], r["machine"]): r for r in doc["table3"]}
        assert cells[("corner_turn", "raw")]["paper_kilocycles"] == 146

    def test_full_document_without_experiments(self, small_results):
        doc = full_document(small_results, include_experiments=False)
        assert "experiments" not in doc


class TestExperimentRecord:
    def test_checks_structure(self, small_results):
        from repro.eval.experiments import exp_sec45

        record = experiment_record(exp_sec45(results=small_results))
        json.dumps(record)
        assert record["id"] == "sec4.5"
        assert "cslc_gain" in record["checks"]
        assert set(record["checks"]["cslc_gain"]) == {"model", "paper"}


class TestCsv:
    def test_header_rows_and_sort_order(self, small_results):
        rows = list(csv.reader(io.StringIO(table3_csv(small_results))))
        assert rows[0] == list(CSV_COLUMNS)
        pairs = [(r[0], r[1]) for r in rows[1:]]
        assert pairs == sorted(small_results)

    def test_floats_round_trip_exactly(self, small_results):
        rows = list(csv.DictReader(io.StringIO(table3_csv(small_results))))
        by_pair = {(r["kernel"], r["machine"]): r for r in rows}
        for (kernel, machine), run in small_results.items():
            row = by_pair[(kernel, machine)]
            # repr-encoded doubles reparse bit-identically.
            assert float(row["cycles"]) == run.cycles
            assert float(row["percent_of_peak"]) == run.percent_of_peak
            assert row["functional_ok"] == str(bool(run.functional_ok))

    def test_write_csv(self, tmp_path, small_results):
        path = write_csv(tmp_path / "table3.csv", small_results)
        assert path.read_text() == table3_csv(small_results)


class TestWriteJson:
    def test_writes_file(self, tmp_path, small_results):
        path = write_json(
            tmp_path / "out.json",
            table3_document(small_results),
        )
        loaded = json.loads(path.read_text())
        assert loaded["schema_version"] == SCHEMA_VERSION
