"""Tests for :mod:`repro.eval.scaling` — the §4.6 capacity crossover."""

import pytest

from repro.errors import ExperimentError
from repro.eval.scaling import (
    corner_turn_scaling,
    crossover_summary,
    render_scaling,
)

#: Small sweep that still crosses VIRAM's 13 MB boundary (2048^2 x 4 B
#: matrices are 16 MB each).
SWEEP = (512, 2048)


@pytest.fixture(scope="module")
def points():
    return corner_turn_scaling(sizes=SWEEP)


class TestSweep:
    def test_one_point_per_size_and_machine(self, points):
        assert len(points) == len(SWEEP) * 3

    def test_viram_crosses_capacity(self, points):
        viram = {p.size: p for p in points if p.machine == "viram"}
        assert viram[512].fits_onchip
        assert not viram[2048].fits_onchip

    def test_raw_and_imagine_scale_linearly(self, points):
        for machine in ("raw", "imagine"):
            per_word = [
                p.cycles_per_word for p in points if p.machine == machine
            ]
            assert max(per_word) / min(per_word) < 1.3

    def test_empty_sweep_rejected(self):
        with pytest.raises(ExperimentError):
            corner_turn_scaling(sizes=())

    def test_memoised(self):
        a = corner_turn_scaling(sizes=SWEEP)
        b = corner_turn_scaling(sizes=SWEEP)
        assert a is b


class TestCrossoverSummary:
    def test_offchip_penalty_near_2x(self, points):
        """The 2-word/cycle DMA interface roughly doubles VIRAM's
        per-word cost (§4.6: 'would lose much of its advantage')."""
        summary = crossover_summary(points)
        assert 1.5 < summary["offchip_penalty"] < 2.5

    def test_advantage_vs_raw_worsens(self, points):
        summary = crossover_summary(points)
        assert (
            summary["viram_over_raw_offchip"]
            > summary["viram_over_raw_onchip"]
        )

    def test_requires_a_crossing(self):
        onchip_only = corner_turn_scaling(sizes=(512,))
        with pytest.raises(ExperimentError):
            crossover_summary(onchip_only)


class TestRender:
    def test_marks_offchip_points(self, points):
        text = render_scaling(points)
        assert "*" in text
        assert "viram" in text and "raw" in text
