"""Tests for :mod:`repro.eval.experiments` at small workload sizes.

Every registered experiment must run end to end, produce a non-empty
rendering, and carry well-formed (model, paper) checks.  Canonical-size
fidelity is asserted separately in tests/test_paper_reproduction.py.
"""

import pytest

from repro.errors import ExperimentError
from repro.eval.experiments import EXPERIMENTS, run_experiment
from repro.eval.tables import run_table3


@pytest.fixture(scope="module")
def small_env():
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    workloads = {
        "corner_turn": small_corner_turn(),
        "cslc": small_cslc(),
        "beam_steering": small_beam_steering(),
    }
    return workloads, run_table3(workloads)


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
class TestAllExperiments:
    def test_runs_and_renders(self, experiment_id, small_env):
        workloads, results = small_env
        outcome = run_experiment(
            experiment_id, results=results, workloads=workloads
        )
        assert outcome.id == experiment_id
        assert outcome.title
        assert outcome.rendered
        assert outcome.data

    def test_checks_are_pairs(self, experiment_id, small_env):
        workloads, results = small_env
        outcome = run_experiment(
            experiment_id, results=results, workloads=workloads
        )
        for name, pair in outcome.checks.items():
            assert len(pair) == 2, name
            model, paper = pair
            assert isinstance(model, (int, float))
            assert isinstance(paper, (int, float))


class TestRegistry:
    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("table99")

    def test_expected_experiments_present(self):
        for experiment_id in (
            "table1",
            "table2",
            "table3",
            "table4",
            "figure8",
            "figure9",
            "sec4.2",
            "sec4.3",
            "sec4.4",
            "sec4.5",
            "ablation_imagine_network_port",
            "ablation_raw_streamed_fft",
            "ablation_raw_load_balance",
            "ablation_imagine_srf_tables",
        ):
            assert experiment_id in EXPERIMENTS


class TestCheckRatios:
    def test_ratio_helper_skips_zero_paper(self, small_env):
        workloads, results = small_env
        outcome = run_experiment(
            "sec4.4", results=results, workloads=workloads
        )
        ratios = outcome.check_ratios()
        assert "raw_loads_stores" not in ratios  # paper value is 0
        for value in ratios.values():
            assert value > 0
