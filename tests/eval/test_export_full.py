"""End-to-end export: the full document including every experiment."""

import json

import pytest

from repro.eval.export import full_document
from repro.eval.experiments import EXPERIMENTS
from repro.eval.tables import run_table3


@pytest.fixture(scope="module")
def document(small_workloads_export):
    results = run_table3(small_workloads_export)
    return full_document(
        results, include_experiments=True, workloads=small_workloads_export
    )


@pytest.fixture(scope="module")
def small_workloads_export():
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    return {
        "corner_turn": small_corner_turn(),
        "cslc": small_cslc(),
        "beam_steering": small_beam_steering(),
    }


def test_document_serialises(document):
    text = json.dumps(document)
    assert len(text) > 1000


def test_every_experiment_exported(document):
    exported = {record["id"] for record in document["experiments"]}
    assert exported == set(EXPERIMENTS)


def test_check_pairs_complete(document):
    for record in document["experiments"]:
        for name, pair in record["checks"].items():
            assert set(pair) == {"model", "paper"}, (record["id"], name)
