"""Golden snapshot tests: the published outputs are pinned byte-for-byte.

``repro report`` stdout and the Table 3 CSV export are compared against
checked-in fixtures under ``tests/data/golden/``.  Any drift — a changed
constant, a reordered section, a float formatting change — fails with a
unified diff.  Intentional changes are re-pinned with
``make refresh-golden`` and the fixture diff is reviewed like code.
"""

import csv
import io
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check.golden import (
    REPORT_FIXTURE,
    TABLE3_CSV_FIXTURE,
    diff_against_golden,
    golden_documents,
    pipeline_fixture_names,
    write_golden,
)
from repro.eval.export import CSV_COLUMNS

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "data" / "golden"


@pytest.fixture(scope="module")
def documents():
    return golden_documents()


class TestSnapshots:
    def test_report_matches_golden(self, documents):
        diff = diff_against_golden(
            REPORT_FIXTURE, documents[REPORT_FIXTURE], GOLDEN_DIR
        )
        assert not diff, diff

    def test_table3_csv_matches_golden(self, documents):
        diff = diff_against_golden(
            TABLE3_CSV_FIXTURE, documents[TABLE3_CSV_FIXTURE], GOLDEN_DIR
        )
        assert not diff, diff

    def test_pipeline_reports_match_golden(self, documents):
        # One canonical three-stage pipeline snapshot per machine.
        names = pipeline_fixture_names()
        assert len(names) == 5
        for name in names:
            diff = diff_against_golden(name, documents[name], GOLDEN_DIR)
            assert not diff, diff

    def test_pipeline_fixture_content(self, documents):
        for name, machine in pipeline_fixture_names().items():
            text = documents[name]
            assert "== radar pipeline on " in text
            assert "pipeline total:" in text
            # Three stages, two priced handoffs between them.
            assert text.count("stage ") == 3
            assert text.count("handoff:") == 2

    def test_report_command_prints_the_fixture(self, documents, tmp_path):
        # The fixture pins what the user-facing command actually emits.
        # The subprocess gets its own disk-cache dir: the snapshot must
        # hold cold, not be inherited from another test's warm tier.
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "report"],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": "src",
                "PATH": "/usr/bin:/bin",
                "REPRO_DISK_CACHE_DIR": str(tmp_path / "diskcache"),
            },
            cwd=str(GOLDEN_DIR.parents[2]),
            check=True,
        )
        assert proc.stdout == documents[REPORT_FIXTURE]


class TestCsvShape:
    def test_header_and_row_count(self):
        reader = csv.reader(
            io.StringIO((GOLDEN_DIR / TABLE3_CSV_FIXTURE).read_text())
        )
        rows = list(reader)
        assert rows[0] == list(CSV_COLUMNS)
        # 3 kernels x 5 machines
        assert len(rows) == 1 + 15

    def test_floats_reparse_exactly(self):
        from repro.eval.tables import run_table3

        results = run_table3()
        text = (GOLDEN_DIR / TABLE3_CSV_FIXTURE).read_text()
        by_pair = {}
        for row in csv.DictReader(io.StringIO(text)):
            by_pair[(row["kernel"], row["machine"])] = row
        for (kernel, machine), run in results.items():
            assert float(by_pair[(kernel, machine)]["cycles"]) == run.cycles


class TestDiffMachinery:
    def test_drift_produces_unified_diff(self, documents, tmp_path):
        write_golden(tmp_path)
        tampered = documents[REPORT_FIXTURE].replace(
            "corner_turn", "corner_twist", 1
        )
        diff = diff_against_golden(REPORT_FIXTURE, tampered, tmp_path)
        assert "drifted from its golden fixture" in diff
        assert "--- golden/report.txt" in diff
        assert "corner_twist" in diff
        assert "make refresh-golden" in diff

    def test_missing_fixture_is_reported(self, tmp_path):
        diff = diff_against_golden(REPORT_FIXTURE, "anything", tmp_path)
        assert "missing" in diff
        assert "make refresh-golden" in diff

    def test_write_golden_round_trips(self, documents, tmp_path):
        paths = write_golden(tmp_path)
        expected = {REPORT_FIXTURE, TABLE3_CSV_FIXTURE}
        expected.update(pipeline_fixture_names())
        assert {p.name for p in paths} == expected
        for name in sorted(expected):
            assert diff_against_golden(name, documents[name], tmp_path) == ""
