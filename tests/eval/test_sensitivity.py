"""Tests for :mod:`repro.eval.sensitivity`."""

import pytest

from repro.calibration import DEFAULT_CALIBRATION
from repro.errors import ExperimentError
from repro.eval.sensitivity import (
    CONSTANT_CELLS,
    perturbed_calibration,
    render,
    sweep,
)


class TestPerturbation:
    def test_scales_single_constant(self):
        cal = perturbed_calibration("viram", "dram_row_cycle", 2.0)
        assert cal.viram.dram_row_cycle == pytest.approx(
            2 * DEFAULT_CALIBRATION.viram.dram_row_cycle
        )
        # Everything else untouched.
        assert cal.viram.vector_dead_time == (
            DEFAULT_CALIBRATION.viram.vector_dead_time
        )
        assert cal.raw == DEFAULT_CALIBRATION.raw

    def test_floored_constant_stays_valid(self):
        cal = perturbed_calibration(
            "imagine", "cluster_schedule_inefficiency", 0.5
        )
        assert cal.imagine.cluster_schedule_inefficiency >= 1.0

    def test_unknown_machine(self):
        with pytest.raises(ExperimentError):
            perturbed_calibration("trips", "x", 1.1)

    def test_unknown_constant(self):
        with pytest.raises(ExperimentError):
            perturbed_calibration("viram", "warp_speed", 1.1)


class TestSweep:
    @pytest.fixture(scope="class")
    def rows(self, request):
        from repro.kernels.workloads import (
            small_beam_steering,
            small_corner_turn,
            small_cslc,
        )

        workloads = {
            "corner_turn": small_corner_turn(),
            "cslc": small_cslc(),
            "beam_steering": small_beam_steering(),
        }
        constants = [
            ("viram", "dram_row_cycle"),
            ("imagine", "gather_derate"),
            ("raw", "stream_ops_per_output"),
            ("ppc", "trig_call_cycles"),
        ]
        return sweep(constants=constants, workloads=workloads)

    def test_row_per_cell(self, rows):
        assert len(rows) == sum(
            len(CONSTANT_CELLS[c])
            for c in (
                ("viram", "dram_row_cycle"),
                ("imagine", "gather_derate"),
                ("raw", "stream_ops_per_output"),
                ("ppc", "trig_call_cycles"),
            )
        )

    def test_elasticities_nonnegative_and_sublinear(self, rows):
        """More cycles when a cost constant grows, and never more than
        proportionally (every constant prices only part of the cell)."""
        for r in rows:
            assert -0.01 <= r.elasticity <= 1.05, (r.machine, r.constant)

    def test_monotone_direction(self, rows):
        for r in rows:
            assert r.up_cycles >= r.down_cycles - 1e-9

    def test_invalid_delta(self):
        with pytest.raises(ExperimentError):
            sweep(delta=0.0)
        with pytest.raises(ExperimentError):
            sweep(delta=1.5)

    def test_unmapped_constant_rejected(self):
        with pytest.raises(ExperimentError):
            sweep(constants=[("viram", "page_words")])

    def test_render(self, rows):
        text = render(rows)
        assert "elasticity" in text
        assert "viram.dram_row_cycle" in text
