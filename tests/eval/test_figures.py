"""Tests for :mod:`repro.eval.figures`."""

from repro.eval.figures import _log_bar, speedup_figure


class TestLogBar:
    def test_monotone_in_value(self):
        vmax = 1000.0
        assert len(_log_bar(10, vmax)) < len(_log_bar(100, vmax))

    def test_max_fills_width(self):
        assert len(_log_bar(1000, 1000.0, width=40)) == 40

    def test_nonpositive_empty(self):
        assert _log_bar(0, 1000.0) == ""
        assert _log_bar(-5, 1000.0) == ""

    def test_small_value_still_visible(self):
        assert len(_log_bar(1.5, 1000.0)) >= 1


class TestSpeedupFigure:
    DATA = {
        "corner_turn": {"viram": 52.0, "raw": 200.0},
        "cslc": {"viram": 11.0, "raw": 13.0},
    }

    def test_contains_all_entries(self):
        text = speedup_figure("Figure 8", self.DATA)
        assert "Figure 8" in text
        for kernel in self.DATA:
            assert kernel in text
        assert "viram" in text and "raw" in text

    def test_paper_column_optional(self):
        without = speedup_figure("F", self.DATA)
        with_paper = speedup_figure(
            "F", self.DATA, paper={"corner_turn": {"viram": 52.9}}
        )
        assert "paper" not in without
        assert "paper" in with_paper

    def test_log_scale_axis_label(self):
        text = speedup_figure("F", self.DATA)
        assert "log scale" in text
