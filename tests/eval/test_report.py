"""Tests for :mod:`repro.eval.report`."""

import pytest

from repro.eval.experiments import EXPERIMENTS
from repro.eval.report import full_report


@pytest.fixture(scope="module")
def report_text(small_workloads_module):
    return full_report(small_workloads_module)


@pytest.fixture(scope="module")
def small_workloads_module():
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    return {
        "corner_turn": small_corner_turn(),
        "cslc": small_cslc(),
        "beam_steering": small_beam_steering(),
    }


class TestFullReport:
    def test_every_experiment_titled(self, report_text):
        for fn in EXPERIMENTS.values():
            # Titles are unique; each must appear as a section header.
            assert "== " in report_text
        # One section per experiment, plus the trailing validation block.
        assert report_text.count("== ") == len(EXPERIMENTS) + 1

    def test_validation_section_last(self, report_text):
        final_section = report_text.rsplit("== ", 1)[1]
        assert final_section.startswith("Validation (repro check --fast)")
        assert "verdict: OK" in final_section

    def test_validation_opt_out(self, small_workloads_module):
        text = full_report(small_workloads_module, validate=False)
        assert text.count("== ") == len(EXPERIMENTS)
        assert "Validation" not in text

    def test_checks_rendered_with_ratios(self, report_text):
        assert "checks (model vs paper):" in report_text
        assert "ratio=" in report_text

    def test_tables_present(self, report_text):
        assert "Table 3. Experimental results" in report_text
        assert "Figure 8." in report_text
        assert "Figure 9." in report_text
