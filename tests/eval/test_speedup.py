"""Tests for :mod:`repro.eval.speedup`."""

import pytest

from repro.arch.base import KernelRun, MachineSpec
from repro.errors import ExperimentError
from repro.eval.speedup import speedup_cycles, speedup_time
from repro.kernels.opcount import OpCounts
from repro.sim.accounting import CycleBreakdown


def fake_run(name, cycles, clock_hz):
    spec = MachineSpec(
        name=name,
        display_name=name,
        clock_hz=clock_hz,
        n_alus=1,
        peak_gflops=1.0,
        flops_per_cycle=1.0,
    )
    return KernelRun(
        kernel="k",
        machine=name,
        spec=spec,
        breakdown=CycleBreakdown({"x": cycles}),
        ops=OpCounts(adds=1),
    )


class TestSpeedupCycles:
    def test_baseline_is_one(self):
        runs = {
            "altivec": fake_run("altivec", 1000, 1e9),
            "fast": fake_run("fast", 100, 2e8),
        }
        s = speedup_cycles(runs)
        assert s["altivec"] == 1.0
        assert s["fast"] == 10.0

    def test_missing_baseline(self):
        with pytest.raises(ExperimentError):
            speedup_cycles({"fast": fake_run("fast", 1, 1e9)})


class TestSpeedupTime:
    def test_clock_matters(self):
        """Figure 8 vs Figure 9: a slower-clocked machine's cycle
        speedup shrinks in time."""
        runs = {
            "altivec": fake_run("altivec", 1000, 1e9),  # 1 us
            "viramish": fake_run("viramish", 100, 2e8),  # 0.5 us
        }
        cycles = speedup_cycles(runs)
        times = speedup_time(runs)
        assert cycles["viramish"] == 10.0
        assert times["viramish"] == pytest.approx(2.0)
        assert times["viramish"] < cycles["viramish"]

    def test_missing_baseline(self):
        with pytest.raises(ExperimentError):
            speedup_time({"x": fake_run("x", 1, 1e9)})
