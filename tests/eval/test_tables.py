"""Tests for :mod:`repro.eval.tables`."""

import pytest

from repro.eval.tables import (
    PAPER_TABLE3,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    run_table3,
)
from repro.mappings.registry import KERNELS, MACHINES


@pytest.fixture(scope="module")
def small_results(request):
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    return run_table3(
        {
            "corner_turn": small_corner_turn(),
            "cslc": small_cslc(),
            "beam_steering": small_beam_steering(),
        }
    )


class TestPaperTable3:
    def test_complete(self):
        assert len(PAPER_TABLE3) == 15
        for kernel in KERNELS:
            for machine in MACHINES:
                assert (kernel, machine) in PAPER_TABLE3

    def test_headline_values(self):
        assert PAPER_TABLE3[("corner_turn", "raw")] == 146
        assert PAPER_TABLE3[("cslc", "imagine")] == 196
        assert PAPER_TABLE3[("beam_steering", "viram")] == 35


class TestRunTable3:
    def test_all_cells_run(self, small_results):
        assert len(small_results) == 15
        for run_ in small_results.values():
            assert run_.cycles > 0

    def test_workload_override_used(self, small_results, small_ct):
        assert small_results[("corner_turn", "raw")].metrics["blocks"] == (
            (small_ct.rows // 64) * (small_ct.cols // 64)
        )


class TestRenderers:
    def test_table1_mentions_rates(self):
        text = render_table1()
        assert "On-chip" in text
        assert "model" in text and "paper" in text

    def test_table2_mentions_clock(self):
        text = render_table2()
        assert "Clock (MHz)" in text

    def test_table3_has_all_machines(self, small_results):
        text = render_table3(small_results)
        for title in ("PPC", "Altivec", "VIRAM", "Imagine", "Raw"):
            assert title in text

    def test_table4_lists_bounds(self, small_results):
        text = render_table4(small_results)
        assert "binding" in text
        assert "achieved" in text
