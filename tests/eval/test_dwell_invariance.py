"""The beam-steering dwell count is a free parameter (the paper does not
state it; DESIGN.md §4 fixes it at 4).  These tests show the
reproduction's *conclusions* do not depend on the choice: cycles scale
linearly with dwells on every machine, so the Figure 8 speedups and the
platform ordering are dwell-invariant.
"""

import pytest

from repro.kernels.beam_steering import BeamSteeringWorkload
from repro.mappings.registry import MACHINES, run


def runs_for(dwells):
    workload = BeamSteeringWorkload(elements=1608, directions=4, dwells=dwells)
    return {m: run("beam_steering", m, workload=workload) for m in MACHINES}


@pytest.fixture(scope="module")
def one_dwell():
    return runs_for(1)


@pytest.fixture(scope="module")
def four_dwells():
    return runs_for(4)


@pytest.mark.parametrize("machine", ("viram", "imagine", "raw"))
def test_research_machines_scale_linearly(one_dwell, four_dwells, machine):
    ratio = four_dwells[machine].cycles / one_dwell[machine].cycles
    assert ratio == pytest.approx(4.0, rel=0.15), machine


@pytest.mark.parametrize("machine", ("ppc", "altivec"))
def test_g4_scales_sublinearly(one_dwell, four_dwells, machine):
    """The first dwell pays the compulsory calibration-table misses;
    later dwells run against warm caches, so the G4 scales below 4x —
    which *raises* the research chips' speedups as dwells shrink and
    leaves the dwell=4 choice conservative."""
    ratio = four_dwells[machine].cycles / one_dwell[machine].cycles
    assert 2.0 < ratio < 4.0, machine


def test_research_speedups_dwell_stable(one_dwell, four_dwells):
    """Speedups over AltiVec move only through the G4's warm-up; across
    1 vs 4 dwells they stay within ~2x and never change sign."""
    for machine in ("viram", "imagine", "raw"):
        s1 = one_dwell["altivec"].cycles / one_dwell[machine].cycles
        s4 = four_dwells["altivec"].cycles / four_dwells[machine].cycles
        assert s1 > 1.0 and s4 > 1.0, machine
        assert 0.5 < s1 / s4 < 2.0, machine


def test_ordering_dwell_invariant(one_dwell, four_dwells):
    order1 = sorted(MACHINES, key=lambda m: one_dwell[m].cycles)
    order4 = sorted(MACHINES, key=lambda m: four_dwells[m].cycles)
    assert order1 == order4
