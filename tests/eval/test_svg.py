"""Tests for :mod:`repro.eval.svg`."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ExperimentError
from repro.eval.svg import speedup_figure_svg, write_figures

DATA = {
    "corner_turn": {"viram": 52.0, "raw": 200.0},
    "cslc": {"viram": 11.6, "raw": 13.8},
}
PAPER = {
    "corner_turn": {"viram": 52.9, "raw": 200.6},
    "cslc": {"viram": 11.6},
}

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestSpeedupFigureSvg:
    def test_valid_xml_with_title(self):
        root = parse(speedup_figure_svg("Figure 8", DATA))
        assert root.tag == f"{SVG_NS}svg"
        title = root.find(f"{SVG_NS}title")
        assert title is not None and title.text == "Figure 8"

    def test_one_bar_per_value(self):
        root = parse(speedup_figure_svg("F", DATA))
        bars = [
            el
            for el in root.iter(f"{SVG_NS}rect")
            if el.get("class") == "bar"
        ]
        assert len(bars) == 4

    def test_bar_heights_monotone_in_value(self):
        root = parse(speedup_figure_svg("F", DATA))
        heights = {
            (el.get("data-kernel"), el.get("data-machine")): float(
                el.get("height")
            )
            for el in root.iter(f"{SVG_NS}rect")
            if el.get("class") == "bar"
        }
        assert heights[("corner_turn", "raw")] > heights[
            ("corner_turn", "viram")
        ]
        assert heights[("cslc", "raw")] > heights[("cslc", "viram")]

    def test_paper_ticks_only_where_given(self):
        root = parse(speedup_figure_svg("F", DATA, PAPER))
        ticks = [
            el
            for el in root.iter(f"{SVG_NS}line")
            if el.get("class") == "paper-tick"
        ]
        assert len(ticks) == 3  # cslc/raw has no paper value

    def test_tick_near_matching_bar_top(self):
        root = parse(speedup_figure_svg("F", DATA, PAPER))
        bar = next(
            el
            for el in root.iter(f"{SVG_NS}rect")
            if el.get("data-machine") == "viram"
            and el.get("data-kernel") == "corner_turn"
        )
        tick = next(
            el
            for el in root.iter(f"{SVG_NS}line")
            if el.get("class") == "paper-tick"
            and el.get("data-machine") == "viram"
            and el.get("data-kernel") == "corner_turn"
        )
        bar_top = float(bar.get("y"))
        tick_y = float(tick.get("y1"))
        assert abs(bar_top - tick_y) < 5  # 52.0 vs 52.9 on a log axis

    def test_empty_data_rejected(self):
        with pytest.raises(ExperimentError):
            speedup_figure_svg("F", {})


class TestWriteFigures:
    def test_writes_both_figures(self, tmp_path, small_workloads):
        from repro.eval.tables import run_table3

        results = run_table3(small_workloads)
        paths = write_figures(tmp_path, results=results)
        assert [p.name for p in paths] == ["figure8.svg", "figure9.svg"]
        for path in paths:
            root = parse(path.read_text())
            bars = [
                el
                for el in root.iter(f"{SVG_NS}rect")
                if el.get("class") == "bar"
            ]
            assert len(bars) == 15  # 3 kernels x 5 machines
