"""Regression pin: the canonical model outputs, frozen.

The golden test (tests/test_paper_reproduction.py) checks fidelity to
the *paper* with deliberately loose bands; this one pins the model's own
current canonical outputs tightly, so an accidental behaviour change —
a mapping edit, a substrate fix, a calibration bump — fails visibly even
when it stays inside the paper bands.  Update the pins (and EXPERIMENTS
.md) deliberately when a change is intentional.
"""

import pytest

from repro.eval.tables import run_table3

#: Canonical model kilocycles at the default calibration.
PINNED_KILOCYCLES = {
    ("corner_turn", "ppc"): 38_448,
    ("corner_turn", "altivec"): 28_661,
    ("corner_turn", "viram"): 566,
    ("corner_turn", "imagine"): 1_511,
    ("corner_turn", "raw"): 145,
    ("cslc", "ppc"): 28_330,
    ("cslc", "altivec"): 4_976,
    ("cslc", "viram"): 416,
    ("cslc", "imagine"): 202,
    ("cslc", "raw"): 366,
    ("beam_steering", "ppc"): 644,
    ("beam_steering", "altivec"): 342,
    ("beam_steering", "viram"): 34,
    ("beam_steering", "imagine"): 90,
    ("beam_steering", "raw"): 18,
}


@pytest.fixture(scope="module")
def canonical_results():
    return run_table3()


@pytest.mark.parametrize("cell", sorted(PINNED_KILOCYCLES))
def test_pinned_cycles(canonical_results, cell):
    model = canonical_results[cell].kilocycles
    pinned = PINNED_KILOCYCLES[cell]
    assert model == pytest.approx(pinned, rel=0.01), (
        f"{cell}: model {model:,.1f}k drifted from pinned {pinned:,}k — "
        "if this change is intentional, update PINNED_KILOCYCLES and "
        "EXPERIMENTS.md together"
    )
