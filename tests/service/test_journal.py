"""Tests for the write-ahead job journal (torn tails, seq, replay)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.service.jobs import (
    DONE,
    PENDING,
    RUNNING,
    Job,
    job_id,
    legal_transition,
)
from repro.service.journal import (
    JOURNAL_SCHEMA,
    JobJournal,
    fold_records,
    journal_path,
    read_journal,
    service_root,
    validate_records,
)


@pytest.fixture
def journal(tmp_path):
    return JobJournal(tmp_path / "journal.jsonl")


def _job(kind="run", **params):
    params = params or {"kernel": "corner_turn", "machine": "viram"}
    return Job(id=job_id(kind, params), kind=kind, params=params)


class TestAppendAndRead:
    def test_records_are_sequenced_from_zero(self, journal):
        job = _job()
        journal.append(job.id, PENDING, kind=job.kind, params=job.params)
        journal.append(job.id, RUNNING)
        journal.append(job.id, DONE, result_digest="ab" * 8)
        records, corrupt = read_journal(journal.path)
        assert not corrupt
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert all(r["schema"] == JOURNAL_SCHEMA for r in records)
        assert validate_records(records) == []

    def test_next_seq_resumes_after_reopen(self, journal):
        job = _job()
        journal.append(job.id, PENDING, kind=job.kind, params=job.params)
        reopened = JobJournal(journal.path)
        assert reopened.next_seq == 1
        reopened.append(job.id, RUNNING)
        records, _ = read_journal(journal.path)
        assert [r["seq"] for r in records] == [0, 1]

    def test_fold_records_recovers_job_state(self, journal):
        job = _job()
        journal.append(job.id, PENDING, kind=job.kind, params=job.params,
                       deadline_s=2.5)
        journal.append(job.id, RUNNING)
        jobs = fold_records(read_journal(journal.path)[0])
        assert set(jobs) == {job.id}
        folded = jobs[job.id]
        assert folded.state == RUNNING
        assert folded.params == job.params
        assert folded.deadline_s == 2.5


class TestTornTail:
    def test_reader_tolerates_torn_tail(self, journal):
        job = _job()
        journal.append(job.id, PENDING, kind=job.kind, params=job.params)
        with open(journal.path, "ab") as fh:
            fh.write(b'{"schema": 1, "seq": 1, "job": "dead')
        records, corrupt = read_journal(journal.path)
        assert len(records) == 1
        assert len(corrupt) == 1

    def test_writer_heals_torn_tail_and_quarantines(self, journal):
        job = _job()
        journal.append(job.id, PENDING, kind=job.kind, params=job.params)
        with open(journal.path, "ab") as fh:
            fh.write(b'{"schema": 1, "seq": 1, "job": "dead')
        healed = JobJournal(journal.path)
        assert healed.torn_tails_healed == 1
        records, corrupt = read_journal(healed.path)
        assert len(records) == 1 and not corrupt
        quarantine = healed.path.with_suffix(".quarantine")
        assert quarantine.is_file()
        assert b"dead" in quarantine.read_bytes()
        # The healed journal keeps appending with the right sequence.
        healed.append(job.id, RUNNING)
        assert validate_records(read_journal(healed.path)[0]) == []


class TestValidation:
    def _records(self, journal):
        job = _job()
        journal.append(job.id, PENDING, kind=job.kind, params=job.params)
        journal.append(job.id, RUNNING)
        return read_journal(journal.path)[0]

    def test_gap_in_seq_is_a_problem(self, journal):
        records = self._records(journal)
        records[1]["seq"] = 7
        assert any("seq" in p for p in validate_records(records))

    def test_missing_field_is_a_problem(self, journal):
        records = self._records(journal)
        del records[0]["ts"]
        assert validate_records(records)

    def test_illegal_transition_is_a_problem(self, journal):
        job = _job()
        journal.append(job.id, PENDING, kind=job.kind, params=job.params)
        journal.append(job.id, RUNNING)
        journal.append(job.id, DONE, result_digest="ab" * 8)
        bad = dict(read_journal(journal.path)[0][1])
        bad["seq"], bad["state"] = 3, RUNNING  # DONE -> RUNNING: illegal
        with open(journal.path, "a") as fh:
            fh.write(json.dumps(bad) + "\n")
        assert validate_records(read_journal(journal.path)[0])


class TestIdentity:
    def test_job_id_is_structural(self):
        a = job_id("run", {"kernel": "cslc", "machine": "raw"})
        b = job_id("run", {"machine": "raw", "kernel": "cslc"})
        assert a == b and len(a) == 16

    def test_job_id_rejects_unknown_kind(self):
        with pytest.raises(ServiceError):
            job_id("meltdown", {})

    def test_legal_transition_table(self):
        assert legal_transition(None, PENDING)
        assert legal_transition(RUNNING, PENDING)  # crash replay
        assert not legal_transition(DONE, RUNNING)
        assert not legal_transition(None, RUNNING)


class TestRoots:
    def test_service_root_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "x"))
        assert service_root() == tmp_path / "x"
        assert journal_path().name == "journal.jsonl"
