"""Tests for the HTTP layer: routes, status codes, disconnects."""

from __future__ import annotations

import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.runtime import ServiceConfig
from repro.service.server import MAX_BODY_BYTES, ServiceServer
from repro.service.stats import SERVICE_STATS


def _executor(kind, params, jobs=None):
    return {"kind": kind, "params": dict(params)}


@pytest.fixture
def server(tmp_path):
    """An in-process server on an ephemeral port, with one worker."""
    srv = ServiceServer(
        host="127.0.0.1",
        port=0,
        config=ServiceConfig(
            root=tmp_path / "svc", workers=1, executor=_executor
        ),
    )
    srv.runtime.start()
    thread = threading.Thread(
        target=srv.httpd.serve_forever, kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    yield srv
    srv.httpd.shutdown()
    srv.httpd.server_close()
    thread.join(timeout=10)
    srv.runtime.drain(timeout=10)


def _request(method, url, body=None, headers=None):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read() or b"null")
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        return exc.code, json.loads(payload) if payload else None


RUN = {"kind": "run",
       "params": {"kernel": "corner_turn", "machine": "viram"}}


class TestRoutes:
    def test_healthz(self, server):
        status, payload = _request("GET", server.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert "queue_depth" in payload and "jobs" in payload

    def test_submit_poll_result_roundtrip(self, server):
        status, record = _request("POST", server.url + "/v1/jobs", RUN)
        assert status == 202
        assert record["outcome"] == "admitted"
        jid = record["job"]
        job = server.runtime.wait(jid, timeout=10)
        assert job.state == "DONE"
        status, result = _request(
            "GET", f"{server.url}/v1/jobs/{jid}/result"
        )
        assert status == 200
        assert result["kind"] == "run"

    def test_duplicate_submission_returns_200_deduped(self, server):
        _request("POST", server.url + "/v1/jobs", RUN)
        status, record = _request("POST", server.url + "/v1/jobs", RUN)
        assert status == 200
        assert record["outcome"] == "deduped"

    def test_jobs_listing_and_lookup(self, server):
        _, record = _request("POST", server.url + "/v1/jobs", RUN)
        status, listing = _request("GET", server.url + "/v1/jobs")
        assert status == 200
        assert record["job"] in [j["job"] for j in listing["jobs"]]
        status, job = _request(
            "GET", f"{server.url}/v1/jobs/{record['job']}"
        )
        assert status == 200 and job["kind"] == "run"

    def test_telemetry_route(self, server):
        _request("POST", server.url + "/v1/jobs", RUN)
        status, payload = _request("GET", server.url + "/v1/telemetry")
        assert status == 200
        assert payload["service"]["submitted"] >= 1
        assert "resilience" in payload


class TestErrorStatuses:
    def test_unknown_route_is_404(self, server):
        status, _ = _request("GET", server.url + "/nope")
        assert status == 404

    def test_unknown_job_is_404(self, server):
        status, _ = _request("GET", server.url + "/v1/jobs/feedc0de")
        assert status == 404

    def test_result_before_done_is_409(self, tmp_path):
        # workers=0: the job is admitted but never executed.
        srv = ServiceServer(
            host="127.0.0.1", port=0,
            config=ServiceConfig(root=tmp_path / "svc", workers=0,
                                 executor=_executor),
        )
        thread = threading.Thread(target=srv.httpd.serve_forever,
                                  daemon=True)
        thread.start()
        try:
            _, record = _request("POST", srv.url + "/v1/jobs", RUN)
            status, _ = _request(
                "GET", f"{srv.url}/v1/jobs/{record['job']}/result"
            )
            assert status == 409
        finally:
            srv.httpd.shutdown()
            srv.httpd.server_close()
            thread.join(timeout=10)

    def test_malformed_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400

    def test_bad_shape_is_400(self, server):
        status, _ = _request(
            "POST", server.url + "/v1/jobs", {"kind": "run"}
        )
        assert status == 400

    def test_unknown_kind_is_400(self, server):
        status, _ = _request(
            "POST", server.url + "/v1/jobs",
            {"kind": "meltdown", "params": {}},
        )
        assert status == 400

    def test_oversized_body_is_413(self, server):
        request = urllib.request.Request(
            server.url + "/v1/jobs", data=b"x", method="POST"
        )
        request.add_header("Content-Length", str(MAX_BODY_BYTES + 1))
        # urllib would re-measure the body, so speak raw HTTP instead.
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
            reply = sock.recv(200).decode("utf-8", "replace")
        assert "413" in reply.split("\r\n")[0]


class TestDisconnects:
    def test_half_sent_body_is_counted_and_survived(self, server):
        before = SERVICE_STATS.get("client_disconnects")
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 512\r\n\r\n{\"kind\""
            )
        deadline = 50
        while (
            SERVICE_STATS.get("client_disconnects") == before
            and deadline > 0
        ):
            import time

            time.sleep(0.05)
            deadline -= 1
        assert SERVICE_STATS.get("client_disconnects") > before
        status, _ = _request("GET", server.url + "/healthz")
        assert status == 200


class TestLifecycle:
    def test_ready_file_handshake(self, server, tmp_path):
        ready = tmp_path / "ready.json"
        server.write_ready_file(str(ready))
        handshake = json.loads(ready.read_text())
        assert handshake["url"] == server.url
        assert handshake["port"] == server.address[1]

    def test_request_shutdown_is_idempotent(self, tmp_path):
        srv = ServiceServer(
            host="127.0.0.1", port=0,
            config=ServiceConfig(root=tmp_path / "svc", workers=0,
                                 executor=_executor),
        )
        thread = threading.Thread(target=srv.httpd.serve_forever,
                                  daemon=True)
        thread.start()
        srv.request_shutdown()
        srv.request_shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        srv.httpd.server_close()
