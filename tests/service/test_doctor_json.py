"""Tests for ``repro doctor --json`` and the service journal probe."""

from __future__ import annotations

import json

from repro.cli import main
from repro.resilience.doctor import (
    doctor_json,
    probe_service_journal,
    run_doctor,
)
from repro.service.jobs import PENDING, Job, job_id
from repro.service.journal import JobJournal, journal_path, service_root


def _journal_with_one_job():
    path = journal_path()
    path.parent.mkdir(parents=True, exist_ok=True)
    journal = JobJournal(path)
    params = {"kernel": "corner_turn", "machine": "viram"}
    job = Job(id=job_id("run", params), kind="run", params=params)
    journal.append(job.id, PENDING, kind="run", params=params)
    return path


class TestDoctorJson:
    def test_cli_emits_machine_readable_verdict(self, capsys):
        exit_code = main(["doctor", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["verdict"] in ("HEALTHY", "UNHEALTHY")
        assert payload["exit_code"] == exit_code
        assert isinstance(payload["probes"], list)
        names = {p["name"] for p in payload["probes"]}
        assert "probe.service-journal" in names
        for probe in payload["probes"]:
            assert set(probe) == {"name", "status", "detail"}

    def test_json_is_stable_under_sort_keys(self):
        record = doctor_json(run_doctor())
        text = json.dumps(record, indent=2, sort_keys=True)
        assert json.loads(text) == record

    def test_healthy_matches_exit_code(self):
        record = doctor_json(run_doctor())
        assert record["healthy"] == (record["exit_code"] == 0)


class TestServiceJournalProbe:
    def test_never_served_passes(self):
        assert not service_root().exists()
        assert probe_service_journal().status == "pass"

    def test_valid_journal_passes(self):
        _journal_with_one_job()
        result = probe_service_journal()
        assert result.status == "pass"

    def test_torn_tail_warns(self):
        path = _journal_with_one_job()
        with open(path, "ab") as fh:
            fh.write(b'{"schema": 1, "seq": 99')
        result = probe_service_journal()
        assert result.status == "warn"

    def test_invalid_history_fails(self):
        path = _journal_with_one_job()
        with open(path, "a") as fh:
            fh.write(
                json.dumps(
                    {"schema": 1, "seq": 99, "job": "ff" * 8,
                     "state": "DONE", "ts": 0.0}
                )
                + "\n"
            )
        result = probe_service_journal()
        assert result.status == "fail"
