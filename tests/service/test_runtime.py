"""Tests for the job runtime: dedup, admission ladder, replay, drain."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServiceError
from repro.service.jobs import DONE, FAILED, PENDING, RUNNING
from repro.service.runtime import JobRuntime, ServiceConfig
from repro.service.stats import SERVICE_STATS


def _counting_executor(calls):
    def execute(kind, params, jobs=None):
        calls.append((kind, dict(params)))
        return {"kind": kind, "params": dict(params)}

    return execute


@pytest.fixture
def calls():
    return []


@pytest.fixture
def runtime(tmp_path, calls):
    return JobRuntime(
        ServiceConfig(
            root=tmp_path / "svc", workers=0,
            executor=_counting_executor(calls),
        )
    )


RUN = {"kernel": "corner_turn", "machine": "viram"}


class TestDedup:
    def test_identical_requests_collapse(self, runtime, calls):
        first = runtime.submit("run", RUN)
        second = runtime.submit("run", RUN)
        assert first.outcome == "admitted"
        assert second.outcome == "deduped"
        assert first.job.id == second.job.id
        assert runtime.run_pending() == 1
        assert len(calls) == 1

    def test_done_job_still_dedups_after_restart(self, runtime, calls,
                                                 tmp_path):
        jid = runtime.submit("run", RUN).job.id
        runtime.run_pending()
        reborn = JobRuntime(
            ServiceConfig(root=tmp_path / "svc", workers=0,
                          executor=_counting_executor(calls))
        )
        again = reborn.submit("run", RUN)
        assert again.outcome == "deduped"
        assert again.job.id == jid
        assert reborn.run_pending() == 0  # nothing to recompute
        assert len(calls) == 1

    def test_distinct_params_are_distinct_jobs(self, runtime):
        a = runtime.submit("run", RUN)
        b = runtime.submit("run", dict(RUN, seed=1))
        assert a.job.id != b.job.id
        assert b.outcome == "admitted"


class TestAdmissionLadder:
    def test_saturated_queue_rejects_everything(self, tmp_path, calls):
        runtime = JobRuntime(
            ServiceConfig(root=tmp_path / "svc", workers=0, max_queue=2,
                          executor=_counting_executor(calls))
        )
        runtime.submit("run", RUN)
        runtime.submit("run", dict(RUN, seed=1))
        refused = runtime.submit("run", dict(RUN, seed=2))
        assert refused.outcome == "rejected_saturated"
        assert refused.rejected
        assert refused.retry_after_s >= 1
        assert refused.job is None

    def test_watermark_sheds_heavy_kinds_first(self, tmp_path, calls):
        runtime = JobRuntime(
            ServiceConfig(root=tmp_path / "svc", workers=0, max_queue=4,
                          executor=_counting_executor(calls))
        )
        runtime.submit("run", RUN)
        runtime.submit("run", dict(RUN, seed=1))  # depth 2 == watermark
        shed = runtime.submit("sweep", {"cells": [RUN]})
        light = runtime.submit("run", dict(RUN, seed=2))
        assert shed.outcome == "rejected_shed"
        assert light.outcome == "admitted"

    def test_draining_rejects_with_503_outcome(self, runtime):
        runtime.drain(timeout=1)
        refused = runtime.submit("run", RUN)
        assert refused.outcome == "rejected_draining"

    def test_invalid_kind_raises_and_counts(self, runtime):
        before = SERVICE_STATS.get("rejected_invalid")
        with pytest.raises(ServiceError):
            runtime.submit("meltdown", {})
        assert SERVICE_STATS.get("rejected_invalid") == before + 1


class TestExecution:
    def test_failure_is_terminal_with_error(self, tmp_path):
        def explode(kind, params, jobs=None):
            raise ValueError("boom")

        runtime = JobRuntime(
            ServiceConfig(root=tmp_path / "svc", workers=0,
                          executor=explode)
        )
        job = runtime.submit("run", RUN).job
        runtime.run_pending()
        assert job.state == FAILED
        assert "ValueError" in job.error
        assert runtime.result_text(job.id) is None

    def test_result_bytes_are_canonical(self, runtime):
        job = runtime.submit("run", RUN).job
        runtime.run_pending()
        text = runtime.result_text(job.id)
        assert text is not None and text.endswith("\n")
        assert job.result_digest is not None
        assert job.state == DONE

    def test_deadline_reaches_supervisor_policy(self, tmp_path):
        from repro.resilience.supervisor import default_policy

        seen = []

        def probe(kind, params, jobs=None):
            seen.append(default_policy().deadline)
            return {}

        runtime = JobRuntime(
            ServiceConfig(root=tmp_path / "svc", workers=0,
                          executor=probe)
        )
        runtime.submit("run", RUN, deadline_s=7.5)
        runtime.run_pending()
        assert seen == [7.5]

    def test_workers_execute_asynchronously(self, tmp_path, calls):
        runtime = JobRuntime(
            ServiceConfig(root=tmp_path / "svc", workers=1,
                          executor=_counting_executor(calls))
        )
        runtime.start()
        job = runtime.submit("run", RUN).job
        assert runtime.wait(job.id, timeout=10)
        assert job.state == DONE
        census = runtime.drain(timeout=10)
        assert census["done"] == 1


class TestReplay:
    def test_running_job_is_replayed_on_restart(self, tmp_path, calls):
        config = ServiceConfig(root=tmp_path / "svc", workers=0,
                               executor=_counting_executor(calls))
        runtime = JobRuntime(config)
        job = runtime.submit("run", RUN).job
        runtime._transition(job, RUNNING)  # crash: RUNNING, no result

        reborn = JobRuntime(
            ServiceConfig(root=tmp_path / "svc", workers=0,
                          executor=_counting_executor(calls))
        )
        assert reborn.replayed_jobs == 1
        assert reborn.run_pending() == 1
        replayed = reborn.get(job.id)
        assert replayed.state == DONE
        assert replayed.replays == 1

    def test_pending_job_survives_restart(self, tmp_path, calls):
        runtime = JobRuntime(
            ServiceConfig(root=tmp_path / "svc", workers=0,
                          executor=_counting_executor(calls))
        )
        job = runtime.submit("run", RUN).job
        reborn = JobRuntime(
            ServiceConfig(root=tmp_path / "svc", workers=0,
                          executor=_counting_executor(calls))
        )
        assert reborn.get(job.id).state == PENDING
        assert reborn.run_pending() == 1
        assert reborn.get(job.id).state == DONE

    def test_illegal_transition_is_refused(self, runtime):
        job = runtime.submit("run", RUN).job
        runtime.run_pending()
        with pytest.raises(ServiceError):
            runtime._transition(job, RUNNING)


class TestConcurrency:
    def test_concurrent_identical_submissions_one_admission(
        self, runtime
    ):
        outcomes = []
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait()
            outcomes.append(runtime.submit("run", RUN).outcome)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(outcomes) == ["admitted"] + ["deduped"] * 7
