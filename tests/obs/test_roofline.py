"""Tests for roofline attribution (:mod:`repro.obs.roofline`)."""

import json

import pytest

from repro.mappings import registry
from repro.obs.ledger import recording
from repro.obs.roofline import (
    analyze_roofline,
    classify_category,
    ledger_fractions,
    render_roofline,
    roofline_records,
)


@pytest.fixture(scope="module")
def points(small_module_workloads):
    return analyze_roofline(small_module_workloads)


@pytest.fixture(scope="module")
def small_module_workloads():
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    return {
        "corner_turn": small_corner_turn(),
        "cslc": small_cslc(),
        "beam_steering": small_beam_steering(),
    }


class TestClassifyCategory:
    def test_paper_categories_land_where_documented(self):
        assert classify_category("read misses") == "memory"
        assert classify_category("dram row activations") == "memory"
        assert classify_category("streaming misses") == "memory"
        assert classify_category("kernel") == "compute"
        assert classify_category("twiddle recomputation") == "compute"
        assert classify_category("startup") == "other"
        assert classify_category("loop overhead") == "other"
        assert classify_category("network sequencing") == "other"

    def test_memory_keywords_beat_compute_keywords(self):
        # "load/store issue" contains both "load" (memory) and "issue"
        # (compute); memory is checked first by design.
        assert classify_category("load/store issue") == "memory"

    def test_case_insensitive(self):
        assert classify_category("DRAM Row Activations") == "memory"


class TestAnalyzeRoofline:
    def test_covers_every_registered_pair(self, points):
        expected = set(registry.available())
        assert {(p.kernel, p.machine) for p in points} == expected
        kernels = {p.kernel for p in points}
        assert {"corner_turn", "cslc", "beam_steering"} <= kernels

    def test_fractions_are_probabilities(self, points):
        for p in points:
            total = sum(p.fractions.values())
            assert total == pytest.approx(1.0, abs=1e-9)
            assert 0.0 <= p.memory_fraction <= 1.0

    def test_intensity_and_roofs_positive(self, points):
        for p in points:
            assert p.intensity >= 0.0
            assert p.peak > 0.0
            assert p.cycles > 0.0
            assert p.attainable <= p.peak + 1e-12

    def test_bound_classifications_are_valid(self, points):
        for p in points:
            assert p.roofline_bound in ("memory", "compute")
            assert p.ledger_bound in ("memory", "compute", "other")

    def test_memory_bound_iff_left_of_ridge(self, points):
        for p in points:
            if p.roofline_bound == "memory":
                assert p.intensity < p.ridge_intensity
            else:
                assert p.intensity >= p.ridge_intensity

    def test_records_roofline_events(self, small_module_workloads):
        with recording() as rec:
            pts = analyze_roofline(small_module_workloads)
        events = rec.events_of("roofline.point")
        assert len(events) == len(pts)
        payload = events[0]["payload"]
        assert set(payload) == {
            "kernel", "machine", "intensity", "memory_fraction", "bound",
        }


class TestLedgerFractions:
    def test_real_breakdown_sums_to_one(self, small_module_workloads):
        run = registry.run(
            "corner_turn", "viram",
            workload=small_module_workloads["corner_turn"],
        )
        fractions = ledger_fractions(run.breakdown)
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestRendering:
    def test_render_lists_all_pairs_and_footer(self, points):
        text = render_roofline(points)
        for p in points:
            assert p.kernel in text and p.machine in text
        footer = text.splitlines()[-1]
        n_memory = sum(1 for p in points if p.roofline_bound == "memory")
        assert footer.startswith(
            f"{n_memory}/{len(points)} pairs sit left of their ridge point"
        )

    def test_records_json_safe(self, points):
        records = roofline_records(points)
        text = json.dumps(records)
        parsed = json.loads(text)
        assert len(parsed) == len(points)
        for r in parsed:
            assert r["ridge_intensity"] is None or r["ridge_intensity"] > 0
            assert 0.0 <= r["memory_fraction"] <= 1.0
