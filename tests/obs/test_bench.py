"""Tests for the versioned BENCH schema (:mod:`repro.obs.bench`)."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA,
    bench_document,
    discover_bench_files,
    infer_unit,
    load_bench_metrics,
    write_bench_document,
)


class TestInferUnit:
    def test_units_from_names(self):
        assert infer_unit("cold_report_seconds") == "s"
        assert infer_unit("footprint_bytes") == "bytes"
        assert infer_unit("batch_speedup") == "x"
        assert infer_unit("run.corner_turn.viram.cycles") == "cycles"
        assert infer_unit("rows") == "count"


class TestBenchDocument:
    def test_envelope_shape(self):
        doc = bench_document(
            {"cold_report_seconds": 4.5, "rows_identical": True},
            git_sha="abc123",
        )
        assert doc["schema_version"] == BENCH_SCHEMA
        assert doc["git_sha"] == "abc123"
        assert doc["metrics"]["cold_report_seconds"] == 4.5
        # Units are inferred for numeric metrics only.
        assert doc["units"] == {"cold_report_seconds": "s"}

    def test_explicit_units_override(self):
        doc = bench_document({"x": 1.0}, units={"x": "furlongs"})
        assert doc["units"]["x"] == "furlongs"


class TestLoadBenchMetrics:
    def test_versioned_roundtrip(self, tmp_path):
        path = write_bench_document(
            tmp_path / "BENCH_X.json",
            {"cold_report_seconds": 4.5, "nested": {"inner_seconds": 1.0}},
        )
        metrics, version = load_bench_metrics(path)
        assert version == BENCH_SCHEMA
        assert metrics["cold_report_seconds"] == 4.5
        # Nested dicts flatten with dotted names, like legacy files.
        assert metrics["nested.inner_seconds"] == 1.0

    def test_legacy_flat_file_is_version_zero(self, tmp_path):
        path = tmp_path / "BENCH_OLD.json"
        path.write_text(
            json.dumps(
                {
                    "report_seconds": 2.0,
                    "rows_identical": True,
                    "stats": {"hits": 3},
                    "label": "ignored",
                }
            )
        )
        metrics, version = load_bench_metrics(path)
        assert version == 0
        assert metrics["report_seconds"] == 2.0
        assert metrics["rows_identical"] == 1.0  # bools become 0/1
        assert metrics["stats.hits"] == 3.0
        assert "label" not in metrics  # strings are not metrics

    def test_json_lines_per_run_fallback(self, tmp_path):
        path = tmp_path / "BENCH_PR3.json"
        lines = [
            {"kernel": "corner_turn", "machine": "viram",
             "cycles": 100.0, "percent_of_peak": 5.0, "note": "x"},
            {"kernel": "cslc", "machine": "imagine", "cycles": 200.0},
            {"schema": "repro-metrics/1"},  # header-ish line, no identity
        ]
        path.write_text("".join(json.dumps(l) + "\n" for l in lines))
        metrics, version = load_bench_metrics(path)
        assert version == 0
        assert metrics == {
            "run.corner_turn.viram.cycles": 100.0,
            "run.corner_turn.viram.percent_of_peak": 5.0,
            "run.cslc.imagine.cycles": 200.0,
        }

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "BENCH_LIST.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_bench_metrics(path)

    def test_committed_bench_files_all_load(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        files = discover_bench_files(root)
        assert files, "repo should have committed BENCH files"
        for path in files:
            metrics, version = load_bench_metrics(path)
            assert version >= 0
            assert metrics, f"{path.name} produced no metrics"


class TestDiscoverBenchFiles:
    def test_matches_bench_prefix_only(self, tmp_path):
        (tmp_path / "BENCH_PR9.json").write_text("{}")
        (tmp_path / "BENCH_a-b.c.json").write_text("{}")
        (tmp_path / "bench_lower.json").write_text("{}")
        (tmp_path / "BENCH_.json").write_text("{}")
        (tmp_path / "OTHER.json").write_text("{}")
        names = [p.name for p in discover_bench_files(tmp_path)]
        assert names == ["BENCH_PR9.json", "BENCH_a-b.c.json"]

    def test_missing_root_is_empty(self, tmp_path):
        assert discover_bench_files(tmp_path / "nope") == []


class TestBenchUtilsShim:
    def test_write_bench_stamps_git_sha_from_env(self, tmp_path, monkeypatch):
        import importlib.util
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        spec = importlib.util.spec_from_file_location(
            "bench_utils_under_test", root / "benchmarks" / "bench_utils.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        monkeypatch.setenv("REPRO_GIT_SHA", "feedbeef")
        path = module.write_bench(
            tmp_path / "BENCH_T.json", {"report_seconds": 1.0}
        )
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == BENCH_SCHEMA
        assert doc["git_sha"] == "feedbeef"
        assert doc["metrics"]["report_seconds"] == 1.0
