"""The chaos run must leave a parseable ledger whose supervisor events
mirror the structured incident log byte-for-byte (satellite of the
flight-recorder PR: the ledger is evidence, so chaos must not tear it).
"""

import json
import os
from pathlib import Path

from repro.cli import main
from repro.obs.ledger import read_ledger
from repro.resilience.stats import RESILIENCE


def test_chaos_check_leaves_parseable_mirrored_ledger(capsys):
    code = main(["check", "--chaos", "kill=1", "--fast", "--jobs", "2"])
    out = capsys.readouterr().out
    assert code == 0, out

    ledger_root = Path(os.environ["REPRO_OBS_DIR"]) / "ledger"
    files = sorted(ledger_root.glob("*.jsonl"))
    assert len(files) == 1, "one CLI session = one ledger file"
    events, corrupt = read_ledger(files[0])
    assert corrupt == [], "chaos must not tear the ledger"

    # The session is complete and the sequence gapless: no event was
    # lost to a killed worker (workers never write the ledger).
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "session.start"
    assert kinds[-1] == "session.end"
    assert "chaos.check" in kinds
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert events[-1]["payload"]["exit_code"] == 0

    # Injected faults produced supervisor incidents, and each incident's
    # ledger mirror carries the identical payload (sorted-key JSON).
    incidents = RESILIENCE.incidents()
    assert incidents, "chaos kill=1 should have produced incidents"
    mirrored = [
        e for e in events if e["kind"].startswith("supervisor.")
    ]
    assert len(mirrored) >= len(incidents)
    tail = mirrored[-len(incidents):]
    for incident, event in zip(incidents, tail):
        assert event["kind"] == f"supervisor.{incident['kind']}"
        assert (
            json.dumps(event["payload"], sort_keys=True)
            == json.dumps(incident["payload"], sort_keys=True)
        )
