"""Tests for the HTML dashboard (:mod:`repro.obs.dashboard`)."""

from repro.obs.dashboard import (
    build_dashboard,
    cache_hit_rates,
    history_series,
    roofline_svg,
    sparkline_svg,
    write_dashboard,
)


def _history():
    return [
        {
            "session": "s1",
            "command": "report",
            "metrics": {"report.wall_seconds": 1.0, "label": "not-a-number"},
            "telemetry": {"cache.hits": 10, "cache.misses": 2},
        },
        {
            "session": "s2",
            "command": "report",
            "metrics": {"report.wall_seconds": 1.2},
            "telemetry": {"cache.hits": 30, "cache.misses": 0},
        },
    ]


def _roofline():
    return [
        {
            "kernel": "corner_turn",
            "machine": "viram",
            "intensity_ops_per_word": 0.5,
            "achieved_ops_per_cycle": 0.1,
            "peak_ops_per_cycle": 4.0,
            "word_rate_words_per_cycle": 2.0,
            "ridge_intensity": 2.0,
            "memory_fraction": 0.8,
            "roofline_bound": "memory",
        },
        {
            "kernel": "cslc",
            "machine": "imagine",
            "intensity_ops_per_word": 8.0,
            "achieved_ops_per_cycle": 3.0,
            "peak_ops_per_cycle": 16.0,
            "word_rate_words_per_cycle": 1.0,
            "ridge_intensity": 16.0,
            "memory_fraction": 0.4,
            "roofline_bound": "memory",
        },
    ]


class TestHistorySeries:
    def test_collects_numeric_metrics_oldest_first(self):
        series = history_series(_history())
        assert series["report.wall_seconds"] == [1.0, 1.2]
        assert "label" not in series

    def test_limit_keeps_most_recent(self):
        records = [
            {"metrics": {"m": float(i)}} for i in range(30)
        ]
        series = history_series(records, limit=5)
        assert series["m"] == [25.0, 26.0, 27.0, 28.0, 29.0]


class TestSparkline:
    def test_empty_series_is_empty_string(self):
        assert sparkline_svg([]) == ""

    def test_polyline_has_one_point_per_value(self):
        svg = sparkline_svg([1.0, 2.0, 3.0])
        assert svg.startswith("<svg")
        points = svg.split('points="')[1].split('"')[0]
        assert len(points.split()) == 3

    def test_flat_series_does_not_divide_by_zero(self):
        assert "<svg" in sparkline_svg([5.0, 5.0, 5.0])


class TestCacheHitRates:
    def test_pairs_hits_with_misses(self):
        rows = cache_hit_rates(
            {"cache.hits": 9, "cache.misses": 1, "disk.hits": 0,
             "disk.misses": 0, "orphan.hits": 3}
        )
        by_cache = {r["cache"]: r for r in rows}
        assert by_cache["cache"]["rate"] == 0.9
        assert by_cache["disk"]["rate"] is None  # 0/0: undefined, not crash
        assert "orphan" not in by_cache  # no misses counter: skipped


class TestRooflineSvg:
    def test_empty_records_degrade_gracefully(self):
        assert roofline_svg([]) == "<p>no roofline data</p>"

    def test_one_point_and_roof_pair_per_entry(self):
        svg = roofline_svg(_roofline())
        assert svg.count('class="point"') == 2
        assert svg.count('class="roof-cpu"') == 2  # one per machine
        assert 'data-kernel="corner_turn"' in svg
        assert "corner_turn/viram" in svg


class TestBuildDashboard:
    def test_full_document(self):
        doc = build_dashboard(_history(), _roofline())
        assert doc.startswith("<!DOCTYPE html>")
        assert doc.endswith("</body></html>")
        assert "s2" in doc  # latest session shown
        assert "roofline attribution" in doc
        assert "report.wall_seconds" in doc
        assert "100.0%" in doc  # latest cache snapshot: 30 hits / 0 misses

    def test_empty_inputs_still_render(self):
        doc = build_dashboard([], [])
        assert "no history yet" in doc
        assert "no roofline data" in doc
        assert "no cache counters" in doc

    def test_timeline_embedded_when_given(self):
        doc = build_dashboard([], [], timeline="<svg id='tl'></svg>")
        assert "utilization timeline" in doc
        assert "<svg id='tl'></svg>" in doc

    def test_write_dashboard_atomic(self, tmp_path):
        path = write_dashboard(tmp_path / "dash.html", _history(), _roofline())
        assert path.read_text().startswith("<!DOCTYPE html>")
