"""Tests for live progress reporting (:mod:`repro.obs.progress`)."""

import io
import json

import pytest

from repro.errors import ConfigError
from repro.obs.progress import (
    ProgressReporter,
    current_reporter,
    progress_reporting,
    resolve_mode,
)


class TestResolveMode:
    def test_explicit_modes_pass_through(self):
        assert resolve_mode("off") == "off"
        assert resolve_mode("tty") == "tty"
        assert resolve_mode("jsonl") == "jsonl"
        assert resolve_mode("JSONL") == "jsonl"

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "jsonl")
        assert resolve_mode(None) == "jsonl"

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "jsonl")
        assert resolve_mode("off") == "off"

    def test_auto_without_tty_is_off(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        # Under pytest's capture stderr is not a terminal.
        assert resolve_mode("auto") == "off"
        assert resolve_mode(None) == "off"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError, match="progress mode"):
            resolve_mode("loud")


class TestJsonlReporter:
    def _lines(self, stream):
        return [json.loads(line) for line in stream.getvalue().splitlines()]

    def test_sweep_lifecycle_emits_events(self):
        stream = io.StringIO()
        rep = ProgressReporter("jsonl", stream=stream)
        rep.begin_sweep("table3", total_cells=3, cached_cells=1,
                        total_units=2, batch_units=1, batched_cells=2)
        rep.advance(cells=2, units=1)
        rep.note_retry()
        rep.note_ladder("serial")
        rep.advance(cells=0, units=1)
        rep.end_sweep()
        lines = self._lines(stream)
        assert [r["event"] for r in lines] == [
            "begin", "advance", "retry", "ladder", "advance", "end",
        ]
        begin, end = lines[0], lines[-1]
        assert begin["cells_total"] == 3
        # Cached cells count as already done at begin time.
        assert begin["cells_done"] == 1
        assert begin["cells_cached"] == 1
        assert end["cells_done"] == 3
        assert end["units_done"] == 2
        assert end["retries"] == 1
        assert end["ladder"] == "serial"
        assert end["sweep"] == "table3"

    def test_lines_are_sorted_key_json(self):
        stream = io.StringIO()
        rep = ProgressReporter("jsonl", stream=stream)
        rep.begin_sweep("s", total_cells=1)
        line = stream.getvalue().splitlines()[0]
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_broken_stream_never_raises(self):
        stream = io.StringIO()
        rep = ProgressReporter("jsonl", stream=stream)
        rep.begin_sweep("s", total_cells=1)
        stream.close()
        rep.advance()
        rep.end_sweep()  # all swallowed


class TestTtyReporter:
    def test_repaints_with_carriage_return(self):
        stream = io.StringIO()
        clock = iter(float(i) for i in range(100))
        rep = ProgressReporter("tty", stream=stream, clock=lambda: next(clock))
        rep.begin_sweep("table3", total_cells=4, total_units=2)
        rep.advance(cells=2, units=1)
        rep.end_sweep()
        text = stream.getvalue()
        assert "\r\x1b[2K" in text
        assert "table3: 2/4 cells" in text
        assert text.endswith("\n")  # painted line gets a final newline

    def test_throttles_unforced_repaints(self):
        stream = io.StringIO()
        rep = ProgressReporter("tty", stream=stream, clock=lambda: 1.0)
        rep.begin_sweep("s", total_cells=10)  # forced paint at t=1.0
        first = stream.getvalue()
        rep.advance()  # same clock instant: throttled away
        assert stream.getvalue() == first
        assert rep.updates == 2  # state still advanced

    def test_status_line_mentions_extras_only_when_present(self):
        rep = ProgressReporter("tty", stream=io.StringIO())
        rep.begin_sweep("s", total_cells=2)
        assert rep.status_line() == "s: 0/2 cells"
        rep.note_retry()
        rep.note_ladder("isolating")
        line = rep.status_line()
        assert "retries=1" in line
        assert "ladder=isolating" in line

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ProgressReporter("auto")


class TestProgressReporting:
    def test_off_yields_none_and_installs_nothing(self):
        with progress_reporting("off") as rep:
            assert rep is None
            assert current_reporter() is None

    def test_installs_and_restores(self):
        stream = io.StringIO()
        with progress_reporting("jsonl", stream=stream) as rep:
            assert current_reporter() is rep
            rep.begin_sweep("s", total_cells=1)
        assert current_reporter() is None

    def test_painted_tty_line_closed_on_exit(self):
        stream = io.StringIO()
        with progress_reporting("tty", stream=stream) as rep:
            rep.begin_sweep("s", total_cells=1)
            assert rep._painted
        assert stream.getvalue().endswith("\n")
