"""Tests for the flight recorder (:mod:`repro.obs.ledger`)."""

import json

from repro.obs import ledger
from repro.obs.ledger import (
    FlightRecorder,
    current_recorder,
    end_session,
    obs_enabled,
    read_ledger,
    record,
    recording,
    session_id,
    start_session,
)


class TestSessionId:
    def test_deterministic_for_fixed_inputs(self):
        a = session_id("report", ["--jobs", "2"], pid=100, started=1.5)
        b = session_id("report", ["--jobs", "2"], pid=100, started=1.5)
        assert a == b
        assert len(a) == 12
        int(a, 16)  # hex

    def test_distinguishes_command_argv_pid_and_time(self):
        base = session_id("report", ["-j", "2"], pid=1, started=1.0)
        assert session_id("check", ["-j", "2"], pid=1, started=1.0) != base
        assert session_id("report", ["-j", "4"], pid=1, started=1.0) != base
        assert session_id("report", ["-j", "2"], pid=2, started=1.0) != base
        assert session_id("report", ["-j", "2"], pid=1, started=2.0) != base


class TestFlightRecorder:
    def test_seq_is_gapless_and_counts_tally(self):
        rec = FlightRecorder("abc")
        rec.record("sweep.plan", requests=3)
        rec.record("planner.dispatch", cells=1)
        rec.record("planner.dispatch", cells=2)
        assert [e["seq"] for e in rec.events] == [0, 1, 2]
        assert rec.n_events == 3
        assert rec.counts() == {"sweep.plan": 1, "planner.dispatch": 2}

    def test_events_of_matches_prefix_and_exact(self):
        rec = FlightRecorder("abc")
        rec.record("supervisor.retry", chunks=1)
        rec.record("supervisor.isolate", key="k")
        rec.record("supervised", x=1)  # prefix match must not catch this
        kinds = [e["kind"] for e in rec.events_of("supervisor")]
        assert kinds == ["supervisor.retry", "supervisor.isolate"]

    def test_writes_jsonl_file(self, tmp_path):
        path = tmp_path / "ledger" / "abc.jsonl"
        rec = FlightRecorder("abc", path)
        rec.record("session.start", command="run")
        rec.record("sweep.plan", requests=1)
        events, corrupt = read_ledger(path)
        assert not corrupt
        assert [e["kind"] for e in events] == ["session.start", "sweep.plan"]
        assert events[1]["payload"] == {"requests": 1}
        assert all(e["session"] == "abc" for e in events)

    def test_write_errors_counted_never_raised(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way")
        rec = FlightRecorder("abc", target / "x.jsonl")
        rec.record("sweep.plan")  # must not raise
        assert rec.write_errors == 1
        assert rec.n_events == 1  # event still kept in memory

    def test_telemetry_shape(self):
        rec = FlightRecorder("abc")
        rec.record("sweep.plan")
        rec.record("sweep.plan")
        tele = rec.telemetry()
        assert tele["session"] == "abc"
        assert tele["events"] == 2
        assert tele["write_errors"] == 0
        assert tele["events.sweep.plan"] == 2


class TestModuleRecord:
    def test_noop_when_no_recorder(self):
        assert current_recorder() is None
        assert record("sweep.plan", requests=1) is None

    def test_recording_installs_and_restores(self):
        with recording() as rec:
            assert current_recorder() is rec
            event = record("sweep.plan", requests=2)
            assert event["payload"] == {"requests": 2}
        assert current_recorder() is None

    def test_recording_is_reentrant(self):
        with recording() as outer:
            with recording() as inner:
                assert current_recorder() is inner
            assert current_recorder() is outer


class TestSessions:
    def test_start_and_end_session_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
        rec = start_session("report", ["--jobs", "2"])
        assert rec is not None
        assert current_recorder() is rec
        record("sweep.plan", requests=5)
        ended = end_session(0)
        assert ended is rec
        assert current_recorder() is None

        events, corrupt = read_ledger(rec.path)
        assert not corrupt
        kinds = [e["kind"] for e in events]
        assert kinds == ["session.start", "sweep.plan", "session.end"]
        start = events[0]["payload"]
        assert start["command"] == "report"
        assert start["argv"] == ["--jobs", "2"]
        assert start["schema"] == ledger.LEDGER_SCHEMA
        end = events[-1]["payload"]
        assert end["exit_code"] == 0
        assert end["events"] == 2  # start + sweep.plan, before the end event
        assert end["wall_seconds"] >= 0

    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not obs_enabled()
        assert start_session("report", []) is None
        assert current_recorder() is None

    def test_end_session_without_start_is_noop(self):
        assert end_session(1) is None

    def test_start_session_survives_unwritable_root(
        self, tmp_path, monkeypatch
    ):
        blocker = tmp_path / "obsfile"
        blocker.write_text("in the way")
        monkeypatch.setenv("REPRO_OBS_DIR", str(blocker))
        assert start_session("report", []) is None


class TestReadLedger:
    def test_torn_tail_quarantined_not_trusted(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"kind": "a", "seq": 0}) + "\n"
            + '{"kind": "b", "seq": 1'  # torn mid-write
        )
        events, corrupt = read_ledger(path)
        assert [e["kind"] for e in events] == ["a"]
        assert corrupt == ['{"kind": "b", "seq": 1']

    def test_non_object_lines_are_corrupt(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('[1, 2]\n{"kind": "ok"}\n')
        events, corrupt = read_ledger(path)
        assert [e["kind"] for e in events] == ["ok"]
        assert corrupt == ["[1, 2]"]

    def test_missing_file_is_empty(self, tmp_path):
        assert read_ledger(tmp_path / "nope.jsonl") == ([], [])
