"""Tests for the perf-regression gate (:mod:`repro.obs.regress`)."""

import json

from repro.obs.history import append_history, build_record, history_path
from repro.obs.regress import (
    bench_baselines,
    classify_metric,
    render_regress,
    run_regress,
    time_rtol,
)


def _push(tmp_path, command="report", **metrics):
    record = build_record(
        command,
        [],
        session="s" * 12,
        exit_code=0,
        wall_seconds=metrics.pop("_wall", 1.0),
        metrics=metrics,
    )
    append_history(record, root=tmp_path)
    return record


def _regress(tmp_path, bench_root=None, **kwargs):
    return run_regress(
        history_path(tmp_path),
        bench_root=bench_root if bench_root is not None else tmp_path,
        **kwargs,
    )


class TestClassifyMetric:
    def test_classes(self):
        assert classify_metric("run.corner_turn.viram.cycles") == "exact"
        assert classify_metric("run.cslc.imagine.percent_of_peak") == "exact"
        assert classify_metric("report.wall_seconds") == "time"
        assert classify_metric("cold_report.seconds") == "time"
        assert classify_metric("cache.hits") == "info"

    def test_time_rtol_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_REGRESS_TIME_RTOL", "0.25")
        assert time_rtol() == 0.25
        monkeypatch.setenv("REPRO_REGRESS_TIME_RTOL", "bogus")
        assert time_rtol() == 0.5


class TestRunRegress:
    def test_empty_history_is_ok_but_noted(self, tmp_path):
        report = _regress(tmp_path)
        assert report.ok and report.exit_code == 0
        assert any("no history records" in n for n in report.notes)

    def test_identical_records_pass(self, tmp_path):
        metrics = {"run.corner_turn.viram.cycles": 1000.0}
        _push(tmp_path, **metrics)
        _push(tmp_path, **metrics)
        report = _regress(tmp_path)
        assert report.ok
        assert any(c.status == "ok" for c in report.comparisons)

    def test_exact_drift_fails_both_directions(self, tmp_path):
        _push(tmp_path, **{"run.corner_turn.viram.cycles": 1000.0})
        _push(tmp_path, **{"run.corner_turn.viram.cycles": 1010.0})
        report = _regress(tmp_path)
        assert not report.ok and report.exit_code == 1
        (bad,) = report.regressions
        assert bad.metric == "run.corner_turn.viram.cycles"
        assert "drifted" in bad.detail

        # A *faster* wrong number is still a wrong number.
        _push(tmp_path, **{"run.corner_turn.viram.cycles": 990.0})
        assert not _regress(tmp_path).ok

    def test_time_slowdown_fails_speedup_passes(self, tmp_path):
        _push(tmp_path, _wall=1.0)
        _push(tmp_path, _wall=2.0)  # +100% > default +50% tolerance
        report = _regress(tmp_path)
        (bad,) = report.regressions
        assert bad.metric == "report.wall_seconds"
        assert "slower" in bad.detail

        _push(tmp_path, _wall=0.1)  # big speedup: never a regression
        assert _regress(tmp_path).ok

    def test_exact_metric_disappearing_fails(self, tmp_path):
        _push(
            tmp_path,
            **{
                "run.corner_turn.viram.cycles": 1000.0,
                "run.cslc.viram.cycles": 2000.0,
            },
        )
        _push(tmp_path, **{"run.corner_turn.viram.cycles": 1000.0})
        report = _regress(tmp_path)
        (bad,) = report.regressions
        assert bad.metric == "run.cslc.viram.cycles"
        assert "disappeared" in bad.detail

    def test_command_filter(self, tmp_path):
        _push(tmp_path, command="report",
              **{"run.corner_turn.viram.cycles": 1000.0})
        _push(tmp_path, command="check",
              **{"run.corner_turn.viram.cycles": 5000.0})
        # Unfiltered the check record drifts against the report baseline;
        # filtered to `report` only the matching record is considered.
        assert not _regress(tmp_path).ok
        assert _regress(tmp_path, command="report").ok

    def test_median_baseline_shrugs_off_one_outlier(self, tmp_path):
        for wall in (1.0, 1.0, 50.0, 1.0):
            _push(tmp_path, _wall=wall)
        _push(tmp_path, _wall=1.2)  # vs median 1.0, within +50%
        assert _regress(tmp_path).ok


class TestBenchBaselines:
    def test_versioned_legacy_and_jsonl_all_load(self, tmp_path):
        from repro.obs.bench import write_bench_document

        write_bench_document(
            tmp_path / "BENCH_V1.json",
            {"run.corner_turn.viram.cycles": 1000.0},
            git_sha="abc",
        )
        (tmp_path / "BENCH_LEGACY.json").write_text(
            json.dumps({"cold_report_seconds": 3.0, "rows_identical": True})
        )
        (tmp_path / "BENCH_RUNS.json").write_text(
            json.dumps(
                {"kernel": "cslc", "machine": "viram", "cycles": 42.0}
            )
            + "\n"
            + json.dumps(
                {"kernel": "cslc", "machine": "imagine",
                 "percent_of_peak": 7.5}
            )
            + "\n"
        )
        (tmp_path / "not_bench.json").write_text("{}")
        bench, errors = bench_baselines(tmp_path)
        assert not errors
        assert set(bench) == {
            "BENCH_V1.json", "BENCH_LEGACY.json", "BENCH_RUNS.json",
        }
        assert bench["BENCH_V1.json"]["run.corner_turn.viram.cycles"] == 1000.0
        # Legacy alias maps onto the history metric name.
        assert bench["BENCH_LEGACY.json"]["report.wall_seconds"] == 3.0
        # JSON-lines per-run records key by kernel x machine.
        assert bench["BENCH_RUNS.json"]["run.cslc.viram.cycles"] == 42.0
        assert (
            bench["BENCH_RUNS.json"]["run.cslc.imagine.percent_of_peak"]
            == 7.5
        )

    def test_unreadable_file_reported_as_error(self, tmp_path):
        (tmp_path / "BENCH_BAD.json").write_text("{{{")
        bench, errors = bench_baselines(tmp_path)
        assert bench == {}
        assert errors and "BENCH_BAD.json" in errors[0]

    def test_gate_against_bench_exact_metrics(self, tmp_path):
        from repro.obs.bench import write_bench_document

        write_bench_document(
            tmp_path / "BENCH_MODEL.json",
            {"run.corner_turn.viram.cycles": 1000.0},
            git_sha=None,
        )
        _push(tmp_path, **{"run.corner_turn.viram.cycles": 1000.0})
        assert _regress(tmp_path).ok

        _push(tmp_path, **{"run.corner_turn.viram.cycles": 1001.0})
        report = _regress(tmp_path)
        assert any(
            c.source == "BENCH_MODEL.json" and c.status == "regressed"
            for c in report.comparisons
        )

    def test_bench_timings_are_context_only(self, tmp_path):
        (tmp_path / "BENCH_TIMING.json").write_text(
            json.dumps({"cold_report_seconds": 0.001})
        )
        _push(tmp_path, _wall=9.0)  # way slower than the committed timing
        report = _regress(tmp_path)
        assert report.ok
        assert any(
            c.source == "BENCH_TIMING.json" and c.status == "info"
            for c in report.comparisons
        )

    def test_record_without_exact_metrics_not_held_to_model_bench(
        self, tmp_path
    ):
        from repro.obs.bench import write_bench_document

        write_bench_document(
            tmp_path / "BENCH_MODEL.json",
            {"run.corner_turn.viram.cycles": 1000.0},
            git_sha=None,
        )
        _push(tmp_path, command="run")  # only run.wall_seconds, no sweep
        report = _regress(tmp_path)
        assert report.ok
        assert any(
            c.metric == "run.corner_turn.viram.cycles" and c.status == "info"
            for c in report.comparisons
        )


class TestRender:
    def test_pass_and_fail_verdicts(self, tmp_path):
        _push(tmp_path, **{"run.corner_turn.viram.cycles": 1000.0})
        _push(tmp_path, **{"run.corner_turn.viram.cycles": 1000.0})
        text = render_regress(_regress(tmp_path))
        assert text.splitlines()[0] == "metrics regression gate"
        assert text.splitlines()[-1] == "PASS: no regressions"

        _push(tmp_path, **{"run.corner_turn.viram.cycles": 2000.0})
        text = render_regress(_regress(tmp_path))
        assert "FAIL: 1 regression(s)" in text.splitlines()[-1]
        assert "[FAIL] run.corner_turn.viram.cycles" in text
