"""Tests for the metrics history (:mod:`repro.obs.history`)."""

import json

from repro.obs.history import (
    HISTORY_SCHEMA,
    append_history,
    build_record,
    deterministic_run_metrics,
    history_path,
    latest_record,
    quarantine_corrupt,
    read_history,
)


def _record(command="report", **metrics):
    return build_record(
        command,
        ["--jobs", "2"],
        session="abc123def456",
        exit_code=0,
        wall_seconds=1.25,
        metrics=metrics,
    )


class TestBuildRecord:
    def test_shape_and_identity(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "cafe1234")
        rec = _record(**{"run.corner_turn.viram.cycles": 100.0})
        assert rec["schema_version"] == HISTORY_SCHEMA
        assert rec["command"] == "report"
        assert rec["argv"] == ["--jobs", "2"]
        assert rec["session"] == "abc123def456"
        assert rec["git_sha"] == "cafe1234"
        assert rec["model_version"]
        assert isinstance(rec["telemetry"], dict)
        # Wall time is surfaced both as a field and as a metric.
        assert rec["wall_seconds"] == 1.25
        assert rec["metrics"]["report.wall_seconds"] == 1.25
        assert rec["metrics"]["run.corner_turn.viram.cycles"] == 100.0

    def test_record_is_json_serializable(self):
        json.dumps(_record())

    def test_git_sha_none_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        assert _record()["git_sha"] is None


class TestAppendAndRead:
    def test_roundtrip(self, tmp_path):
        path = history_path(tmp_path)
        assert append_history(_record(), root=tmp_path) == path
        append_history(_record(command="check"), root=tmp_path)
        records, corrupt = read_history(path)
        assert not corrupt
        assert [r["command"] for r in records] == ["report", "check"]

    def test_corrupt_tail_reported_not_raised(self, tmp_path):
        path = history_path(tmp_path)
        append_history(_record(), root=tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"command": "torn')
        records, corrupt = read_history(path)
        assert len(records) == 1
        assert corrupt == ['{"command": "torn']

    def test_newer_schema_is_corrupt_not_trusted(self, tmp_path):
        path = history_path(tmp_path)
        future = dict(_record(), schema_version=HISTORY_SCHEMA + 1)
        append_history(future, root=tmp_path)
        records, corrupt = read_history(path)
        assert records == []
        assert len(corrupt) == 1

    def test_missing_file_is_empty(self, tmp_path):
        assert read_history(tmp_path / "nope.jsonl") == ([], [])


class TestLatestRecord:
    def test_picks_newest_optionally_by_command(self, tmp_path):
        path = history_path(tmp_path)
        append_history(_record(command="report"), root=tmp_path)
        append_history(_record(command="check"), root=tmp_path)
        assert latest_record(path)["command"] == "check"
        assert latest_record(path, command="report")["command"] == "report"
        assert latest_record(path, command="pipeline") is None


class TestQuarantine:
    def test_heals_file_and_saves_evidence(self, tmp_path):
        path = history_path(tmp_path)
        append_history(_record(), root=tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('{"half": ')
        assert quarantine_corrupt(path) == 2
        records, corrupt = read_history(path)
        assert len(records) == 1 and not corrupt
        evidence = path.with_suffix(".quarantine").read_text()
        assert "not json at all" in evidence
        assert '{"half":' in evidence

    def test_clean_file_untouched(self, tmp_path):
        path = history_path(tmp_path)
        append_history(_record(), root=tmp_path)
        before = path.read_text()
        assert quarantine_corrupt(path) == 0
        assert path.read_text() == before
        assert not path.with_suffix(".quarantine").exists()


class TestDeterministicRunMetrics:
    def test_covers_every_pair_twice(self):
        from repro.mappings import registry

        metrics = deterministic_run_metrics()
        pairs = list(registry.available())
        assert len(metrics) == 2 * len(pairs)
        for kernel, machine in pairs:
            assert metrics[f"run.{kernel}.{machine}.cycles"] > 0
            pct = metrics[f"run.{kernel}.{machine}.percent_of_peak"]
            assert 0.0 <= pct <= 100.0
