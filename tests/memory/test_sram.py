"""Tests for :mod:`repro.memory.sram`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigError
from repro.memory.sram import Scratchpad


class TestAllocation:
    def test_allocate_and_free(self):
        pad = Scratchpad("srf", 1000)
        pad.allocate("a", 400)
        assert pad.used_bytes == 400
        assert pad.free_bytes == 600
        pad.free("a")
        assert pad.used_bytes == 0

    def test_over_capacity_raises(self):
        pad = Scratchpad("srf", 1000)
        pad.allocate("a", 800)
        with pytest.raises(CapacityError):
            pad.allocate("b", 300)

    def test_exact_fit_allowed(self):
        pad = Scratchpad("srf", 1000)
        pad.allocate("a", 1000)
        assert pad.free_bytes == 0

    def test_duplicate_label_rejected(self):
        pad = Scratchpad("srf", 1000)
        pad.allocate("a", 100)
        with pytest.raises(ConfigError):
            pad.allocate("a", 100)

    def test_free_unknown_rejected(self):
        with pytest.raises(ConfigError):
            Scratchpad("srf", 1000).free("ghost")

    def test_negative_allocation_rejected(self):
        with pytest.raises(ConfigError):
            Scratchpad("srf", 1000).allocate("a", -1)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Scratchpad("srf", 0)


class TestBookkeeping:
    def test_high_water_mark(self):
        pad = Scratchpad("srf", 1000)
        pad.allocate("a", 700)
        pad.free("a")
        pad.allocate("b", 300)
        assert pad.high_water_bytes == 700

    def test_fits(self):
        pad = Scratchpad("srf", 1000)
        pad.allocate("a", 900)
        assert pad.fits(100)
        assert not pad.fits(101)

    def test_reset(self):
        pad = Scratchpad("srf", 1000)
        pad.allocate("a", 500)
        pad.reset()
        assert pad.used_bytes == 0
        assert pad.high_water_bytes == 0

    def test_paper_sizing_srf(self):
        """The corner-turn matrix (4 MB) must not fit Imagine's SRF."""
        srf = Scratchpad("imagine-srf", 128 * 1024)
        assert not srf.fits(4 * 1024 * 1024)

    def test_paper_sizing_raw_block(self):
        """A 64x64 word block (16 KB) fits a Raw tile's 32 KB."""
        tile = Scratchpad("raw-tile", 32 * 1024)
        tile.allocate("block", 64 * 64 * 4)


@given(st.lists(st.integers(0, 200), min_size=1, max_size=30))
def test_used_is_sum_of_live_allocations(sizes):
    pad = Scratchpad("pad", 100_000)
    for i, size in enumerate(sizes):
        pad.allocate(f"a{i}", size)
    assert pad.used_bytes == sum(sizes)
    for i in range(0, len(sizes), 2):
        pad.free(f"a{i}")
    expected = sum(s for i, s in enumerate(sizes) if i % 2 == 1)
    assert pad.used_bytes == expected
