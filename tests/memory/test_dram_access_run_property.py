"""Property tests for ``DRAM.access_run`` on awkward geometries.

The base equivalence suite (``test_dram.py``) samples geometries
uniformly, so power-of-two bank/row counts — where the address→(bank,
row) mapping degenerates to masks and shifts — dominate the draws.
This module pins the hard cases: *every* example here uses a
non-power-of-two bank count or row size (true modulo arithmetic), and
zero-length segments are injected deliberately, including runs that are
empty end to end.

Three paths must agree exactly: one batched :meth:`DRAM.access_run`
call, per-segment :meth:`DRAM.access` calls on a second instance, and
the pure-Python :class:`DRAMReference` on a third.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.dram import DRAM, DRAMConfig, DRAMReference
from repro.memory.streams import Custom, Sequential, Strided


def make_config(banks, row_words, policy):
    return DRAMConfig(
        name="nonpow2-test",
        banks=banks,
        row_words=row_words,
        row_cycle=3.0,
        access_latency=10.0,
        activation_policy=policy,
    )


def _is_pow2(n):
    return n & (n - 1) == 0


# At least one of (banks, row_words) is never a power of two.
_geometries = st.tuples(
    st.integers(1, 13), st.integers(5, 130)
).filter(lambda g: not (_is_pow2(g[0]) and _is_pow2(g[1])))


@st.composite
def patterns_with_empties(draw):
    """Pattern sequences where zero-length segments are first-class:
    every sequence embeds at least one, and some are empty throughout."""
    n = draw(st.integers(1, 6))
    patterns = []
    for _ in range(n):
        kind = draw(
            st.sampled_from(["empty", "seq", "zero-seq", "strided", "custom"])
        )
        if kind == "empty":
            patterns.append(Custom([]))
        elif kind == "zero-seq":
            patterns.append(Sequential(draw(st.integers(0, 500)), 0))
        elif kind == "seq":
            patterns.append(
                Sequential(draw(st.integers(0, 500)), draw(st.integers(0, 80)))
            )
        elif kind == "strided":
            patterns.append(
                Strided(
                    draw(st.integers(0, 500)),
                    draw(st.integers(0, 40)),
                    draw(st.integers(1, 200)),
                )
            )
        else:
            patterns.append(
                Custom(draw(st.lists(st.integers(0, 2000), max_size=60)))
            )
    # Guarantee the batch contains a zero-length segment somewhere.
    patterns.insert(draw(st.integers(0, len(patterns))), Custom([]))
    return patterns


def _run_batch(dram, patterns, rate=4.0):
    arrays = [p.addresses() for p in patterns]
    return dram.access_run(
        np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64),
        np.asarray([a.size for a in arrays], dtype=np.int64),
        np.full(len(patterns), rate),
    )


@settings(max_examples=80, deadline=None)
@given(
    patterns_with_empties(),
    _geometries,
    st.sampled_from(["bank-parallel", "serialized"]),
)
def test_batch_equals_scalar_equals_reference(patterns, geometry, policy):
    banks, row_words = geometry
    config = make_config(banks, row_words, policy)
    batched = DRAM(config)
    scalar = DRAM(config)
    reference = DRAMReference(config)

    batch = _run_batch(batched, patterns)
    assert batch.n_segments == len(patterns)
    for i, pattern in enumerate(patterns):
        seg = batch.segment(i)
        scalar_cost = scalar.access(pattern, rate_words_per_cycle=4)
        ref_cost = reference.access(pattern, rate_words_per_cycle=4)
        assert seg.words == scalar_cost.words == ref_cost.words
        assert (
            seg.activations
            == scalar_cost.activations
            == ref_cost.activations
        )
        assert seg.issue_cycles == pytest.approx(ref_cost.issue_cycles)
        assert seg.activation_cycles == pytest.approx(
            ref_cost.activation_cycles
        )

    # Open-row state after the run is identical on every path, so a
    # subsequent access would also agree.
    assert batched.open_rows == scalar.open_rows
    assert batched.total_activations == scalar.total_activations
    assert batched.total_words == scalar.total_words


@settings(max_examples=40, deadline=None)
@given(_geometries, st.sampled_from(["bank-parallel", "serialized"]))
def test_all_empty_run_costs_nothing(geometry, policy):
    banks, row_words = geometry
    dram = DRAM(make_config(banks, row_words, policy))
    batch = _run_batch(dram, [Custom([]), Sequential(7, 0), Custom([])])
    for i in range(batch.n_segments):
        seg = batch.segment(i)
        assert seg.words == 0
        assert seg.activations == 0
        assert seg.issue_cycles == 0.0
        assert seg.activation_cycles == 0.0
    assert dram.total_activations == 0
    assert dram.total_words == 0
    assert dram.open_rows == {}


@settings(max_examples=40, deadline=None)
@given(
    _geometries,
    st.sampled_from(["bank-parallel", "serialized"]),
    st.lists(st.integers(0, 2000), min_size=1, max_size=60),
)
def test_empty_segments_leave_state_untouched(geometry, policy, addresses):
    """A zero-length segment between two real ones must not disturb the
    open-row threading: removing it changes nothing."""
    banks, row_words = geometry
    config = make_config(banks, row_words, policy)
    with_gap = DRAM(config)
    without_gap = DRAM(config)
    half = len(addresses) // 2
    first, second = Custom(addresses[:half]), Custom(addresses[half:])
    gap_batch = _run_batch(with_gap, [first, Custom([]), second])
    flat_batch = _run_batch(without_gap, [first, second])
    assert gap_batch.segment(0).activations == flat_batch.segment(0).activations
    assert gap_batch.segment(2).activations == flat_batch.segment(1).activations
    assert with_gap.open_rows == without_gap.open_rows
    assert with_gap.total_activations == without_gap.total_activations
