"""Tests for :mod:`repro.memory.cache`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memory.cache import CacheConfig, CacheHierarchy, CacheLevel


def l1_config(**overrides):
    defaults = dict(
        name="l1", size_bytes=1024, line_bytes=32, assoc=2, hit_cycles=0.0
    )
    defaults.update(overrides)
    return CacheConfig(**defaults)


def l2_config(**overrides):
    defaults = dict(
        name="l2", size_bytes=8192, line_bytes=32, assoc=4, hit_cycles=10.0
    )
    defaults.update(overrides)
    return CacheConfig(**defaults)


class TestConfig:
    def test_geometry(self):
        c = l1_config()
        assert c.n_lines == 32
        assert c.n_sets == 16
        assert c.line_words == 8

    @pytest.mark.parametrize(
        "overrides",
        [
            {"size_bytes": 0},
            {"line_bytes": 0},
            {"line_bytes": 6},  # not a word multiple
            {"size_bytes": 1000},  # not a line multiple
            {"assoc": 0},
            {"assoc": 5},  # lines not divisible
            {"hit_cycles": -1.0},
        ],
    )
    def test_invalid_rejected(self, overrides):
        with pytest.raises(ConfigError):
            l1_config(**overrides)


class TestCacheLevel:
    def test_compulsory_miss_then_hit(self):
        level = CacheLevel(l1_config())
        first = level.lookup_lines([7])
        second = level.lookup_lines([7])
        assert first.misses == 1
        assert second.hits == 1

    def test_capacity_eviction_lru(self):
        # Direct-mapped-ish: assoc 2, 16 sets; three lines in one set.
        level = CacheLevel(l1_config())
        same_set = [0, 16, 32]  # all map to set 0
        level.lookup_lines(same_set)
        result = level.lookup_lines([0])  # evicted (LRU among 3)
        assert result.misses == 1

    def test_lru_order_updated_on_hit(self):
        level = CacheLevel(l1_config())
        level.lookup_lines([0, 16])  # set 0 holds {16, 0}
        level.lookup_lines([0])  # touch 0 -> MRU
        level.lookup_lines([32])  # evicts 16, not 0
        result = level.lookup_lines([0])
        assert result.hits == 1

    def test_misses_returned_in_order(self):
        level = CacheLevel(l1_config())
        result, misses = level.lookup_lines_misses([5, 5, 9, 5, 9])
        assert misses.tolist() == [5, 9]
        assert result.hits == 3

    def test_resident_lines(self):
        level = CacheLevel(l1_config())
        level.lookup_lines([1, 2, 3])
        assert level.resident_lines() == 3

    def test_reset(self):
        level = CacheLevel(l1_config())
        level.lookup_lines([1])
        level.reset()
        assert level.lookup_lines([1]).misses == 1


class TestHierarchy:
    def test_l1_hit_costs_nothing(self):
        h = CacheHierarchy(l1_config(), l2_config(), memory_latency=100.0)
        h.run_trace([0])  # warm
        result = h.run_trace([0])
        assert result.stall_cycles == 0.0

    def test_l2_hit_cost(self):
        h = CacheHierarchy(l1_config(), l2_config(), memory_latency=100.0)
        # Fill set 0 of L1 beyond assoc so line 0 falls to L2.
        h.run_trace(np.array([0, 16, 32]) * 8)  # word addresses
        result = h.run_trace([0])
        assert result.l1.misses == 1
        assert result.l2.hits == 1
        assert result.stall_cycles == 10.0

    def test_memory_miss_cost(self):
        h = CacheHierarchy(l1_config(), l2_config(), memory_latency=100.0)
        result = h.run_trace([0])
        assert result.memory_accesses == 1
        assert result.stall_cycles == 110.0  # l2 lookup + dram

    def test_word_accesses_within_line_hit(self):
        h = CacheHierarchy(l1_config(), l2_config(), memory_latency=100.0)
        result = h.run_trace([0, 1, 2, 3, 4, 5, 6, 7])
        assert result.l1.misses == 1
        assert result.l1.hits == 7

    def test_no_l2(self):
        h = CacheHierarchy(l1_config(), None, memory_latency=50.0)
        result = h.run_trace([0, 0])
        assert result.l2 is None
        assert result.stall_cycles == 50.0

    def test_l2_smaller_line_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(
                l1_config(line_bytes=32),
                l2_config(line_bytes=16, size_bytes=4096, assoc=4),
                memory_latency=10.0,
            )

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            CacheHierarchy(l1_config(), None, memory_latency=-1.0)

    def test_stalls_per_access(self):
        h = CacheHierarchy(l1_config(), None, memory_latency=50.0)
        result = h.run_trace([0, 0, 0, 0])
        assert result.stalls_per_access == pytest.approx(12.5)


class TestStreamingPattern:
    def test_sequential_stream_miss_rate_is_one_per_line(self):
        h = CacheHierarchy(l1_config(), None, memory_latency=1.0)
        words = np.arange(800)
        result = h.run_trace(words)
        assert result.l1.misses == 100  # 800 words / 8 per line

    def test_small_working_set_stays_resident(self):
        h = CacheHierarchy(l1_config(), None, memory_latency=1.0)
        words = np.tile(np.arange(64), 10)  # 8 lines, well within 32
        result = h.run_trace(words)
        assert result.l1.misses == 8


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 300), min_size=1, max_size=300))
def test_miss_count_bounded_by_distinct_lines_and_accesses(words):
    """Misses are at least the compulsory (distinct-line) count and at
    most the access count."""
    h = CacheHierarchy(l1_config(), None, memory_latency=1.0)
    result = h.run_trace(words)
    distinct_lines = len({w // 8 for w in words})
    assert result.l1.misses >= distinct_lines
    assert result.l1.misses <= len(words)
    assert result.l1.hits + result.l1.misses == len(words)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
def test_fully_assoc_equals_infinite_when_capacity_sufficient(words):
    """A cache big enough for all distinct lines has only compulsory
    misses."""
    big = CacheConfig(
        name="big", size_bytes=32 * 1024, line_bytes=32, assoc=1024 // 1,
        hit_cycles=0.0,
    )
    # size 32KB / 32B = 1024 lines, assoc 1024 -> fully associative.
    h = CacheHierarchy(big, None, memory_latency=1.0)
    result = h.run_trace(words)
    assert result.l1.misses == len({w // 8 for w in words})
