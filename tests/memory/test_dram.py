"""Tests for :mod:`repro.memory.dram`.

The key property: the vectorised :class:`DRAM` model and the per-access
:class:`DRAMReference` simulator agree exactly on activation counts (and
therefore on cycles) over arbitrary pattern sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memory.dram import (
    DRAM,
    DRAMConfig,
    DRAMReference,
    pad_pitch_for_banks,
)
from repro.memory.streams import Custom, Sequential, Strided


def make_config(**overrides):
    defaults = dict(
        name="test",
        banks=4,
        row_words=64,
        row_cycle=3.0,
        access_latency=10.0,
        activation_policy="bank-parallel",
    )
    defaults.update(overrides)
    return DRAMConfig(**defaults)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("banks", 0),
            ("row_words", 0),
            ("row_cycle", -1.0),
            ("access_latency", -1.0),
            ("activation_policy", "magic"),
        ],
    )
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ConfigError):
            make_config(**{field: value})


class TestSequentialAccess:
    def test_issue_cycles_at_rate(self):
        dram = DRAM(make_config())
        cost = dram.access(Sequential(0, 128), rate_words_per_cycle=8)
        assert cost.issue_cycles == 16.0
        assert cost.words == 128

    def test_one_activation_per_row(self):
        dram = DRAM(make_config(row_words=64, banks=4))
        cost = dram.access(Sequential(0, 256), rate_words_per_cycle=8)
        assert cost.activations == 4  # four 64-word rows

    def test_sequential_activations_hidden_bank_parallel(self):
        """Rows rotate across banks, so no bank accumulates more switch
        time than the transfer takes (§4.2: "mostly hidden with
        sequential accesses")."""
        dram = DRAM(make_config(row_words=64, banks=4, row_cycle=3.0))
        cost = dram.access(Sequential(0, 1024), rate_words_per_cycle=8)
        assert cost.activation_cycles == 0.0

    def test_open_row_hit_on_repeat(self):
        dram = DRAM(make_config())
        dram.access(Sequential(0, 64), rate_words_per_cycle=8)
        cost = dram.access(Sequential(0, 64), rate_words_per_cycle=8)
        assert cost.activations == 0


class TestStridedAccess:
    def test_large_stride_activates_every_access(self):
        config = make_config(row_words=64, banks=4)
        dram = DRAM(config)
        cost = dram.access(
            Strided(0, 16, stride=64), rate_words_per_cycle=4
        )
        assert cost.activations == 16

    def test_bank_parallel_exposure_is_excess_over_issue(self):
        config = make_config(row_words=64, banks=4, row_cycle=3.0)
        dram = DRAM(config)
        # 16 accesses, one per row, rotating over 4 banks: 4 switches per
        # bank x 3 cycles = 12 > issue 16/4 = 4?  No: 12 vs 4 -> exposed 8.
        cost = dram.access(Strided(0, 16, stride=64), rate_words_per_cycle=4)
        assert cost.issue_cycles == 4.0
        assert cost.activation_cycles == pytest.approx(12.0 - 4.0)

    def test_serialized_policy_charges_all(self):
        config = make_config(activation_policy="serialized", row_cycle=3.0)
        dram = DRAM(config)
        cost = dram.access(Strided(0, 16, stride=64), rate_words_per_cycle=4)
        assert cost.activation_cycles == 16 * 3.0


class TestState:
    def test_state_persists_across_calls(self):
        dram = DRAM(make_config())
        dram.access(Strided(0, 4, stride=64), rate_words_per_cycle=4)
        assert dram.open_rows  # rows now open
        dram.reset()
        assert dram.open_rows == {}
        assert dram.total_activations == 0

    def test_totals_accumulate(self):
        dram = DRAM(make_config())
        dram.access(Sequential(0, 64), rate_words_per_cycle=8)
        dram.access(Sequential(64, 64), rate_words_per_cycle=8)
        assert dram.total_words == 128
        assert dram.total_activations == 2

    def test_empty_pattern(self):
        dram = DRAM(make_config())
        cost = dram.access(Sequential(0, 0), rate_words_per_cycle=8)
        assert cost.words == 0
        assert cost.stream_cycles == 0.0

    def test_invalid_rate_rejected(self):
        dram = DRAM(make_config())
        with pytest.raises(ConfigError):
            dram.access(Sequential(0, 8), rate_words_per_cycle=0)

    def test_invalid_kind_rejected(self):
        dram = DRAM(make_config())
        with pytest.raises(ConfigError):
            dram.access(Sequential(0, 8), rate_words_per_cycle=1, kind="rmw")


class TestCostProperties:
    def test_cycles_per_word(self):
        dram = DRAM(make_config())
        cost = dram.access(Sequential(0, 64), rate_words_per_cycle=8)
        assert cost.cycles_per_word == pytest.approx(
            cost.stream_cycles / 64
        )

    def test_zero_words_cycles_per_word(self):
        dram = DRAM(make_config())
        cost = dram.access(Sequential(0, 0), rate_words_per_cycle=8)
        assert cost.cycles_per_word == 0.0


class TestPadPitch:
    def test_even_advance_gets_padding(self):
        config = make_config(row_words=64, banks=4)
        pitch = pad_pitch_for_banks(128, config)  # advance 2, gcd 2
        assert pitch >= 128
        assert (pitch // 64) % 2 == 1 or pitch // 64 == 0

    def test_subrow_pitch_needs_no_padding(self):
        config = make_config(row_words=64, banks=4)
        assert pad_pitch_for_banks(16, config) == 16

    def test_odd_advance_unchanged(self):
        config = make_config(row_words=64, banks=4)
        assert pad_pitch_for_banks(64, config) == 64  # advance 1

    def test_invalid_cols(self):
        with pytest.raises(ConfigError):
            pad_pitch_for_banks(0, make_config())


@st.composite
def pattern_sequences(draw):
    """Random sequences of small access patterns."""
    n_patterns = draw(st.integers(1, 5))
    patterns = []
    for _ in range(n_patterns):
        kind = draw(st.sampled_from(["seq", "strided", "custom"]))
        if kind == "seq":
            patterns.append(
                Sequential(draw(st.integers(0, 500)), draw(st.integers(0, 80)))
            )
        elif kind == "strided":
            patterns.append(
                Strided(
                    draw(st.integers(0, 500)),
                    draw(st.integers(0, 40)),
                    draw(st.integers(1, 200)),
                )
            )
        else:
            addresses = draw(
                st.lists(st.integers(0, 2000), min_size=0, max_size=60)
            )
            patterns.append(Custom(addresses))
    return patterns


@settings(max_examples=60, deadline=None)
@given(
    pattern_sequences(),
    st.integers(1, 8),
    st.integers(8, 128),
    st.sampled_from(["bank-parallel", "serialized"]),
)
def test_vectorized_matches_reference(patterns, banks, row_words, policy):
    """The numpy DRAM and the per-access reference agree exactly."""
    config = make_config(
        banks=banks, row_words=row_words, activation_policy=policy
    )
    fast = DRAM(config)
    slow = DRAMReference(config)
    for pattern in patterns:
        fast_cost = fast.access(pattern, rate_words_per_cycle=4)
        slow_cost = slow.access(pattern, rate_words_per_cycle=4)
        assert fast_cost.activations == slow_cost.activations
        assert fast_cost.issue_cycles == pytest.approx(slow_cost.issue_cycles)
        assert fast_cost.activation_cycles == pytest.approx(
            slow_cost.activation_cycles
        )


@settings(max_examples=60, deadline=None)
@given(
    pattern_sequences(),
    st.integers(1, 8),
    st.integers(8, 128),
    st.sampled_from(["bank-parallel", "serialized"]),
)
def test_access_run_matches_sequential_access(
    patterns, banks, row_words, policy
):
    """One batched access_run == N sequential access calls, segment by
    segment, including the open-row state left behind."""
    config = make_config(
        banks=banks, row_words=row_words, activation_policy=policy
    )
    sequential = DRAM(config)
    batched = DRAM(config)
    expected = [
        sequential.access(p, rate_words_per_cycle=4) for p in patterns
    ]
    address_arrays = [p.addresses() for p in patterns]
    batch = batched.access_run(
        np.concatenate(address_arrays) if address_arrays
        else np.empty(0, dtype=np.int64),
        np.asarray([a.size for a in address_arrays], dtype=np.int64),
        np.full(len(patterns), 4.0),
    )
    assert batch.n_segments == len(expected)
    for i, cost in enumerate(expected):
        seg = batch.segment(i)
        assert seg.words == cost.words
        assert seg.activations == cost.activations
        assert seg.issue_cycles == pytest.approx(cost.issue_cycles)
        assert seg.activation_cycles == pytest.approx(cost.activation_cycles)
    assert batched.open_rows == sequential.open_rows
    assert batched.total_activations == sequential.total_activations
    assert batched.total_words == sequential.total_words
