"""Tests for :mod:`repro.memory.streams`."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PatternError
from repro.memory.streams import (
    Concat,
    Custom,
    Gather,
    Sequential,
    Strided,
    Tiled2D,
)


class TestSequential:
    def test_addresses(self):
        p = Sequential(10, 4)
        assert p.addresses().tolist() == [10, 11, 12, 13]
        assert p.n_words == 4

    def test_empty(self):
        assert Sequential(0, 0).addresses().size == 0

    def test_negative_rejected(self):
        with pytest.raises(PatternError):
            Sequential(-1, 4)
        with pytest.raises(PatternError):
            Sequential(0, -1)


class TestStrided:
    def test_addresses(self):
        p = Strided(5, 3, 100)
        assert p.addresses().tolist() == [5, 105, 205]

    def test_zero_stride_rejected(self):
        with pytest.raises(PatternError):
            Strided(0, 3, 0)


class TestTiled2D:
    def test_row_major(self):
        p = Tiled2D(base=0, rows=2, cols=3, pitch=10, order="row")
        assert p.addresses().tolist() == [0, 1, 2, 10, 11, 12]

    def test_col_major(self):
        p = Tiled2D(base=0, rows=2, cols=3, pitch=10, order="col")
        assert p.addresses().tolist() == [0, 10, 1, 11, 2, 12]

    def test_n_words(self):
        assert Tiled2D(0, 4, 5, 10).n_words == 20

    def test_pitch_smaller_than_cols_rejected(self):
        with pytest.raises(PatternError):
            Tiled2D(0, 2, 8, 4)

    def test_bad_order_rejected(self):
        with pytest.raises(PatternError):
            Tiled2D(0, 2, 2, 4, order="diagonal")


class TestGather:
    def test_addresses(self):
        p = Gather(100, [3, 1, 2])
        assert p.addresses().tolist() == [103, 101, 102]

    def test_negative_index_rejected(self):
        with pytest.raises(PatternError):
            Gather(0, [-1])

    def test_2d_indices_rejected(self):
        with pytest.raises(PatternError):
            Gather(0, np.zeros((2, 2), dtype=np.int64))


class TestCustom:
    def test_roundtrip(self):
        p = Custom([5, 3, 9], label="x")
        assert p.addresses().tolist() == [5, 3, 9]
        assert "x" in p.describe()

    def test_negative_rejected(self):
        with pytest.raises(PatternError):
            Custom([-3])


class TestConcat:
    def test_order_preserved(self):
        p = Concat([Sequential(0, 2), Strided(100, 2, 10)])
        assert p.addresses().tolist() == [0, 1, 100, 110]
        assert p.n_words == 4

    def test_empty(self):
        p = Concat([])
        assert p.n_words == 0
        assert p.addresses().size == 0

    def test_non_pattern_rejected(self):
        with pytest.raises(PatternError):
            Concat([Sequential(0, 1), "nope"])


class TestDescribe:
    def test_all_patterns_describe(self):
        patterns = [
            Sequential(0, 4),
            Strided(0, 4, 2),
            Tiled2D(0, 2, 2, 4),
            Gather(0, [1]),
            Custom([1]),
            Concat([Sequential(0, 1)]),
        ]
        for p in patterns:
            text = p.describe()
            assert isinstance(text, str) and text


@given(
    st.integers(0, 1000),
    st.integers(0, 200),
    st.integers(1, 50),
)
def test_strided_matches_arange_property(start, n, stride):
    p = Strided(start, n, stride)
    expected = start + stride * np.arange(n)
    assert np.array_equal(p.addresses(), expected)
    assert p.n_words == n


@given(
    st.integers(1, 16),
    st.integers(1, 16),
    st.integers(0, 100),
)
def test_tiled_row_and_col_are_permutations(rows, cols, base):
    pitch = cols + 3
    row = Tiled2D(base, rows, cols, pitch, order="row").addresses()
    col = Tiled2D(base, rows, cols, pitch, order="col").addresses()
    assert sorted(row.tolist()) == sorted(col.tolist())
    assert row.size == rows * cols
