"""Tests for :mod:`repro.memory.tlb`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.memory.tlb import TLB


class TestBasic:
    def test_compulsory_miss_then_hit(self):
        tlb = TLB(entries=4, page_words=1024, miss_cycles=6.0)
        assert tlb.access_pages([3]) == 1
        assert tlb.access_pages([3]) == 0
        assert tlb.misses == 1
        assert tlb.stall_cycles == 6.0

    def test_capacity_eviction_lru(self):
        tlb = TLB(entries=2, page_words=1024, miss_cycles=1.0)
        tlb.access_pages([0, 1, 2])  # 0 evicted
        assert tlb.access_pages([0]) == 1
        assert tlb.access_pages([2]) == 0  # still resident

    def test_lru_refresh_on_hit(self):
        tlb = TLB(entries=2, page_words=1024, miss_cycles=1.0)
        tlb.access_pages([0, 1, 0, 2])  # hit on 0 makes 1 the LRU victim
        assert tlb.access_pages([0]) == 0
        assert tlb.access_pages([1]) == 1

    def test_sweep_larger_than_capacity_always_misses(self):
        """The VIRAM corner-turn situation: 64 pages per sweep against a
        48-entry TLB means every sweep misses everything (§4.2)."""
        tlb = TLB(entries=48, page_words=1024, miss_cycles=6.0)
        sweep = list(range(64))
        first = tlb.access_pages(sweep)
        second = tlb.access_pages(sweep)
        assert first == 64
        assert second == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(entries=0, page_words=1, miss_cycles=1.0),
            dict(entries=1, page_words=0, miss_cycles=1.0),
            dict(entries=1, page_words=1, miss_cycles=-1.0),
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigError):
            TLB(**kwargs)


class TestAddressInterface:
    def test_addresses_map_to_pages(self):
        tlb = TLB(entries=4, page_words=100, miss_cycles=1.0)
        misses = tlb.access_addresses([0, 50, 99, 100, 250])
        assert misses == 3  # pages 0, 1, 2

    def test_empty(self):
        tlb = TLB(entries=4, page_words=100, miss_cycles=1.0)
        assert tlb.access_addresses(np.array([], dtype=np.int64)) == 0

    def test_reset(self):
        tlb = TLB(entries=4, page_words=100, miss_cycles=1.0)
        tlb.access_addresses([0])
        tlb.reset()
        assert tlb.misses == 0
        assert tlb.access_addresses([0]) == 1


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 10_000), min_size=1, max_size=200),
    st.integers(1, 16),
)
def test_rle_compression_preserves_miss_count(addresses, entries):
    """access_addresses (run-length compressed) matches the per-access
    page walk exactly."""
    page_words = 64
    fast = TLB(entries=entries, page_words=page_words, miss_cycles=1.0)
    slow = TLB(entries=entries, page_words=page_words, miss_cycles=1.0)
    fast_misses = fast.access_addresses(addresses)
    slow_misses = slow.access_pages([a // page_words for a in addresses])
    assert fast_misses == slow_misses


@given(st.lists(st.integers(0, 50), min_size=1, max_size=100))
def test_misses_bounded(pages):
    tlb = TLB(entries=8, page_words=1, miss_cycles=1.0)
    misses = tlb.access_pages(pages)
    assert len(set(pages)) >= 1
    assert misses >= len(set(pages)) - 8  # at most 8 were resident-free
    assert misses <= len(pages)
    assert misses >= min(len(set(pages)), 1)
