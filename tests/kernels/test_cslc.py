"""Tests for :mod:`repro.kernels.cslc`."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels.cslc import (
    CSLCWorkload,
    cancellation_db,
    cslc_oracle,
    cslc_reference,
    estimate_weights,
    extract_subbands,
    interference_rejection_db,
    overlap_add,
)
from repro.kernels.fft import FFTPlan, radix2_radices
from repro.kernels.signal import make_jammed_channels
from repro.kernels.workloads import canonical_cslc, small_cslc


class TestWorkload:
    def test_canonical_parameters(self):
        w = canonical_cslc()
        assert w.samples == 8192
        assert w.n_subbands == 73
        assert w.subband_len == 128
        assert w.hop == 112  # 16-sample overlap, exact tiling
        assert w.n_channels == 4
        assert w.transforms == 73 * 6

    def test_exact_tiling_enforced(self):
        with pytest.raises(ConfigError):
            CSLCWorkload(samples=8192, n_subbands=72, subband_len=128)

    def test_single_subband(self):
        w = CSLCWorkload(samples=128, n_subbands=1, subband_len=128)
        assert w.hop == 128

    def test_single_subband_size_mismatch(self):
        with pytest.raises(ConfigError):
            CSLCWorkload(samples=256, n_subbands=1, subband_len=128)

    def test_op_counts_scale_with_subbands(self):
        plan = FFTPlan(32)
        small = CSLCWorkload(samples=288, n_subbands=9, subband_len=32)
        smaller = CSLCWorkload(samples=96, n_subbands=3, subband_len=32)
        assert small.op_counts(plan).flops == pytest.approx(
            3 * smaller.op_counts(plan).flops
        )

    def test_op_counts_plan_size_mismatch(self):
        with pytest.raises(ConfigError):
            canonical_cslc().op_counts(FFTPlan(64))


class TestSubbands:
    def test_extract_shapes(self, small_cs):
        x = np.arange(small_cs.samples, dtype=complex)
        sub = extract_subbands(x, small_cs)
        assert sub.shape == (small_cs.n_subbands, small_cs.subband_len)
        assert np.array_equal(sub[0], x[: small_cs.subband_len])
        assert np.array_equal(
            sub[1], x[small_cs.hop : small_cs.hop + small_cs.subband_len]
        )

    def test_extract_wrong_length(self, small_cs):
        with pytest.raises(ConfigError):
            extract_subbands(np.zeros(7), small_cs)

    def test_overlap_add_inverts_extract(self, rng):
        w = canonical_cslc()
        x = rng.normal(size=w.samples) + 1j * rng.normal(size=w.samples)
        sub = extract_subbands(x, w)
        assert np.allclose(overlap_add(sub, w), x)

    def test_overlap_add_shape_check(self, small_cs):
        with pytest.raises(ConfigError):
            overlap_add(np.zeros((2, 2)), small_cs)


class TestWeights:
    def test_perfect_cancellation_for_flat_gains(self, rng):
        """With frequency-flat leakage, least-squares weights recover the
        gains exactly and the jammer cancels to numerical noise."""
        n_sub, bins = 16, 32
        jam = rng.normal(size=(n_sub, bins)) + 1j * rng.normal(
            size=(n_sub, bins)
        )
        aux_gain = np.array([1.1 + 0.2j, 0.9 - 0.1j])
        leak = np.array([0.05 + 0.02j, -0.03 + 0.01j])
        aux = aux_gain[:, None, None] * jam[None]
        mains = leak[:, None, None] * jam[None]
        w = estimate_weights(mains, aux, loading=0.0)
        cancelled = mains[0] - np.einsum("ak,ask->sk", w[0], aux)
        assert np.max(np.abs(cancelled)) < 1e-8

    def test_loading_shrinks_noise_bin_weights(self, rng):
        """Bins without jammer energy get near-zero weights under
        loading, instead of fitting noise."""
        n_sub, bins = 16, 8
        aux = 1e-4 * (
            rng.normal(size=(2, n_sub, bins))
            + 1j * rng.normal(size=(2, n_sub, bins))
        )
        aux[:, :, 0] += 100.0  # jammer occupies bin 0 only
        mains = 0.05 * aux[:1].copy()
        loaded = estimate_weights(mains, aux, loading=1e-4)
        unloaded = estimate_weights(mains, aux, loading=0.0)
        noise_bins = slice(1, None)
        assert np.max(np.abs(loaded[0, :, noise_bins])) < np.max(
            np.abs(unloaded[0, :, noise_bins])
        )
        # The jammer bin still cancels.
        assert np.allclose(loaded[0, :, 0].sum(), 0.05, atol=1e-3)

    def test_negative_loading_rejected(self):
        with pytest.raises(ConfigError):
            estimate_weights(
                np.zeros((1, 4, 8)), np.zeros((1, 4, 8)), loading=-1.0
            )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            estimate_weights(np.zeros((2, 4, 8)), np.zeros((2, 5, 8)))


class TestPipeline:
    def test_small_cslc_cancels_jammer(self, small_cs):
        channels = make_jammed_channels(
            small_cs.samples, small_cs.n_mains, small_cs.n_aux, seed=3
        )
        result = cslc_reference(channels, small_cs)
        rejection = interference_rejection_db(channels, result.outputs)
        assert all(db > 15.0 for db in rejection)
        assert all(db > 5.0 for db in result.cancellation_db)
        assert result.outputs.shape == (small_cs.n_mains, small_cs.samples)

    def test_matches_numpy_oracle(self, small_cs):
        channels = make_jammed_channels(
            small_cs.samples, small_cs.n_mains, small_cs.n_aux, seed=3
        )
        result = cslc_reference(channels, small_cs)
        oracle = cslc_oracle(channels, small_cs, result.weights)
        assert np.allclose(result.outputs, oracle)

    def test_radix2_plan_equivalent(self, small_cs):
        channels = make_jammed_channels(
            small_cs.samples, small_cs.n_mains, small_cs.n_aux, seed=3
        )
        r4 = cslc_reference(channels, small_cs)
        r2 = cslc_reference(
            channels,
            small_cs,
            plan=FFTPlan(small_cs.subband_len, radix2_radices(small_cs.subband_len)),
            weights=r4.weights,
        )
        assert np.allclose(r4.outputs, r2.outputs)

    def test_zero_weights_pass_through(self, small_cs):
        """With zero weights the 'cancelled' output is the main channel."""
        channels = make_jammed_channels(
            small_cs.samples, small_cs.n_mains, small_cs.n_aux, seed=3
        )
        zero = np.zeros(
            (small_cs.n_mains, small_cs.n_aux, small_cs.subband_len),
            dtype=complex,
        )
        result = cslc_reference(channels, small_cs, weights=zero)
        assert np.allclose(result.outputs, channels.mains, atol=1e-8)

    def test_channel_count_mismatch(self, small_cs):
        channels = make_jammed_channels(small_cs.samples, 1, 1, seed=0)
        with pytest.raises(ConfigError):
            cslc_reference(channels, small_cs)

    def test_sample_count_mismatch(self, small_cs):
        channels = make_jammed_channels(64, small_cs.n_mains, small_cs.n_aux)
        with pytest.raises(ConfigError):
            cslc_reference(channels, small_cs)

    def test_bad_weight_shape(self, small_cs):
        channels = make_jammed_channels(
            small_cs.samples, small_cs.n_mains, small_cs.n_aux
        )
        with pytest.raises(ConfigError):
            cslc_reference(channels, small_cs, weights=np.zeros((1, 1, 1)))

    def test_bad_plan_size(self, small_cs):
        channels = make_jammed_channels(
            small_cs.samples, small_cs.n_mains, small_cs.n_aux
        )
        with pytest.raises(ConfigError):
            cslc_reference(channels, small_cs, plan=FFTPlan(64))


class TestMetrics:
    def test_cancellation_db_positive_when_reduced(self):
        before = np.ones(100)
        after = 0.1 * np.ones(100)
        assert cancellation_db(before, after) == pytest.approx(20.0)

    def test_cancellation_db_silence_capped(self):
        assert cancellation_db(np.ones(4), np.zeros(4)) == 300.0
