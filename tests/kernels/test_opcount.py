"""Tests for :mod:`repro.kernels.opcount`."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernels.opcount import OpCounts


class TestDerived:
    def test_flops(self):
        c = OpCounts(adds=2, muls=3, divs=1, shifts=4)
        assert c.flops == 6
        assert c.arithmetic == 10

    def test_memory_and_total(self):
        c = OpCounts(adds=1, loads=2, stores=3, permutes=4, other=5)
        assert c.memory_ops == 5
        assert c.total == 15

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCounts(adds=-1)


class TestCombinators:
    def test_add(self):
        c = OpCounts(adds=1, loads=2) + OpCounts(adds=3, stores=4)
        assert c.adds == 4
        assert c.loads == 2
        assert c.stores == 4

    def test_scaled(self):
        c = OpCounts(adds=2, muls=3).scaled(10)
        assert c.adds == 20
        assert c.muls == 30

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            OpCounts(adds=1).scaled(-1)

    def test_as_dict_and_format(self):
        c = OpCounts(adds=1.0)
        assert c.as_dict()["adds"] == 1.0
        assert "adds" in c.format()
        assert "empty" in OpCounts().format()


nonneg = st.floats(min_value=0, max_value=1e9)


@given(nonneg, nonneg, nonneg, nonneg, nonneg, nonneg)
def test_total_consistency_property(adds, muls, divs, shifts, loads, stores):
    c = OpCounts(
        adds=adds, muls=muls, divs=divs, shifts=shifts, loads=loads, stores=stores
    )
    assert c.total == pytest.approx(
        c.flops + c.shifts + c.memory_ops + c.permutes + c.other
    )


@given(nonneg, nonneg, st.floats(0, 100))
def test_scale_then_add_distributes(adds, muls, factor):
    a = OpCounts(adds=adds, muls=muls)
    lhs = (a + a).scaled(factor)
    rhs = a.scaled(factor) + a.scaled(factor)
    assert lhs.adds == pytest.approx(rhs.adds)
    assert lhs.muls == pytest.approx(rhs.muls)
