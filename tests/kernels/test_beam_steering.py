"""Tests for :mod:`repro.kernels.beam_steering`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.kernels.beam_steering import (
    BeamSteeringTables,
    BeamSteeringWorkload,
    beam_steering_reference,
    make_tables,
)
from repro.kernels.workloads import canonical_beam_steering


def scalar_oracle(workload, tables):
    """Element-at-a-time implementation of §4.4's op sequence: the
    independent oracle for the vectorised reference."""
    shift = workload.shift
    rounding = (1 << shift) >> 1 if shift else 0
    mask = (1 << workload.phase_bits) - 1
    out = np.zeros(
        (workload.dwells, workload.directions, workload.elements), dtype=np.int64
    )
    for t in range(workload.dwells):
        for d in range(workload.directions):
            for e in range(workload.elements):
                acc = int(tables.steer[t, d]) + int(tables.pos[e])  # add 1
                acc += int(tables.coarse[e])  # add 2
                acc += int(tables.fine[e, d])  # add 3
                acc += int(tables.temp[t])  # add 4
                acc += rounding  # add 5
                out[t, d, e] = (acc >> shift) & mask  # shift
    return out


class TestWorkload:
    def test_canonical(self):
        w = canonical_beam_steering()
        assert w.elements == 1608
        assert w.directions == 4
        assert w.outputs == 1608 * 4 * w.dwells

    def test_op_census_matches_section_4_4(self):
        """'2 reads and 1 write ... 5 additions and 1 shift' per output."""
        w = BeamSteeringWorkload(elements=10, directions=2, dwells=1)
        c = w.op_counts()
        per_output = w.outputs
        assert c.adds == 5 * per_output
        assert c.shifts == per_output
        assert c.loads == 2 * per_output
        assert c.stores == per_output

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigError):
            BeamSteeringWorkload(elements=0)

    def test_invalid_phase_bits(self):
        with pytest.raises(ConfigError):
            BeamSteeringWorkload(phase_bits=0)
        with pytest.raises(ConfigError):
            BeamSteeringWorkload(accumulator_bits=16, phase_bits=24)

    def test_table_sizes(self):
        w = BeamSteeringWorkload(elements=100, directions=4)
        assert w.coarse_table_words == 100
        assert w.fine_table_words == 400
        assert w.table_bytes == 2000


class TestTables:
    def test_shapes_validated(self, small_bs):
        tables = make_tables(small_bs)
        tables.validate(small_bs)  # no raise
        bad = BeamSteeringTables(
            coarse=tables.coarse[:-1],
            fine=tables.fine,
            pos=tables.pos,
            steer=tables.steer,
            temp=tables.temp,
        )
        with pytest.raises(ConfigError):
            bad.validate(small_bs)

    def test_float_tables_rejected(self, small_bs):
        tables = make_tables(small_bs)
        bad = BeamSteeringTables(
            coarse=tables.coarse.astype(np.float64),
            fine=tables.fine,
            pos=tables.pos,
            steer=tables.steer,
            temp=tables.temp,
        )
        with pytest.raises(ConfigError):
            bad.validate(small_bs)

    def test_deterministic(self, small_bs):
        a = make_tables(small_bs, seed=5)
        b = make_tables(small_bs, seed=5)
        assert np.array_equal(a.fine, b.fine)


class TestReference:
    def test_matches_scalar_oracle(self, small_bs):
        tables = make_tables(small_bs, seed=1)
        fast = beam_steering_reference(small_bs, tables)
        slow = scalar_oracle(small_bs, tables)
        assert np.array_equal(fast, slow)

    def test_output_range(self, small_bs):
        tables = make_tables(small_bs, seed=2)
        phases = beam_steering_reference(small_bs, tables)
        assert phases.min() >= 0
        assert phases.max() < (1 << small_bs.phase_bits)

    def test_shape(self, small_bs):
        phases = beam_steering_reference(small_bs, make_tables(small_bs))
        assert phases.shape == (
            small_bs.dwells,
            small_bs.directions,
            small_bs.elements,
        )


@settings(max_examples=15, deadline=None)
@given(
    st.integers(1, 12),
    st.integers(1, 4),
    st.integers(1, 3),
    st.integers(0, 1000),
)
def test_reference_equals_oracle_property(elements, directions, dwells, seed):
    w = BeamSteeringWorkload(
        elements=elements, directions=directions, dwells=dwells
    )
    tables = make_tables(w, seed=seed)
    assert np.array_equal(
        beam_steering_reference(w, tables), scalar_oracle(w, tables)
    )
