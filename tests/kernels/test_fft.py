"""Tests for :mod:`repro.kernels.fft` — the from-scratch FFT library.

The test oracle for functional results is ``numpy.fft``; op-count claims
are cross-checked between the analytic stage census and instrumented
execution.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigError
from repro.kernels.fft import (
    FFTPlan,
    default_radices,
    radix2_radices,
    stage_infos,
)

SIZES = [2, 4, 8, 16, 32, 64, 128, 256, 512]


def plans_for(n):
    yield FFTPlan(n)
    if n > 2:
        yield FFTPlan(n, radix2_radices(n))


class TestRadices:
    def test_paper_factorization_for_128(self):
        """§3.2: 'three radix-4 stages and one radix-2 stage'."""
        assert default_radices(128) == (4, 4, 4, 2)

    def test_power_of_four(self):
        assert default_radices(64) == (4, 4, 4)

    def test_radix2(self):
        assert radix2_radices(128) == (2,) * 7

    @pytest.mark.parametrize("bad", [0, 3, 6, 12, 100])
    def test_non_power_of_two_rejected(self, bad):
        with pytest.raises(ConfigError):
            default_radices(bad)

    def test_wrong_product_rejected(self):
        with pytest.raises(ConfigError):
            FFTPlan(128, (4, 4, 4))

    def test_unsupported_radix_rejected(self):
        with pytest.raises(ConfigError):
            stage_infos(8, (8,))


class TestCorrectness:
    @pytest.mark.parametrize("n", SIZES)
    def test_matches_numpy(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        for plan in plans_for(n):
            assert np.allclose(plan.execute(x), np.fft.fft(x))

    @pytest.mark.parametrize("n", SIZES)
    def test_inverse_roundtrip(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        for plan in plans_for(n):
            y = plan.execute(x)
            assert np.allclose(plan.execute(y, inverse=True), x)

    def test_inverse_matches_numpy(self, rng):
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        plan = FFTPlan(128)
        assert np.allclose(plan.execute(x, inverse=True), np.fft.ifft(x))

    def test_impulse_is_flat(self):
        plan = FFTPlan(64)
        x = np.zeros(64, dtype=complex)
        x[0] = 1.0
        assert np.allclose(plan.execute(x), np.ones(64))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigError):
            FFTPlan(8).execute(np.zeros(16, dtype=complex))


class TestBatchExecution:
    def test_matches_per_row(self, rng):
        plan = FFTPlan(64)
        x = rng.normal(size=(9, 64)) + 1j * rng.normal(size=(9, 64))
        batched = plan.execute_batch(x)
        for row in range(9):
            assert np.allclose(batched[row], plan.execute(x[row]))

    def test_matches_numpy_axis(self, rng):
        plan = FFTPlan(128)
        x = rng.normal(size=(5, 128)) + 1j * rng.normal(size=(5, 128))
        assert np.allclose(plan.execute_batch(x), np.fft.fft(x, axis=-1))

    def test_inverse_batch(self, rng):
        plan = FFTPlan(32)
        x = rng.normal(size=(4, 32)) + 1j * rng.normal(size=(4, 32))
        assert np.allclose(
            plan.execute_batch(plan.execute_batch(x), inverse=True), x
        )

    def test_higher_rank_batches(self, rng):
        plan = FFTPlan(16)
        x = rng.normal(size=(3, 2, 16)) + 1j * rng.normal(size=(3, 2, 16))
        assert np.allclose(plan.execute_batch(x), np.fft.fft(x, axis=-1))

    def test_wrong_trailing_axis(self):
        with pytest.raises(ConfigError):
            FFTPlan(8).execute_batch(np.zeros((4, 16), dtype=complex))


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        arrays(
            np.float64,
            (64, 2),
            elements=st.floats(-1e3, 1e3, allow_nan=False),
        )
    )
    def test_parseval(self, parts):
        x = parts[:, 0] + 1j * parts[:, 1]
        y = FFTPlan(64).execute(x)
        assert np.sum(np.abs(y) ** 2) == pytest.approx(
            64 * np.sum(np.abs(x) ** 2), rel=1e-9, abs=1e-6
        )

    @settings(max_examples=20, deadline=None)
    @given(
        arrays(np.float64, (32, 2), elements=st.floats(-100, 100)),
        arrays(np.float64, (32, 2), elements=st.floats(-100, 100)),
        st.floats(-10, 10),
    )
    def test_linearity(self, a_parts, b_parts, scale):
        plan = FFTPlan(32)
        a = a_parts[:, 0] + 1j * a_parts[:, 1]
        b = b_parts[:, 0] + 1j * b_parts[:, 1]
        lhs = plan.execute(a + scale * b)
        rhs = plan.execute(a) + scale * plan.execute(b)
        assert np.allclose(lhs, rhs, atol=1e-6)

    def test_time_shift_is_phase_ramp(self, rng):
        n = 128
        plan = FFTPlan(n)
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        shifted = np.roll(x, 1)
        expected = plan.execute(x) * np.exp(-2j * np.pi * np.arange(n) / n)
        assert np.allclose(plan.execute(shifted), expected)


class TestOpCounts:
    @pytest.mark.parametrize("n", [4, 16, 128, 256])
    def test_instrumented_matches_analytic(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        for plan in plans_for(n):
            _, counts = plan.execute_instrumented(x)
            analytic = plan.op_counts()
            assert counts.adds == analytic.adds
            assert counts.muls == analytic.muls

    def test_radix2_128_flop_count(self):
        """Classic radix-2 N=128: 448 butterflies; with trivial twiddles
        free, flops land well below the 5*N*log2(N) textbook bound."""
        plan = FFTPlan(128, radix2_radices(128))
        assert sum(s.butterflies for s in plan.stages) == 448
        assert plan.flops() < 5 * 128 * 7
        assert plan.flops() > 2 * 128 * 7

    def test_radix4_cheaper_than_radix2(self):
        """§3.2's premise: the radix-4 FFT does fewer operations."""
        r4 = FFTPlan(128)
        r2 = FFTPlan(128, radix2_radices(128))
        assert r4.flops() < r2.flops()

    def test_radix2_total_ops_about_1_5x_radix4(self):
        """§4.3: 'The number of operations (including loads and stores)
        in the radix-2 FFT is about 1.5 the number in the radix-4 FFT.'"""
        r4 = FFTPlan(128).memory_census()
        r2 = FFTPlan(128, radix2_radices(128)).memory_census()
        ratio = r2.total / r4.total
        assert 1.2 < ratio < 1.8

    def test_stage_census_totals(self):
        plan = FFTPlan(128)
        stages = plan.stages
        assert [s.radix for s in stages] == [4, 4, 4, 2]
        assert [s.span for s in stages] == [32, 8, 2, 1]
        # Twiddle classes partition the full twiddle set.
        for s in stages:
            total = (
                s.unity_twiddles + s.trivial_twiddles + s.nontrivial_twiddles
            )
            assert total == s.butterflies * (s.radix - 1)

    def test_memory_census_includes_loads_and_stores(self):
        census = FFTPlan(128).memory_census()
        assert census.loads > 0
        assert census.stores > 0
        # Every butterfly stores its outputs: 2 words x radix x count.
        expected_stores = sum(
            s.butterflies * s.radix * 2 for s in FFTPlan(128).stages
        )
        assert census.stores == expected_stores

    def test_shuffle_census_positive(self):
        census = FFTPlan(128).shuffle_census()
        assert census.permutes > 0

    def test_twiddle_cache_reused(self, rng):
        plan = FFTPlan(128)
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        plan.execute(x)
        cached = len(plan._twiddle_cache)
        plan.execute(x)
        assert len(plan._twiddle_cache) == cached
