"""Tests for :mod:`repro.kernels.signal`."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels.signal import (
    ChannelSet,
    make_jammed_channels,
    power_db,
    tone_indices,
)


class TestChannelSet:
    def test_properties(self):
        cs = make_jammed_channels(256, n_mains=2, n_aux=3)
        assert cs.n_mains == 2
        assert cs.n_aux == 3
        assert cs.samples == 256

    def test_mismatched_samples_rejected(self):
        with pytest.raises(ConfigError):
            ChannelSet(
                mains=np.zeros((1, 8)),
                auxes=np.zeros((1, 9)),
                signal=np.zeros(8),
                jammer=np.zeros(8),
            )

    def test_one_d_rejected(self):
        with pytest.raises(ConfigError):
            ChannelSet(
                mains=np.zeros(8),
                auxes=np.zeros((1, 8)),
                signal=np.zeros(8),
                jammer=np.zeros(8),
            )


class TestSynthesis:
    def test_deterministic(self):
        a = make_jammed_channels(128, seed=9)
        b = make_jammed_channels(128, seed=9)
        assert np.array_equal(a.mains, b.mains)

    def test_jammer_dominates_mains(self):
        cs = make_jammed_channels(1024, jammer_to_signal_db=30.0, seed=1)
        # The jammer leaks at ~0.05 gain into mains; at +30 dB the main
        # channel power sits well above the clean signal power.
        assert power_db(cs.mains[0]) > power_db(cs.signal)

    def test_aux_channels_observe_jammer(self):
        cs = make_jammed_channels(1024, seed=1)
        # Aux power tracks the jammer to within a couple of dB.
        assert abs(power_db(cs.auxes[0]) - power_db(cs.jammer)) < 3.0

    def test_invalid_samples(self):
        with pytest.raises(ConfigError):
            make_jammed_channels(0)

    def test_invalid_channel_counts(self):
        with pytest.raises(ConfigError):
            make_jammed_channels(64, n_mains=0)


class TestHelpers:
    def test_power_db_of_unit_signal(self):
        assert power_db(np.ones(16)) == pytest.approx(0.0)

    def test_power_db_floor(self):
        assert power_db(np.zeros(16)) == -300.0

    def test_tone_indices_wrap(self):
        idx = tone_indices(16, 0.0, width=2)
        assert sorted(idx.tolist()) == sorted([14, 15, 0, 1, 2])
