"""Tests for :mod:`repro.kernels.workloads` — the canonical/test sizes."""

from repro.kernels.workloads import (
    canonical_beam_steering,
    canonical_corner_turn,
    canonical_cslc,
    small_beam_steering,
    small_corner_turn,
    small_cslc,
)


class TestCanonicalSizes:
    def test_corner_turn_exceeds_srf_and_raw_memories(self):
        """§3.1: 'larger than Imagine's SRF (128 KB) and Raw's internal
        memories (2 MB), but smaller than VIRAM's on-chip memory
        (13 MB)'."""
        w = canonical_corner_turn()
        assert w.nbytes > 128 * 1024
        assert w.nbytes > 2 * 1024 * 1024
        assert 2 * w.nbytes < 13 * 1024 * 1024  # source + destination

    def test_cslc_matches_section_3_2(self):
        w = canonical_cslc()
        assert (w.n_mains, w.n_aux) == (2, 2)
        assert w.samples == 8 * 1024
        assert (w.n_subbands, w.subband_len) == (73, 128)

    def test_beam_steering_matches_section_3_3(self):
        w = canonical_beam_steering()
        assert w.elements == 1608
        assert w.directions == 4


class TestSmallSizes:
    def test_corner_turn_divisible_by_blocks(self):
        w = small_corner_turn()
        assert w.rows % 16 == 0 and w.cols % 16 == 0  # VIRAM block
        assert w.rows % 64 == 0 and w.cols % 64 == 0  # Raw block
        assert w.rows % 8 == 0  # Imagine strip

    def test_cslc_not_multiple_of_tiles(self):
        """Keeps the Raw load-imbalance path exercised at test size."""
        assert small_cslc().n_subbands % 16 != 0

    def test_cslc_tiles_exactly(self):
        w = small_cslc()
        assert w.hop * (w.n_subbands - 1) + w.subband_len == w.samples

    def test_beam_steering_divides_over_tiles(self):
        assert small_beam_steering().elements % 16 == 0
