"""Tests for :mod:`repro.kernels.corner_turn`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.kernels.corner_turn import (
    CornerTurnWorkload,
    blocked_corner_turn,
    corner_turn_reference,
)


class TestWorkload:
    def test_canonical_size(self):
        w = CornerTurnWorkload()
        assert w.words == 1024 * 1024
        assert w.nbytes == 4 * 1024 * 1024

    def test_invalid_shape_rejected(self):
        with pytest.raises(ConfigError):
            CornerTurnWorkload(rows=0, cols=4)

    def test_matrix_deterministic(self):
        w = CornerTurnWorkload(rows=8, cols=8)
        assert np.array_equal(w.make_matrix(1), w.make_matrix(1))
        assert not np.array_equal(w.make_matrix(1), w.make_matrix(2))

    def test_op_counts(self):
        c = CornerTurnWorkload(rows=4, cols=8).op_counts()
        assert c.loads == 32
        assert c.stores == 32
        assert c.flops == 0


class TestReference:
    def test_transpose(self, rng):
        m = rng.normal(size=(4, 6)).astype(np.float32)
        t = corner_turn_reference(m)
        assert t.shape == (6, 4)
        assert np.array_equal(t, m.T)
        assert t.flags["C_CONTIGUOUS"]

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigError):
            corner_turn_reference(np.zeros(4))


class TestBlocked:
    @pytest.mark.parametrize("block", [1, 2, 4, 8])
    def test_matches_reference(self, block, rng):
        m = rng.normal(size=(16, 8)).astype(np.float32)
        assert np.array_equal(
            blocked_corner_turn(m, block), corner_turn_reference(m)
        )

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigError):
            blocked_corner_turn(np.zeros((10, 10)), 4)

    def test_bad_block_rejected(self):
        with pytest.raises(ConfigError):
            blocked_corner_turn(np.zeros((8, 8)), 0)

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigError):
            blocked_corner_turn(np.zeros(8), 2)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(1, 6).map(lambda k: 2 ** k),
    st.integers(1, 6).map(lambda k: 2 ** k),
    st.sampled_from([1, 2, 4]),
)
def test_blocked_transpose_is_involution(rows, cols, block):
    if rows % block or cols % block:
        return
    rng = np.random.default_rng(0)
    m = rng.normal(size=(rows, cols)).astype(np.float32)
    twice = blocked_corner_turn(blocked_corner_turn(m, block), block)
    assert np.array_equal(twice, m)
