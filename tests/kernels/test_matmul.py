"""Tests for :mod:`repro.kernels.matmul`."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.kernels.matmul import (
    MatmulWorkload,
    blocked_matmul,
    matmul_reference,
)


class TestWorkload:
    def test_counts(self):
        w = MatmulWorkload(2, 3, 4)
        assert w.macs == 24
        assert w.flops == 48

    def test_invalid(self):
        with pytest.raises(ConfigError):
            MatmulWorkload(0, 1, 1)

    def test_censuses_ordered(self):
        """Streaming drops the per-MAC load (§2.3's mechanism)."""
        w = MatmulWorkload(8, 8, 8)
        ls = w.loadstore_census()
        stream = w.streamed_census()
        assert ls.flops == stream.flops
        assert stream.loads == 0
        assert stream.total < ls.total

    def test_inputs_deterministic(self):
        w = MatmulWorkload(4, 4, 4)
        a1, b1 = w.make_inputs(1)
        a2, b2 = w.make_inputs(1)
        assert np.array_equal(a1, a2) and np.array_equal(b1, b2)


class TestFunctional:
    def test_reference_matches_numpy(self, rng):
        a = rng.standard_normal((5, 7)).astype(np.float32)
        b = rng.standard_normal((7, 3)).astype(np.float32)
        assert np.allclose(matmul_reference(a, b), a @ b, rtol=1e-4)

    def test_blocked_matches_reference(self, rng):
        a = rng.standard_normal((16, 8)).astype(np.float32)
        b = rng.standard_normal((8, 12)).astype(np.float32)
        assert np.allclose(
            blocked_matmul(a, b, 4), matmul_reference(a, b), rtol=1e-4
        )

    def test_block_larger_than_matrix_ok(self, rng):
        a = rng.standard_normal((4, 4)).astype(np.float32)
        b = rng.standard_normal((4, 4)).astype(np.float32)
        assert np.allclose(
            blocked_matmul(a, b, 64), matmul_reference(a, b), rtol=1e-4
        )

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            matmul_reference(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ConfigError):
            blocked_matmul(np.zeros((2, 3)), np.zeros((4, 2)), 2)

    def test_bad_block(self):
        with pytest.raises(ConfigError):
            blocked_matmul(np.zeros((2, 2)), np.zeros((2, 2)), 0)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(1, 12),
    st.integers(1, 12),
    st.integers(1, 12),
    st.sampled_from([1, 2, 4]),
)
def test_blocked_matmul_property(n, k, m, block):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, k)).astype(np.float32)
    b = rng.standard_normal((k, m)).astype(np.float32)
    assert np.allclose(
        blocked_matmul(a, b, block), matmul_reference(a, b), rtol=1e-3,
        atol=1e-5,
    )
