"""Cross-checks against scipy, the second independent oracle.

numpy.fft is the primary oracle throughout the suite; these tests bring
scipy in as an implementation-independent second opinion on the FFT
library and the CSLC weight solve.
"""

import numpy as np
import pytest

scipy_fft = pytest.importorskip("scipy.fft")
scipy_linalg = pytest.importorskip("scipy.linalg")

from repro.kernels.cslc import estimate_weights
from repro.kernels.fft import FFTPlan, radix2_radices


class TestFftAgainstScipy:
    @pytest.mark.parametrize("n", [16, 128, 256])
    def test_forward(self, n, rng):
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        assert np.allclose(FFTPlan(n).execute(x), scipy_fft.fft(x))

    def test_inverse(self, rng):
        x = rng.normal(size=128) + 1j * rng.normal(size=128)
        assert np.allclose(
            FFTPlan(128).execute(x, inverse=True), scipy_fft.ifft(x)
        )

    def test_radix2_plan(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        plan = FFTPlan(64, radix2_radices(64))
        assert np.allclose(plan.execute(x), scipy_fft.fft(x))

    def test_batch(self, rng):
        x = rng.normal(size=(7, 32)) + 1j * rng.normal(size=(7, 32))
        assert np.allclose(
            FFTPlan(32).execute_batch(x), scipy_fft.fft(x, axis=-1)
        )


class TestWeightsAgainstScipy:
    def test_unregularised_solve_matches_scipy_lstsq(self, rng):
        n_sub, n_aux, bins = 12, 2, 6
        aux = rng.normal(size=(n_aux, n_sub, bins)) + 1j * rng.normal(
            size=(n_aux, n_sub, bins)
        )
        mains = rng.normal(size=(1, n_sub, bins)) + 1j * rng.normal(
            size=(1, n_sub, bins)
        )
        ours = estimate_weights(mains, aux, loading=0.0)
        for k in range(bins):
            a = aux[:, :, k].T
            expected, *_ = scipy_linalg.lstsq(a, mains[0, :, k])
            assert np.allclose(ours[0, :, k], expected, atol=1e-8)
