"""Tests for :mod:`repro.check.invariants`.

Two directions: every real run must satisfy every invariant, and every
invariant must actually reject the corruption it exists to reject —
an invariant that cannot fail validates nothing.
"""

import dataclasses

import pytest

from repro.check.invariants import (
    check_accounting,
    check_bound,
    check_engine_conservation,
    check_functional,
    check_throughput,
    check_trace_accounting,
    check_traffic,
    validate_run,
    validate_results,
)
from repro.check.report import FAIL, PASS, SKIP
from repro.mappings import registry
from repro.models.bounds import kernel_bound, kernel_footprint_words


@pytest.fixture(scope="module")
def small_runs(small_workloads_module):
    return {
        (kernel, machine): registry.run(
            kernel, machine, workload=small_workloads_module[kernel]
        )
        for kernel, machine in registry.available()
    }


@pytest.fixture(scope="module")
def small_workloads_module():
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    return {
        "corner_turn": small_corner_turn(),
        "cslc": small_cslc(),
        "beam_steering": small_beam_steering(),
    }


class TestRealRunsPass:
    def test_every_pair_passes(self, small_runs, small_workloads_module):
        results = validate_results(small_runs, small_workloads_module)
        failures = [r for r in results if r.status == FAIL]
        assert not failures, "\n".join(r.format() for r in failures)

    def test_cslc_traffic_skipped_not_failed(
        self, small_runs, small_workloads_module
    ):
        run = small_runs[("cslc", "viram")]
        result = check_traffic(run, small_workloads_module["cslc"])
        assert result.status == SKIP

    def test_names_are_stable_and_dotted(self, small_runs, small_workloads_module):
        run = small_runs[("corner_turn", "viram")]
        names = {
            r.name for r in validate_run(run, small_workloads_module["corner_turn"])
        }
        assert "invariant.bound.corner_turn.viram" in names
        assert "invariant.traffic.corner_turn.viram" in names
        assert "invariant.functional.corner_turn.viram" in names


class TestInvariantsReject:
    """Each invariant must flag a run corrupted in its dimension."""

    def _corrupt(self, run, **changes):
        corrupted = dataclasses.replace(run)
        for attr, value in changes.items():
            setattr(corrupted, attr, value)
        return corrupted

    def test_bound_rejects_faster_than_physics(
        self, small_runs, small_workloads_module
    ):
        run = small_runs[("corner_turn", "viram")]
        workload = small_workloads_module["corner_turn"]
        bound = kernel_bound("corner_turn", "viram", workload)
        # A ledger scaled to sit strictly below the analytic bound.
        factor = 0.5 * bound.bound_cycles / run.cycles
        corrupted = self._corrupt(run, breakdown=run.breakdown.scaled(factor))
        assert check_bound(corrupted, workload).status == FAIL

    def test_traffic_rejects_dropped_working_set(
        self, small_runs, small_workloads_module
    ):
        run = small_runs[("corner_turn", "raw")]
        halved = dataclasses.replace(run.ops, loads=1.0, stores=1.0)
        corrupted = self._corrupt(run, ops=halved)
        result = check_traffic(corrupted, small_workloads_module["corner_turn"])
        assert result.status == FAIL
        assert "footprint" in result.detail

    def test_throughput_rejects_above_peak(self, small_runs):
        run = small_runs[("cslc", "viram")]
        inflated = dataclasses.replace(
            run.ops, adds=run.spec.flops_per_cycle * run.cycles * 2
        )
        corrupted = self._corrupt(run, ops=inflated)
        assert check_throughput(corrupted).status == FAIL

    def test_functional_rejects_wrong_answer(self, small_runs):
        run = small_runs[("beam_steering", "raw")]
        corrupted = self._corrupt(run, functional_ok=False)
        assert check_functional(corrupted).status == FAIL

    def test_accounting_passes_real_ledger(self, small_runs):
        run = small_runs[("corner_turn", "imagine")]
        assert all(r.status == PASS for r in check_accounting(run))


class TestFootprint:
    def test_corner_turn_moves_every_word_twice(self):
        from repro.kernels.workloads import canonical_corner_turn

        workload = canonical_corner_turn()
        assert kernel_footprint_words("corner_turn", workload) == (
            2.0 * workload.words
        )

    def test_beam_steering_three_words_per_output(self):
        from repro.kernels.workloads import canonical_beam_steering

        workload = canonical_beam_steering()
        assert kernel_footprint_words("beam_steering", workload) == (
            3.0 * workload.outputs
        )

    def test_cslc_streams_every_channel_once(self):
        from repro.kernels.workloads import canonical_cslc

        workload = canonical_cslc()
        expected = (
            (workload.n_channels + workload.n_mains)
            * workload.n_subbands
            * 2
            * workload.subband_len
        )
        assert kernel_footprint_words("cslc", workload) == expected

    def test_unknown_kernel_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            kernel_footprint_words("no_such_kernel")


class TestTraceAccounting:
    def test_full_size_all_pass(self):
        results = check_trace_accounting()
        names = {r.name for r in results}
        assert names == {
            "invariant.trace.noninterference",
            "invariant.trace.accounting.categories",
            "invariant.trace.accounting.total",
            "invariant.trace.dram-vs-ledger",
            "invariant.trace.tlb-vs-ledger",
        }
        bad = [r for r in results if r.status == FAIL]
        assert not bad, "\n".join(r.format() for r in bad)
        # The full-size corner turn runs on-chip: the dram and tlb
        # differentials genuinely execute rather than skipping.
        by_name = {r.name: r for r in results}
        assert by_name["invariant.trace.dram-vs-ledger"].status == PASS
        assert by_name["invariant.trace.tlb-vs-ledger"].status == PASS

    def test_small_workload_no_failures(self, small_workloads_module):
        results = check_trace_accounting(small_workloads_module)
        bad = [r for r in results if r.status == FAIL]
        assert not bad, "\n".join(r.format() for r in bad)

    def test_tracing_off_after_check(self):
        from repro.trace.tracer import active_tracer

        check_trace_accounting()
        assert active_tracer() is None


class TestEngineConservation:
    def test_deterministic_scenario_passes(self):
        results = check_engine_conservation()
        assert results, "no engine checks ran"
        assert all(r.status == PASS for r in results), "\n".join(
            r.format() for r in results if r.status != PASS
        )

    def test_counters_on_live_engine(self):
        from repro.sim.engine import Engine

        engine = Engine()
        events = [engine.schedule(float(i), lambda: None) for i in range(10)]
        events[3].cancel()
        events[3].cancel()  # idempotent: counted once
        assert engine.events_scheduled == 10
        assert engine.events_cancelled == 1
        assert engine.pending == 9
        assert engine.conservation_ok
        engine.run()
        assert engine.events_processed == 9
        assert engine.pending == 0
        assert engine.conservation_ok

    def test_conservation_survives_compaction(self):
        from repro.sim.engine import Engine

        engine = Engine()
        events = [engine.schedule(float(i), lambda: None) for i in range(500)]
        for event in events[:400]:  # enough to trip lazy compaction
            event.cancel()
        assert engine.conservation_ok
        engine.run()
        assert engine.events_processed == 100
        assert engine.events_cancelled == 400
        assert engine.conservation_ok
