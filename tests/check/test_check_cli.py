"""End-to-end tests for ``repro check`` and the check package surface:
tier dispatch, exit-code contract, the ``full_report`` validation
section, and the continuous-validation hook.
"""

import dataclasses

import pytest

from repro.check import TIERS, continuous_validation, run_checks
from repro.cli import main
from repro.errors import CheckError
from repro.mappings import registry
from repro.perf.cache import RUN_CACHE


@pytest.fixture(autouse=True)
def fresh_cache():
    RUN_CACHE.clear()
    RUN_CACHE.enable()
    yield
    RUN_CACHE.clear()


class TestRunChecks:
    def test_fast_tier_green(self, small_workloads):
        report = run_checks("fast", workloads=small_workloads)
        assert report.ok, "\n".join(r.format() for r in report.failures())
        assert report.exit_code == 0

    def test_full_tier_superset_of_fast(self, small_workloads):
        fast = run_checks("fast", workloads=small_workloads)
        RUN_CACHE.clear()
        full = run_checks("full", workloads=small_workloads, jobs=2)
        assert full.ok
        assert len(full.results) > len(fast.results)

    def test_unknown_tier_rejected(self):
        with pytest.raises(CheckError):
            run_checks("paranoid")
        # 'inject' has a different result shape and is CLI-only.
        with pytest.raises(CheckError):
            run_checks("inject")

    def test_tier_names_exported(self):
        assert TIERS == ("fast", "full", "inject")


class TestCheckCli:
    def test_fast_exits_zero(self, capsys):
        assert main(["check", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "verdict: OK" in out

    def test_default_tier_is_fast(self, capsys):
        assert main(["check"]) == 0
        assert "repro check [fast]:" in capsys.readouterr().out

    def test_verbose_lists_passing_checks(self, capsys):
        assert main(["check", "--fast", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "invariant.bound.corner_turn.viram" in out

    def test_inject_exits_one_when_all_detected(self, capsys):
        assert main(["check", "--inject"]) == 1
        out = capsys.readouterr().out
        assert "7/7 injected corruptions detected" in out
        assert "exiting non-zero" in out

    def test_inject_exits_three_when_oracle_blind(self, capsys, monkeypatch):
        from repro.check import faults

        blind = {
            "no-op-fault": (faults.perturbed_dram_timing, "dram", lambda: [])
        }
        monkeypatch.setattr(faults, "SCENARIOS", blind)
        assert main(["check", "--inject"]) == 3
        captured = capsys.readouterr()
        assert "missed its injected fault" in captured.err

    def test_tiers_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--fast", "--inject"])


class TestReportValidationSection:
    def test_report_ends_with_validation(self, small_workloads):
        from repro.eval.report import full_report

        text = full_report(small_workloads)
        assert "== Validation (repro check --fast) ==" in text
        assert "verdict: OK" in text

    def test_validation_can_be_disabled(self, small_workloads):
        from repro.eval.report import full_report

        text = full_report(small_workloads, validate=False)
        assert "Validation" not in text


class TestContinuousValidation:
    def test_healthy_runs_pass_through(self, small_workloads):
        with continuous_validation(workloads=small_workloads):
            run = registry.run(
                "corner_turn", "viram", workload=small_workloads["corner_turn"]
            )
        assert run.functional_ok

    def test_corrupt_run_rejected_before_caching(self, small_workloads):
        # Wrap the corner_turn/viram mapping so it emits a run whose
        # ledger beats the analytic bound — the hook must refuse it and
        # the poisoned result must never reach the cache.
        fn = registry._REGISTRY[("corner_turn", "viram")]

        def lying(**kwargs):
            run = fn(**kwargs)
            return dataclasses.replace(
                run, breakdown=run.breakdown.scaled(1e-6)
            )

        registry._REGISTRY[("corner_turn", "viram")] = lying
        try:
            with continuous_validation(workloads=small_workloads):
                with pytest.raises(CheckError, match="bound"):
                    registry.run(
                        "corner_turn",
                        "viram",
                        workload=small_workloads["corner_turn"],
                    )
        finally:
            registry._REGISTRY[("corner_turn", "viram")] = fn
        assert RUN_CACHE.stats()["entries"] == 0

    def test_previous_hook_restored(self):
        sentinel_calls = []

        def sentinel(run, kwargs):
            sentinel_calls.append(run.kernel)

        previous = registry.set_post_run_validator(sentinel)
        try:
            with continuous_validation():
                pass
            registry.run("corner_turn", "viram", cache=False)
        finally:
            registry.set_post_run_validator(previous)
        assert sentinel_calls == ["corner_turn"]
