"""Tests for :mod:`repro.check.pipeline`.

Same doctrine as ``test_invariants``: every real pipeline must pass
every pipeline invariant, and every invariant must reject the precise
corruption it exists to catch — additivity must see a cooked total,
footprint must see shrunk or teleported words, batch-vs-serial must be
wired into the fast tier where it can actually veto a release.
"""

import dataclasses

import pytest

from repro.check.pipeline import (
    pipeline_checks,
    validate_pipeline_run,
)
from repro.check.report import FAIL, PASS
from repro.kernels.workloads import (
    small_beam_steering,
    small_corner_turn,
    small_cslc,
)
from repro.mappings import registry
from repro.scenarios import run_pipeline, small_scenario

SMALL_WORKLOADS = {
    "corner_turn": small_corner_turn(),
    "cslc": small_cslc(),
    "beam_steering": small_beam_steering(),
}


@pytest.fixture(scope="module")
def small_pruns():
    return {
        machine: run_pipeline(small_scenario(machine))
        for machine in registry.MACHINES
    }


def _tamper_stage(prun, index, **changes):
    stages = list(prun.stages)
    stages[index] = dataclasses.replace(stages[index], **changes)
    return dataclasses.replace(prun, stages=tuple(stages))


class TestRealPipelinesPass:
    def test_every_machine_passes_both_run_invariants(self, small_pruns):
        for machine, prun in small_pruns.items():
            results = validate_pipeline_run(prun)
            assert [r.name for r in results] == [
                f"invariant.pipeline.additivity.{machine}",
                f"invariant.pipeline.footprint.{machine}",
            ]
            for result in results:
                assert result.status == PASS, result.format()

    def test_pipeline_checks_suite_is_all_green(self):
        results = pipeline_checks(workloads=SMALL_WORKLOADS)
        # 2 per machine + the batch-vs-serial differential.
        assert len(results) == 2 * len(registry.MACHINES) + 1
        for result in results:
            assert result.status == PASS, result.format()
        assert results[-1].name == "invariant.pipeline.batch-vs-serial"


class TestAdditivityRejectsCorruption:
    def test_dropped_handoff_fails(self, small_pruns):
        tampered = _tamper_stage(small_pruns["viram"], 0, handoff=None)
        additivity = validate_pipeline_run(tampered)[0]
        assert additivity.status == FAIL
        assert "missing its handoff" in additivity.detail

    def test_repriced_handoff_fails(self, small_pruns):
        prun = small_pruns["imagine"]
        # Halve the port rate: cycles (a derived property) double while
        # words stay honest, so only additivity's re-pricing sees it.
        cooked = dataclasses.replace(
            prun.stages[0].handoff,
            words_per_cycle=prun.stages[0].handoff.words_per_cycle / 2,
        )
        tampered = _tamper_stage(prun, 0, handoff=cooked)
        additivity = validate_pipeline_run(tampered)[0]
        assert additivity.status == FAIL
        assert "drifted" in additivity.detail

    def test_handoff_on_the_last_stage_fails(self, small_pruns):
        prun = small_pruns["raw"]
        tampered = _tamper_stage(
            prun, len(prun.stages) - 1, handoff=prun.stages[0].handoff
        )
        additivity = validate_pipeline_run(tampered)[0]
        assert additivity.status == FAIL
        assert "last stage" in additivity.detail


class TestFootprintRejectsCorruption:
    def test_shrunk_payload_fails(self, small_pruns):
        prun = small_pruns["viram"]
        stored = prun.stages[0].handoff
        # Shrink the payload; cycles re-derive consistently, so only
        # footprint conservation can catch the lost words.
        shrunk = dataclasses.replace(stored, words=stored.words // 2)
        tampered = _tamper_stage(prun, 0, handoff=shrunk)
        footprint = validate_pipeline_run(tampered)[1]
        assert footprint.status == FAIL
        assert "declares" in footprint.detail

    def test_below_floor_pricing_fails(self, small_pruns):
        prun = small_pruns["ppc"]
        stored = prun.stages[0].handoff
        # An absurdly fast port prices the move below the best-port
        # floor — data teleported.
        teleported = dataclasses.replace(
            stored, words_per_cycle=stored.words_per_cycle * 1e6
        )
        tampered = _tamper_stage(prun, 0, handoff=teleported)
        results = validate_pipeline_run(tampered)
        footprint = results[1]
        assert footprint.status == FAIL
        assert "best-port floor" in footprint.detail


class TestFastTierWiring:
    def test_fast_report_contains_the_pipeline_invariants(self):
        from repro.check import run_checks

        report = run_checks("fast", workloads=SMALL_WORKLOADS)
        names = {r.name for r in report.results}
        for machine in registry.MACHINES:
            assert f"invariant.pipeline.additivity.{machine}" in names
            assert f"invariant.pipeline.footprint.{machine}" in names
        assert "invariant.pipeline.batch-vs-serial" in names
        assert all(r.status != FAIL for r in report.results)
