"""Tests for :mod:`repro.check.oracles`.

The oracles compare redundant evaluation paths; on a healthy tree every
comparison must agree, and ``diff_runs`` — the comparison engine they
share — must see every field of a :class:`KernelRun`.
"""

import dataclasses

import pytest

from repro.check.oracles import (
    cache_oracle,
    diff_runs,
    disk_cache_oracle,
    disk_integrity_check,
    dram_oracle,
    executor_oracle,
)
from repro.check.report import FAIL, PASS, SKIP
from repro.mappings import registry
from repro.perf.cache import RUN_CACHE
from repro.perf.diskcache import DISK_CACHE


@pytest.fixture(autouse=True)
def fresh_cache():
    RUN_CACHE.clear()
    RUN_CACHE.enable()
    yield
    RUN_CACHE.clear()


class TestDiffRuns:
    def test_identical_runs_have_no_diff(self, small_ct):
        a = registry.run("corner_turn", "viram", workload=small_ct)
        b = registry.run("corner_turn", "viram", workload=small_ct)
        assert diff_runs(a, b) == []

    def test_cycles_perturbation_detected(self, small_ct):
        a = registry.run("corner_turn", "viram", workload=small_ct)
        b = dataclasses.replace(a, breakdown=a.breakdown.scaled(1.001))
        diffs = diff_runs(a, b)
        assert any("cycles" in d for d in diffs)

    def test_metric_perturbation_detected(self, small_bs):
        a = registry.run("beam_steering", "viram", workload=small_bs)
        b = registry.run("beam_steering", "viram", workload=small_bs)
        b.metrics["extra"] = 1
        diffs = diff_runs(a, b)
        assert any("metrics" in d and "extra" in d for d in diffs)

    def test_ops_perturbation_detected(self, small_bs):
        a = registry.run("beam_steering", "raw", workload=small_bs)
        b = dataclasses.replace(
            a, ops=dataclasses.replace(a.ops, adds=a.ops.adds + 1)
        )
        diffs = diff_runs(a, b)
        assert any("ops" in d for d in diffs)

    def test_functional_flag_detected(self, small_bs):
        a = registry.run("beam_steering", "raw", workload=small_bs)
        b = dataclasses.replace(a, functional_ok=False)
        assert any("functional_ok" in d for d in diff_runs(a, b))

    def test_rtol_absorbs_float_noise(self, small_ct):
        a = registry.run("corner_turn", "viram", workload=small_ct)
        b = dataclasses.replace(
            a, breakdown=a.breakdown.scaled(1.0 + 1e-12)
        )
        assert diff_runs(a, b, rtol=1e-9) == []
        assert diff_runs(a, b, rtol=0.0) != []


class TestCacheOracle:
    def test_healthy_cache_agrees_with_cold(self, small_workloads):
        results = cache_oracle(
            pairs=[("corner_turn", "viram"), ("beam_steering", "raw")],
            workloads=small_workloads,
        )
        assert len(results) == 2
        assert all(r.status != FAIL for r in results), [
            r.format() for r in results
        ]

    def test_disabled_cache_reported_as_skip(self, small_workloads):
        RUN_CACHE.disable()
        try:
            results = cache_oracle(
                pairs=[("corner_turn", "viram")], workloads=small_workloads
            )
        finally:
            RUN_CACHE.enable()
        assert [r.status for r in results] == [SKIP]


class TestDiskOracleWithTierDisabled:
    """The validation section must not depend on cache configuration:
    with the disk tier opted out, the disk oracles exercise an
    ephemeral private store and still PASS (never SKIP), so ``repro
    report`` stays byte-identical under ``--no-disk-cache``."""

    def test_differential_oracle_passes_against_ephemeral_store(
        self, small_workloads
    ):
        with DISK_CACHE.disabled():
            results = disk_cache_oracle(
                pairs=[("corner_turn", "viram")], workloads=small_workloads
            )
        assert [r.status for r in results] == [PASS], [
            r.format() for r in results
        ]

    def test_integrity_check_passes_against_ephemeral_store(self):
        with DISK_CACHE.disabled():
            results = disk_integrity_check()
        assert [r.status for r in results] == [PASS]
        assert not DISK_CACHE.keys()  # user's store untouched

    def test_forced_off_state_survives_the_oracles(self, small_workloads):
        DISK_CACHE.disable()
        try:
            disk_cache_oracle(
                pairs=[("corner_turn", "viram")], workloads=small_workloads
            )
            disk_integrity_check()
            assert not DISK_CACHE.enabled
        finally:
            DISK_CACHE.enable()


class TestExecutorOracle:
    def test_serial_and_parallel_agree(self):
        results = executor_oracle(jobs=2)
        assert results
        # Either genuine agreement or an explicit environment skip —
        # never a silent pass, never a failure on a healthy tree.
        assert all(r.status != FAIL for r in results), [
            r.format() for r in results
        ]

    def test_cache_state_restored(self):
        assert RUN_CACHE.enabled
        executor_oracle(jobs=1)
        assert RUN_CACHE.enabled


class TestDramOracle:
    def test_all_cases_agree(self):
        results = dram_oracle()
        # Power-of-two and non-power-of-two geometries, both policies.
        assert len(results) >= 4
        labels = {r.name for r in results}
        assert any("nonpow2" in label for label in labels)
        assert any("serialized" in label for label in labels)
        assert all(r.status != FAIL for r in results), [
            r.format() for r in results if r.status == FAIL
        ]
