"""Tests for :mod:`repro.check.faults`.

Each injected corruption must be caught by its oracle (the whole point
of the injection matrix), the injectors must restore all patched state
on exit, and the rendered report must say what happened.
"""

import pytest

from repro.check import faults, oracles
from repro.check.report import FAIL
from repro.mappings import registry
from repro.perf import executor
from repro.perf.cache import RUN_CACHE


@pytest.fixture(autouse=True)
def fresh_cache():
    RUN_CACHE.clear()
    RUN_CACHE.enable()
    yield
    RUN_CACHE.clear()


class TestScenarios:
    def test_matrix_covers_all_redundant_paths(self):
        assert {oracle for _, oracle, _ in faults.SCENARIOS.values()} == {
            "cache",
            "diskcache",
            "executor",
            "dram",
        }

    def test_every_fault_detected(self):
        outcomes = faults.run_injection()
        assert len(outcomes) == len(faults.SCENARIOS)
        undetected = [o for o in outcomes if not o.detected]
        assert not undetected, "\n".join(
            f"{o.fault}: {o.evidence}" for o in undetected
        )

    def test_blind_oracle_reported_undetected(self):
        # A scenario whose "oracle" never looks at anything must come
        # back UNDETECTED — run_injection itself must not paper over it.
        blind = {
            "no-op-fault": (
                faults.perturbed_dram_timing,
                "dram",
                lambda: [],  # an oracle that checks nothing
            )
        }
        outcomes = faults.run_injection(blind)
        assert [o.detected for o in outcomes] == [False]


class TestInjectorHygiene:
    def test_cache_injector_restores_clean_state(self, small_workloads):
        with faults.corrupted_cache_entry():
            pass
        # After exit the cache holds no tampered entries: a fresh
        # cache-oracle pass must be green.
        results = oracles.cache_oracle(
            pairs=[("corner_turn", "viram")], workloads=small_workloads
        )
        assert all(r.status != FAIL for r in results)

    def test_cache_injector_corrupts_while_active(self):
        with faults.corrupted_cache_entry() as key:
            assert key  # cache enabled in this fixture
            cached = registry.run("corner_turn", "viram")
            cold = registry.run("corner_turn", "viram", cache=False)
            assert cached.cycles == pytest.approx(2.0 * cold.cycles)

    def test_executor_injector_unpatches(self):
        original = executor._run_unit_pool
        with faults.misdelivered_worker_results():
            assert executor._run_unit_pool is not original
        assert executor._run_unit_pool is original

    def test_dram_injector_unpatches(self):
        from repro.memory.dram import DRAM

        original = DRAM.access_run
        with faults.perturbed_dram_timing():
            assert DRAM.access_run is not original
        assert DRAM.access_run is original
        assert all(r.status != FAIL for r in oracles.dram_oracle())


class TestRenderInjection:
    def test_render_names_every_scenario(self):
        outcomes = [
            faults.InjectionOutcome("f1", "cache", True, "ok"),
            faults.InjectionOutcome("f2", "dram", False, "stayed green"),
        ]
        text = faults.render_injection(outcomes)
        assert "DETECTED" in text and "UNDETECTED" in text
        assert "f1" in text and "f2" in text
        assert "1/2 injected corruptions detected" in text
