"""The invariant.obs.* reconciliation checks (repro.check.obs)."""

from repro.check.obs import PLAN_FIELDS, obs_checks
from repro.check.report import PASS

EXPECTED = (
    "invariant.obs.seq",
    "invariant.obs.plan-conservation",
    "invariant.obs.counter-reconcile",
    "invariant.obs.dispatch-reconcile",
    "invariant.obs.supervisor-mirror",
)


def test_all_obs_invariants_pass(small_workloads):
    results = obs_checks(workloads=small_workloads)
    by_name = {r.name: r for r in results}
    assert set(by_name) == set(EXPECTED)
    failing = [r for r in results if r.status != PASS]
    assert not failing, [
        (r.name, r.detail) for r in failing
    ]


def test_plan_conservation_sees_the_deliberate_duplicate(small_workloads):
    results = obs_checks(workloads=small_workloads)
    plan = next(
        r for r in results if r.name == "invariant.obs.plan-conservation"
    )
    # The probe submits 3 requests with one repeat: the detail proves the
    # duplicate was deduplicated, not silently executed twice.
    assert "3 requests" in plan.detail
    assert "1 dup" in plan.detail


def test_obs_invariants_run_in_fast_tier(small_workloads):
    from repro.check import run_checks

    report = run_checks("fast", workloads=small_workloads)
    names = {r.name for r in report.results}
    assert set(EXPECTED) <= names


def test_plan_fields_cover_the_conservation_identity():
    assert set(PLAN_FIELDS) == {
        "requests", "duplicates", "memory_hits", "disk_hits", "executed",
        "units",
    }
