"""The golden test: canonical-size reproduction fidelity.

Runs the full Table 3 sweep at the paper's workload sizes and asserts
the *shape* criteria from DESIGN.md §5:

* every Table 3 cell within a factor band of the published value,
* per-kernel platform ordering preserved,
* the §4 breakdown percentages near the paper's statements,
* the §4.5 AltiVec gains near the paper's factors.

These tolerances are deliberately loose enough to survive calibration
refinements but tight enough that a broken mechanism fails loudly.
"""

import pytest

from repro.eval.experiments import run_experiment
from repro.eval.tables import PAPER_TABLE3, run_table3
from repro.mappings.registry import KERNELS, MACHINES


@pytest.fixture(scope="module")
def canonical_results():
    return run_table3()


CELL_TOLERANCE = 1.5  # each cell within 1.5x either way


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("machine", MACHINES)
def test_table3_cell_within_band(canonical_results, kernel, machine):
    model = canonical_results[(kernel, machine)].kilocycles
    paper = PAPER_TABLE3[(kernel, machine)]
    ratio = model / paper
    assert 1 / CELL_TOLERANCE < ratio < CELL_TOLERANCE, (
        f"{kernel} on {machine}: model {model:,.0f}k vs paper "
        f"{paper:,.0f}k (ratio {ratio:.2f})"
    )


@pytest.mark.parametrize("kernel", KERNELS)
def test_platform_ordering_preserved(canonical_results, kernel):
    """Who beats whom on each kernel must match Table 3."""
    model_order = sorted(
        MACHINES, key=lambda m: canonical_results[(kernel, m)].cycles
    )
    paper_order = sorted(MACHINES, key=lambda m: PAPER_TABLE3[(kernel, m)])
    assert model_order == paper_order


def test_winners_match_paper(canonical_results):
    """Raw wins corner turn and beam steering; Imagine wins CSLC."""
    for kernel, winner in (
        ("corner_turn", "raw"),
        ("cslc", "imagine"),
        ("beam_steering", "raw"),
    ):
        best = min(
            MACHINES, key=lambda m: canonical_results[(kernel, m)].cycles
        )
        assert best == winner, kernel


def test_all_functional_checks_pass(canonical_results):
    for (kernel, machine), run_ in canonical_results.items():
        assert run_.functional_ok, f"{kernel} on {machine}"


def test_research_chips_beat_altivec_by_10x_or_more(canonical_results):
    """§4.6: 'VIRAM outperformed the G4 Altivec by more than a factor of
    10 on all three of our kernels' — and Raw/Imagine are in the same
    class (Figure 8's log scale)."""
    for kernel in KERNELS:
        altivec = canonical_results[(kernel, "altivec")].cycles
        for machine in ("viram", "raw"):
            speedup = altivec / canonical_results[(kernel, machine)].cycles
            assert speedup > 8.0, (kernel, machine, speedup)


class TestBreakdownAnchors:
    """§4.2-§4.5 quantitative statements, through the experiment
    registry's checks."""

    @pytest.mark.parametrize(
        "experiment_id,tolerance",
        [
            ("sec4.2", 0.35),
            ("sec4.3", 0.50),
            ("sec4.4", 0.50),
            ("sec4.5", 0.35),
        ],
    )
    def test_checks_within_tolerance(
        self, canonical_results, experiment_id, tolerance
    ):
        outcome = run_experiment(experiment_id, results=canonical_results)
        for name, ratio in outcome.check_ratios().items():
            assert 1 - tolerance < ratio < 1 + tolerance, (
                f"{experiment_id}:{name} ratio {ratio:.2f}"
            )


class TestAblations:
    def test_network_port_same(self, canonical_results):
        outcome = run_experiment(
            "ablation_imagine_network_port", results=canonical_results
        )
        model, paper = outcome.checks["port_over_base"]
        assert model == pytest.approx(paper, abs=0.02)

    def test_streamed_fft_near_70_percent(self, canonical_results):
        outcome = run_experiment(
            "ablation_raw_streamed_fft", results=canonical_results
        )
        model, paper = outcome.checks["fft_improvement"]
        assert model == pytest.approx(paper, abs=0.2)

    def test_load_balance_near_8_percent(self, canonical_results):
        outcome = run_experiment(
            "ablation_raw_load_balance", results=canonical_results
        )
        model, paper = outcome.checks["idle_fraction"]
        assert model == pytest.approx(paper, abs=0.02)

    def test_srf_tables_about_2x(self, canonical_results):
        outcome = run_experiment(
            "ablation_imagine_srf_tables", results=canonical_results
        )
        model, paper = outcome.checks["srf_speedup"]
        assert 1.5 < model < 3.5
        assert paper == 2.0
