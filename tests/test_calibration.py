"""Tests for :mod:`repro.calibration` — the constants and their contract."""

import dataclasses

import pytest

from repro.calibration import (
    DEFAULT_CALIBRATION,
    Calibration,
    ImagineCalibration,
    PpcCalibration,
    RawCalibration,
    ViramCalibration,
)

GROUPS = (ViramCalibration, ImagineCalibration, RawCalibration, PpcCalibration)


class TestStructure:
    def test_default_is_all_defaults(self):
        assert DEFAULT_CALIBRATION == Calibration()

    @pytest.mark.parametrize("group", GROUPS)
    def test_frozen(self, group):
        instance = group()
        field = dataclasses.fields(instance)[0]
        with pytest.raises(dataclasses.FrozenInstanceError):
            setattr(instance, field.name, 0.0)

    @pytest.mark.parametrize("group", GROUPS)
    def test_all_constants_nonnegative(self, group):
        instance = group()
        for field in dataclasses.fields(instance):
            assert getattr(instance, field.name) >= 0, field.name

    @pytest.mark.parametrize("group", GROUPS)
    def test_every_constant_documented(self, group):
        """The calibration contract: every constant's name appears in
        its group's docstring with a paper anchor."""
        doc = group.__doc__
        for field in dataclasses.fields(group):
            assert f"``{field.name}``" in doc or field.name in doc, (
                f"{group.__name__}.{field.name} lacks a documented anchor"
            )

    def test_independent_group_replacement(self):
        custom = dataclasses.replace(
            DEFAULT_CALIBRATION,
            raw=RawCalibration(cache_stall_fraction=0.05),
        )
        assert custom.raw.cache_stall_fraction == 0.05
        assert custom.viram == DEFAULT_CALIBRATION.viram


class TestPhysicalSanity:
    def test_viram_row_cycle_sustains_between_strided_and_seq(self):
        """The corner-turn mechanism requires the bank array to sustain
        less than the 4-word/cycle address generators when every access
        misses its row, but more than zero."""
        cal = DEFAULT_CALIBRATION.viram
        sustained = 8 / cal.dram_row_cycle  # 8 banks
        assert 1.0 < sustained < 4.0

    def test_raw_stall_fraction_below_paper_bound(self):
        """§4.3: 'less than 10% of the execution time.'"""
        assert DEFAULT_CALIBRATION.raw.cache_stall_fraction < 0.10

    def test_imagine_inefficiency_at_least_one(self):
        assert (
            DEFAULT_CALIBRATION.imagine.cluster_schedule_inefficiency >= 1.0
        )

    def test_ppc_memory_latencies_ordered(self):
        cal = DEFAULT_CALIBRATION.ppc
        assert cal.l2_hit_cycles < cal.dram_latency_cycles
