"""Tests for the sweep planner (:mod:`repro.perf.planner`).

The contract under test: a plan's slots are stable and dedup-aware,
execution serves each unique cell exactly once (from whichever tier can
answer it), chunked pool dispatch changes nothing but wall-clock, and
the sensitivity sweep — the planner's motivating client — issues
strictly fewer cold executions than its request count.
"""

import pytest

from repro.eval import sensitivity
from repro.perf import executor, planner, tensorsweep
from repro.perf.cache import RUN_CACHE, cache_key
from repro.perf.diskcache import DISK_CACHE
from repro.perf.planner import SweepPlan, execute_requests


@pytest.fixture(autouse=True)
def fresh_caches():
    RUN_CACHE.clear()
    RUN_CACHE.enable()
    yield
    RUN_CACHE.clear()


@pytest.fixture
def count_executions(monkeypatch):
    """Count actual mapping executions (cold runs) under the planner —
    per-cell runs and tensor-batched cells alike."""
    calls = []
    original = executor._execute
    original_group = tensorsweep.run_group

    def counting(request):
        calls.append(request)
        return original(request)

    def counting_group(group):
        for kwargs in group.cell_kwargs:
            calls.append((group.kernel, group.machine, kwargs))
        return original_group(group)

    monkeypatch.setattr(executor, "_execute", counting)
    monkeypatch.setattr(tensorsweep, "run_group", counting_group)
    return calls


class TestSweepPlan:
    def test_slots_in_collection_order(self, small_ct, small_bs):
        plan = SweepPlan()
        a = plan.add("corner_turn", "viram", workload=small_ct)
        b = plan.add("beam_steering", "raw", workload=small_bs)
        assert (a, b) == (0, 1)
        assert len(plan) == 2

    def test_duplicate_cells_share_a_slot(self, small_ct):
        plan = SweepPlan()
        a = plan.add("corner_turn", "viram", workload=small_ct)
        b = plan.add("corner_turn", "viram", workload=small_ct)
        assert a == b
        assert len(plan) == 1

    def test_dedup_is_structural_not_cache_dependent(self, small_ct):
        RUN_CACHE.disable()
        DISK_CACHE.disable()
        try:
            plan = SweepPlan()
            a = plan.add("corner_turn", "viram", workload=small_ct)
            b = plan.add("corner_turn", "viram", workload=small_ct)
            assert a == b and len(plan) == 1
        finally:
            DISK_CACHE.enable()
            RUN_CACHE.enable()

    def test_execute_returns_one_result_per_slot(self, small_ct, small_bs):
        plan = SweepPlan()
        ct = plan.add("corner_turn", "viram", workload=small_ct)
        bs = plan.add("beam_steering", "raw", workload=small_bs)
        runs = plan.execute()
        assert runs[ct].kernel == "corner_turn"
        assert runs[bs].kernel == "beam_steering"

    def test_requests_copies_are_independent(self, small_ct):
        plan = SweepPlan()
        plan.add("corner_turn", "viram", workload=small_ct)
        reqs = plan.requests
        reqs[0][2]["workload"] = None
        assert plan.requests[0][2]["workload"] is small_ct


class TestExecuteRequests:
    def test_duplicates_served_as_independent_copies(self, small_ct):
        request = ("corner_turn", "viram", {"workload": small_ct})
        results = execute_requests([request, request])
        assert repr(results[0]) == repr(results[1])
        assert results[0] is not results[1]

    def test_unique_cells_executed_once(self, small_ct, count_executions):
        request = ("corner_turn", "viram", {"workload": small_ct})
        execute_requests([request, request, request])
        assert len(count_executions) == 1

    def test_memory_hits_skip_execution(self, small_ct, count_executions):
        request = ("corner_turn", "viram", {"workload": small_ct})
        execute_requests([request])
        execute_requests([request])
        assert len(count_executions) == 1

    def test_disk_hits_promoted_to_memory(self, small_ct, count_executions):
        request = ("corner_turn", "viram", {"workload": small_ct})
        execute_requests([request])
        key = cache_key("corner_turn", "viram", {"workload": small_ct})
        RUN_CACHE.evict(key)
        disk_hits = DISK_CACHE.hits
        execute_requests([request])
        assert len(count_executions) == 1
        assert DISK_CACHE.hits == disk_hits + 1
        assert RUN_CACHE.lookup(key) is not None

    def test_pool_and_serial_agree(self, small_ct, small_bs):
        requests = [
            ("corner_turn", "viram", {"workload": small_ct}),
            ("corner_turn", "raw", {"workload": small_ct}),
            ("beam_steering", "imagine", {"workload": small_bs}),
            ("beam_steering", "viram", {"workload": small_bs}),
        ]
        serial = execute_requests(requests)
        RUN_CACHE.clear()
        DISK_CACHE.clear()
        parallel = execute_requests(requests, jobs=2)
        assert [repr(r) for r in serial] == [repr(r) for r in parallel]

    def test_empty_plan(self):
        assert execute_requests([]) == []


class TestChunking:
    def test_chunks_cover_all_requests_in_order(self):
        requests = [("k", "m", {"i": i}) for i in range(10)]
        chunks = executor.chunked(requests, n_jobs=3)
        flattened = [r for chunk in chunks for r in chunk]
        assert flattened == requests
        assert all(chunk for chunk in chunks)

    def test_explicit_chunk_size(self):
        requests = [("k", "m", {"i": i}) for i in range(7)]
        chunks = executor.chunked(requests, n_jobs=2, chunk_size=3)
        # chunk_size caps the batch; the 7 cells spread 3/2/2, not
        # 3/3/1 — no runt tail chunk idling a worker.
        assert [len(c) for c in chunks] == [3, 2, 2]

    def test_default_targets_chunks_per_worker(self):
        requests = [("k", "m", {"i": i}) for i in range(64)]
        chunks = executor.chunked(requests, n_jobs=4)
        # ~4 chunks per worker: 16 chunks of 4.
        assert len(chunks) == 16

    def test_chunk_sizes_balanced(self):
        # The load-balance pin: across any sweep shape, the largest and
        # smallest chunk differ by at most one cell.  The old uniform
        # slicing failed this whenever len % chunk_size was small but
        # non-zero (e.g. 17 at cap 8 -> 8/8/1).
        for n in (1, 2, 7, 16, 17, 63, 100):
            for n_jobs in (1, 2, 3, 4, 8):
                sizes = [
                    len(c)
                    for c in executor.chunked(
                        [("k", "m", {"i": i}) for i in range(n)], n_jobs
                    )
                ]
                assert sum(sizes) == n
                assert max(sizes) - min(sizes) <= 1, (n, n_jobs, sizes)
        explicit = executor.chunked(
            [("k", "m", {"i": i}) for i in range(17)], 2, chunk_size=8
        )
        sizes = [len(c) for c in explicit]
        assert sizes == [6, 6, 5]
        assert max(sizes) - min(sizes) <= 1

    def test_chunked_empty(self):
        assert executor.chunked([], n_jobs=4) == []

    def test_chunked_pool_identical_to_serial(self, small_ct, small_bs):
        requests = [
            ("corner_turn", "viram", {"workload": small_ct}),
            ("corner_turn", "raw", {"workload": small_ct}),
            ("beam_steering", "raw", {"workload": small_bs}),
        ]
        serial = execute_requests(requests)
        RUN_CACHE.clear()
        DISK_CACHE.clear()
        chunked = execute_requests(requests, jobs=2, chunk_size=1)
        assert [repr(r) for r in serial] == [repr(r) for r in chunked]


class TestSensitivityHoisting:
    """The satellite fix: the sweep must not re-run shared baselines."""

    CONSTANTS = [
        ("viram", "dram_row_cycle"),
        ("viram", "tlb_miss_cycles"),
        ("viram", "exposed_load_latency"),
    ]

    def test_shared_baseline_collected_once(self, small_workloads):
        # Three constants, all perturbing the same corner_turn/viram
        # cell: 3 x (baseline, up, down) = 9 requests, but the baseline
        # is identical across constants -> 7 unique measurements.
        plan = SweepPlan()
        from repro.calibration import DEFAULT_CALIBRATION

        for machine, constant in self.CONSTANTS:
            up = sensitivity.perturbed_calibration(machine, constant, 1.25)
            down = sensitivity.perturbed_calibration(machine, constant, 0.75)
            for cal in (DEFAULT_CALIBRATION, up, down):
                plan.add(
                    "corner_turn",
                    "viram",
                    calibration=cal,
                    workload=small_workloads["corner_turn"],
                )
        assert len(plan) == 7

    def test_sweep_issues_fewer_cold_runs_than_requests(
        self, small_workloads, count_executions
    ):
        # With both tiers off, only the planner's structural dedup can
        # save executions: 9 requested measurements, 7 cold runs.
        RUN_CACHE.disable()
        DISK_CACHE.disable()
        try:
            rows = sensitivity.sweep(
                constants=self.CONSTANTS, workloads=small_workloads
            )
        finally:
            DISK_CACHE.enable()
            RUN_CACHE.enable()
        assert len(rows) == 3
        assert len(count_executions) == 7
        assert len(count_executions) < 3 * len(rows)

    def test_hoisting_changes_no_numbers(self, small_workloads):
        rows = sensitivity.sweep(
            constants=self.CONSTANTS, workloads=small_workloads
        )
        baselines = {row.baseline_cycles for row in rows}
        assert len(baselines) == 1  # same cell -> same baseline
        assert any(row.up_cycles != row.baseline_cycles for row in rows)
