"""Tests for the persistent disk tier (:mod:`repro.perf.diskcache`).

The contract under test: entries round-trip with integrity verification,
concurrent writers can never publish a torn file, pruning is safe under
contention, a corrupt entry is detected and quarantined rather than
served, and bumping the model version stamp orphans every old entry.
"""

import multiprocessing
import os

import pytest

from repro.mappings import registry
from repro.perf import cache as cache_module
from repro.perf.cache import RUN_CACHE, cache_key, model_version_stamp
from repro.perf.diskcache import DISK_CACHE, MAGIC, DiskCache


@pytest.fixture(autouse=True)
def fresh_memory_cache():
    RUN_CACHE.clear()
    RUN_CACHE.enable()
    yield
    RUN_CACHE.clear()


@pytest.fixture
def disk(tmp_path):
    return DiskCache(tmp_path / "store")


# -- round-trip and encoding -------------------------------------------


class TestRoundTrip:
    def test_insert_then_lookup(self, disk):
        assert disk.insert("ab1234", {"cycles": 42.0})
        assert disk.lookup("ab1234") == {"cycles": 42.0}
        assert disk.hits == 1 and disk.writes == 1

    def test_missing_key_is_a_miss(self, disk):
        assert disk.lookup("nope00") is None
        assert disk.misses == 1

    def test_entry_is_magic_digest_payload(self, disk):
        disk.insert("ab1234", [1, 2, 3])
        blob = disk._path("ab1234").read_bytes()
        assert blob.startswith(MAGIC)
        assert DiskCache.decode(blob) == [1, 2, 3]

    def test_kernel_run_round_trips_field_identical(self, disk, small_ct):
        run = registry.run(
            "corner_turn", "viram", workload=small_ct, cache=False
        )
        disk.insert("cc0000", run)
        loaded = disk.lookup("cc0000")
        assert repr(loaded) == repr(run)
        assert loaded.cycles == run.cycles

    def test_contains_and_evict(self, disk):
        disk.insert("ab1234", "x")
        assert disk.contains("ab1234")
        assert disk.evict("ab1234")
        assert not disk.contains("ab1234")
        assert not disk.evict("ab1234")

    def test_unpicklable_value_degrades_to_noop(self, disk):
        assert not disk.insert("ab1234", lambda: None)
        assert not disk.contains("ab1234")


# -- corruption --------------------------------------------------------


class TestCorruption:
    def test_flipped_byte_detected_and_quarantined(self, disk):
        disk.insert("ab1234", {"cycles": 42.0})
        assert disk.corrupt_bytes("ab1234")
        assert disk.lookup("ab1234") is None
        assert disk.corrupt == 1 and disk.misses == 1
        # Quarantined: the bad file is gone, the key can be re-written.
        assert not disk._path("ab1234").exists()
        disk.insert("ab1234", {"cycles": 42.0})
        assert disk.lookup("ab1234") == {"cycles": 42.0}

    def test_truncated_entry_rejected(self, disk):
        disk.insert("ab1234", {"cycles": 42.0})
        path = disk._path("ab1234")
        path.write_bytes(path.read_bytes()[: len(MAGIC) + 10])
        assert disk.lookup("ab1234") is None
        assert disk.corrupt == 1

    def test_bad_magic_rejected(self, disk):
        disk.insert("ab1234", {"cycles": 42.0})
        path = disk._path("ab1234")
        path.write_bytes(b"not-a-cache-entry" + path.read_bytes())
        assert disk.lookup("ab1234") is None
        assert disk.corrupt == 1

    def test_verify_names_the_bad_keys(self, disk):
        disk.insert("ab1234", "good")
        disk.insert("cd5678", "bad")
        disk.corrupt_bytes("cd5678")
        assert disk.verify() == ["cd5678"]

    def test_tamper_keeps_a_valid_digest(self, disk):
        # The stale-but-self-consistent corruption: hash verification
        # must NOT catch it (that is the differential oracle's job).
        disk.insert("ab1234", {"cycles": 42.0})

        def double(entry):
            entry["cycles"] *= 2

        assert disk.tamper("ab1234", double)
        assert disk.verify() == []
        assert disk.lookup("ab1234") == {"cycles": 84.0}


# -- version stamp -----------------------------------------------------


class TestVersionStamp:
    def test_stamp_is_stable_within_a_version(self):
        assert model_version_stamp() == model_version_stamp()

    def test_version_bump_invalidates_persisted_entries(
        self, monkeypatch, small_ct
    ):
        import repro

        run = registry.run("corner_turn", "viram", workload=small_ct)
        old_key = cache_key("corner_turn", "viram", {"workload": small_ct})
        assert DISK_CACHE.contains(old_key)
        old_stamp = model_version_stamp()

        monkeypatch.setattr(repro, "__version__", "999.0.0-test")
        cache_module.reset_model_version_stamp()
        try:
            assert model_version_stamp() != old_stamp
            new_key = cache_key(
                "corner_turn", "viram", {"workload": small_ct}
            )
            assert new_key != old_key
            # The old entry is unreachable: new key, new stamp dir.
            assert not DISK_CACHE.contains(new_key)
            assert DISK_CACHE.lookup(new_key) is None
        finally:
            monkeypatch.undo()
            cache_module.reset_model_version_stamp()
        assert model_version_stamp() == old_stamp

    def test_calibration_change_moves_the_stamp(self, monkeypatch):
        from dataclasses import replace

        from repro import calibration as cal_module

        old_stamp = model_version_stamp()
        perturbed = replace(
            cal_module.DEFAULT_CALIBRATION,
            viram=replace(
                cal_module.DEFAULT_CALIBRATION.viram, dram_row_cycle=99.0
            ),
        )
        monkeypatch.setattr(
            cal_module, "DEFAULT_CALIBRATION", perturbed
        )
        cache_module.reset_model_version_stamp()
        try:
            assert model_version_stamp() != old_stamp
        finally:
            monkeypatch.undo()
            cache_module.reset_model_version_stamp()


# -- registry integration ----------------------------------------------


class TestRegistryIntegration:
    def test_run_writes_both_tiers(self, small_ct):
        run = registry.run("corner_turn", "viram", workload=small_ct)
        key = cache_key("corner_turn", "viram", {"workload": small_ct})
        assert RUN_CACHE.lookup(key) is not None
        assert DISK_CACHE.contains(key)
        assert DISK_CACHE.lookup(key).cycles == run.cycles

    def test_disk_hit_served_without_resimulation(self, small_ct):
        first = registry.run("corner_turn", "viram", workload=small_ct)
        key = cache_key("corner_turn", "viram", {"workload": small_ct})
        # Evict tier 1 only: the next run must come from the disk.
        RUN_CACHE.evict(key)
        hits_before = DISK_CACHE.hits
        second = registry.run("corner_turn", "viram", workload=small_ct)
        assert DISK_CACHE.hits == hits_before + 1
        assert repr(second) == repr(first)
        # And the hit was promoted back into tier 1.
        assert RUN_CACHE.lookup(key) is not None

    def test_cache_false_bypasses_both_tiers(self, small_ct):
        writes_before = DISK_CACHE.writes
        registry.run("corner_turn", "viram", workload=small_ct, cache=False)
        key = cache_key("corner_turn", "viram", {"workload": small_ct})
        assert DISK_CACHE.writes == writes_before
        assert not DISK_CACHE.contains(key)
        assert RUN_CACHE.lookup(key) is None


# -- opt-out -----------------------------------------------------------


class TestOptOut:
    def test_env_kill_switch_bypasses_and_counts(
        self, monkeypatch, small_ct
    ):
        from repro.trace.telemetry import TELEMETRY

        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert not DISK_CACHE.enabled
        bypasses_before = DISK_CACHE.bypasses
        registry.run("corner_turn", "viram", workload=small_ct)
        key = cache_key("corner_turn", "viram", {"workload": small_ct})
        monkeypatch.setenv("REPRO_DISK_CACHE", "1")
        assert not DISK_CACHE.contains(key)
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
        assert DISK_CACHE.bypasses > bypasses_before
        snap = TELEMETRY.snapshot()
        assert snap["perf.diskcache.bypasses"] == DISK_CACHE.bypasses
        assert snap["perf.diskcache.enabled"] == 0

    def test_disable_is_per_instance_and_reversible(self, disk):
        disk.disable()
        assert not disk.insert("ab1234", "x")
        assert disk.bypasses == 1
        disk.enable()
        assert disk.insert("ab1234", "x")


# -- pruning -----------------------------------------------------------


class TestPrune:
    def test_prune_by_entry_count_evicts_oldest(self, disk):
        for i in range(6):
            disk.insert(f"k{i}00", i)
            os.utime(disk._path(f"k{i}00"), (1000.0 + i, 1000.0 + i))
        removed = disk.prune(max_entries=4)
        assert removed == 2
        assert disk.evictions == 2
        kept = set(disk.keys())
        assert kept == {"k200", "k300", "k400", "k500"}

    def test_prune_by_bytes(self, disk):
        disk.insert("aa0000", b"x" * 10_000)
        disk.insert("bb0000", b"y" * 10)
        assert disk.prune(max_bytes=5_000) >= 1
        assert disk.total_bytes() <= 5_000

    def test_prune_within_caps_is_a_noop(self, disk):
        disk.insert("aa0000", "x")
        assert disk.prune(max_entries=10, max_bytes=10**9) == 0
        assert disk.contains("aa0000")

    def test_clear_removes_everything_and_resets_counters(self, disk):
        disk.insert("aa0000", "x")
        disk.lookup("aa0000")
        assert disk.clear() == 1
        assert len(disk) == 0
        assert disk.hits == 0 and disk.writes == 0


# -- multi-process safety ----------------------------------------------


def _hammer_writes(directory, key, worker, n_rounds):
    """Insert + lookup the same key repeatedly; any torn read trips the
    digest check and would surface as a corrupt count."""
    cache = DiskCache(directory)
    corrupt_seen = 0
    for i in range(n_rounds):
        cache.insert(key, {"worker": worker, "round": i})
        value = cache.lookup(key)
        if value is None and cache.corrupt:
            corrupt_seen += 1
    return corrupt_seen


def _worker_hammer(args):
    return _hammer_writes(*args)


def _worker_prune(args):
    directory, n_rounds = args
    cache = DiskCache(directory)
    evicted = 0
    for _ in range(n_rounds):
        evicted += cache.prune(max_entries=3)
    return evicted


class TestConcurrency:
    def _pool(self, n):
        return multiprocessing.get_context("fork").Pool(n)

    def test_two_processes_racing_on_one_key_never_tear(self, tmp_path):
        directory = str(tmp_path / "shared")
        with self._pool(2) as pool:
            corrupt = pool.map(
                _worker_hammer,
                [(directory, "race00", w, 40) for w in range(2)],
            )
        assert corrupt == [0, 0]
        # Whoever won the final race left one complete, valid entry.
        survivor = DiskCache(directory)
        assert survivor.verify() == []
        value = survivor.lookup("race00")
        assert value is not None and value["round"] == 39

    def test_prune_under_contention(self, tmp_path):
        directory = str(tmp_path / "shared")
        writer = DiskCache(directory)
        for i in range(20):
            writer.insert(f"p{i:02d}00", i)
        with self._pool(2) as pool:
            pool.map(_worker_prune, [(directory, 5)] * 2)
        # Post-condition: within cap, and every survivor still valid.
        assert len(writer) <= 3
        assert writer.verify() == []
