"""Tests for the packed disk-cache index (:mod:`repro.perf.index`).

The packed layout puts every persisted run behind one append-only
manifest over shared payload segments, so the failure modes worth
testing are *cross-process*: two writers appending the same key, a
reader racing a pruner's compaction, and a crash tearing the manifest
tail mid-record.  The single-process behavioural surface (lookup /
insert / verify / quarantine semantics) is covered by the legacy-API
suite in ``test_disk_cache.py``, which the packed store passes through
the shared ``DISK_CACHE`` contract.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.perf.index import PackedDiskCache


def _store(directory) -> PackedDiskCache:
    return PackedDiskCache(str(directory), respect_env=False)


def _worker_same_key(args):
    directory, worker, n_rounds = args
    cache = _store(directory)
    torn = 0
    for i in range(n_rounds):
        cache.insert("race00", {"worker": worker, "round": i})
        value = cache.lookup("race00")
        if value is None:
            torn += 1
    return torn


def _worker_append(args):
    directory, worker, n_rounds = args
    cache = _store(directory)
    for i in range(n_rounds):
        cache.insert(f"w{worker}k{i:03d}", {"worker": worker, "cell": i})
    return n_rounds


def _worker_prune(args):
    directory, n_rounds = args
    cache = _store(directory)
    evicted = 0
    for _ in range(n_rounds):
        evicted += cache.prune(max_entries=5)
    return evicted


class TestMultiProcess:
    def _pool(self, n):
        return multiprocessing.get_context("fork").Pool(n)

    def test_same_key_race_never_serves_torn_data(self, tmp_path):
        directory = tmp_path / "shared"
        with self._pool(2) as pool:
            torn = pool.map(
                _worker_same_key, [(directory, w, 40) for w in range(2)]
            )
        # A racing reader may see either writer's value but never a
        # damaged one: every miss would have counted `corrupt`, and a
        # fresh handle must find a clean store with the last append
        # winning.
        assert torn == [0, 0]
        survivor = _store(directory)
        assert survivor.verify() == []
        value = survivor.lookup("race00")
        assert value is not None and value["round"] == 39
        assert survivor.corrupt == 0

    def test_append_during_prune_compaction(self, tmp_path):
        directory = tmp_path / "shared"
        seed = _store(directory)
        for i in range(30):
            seed.insert(f"seed{i:03d}", {"cell": i})
        with self._pool(3) as pool:
            outcomes = pool.map_async(
                _worker_append, [(directory, w, 25) for w in range(2)]
            )
            pruned = pool.map(_worker_prune, [(directory, 8)] * 1)
            appended = outcomes.get(timeout=120)
        assert appended == [25, 25]
        assert sum(pruned) > 0
        # Post-conditions after compactions raced the appenders: the
        # store obeys the cap once pruned again, and every surviving
        # record decodes against its digest.
        final = _store(directory)
        final.prune(max_entries=5)
        assert len(final) <= 5
        assert final.verify() == []
        # No reader ever mistook a compaction for corruption badly
        # enough to quarantine a live key into oblivion: the survivors
        # all serve.
        for key in final.keys():
            assert final.lookup(key) is not None

    def test_concurrent_distinct_writers_all_land(self, tmp_path):
        directory = tmp_path / "shared"
        with self._pool(4) as pool:
            pool.map(_worker_append, [(directory, w, 20) for w in range(4)])
        survivor = _store(directory)
        assert len(survivor) == 80
        assert survivor.verify() == []
        for w in range(4):
            assert survivor.lookup(f"w{w}k007")["worker"] == w


class TestTornTail:
    def test_torn_tail_recovery_mirrors_ledger_quarantine(self, tmp_path):
        store = _store(tmp_path)
        store.put_many([(f"k{i}", {"cell": i}) for i in range(4)])
        manifest = store.stamp_dir() / "index.manifest"
        intact = manifest.read_bytes()
        # Crash mid-append: half a record, no newline.
        with open(manifest, "ab") as fh:
            fh.write(b'{"k": "half", "s": 0, "o": 12')

        # A pure reader serves every complete record and does not
        # mutate the manifest (readers hold no lock).
        reader = _store(tmp_path)
        assert reader.get_many([f"k{i}" for i in range(4)]) == {
            f"k{i}": {"cell": i} for i in range(4)
        }
        assert manifest.read_bytes() != intact

        # The next locked writer truncates the torn bytes, quarantines
        # them with an incident record, and appends cleanly after.
        writer = _store(tmp_path)
        writer.put_many([("after", {"cell": 99})])
        assert writer.torn_records == 1
        text = manifest.read_bytes()
        assert b'"half"' not in text
        assert text.endswith(b"\n")
        incidents = list(store.quarantine_dir().glob("*.incident.json"))
        assert len(incidents) == 1
        incident = json.loads(incidents[0].read_text())
        assert incident["reason"].startswith("torn manifest tail")
        torn_payloads = list(store.quarantine_dir().glob("manifest-torn-*"))
        assert [p for p in torn_payloads if p.suffix == ".bin"]

        healed = _store(tmp_path)
        assert healed.lookup("after") == {"cell": 99}
        assert healed.lookup("half") is None
        assert healed.verify() == []

    def test_torn_tail_with_partial_payload_write(self, tmp_path):
        # Crash between segment append and manifest append: the payload
        # bytes exist but no record points at them — invisible, then
        # reclaimed by the next compaction.
        store = _store(tmp_path)
        store.put_many([("kept", {"cell": 1}), ("evictme", {"cell": 2})])
        segment = store.stamp_dir() / "segments" / "seg-00000.bin"
        with open(segment, "ab") as fh:
            fh.write(b"orphaned-payload-bytes")

        reader = _store(tmp_path)
        assert reader.lookup("kept") == {"cell": 1}
        assert reader.verify() == []
        # Compaction (here triggered by an eviction) rewrites segments
        # from live records only, dropping the orphaned bytes.
        assert reader.prune(max_entries=1) == 1
        compacted = store.stamp_dir() / "segments" / "seg-00000.bin"
        assert b"orphaned-payload-bytes" not in compacted.read_bytes()
        survivor = _store(tmp_path)
        assert len(survivor) == 1
        assert survivor.verify() == []


class TestInterning:
    def test_intern_expand_round_trip(self):
        from repro.perf.poold import expand_requests, intern_requests

        requests = [
            ("corner_turn", "viram", {"points": 5, "delta": 0.1}),
            ("corner_turn", "viram", {"points": 5, "delta": 0.2}),
            ("cslc", "imagine", {"points": 5}),
            ("corner_turn", "raw", {}),
        ]
        chunk = intern_requests(requests)
        assert expand_requests(chunk) == requests
        kernels, machines, base, cells = chunk
        # The interning table really does fold the repeats.
        assert sorted(kernels) == ["corner_turn", "cslc"]
        assert sorted(machines) == ["imagine", "raw", "viram"]
        # Cells sharing the base kwargs ship only their delta.
        assert cells[1][2] == {"delta": 0.2}

    def test_intern_empty(self):
        from repro.perf.poold import expand_requests, intern_requests

        assert expand_requests(intern_requests([])) == []


class TestSegmentRollover:
    def test_segments_roll_at_configured_size(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_INDEX_SEGMENT_MB", "1")
        store = _store(tmp_path)
        blob = {"payload": "x" * (300 * 1024)}
        store.put_many([(f"big{i}", blob) for i in range(8)])
        segments = sorted(
            p.name for p in (store.stamp_dir() / "segments").glob("*.bin")
        )
        assert len(segments) >= 2
        assert store.verify() == []
        assert store.get_many([f"big{i}" for i in range(8)])["big7"] == blob
        stats = store.index_stats()
        assert stats["segments"] == len(segments)
