"""Tests for the parallel sweep executor (:mod:`repro.perf.executor`).

The contract under test: ``run_cells`` returns results in request order
that are value-identical to serial execution, regardless of ``jobs``,
cache state, or duplicate requests.
"""

import pytest

from repro.errors import MappingError, ReproError
from repro.eval.scaling import corner_turn_scaling
from repro.eval.sensitivity import sweep
from repro.eval.tables import run_table3
from repro.perf.cache import RUN_CACHE
from repro.perf.diskcache import DISK_CACHE
from repro.perf.executor import resolve_jobs, run_cells


@pytest.fixture(autouse=True)
def fresh_cache():
    RUN_CACHE.clear()
    RUN_CACHE.enable()
    yield
    RUN_CACHE.clear()


class TestResolveJobs:
    def test_serial_spellings(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1

    def test_parallel(self):
        assert resolve_jobs(4) == 4

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            resolve_jobs(-2)


class TestRunCells:
    def test_order_preserved(self, small_ct, small_bs):
        requests = [
            ("beam_steering", "raw", {"workload": small_bs}),
            ("corner_turn", "viram", {"workload": small_ct}),
            ("beam_steering", "viram", {"workload": small_bs}),
        ]
        results = run_cells(requests)
        assert [(r.kernel, r.machine) for r in results] == [
            ("beam_steering", "raw"),
            ("corner_turn", "viram"),
            ("beam_steering", "viram"),
        ]

    def test_parallel_identical_to_serial(self, small_ct, small_bs):
        requests = [
            ("corner_turn", "viram", {"workload": small_ct}),
            ("corner_turn", "raw", {"workload": small_ct}),
            ("beam_steering", "imagine", {"workload": small_bs}),
        ]
        serial = run_cells(requests)
        RUN_CACHE.clear()
        DISK_CACHE.clear()
        parallel = run_cells(requests, jobs=2)
        assert [repr(r) for r in serial] == [repr(r) for r in parallel]

    def test_duplicates_evaluated_once(self, small_ct):
        request = ("corner_turn", "viram", {"workload": small_ct})
        results = run_cells([request, request, request])
        assert RUN_CACHE.stats()["entries"] == 1
        assert len({repr(r) for r in results}) == 1
        # Deduped copies are independent objects, not aliases.
        assert results[0] is not results[1]

    def test_cache_seeded_for_later_calls(self, small_ct):
        request = ("corner_turn", "viram", {"workload": small_ct})
        run_cells([request], jobs=1)
        hits_before = RUN_CACHE.hits
        run_cells([request])
        assert RUN_CACHE.hits == hits_before + 1

    def test_mapping_errors_propagate(self):
        with pytest.raises(MappingError):
            run_cells([("no_such_kernel", "viram", {})])

    def test_empty_sweep(self):
        assert run_cells([]) == []


class TestPoolFallbackTelemetry:
    """A broken pool must degrade to serial — counted under
    ``resilience.degradations`` with the original exception's type and
    text in the recorded reason, and with results unchanged."""

    def _break_pool(self, monkeypatch, exc):
        import concurrent.futures

        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise exc

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", ExplodingPool
        )

    def test_broken_pool_degrades_and_stays_correct(
        self, small_bs, monkeypatch
    ):
        from repro.resilience.stats import RESILIENCE

        requests = [
            ("beam_steering", "raw", {"workload": small_bs}),
            ("beam_steering", "viram", {"workload": small_bs}),
        ]
        serial = run_cells(requests)
        RUN_CACHE.clear()
        DISK_CACHE.clear()  # force the planner back onto the pool path
        self._break_pool(
            monkeypatch, OSError("no process spawning in this sandbox")
        )
        before = RESILIENCE.get("degradations")
        results = run_cells(requests, jobs=2)
        assert RESILIENCE.get("degradations") == before + 1
        # The original exception's type and text must be surfaced.
        reason = RESILIENCE.last_degradation_reason
        assert "OSError" in reason and "no process spawning" in reason
        assert [repr(r) for r in results] == [repr(r) for r in serial]

    def test_serial_path_does_not_degrade(self, small_bs, monkeypatch):
        from repro.resilience.stats import RESILIENCE

        self._break_pool(monkeypatch, OSError("unused"))
        before = RESILIENCE.get("degradations")
        run_cells(
            [("beam_steering", "raw", {"workload": small_bs})], jobs=1
        )
        assert RESILIENCE.get("degradations") == before


class TestSweepEquivalence:
    """jobs= must not change any eval-layer result."""

    def test_table3_parallel_identical(self, small_workloads):
        serial = run_table3(small_workloads)
        RUN_CACHE.clear()
        DISK_CACHE.clear()
        parallel = run_table3(small_workloads, jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert repr(serial[key]) == repr(parallel[key])

    def test_sensitivity_parallel_identical(self, small_workloads):
        constants = [
            ("viram", "dram_row_cycle"),
            ("raw", "cache_stall_fraction"),
        ]
        serial = sweep(constants=constants, workloads=small_workloads)
        RUN_CACHE.clear()
        DISK_CACHE.clear()
        parallel = sweep(
            constants=constants, workloads=small_workloads, jobs=2
        )
        assert serial == parallel

    def test_scaling_accepts_jobs(self):
        sizes = (64, 128)
        serial = corner_turn_scaling(sizes=sizes)
        parallel = corner_turn_scaling(sizes=sizes, jobs=2)
        # The (sizes, machines) memo is shared across jobs values, so
        # the second call returns the very same tuple.
        assert parallel is serial
