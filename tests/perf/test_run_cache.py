"""Cache-correctness tests for :mod:`repro.perf.cache`.

The memoization contract: identical requests hit, any perturbation of
the arguments misses, and cached results are defensively independent of
whatever the caller does to the returned object.
"""

import numpy as np
import pytest

from repro.calibration import DEFAULT_CALIBRATION
from repro.eval.sensitivity import perturbed_calibration
from repro.kernels.workloads import small_beam_steering, small_corner_turn
from repro.mappings.registry import run
from repro.perf.cache import RUN_CACHE, RunCache, cache_key


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts from an empty, enabled global cache."""
    RUN_CACHE.clear()
    RUN_CACHE.enable()
    yield
    RUN_CACHE.clear()


class TestCacheKey:
    def test_identical_requests_share_a_key(self, small_ct):
        a = cache_key("corner_turn", "viram", {"workload": small_ct})
        b = cache_key(
            "corner_turn", "viram", {"workload": small_corner_turn()}
        )
        assert a == b

    def test_kernel_and_machine_distinguish(self, small_ct):
        kwargs = {"workload": small_ct}
        keys = {
            cache_key("corner_turn", "viram", kwargs),
            cache_key("corner_turn", "raw", kwargs),
            cache_key("cslc", "viram", kwargs),
        }
        assert len(keys) == 3

    def test_calibration_perturbation_changes_key(self, small_ct):
        base = cache_key(
            "corner_turn", "viram",
            {"workload": small_ct, "calibration": DEFAULT_CALIBRATION},
        )
        perturbed = cache_key(
            "corner_turn", "viram",
            {
                "workload": small_ct,
                "calibration": perturbed_calibration(
                    "viram", "dram_row_cycle", 1.25
                ),
            },
        )
        assert base != perturbed

    def test_workload_perturbation_changes_key(self):
        a = cache_key(
            "beam_steering", "raw", {"workload": small_beam_steering()}
        )
        import dataclasses

        b_workload = small_beam_steering()
        perturbed = dataclasses.replace(
            b_workload, directions=b_workload.directions + 1
        )
        assert a != cache_key(
            "beam_steering", "raw", {"workload": perturbed}
        )

    def test_kwarg_perturbation_changes_key(self, small_cs):
        a = cache_key("cslc", "raw", {"workload": small_cs})
        b = cache_key(
            "cslc", "raw", {"workload": small_cs, "balanced": False}
        )
        assert a != b

    def test_ndarray_content_hashes(self):
        x = np.arange(8, dtype=np.int64)
        a = cache_key("k", "m", {"x": x})
        assert a == cache_key("k", "m", {"x": x.copy()})
        assert a != cache_key("k", "m", {"x": x[::-1].copy()})
        assert a != cache_key("k", "m", {"x": x.astype(np.float64)})

    def test_float_int_and_bool_do_not_collide(self):
        keys = {
            cache_key("k", "m", {"x": 1}),
            cache_key("k", "m", {"x": 1.0}),
            cache_key("k", "m", {"x": True}),
        }
        assert len(keys) == 3

    def test_uncacheable_argument_returns_none(self):
        assert cache_key("k", "m", {"fn": lambda: None}) is None


class TestRunMemoization:
    def test_identical_args_hit(self, small_ct):
        first = run("corner_turn", "viram", workload=small_ct)
        hits_before = RUN_CACHE.hits
        second = run("corner_turn", "viram", workload=small_ct)
        assert RUN_CACHE.hits == hits_before + 1
        assert second is not first
        assert repr(second) == repr(first)

    def test_perturbed_calibration_misses(self, small_ct):
        run("corner_turn", "viram", workload=small_ct)
        perturbed = perturbed_calibration(
            "viram", "exposed_load_latency", 1.25
        )
        hits_before = RUN_CACHE.hits
        a = run(
            "corner_turn", "viram", workload=small_ct,
            calibration=DEFAULT_CALIBRATION,
        )
        b = run(
            "corner_turn", "viram", workload=small_ct, calibration=perturbed
        )
        assert RUN_CACHE.hits == hits_before  # both were distinct keys
        assert b.cycles != a.cycles

    def test_cached_results_defensively_independent(self, small_ct):
        first = run("corner_turn", "viram", workload=small_ct)
        pristine = repr(first)
        first.metrics["corrupted"] = 1e9
        first.breakdown.charge("corrupted", 1e9)
        second = run("corner_turn", "viram", workload=small_ct)
        assert repr(second) == pristine
        # ... and mutating the second copy doesn't corrupt the third.
        second.metrics.clear()
        third = run("corner_turn", "viram", workload=small_ct)
        assert repr(third) == pristine

    def test_cache_false_bypasses(self, small_ct):
        run("corner_turn", "viram", workload=small_ct)
        stats = RUN_CACHE.stats()
        result = run(
            "corner_turn", "viram", workload=small_ct, cache=False
        )
        after = RUN_CACHE.stats()
        assert after["bypasses"] == stats["bypasses"] + 1
        assert after["hits"] == stats["hits"]
        assert result.cycles > 0

    def test_uncacheable_kwarg_bypasses(self, small_ct):
        with pytest.raises(TypeError):
            # The lambda makes the request uncacheable; the mapping then
            # rejects the unknown kwarg — but the bypass was counted
            # first, which is what this test pins.
            run(
                "corner_turn", "viram", workload=small_ct,
                not_an_option=lambda: None,
            )
        assert RUN_CACHE.stats()["bypasses"] == 1

    def test_disabled_cache_stores_nothing(self, small_ct):
        RUN_CACHE.disable()
        try:
            run("corner_turn", "viram", workload=small_ct)
            run("corner_turn", "viram", workload=small_ct)
            assert len(RUN_CACHE) == 0
            assert RUN_CACHE.stats()["bypasses"] == 2
        finally:
            RUN_CACHE.enable()


class TestRunCacheStore:
    def test_lru_eviction_bounds_entries(self):
        cache = RunCache(max_entries=3)
        for i in range(5):
            cache.insert(f"k{i}", i)
        assert len(cache) == 3
        assert cache.lookup("k0") is None
        assert cache.lookup("k4") == 4

    def test_clear_resets_counters(self):
        cache = RunCache()
        cache.insert("k", 1)
        cache.lookup("k")
        cache.lookup("absent")
        cache.note_bypass()
        cache.clear()
        assert cache.stats() == {
            "entries": 0, "hits": 0, "misses": 0, "bypasses": 0,
        }
