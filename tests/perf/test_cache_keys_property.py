"""Property tests for the cache's canonical key encoding.

The memoization cache is only sound if :func:`cache_key` is a *function*
of the request content — equal requests must collide, and any
single-field perturbation must produce a different key.  Hypothesis
drives both directions over the full space of cacheable argument
structures (scalars, floats, strings, nested containers).
"""

import copy

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.perf.cache import cache_key

# Only cacheable value types: the encoder rejects anything else, which
# cache_key reports as None (a bypass, not a key).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False),
    st.text(max_size=16),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.lists(children, max_size=3).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=3),
    ),
    max_leaves=8,
)
_kwargs = st.dictionaries(
    st.text(min_size=1, max_size=12), _values, max_size=4
)
_names = st.text(min_size=1, max_size=16)

COMMON = dict(max_examples=150, deadline=None)


class TestEqualInputsCollide:
    @settings(**COMMON)
    @given(kernel=_names, machine=_names, kwargs=_kwargs)
    def test_deep_copies_share_a_key(self, kernel, machine, kwargs):
        key = cache_key(kernel, machine, kwargs)
        assert key is not None
        assert key == cache_key(kernel, machine, copy.deepcopy(kwargs))

    @settings(**COMMON)
    @given(kernel=_names, machine=_names, kwargs=_kwargs)
    def test_insertion_order_is_irrelevant(self, kernel, machine, kwargs):
        reordered = dict(reversed(list(kwargs.items())))
        assert cache_key(kernel, machine, kwargs) == cache_key(
            kernel, machine, reordered
        )

    @settings(**COMMON)
    @given(kernel=_names, machine=_names, kwargs=_kwargs)
    def test_key_is_a_sha256_hexdigest(self, kernel, machine, kwargs):
        key = cache_key(kernel, machine, kwargs)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")


class TestPerturbationsChangeTheKey:
    @settings(**COMMON)
    @given(
        kernel=_names, other=_names, machine=_names, kwargs=_kwargs
    )
    def test_kernel_field(self, kernel, other, machine, kwargs):
        assume(kernel != other)
        assert cache_key(kernel, machine, kwargs) != cache_key(
            other, machine, kwargs
        )

    @settings(**COMMON)
    @given(
        kernel=_names, machine=_names, other=_names, kwargs=_kwargs
    )
    def test_machine_field(self, kernel, machine, other, kwargs):
        assume(machine != other)
        assert cache_key(kernel, machine, kwargs) != cache_key(
            kernel, other, kwargs
        )

    @settings(**COMMON)
    @given(kernel=_names, machine=_names, kwargs=_kwargs, data=st.data())
    def test_one_kwarg_value(self, kernel, machine, kwargs, data):
        assume(kwargs)
        name = data.draw(st.sampled_from(sorted(kwargs)))
        replacement = data.draw(_values)
        # != is exactly "encodes differently" here: the encoding is
        # injective over the generated types (NaN excluded), except that
        # it also separates equal-comparing values of different type
        # (1 vs True vs 1.0) — which only strengthens the property.
        assume(
            type(replacement) is not type(kwargs[name])
            or replacement != kwargs[name]
        )
        perturbed = {**kwargs, name: replacement}
        assert cache_key(kernel, machine, kwargs) != cache_key(
            kernel, machine, perturbed
        )

    @settings(**COMMON)
    @given(
        kernel=_names,
        machine=_names,
        kwargs=_kwargs,
        extra_name=st.text(min_size=1, max_size=12),
        extra_value=_values,
    )
    def test_added_kwarg(self, kernel, machine, kwargs, extra_name, extra_value):
        assume(extra_name not in kwargs)
        grown = {**kwargs, extra_name: extra_value}
        assert cache_key(kernel, machine, kwargs) != cache_key(
            kernel, machine, grown
        )

    @settings(**COMMON)
    @given(kernel=_names, machine=_names, kwargs=_kwargs, data=st.data())
    def test_removed_kwarg(self, kernel, machine, kwargs, data):
        assume(kwargs)
        name = data.draw(st.sampled_from(sorted(kwargs)))
        shrunk = {k: v for k, v in kwargs.items() if k != name}
        assert cache_key(kernel, machine, kwargs) != cache_key(
            kernel, machine, shrunk
        )


class TestTypeTagging:
    """Equal-comparing values of different type must not collide —
    the encoder tags every value with its type."""

    @pytest.mark.parametrize(
        "a, b",
        [
            ({"x": 1}, {"x": True}),
            ({"x": 1}, {"x": 1.0}),
            ({"x": 0.0}, {"x": False}),
            ({"x": "1"}, {"x": 1}),
            ({"x": (1,)}, {"x": [1]}),
            ({"x": None}, {"x": "None"}),
            ({"x": {}}, {"x": ()}),
        ],
    )
    def test_distinct_types_distinct_keys(self, a, b):
        assert cache_key("k", "m", a) != cache_key("k", "m", b)

    def test_string_boundary_is_unambiguous(self):
        # Length-prefixed strings: {"ab": "c"} must not collide with
        # {"a": "bc"} even though the raw characters concatenate alike.
        assert cache_key("k", "m", {"ab": "c"}) != cache_key(
            "k", "m", {"a": "bc"}
        )
