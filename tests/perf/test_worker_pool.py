"""Tests for the persistent worker pool (:mod:`repro.perf.poold`).

The contract: one pool per process, spawned lazily, *leased* to one
supervisor at a time and returned warm on clean completion — but any
failure that escapes the recovery ladder retires it, so a suspect
transport is never reused.  ``REPRO_POOL_PERSIST=0`` restores the old
spawn-per-sweep behaviour exactly.

The ``perf.pool`` counters are cumulative for the life of the process
(they feed telemetry), so every assertion here is a *delta* against a
snapshot taken at the start of the test.
"""

import pytest

from repro.errors import MappingError
from repro.perf import poold


@pytest.fixture()
def base():
    return poold.pool_stats()


def _delta(base, *names):
    now = poold.pool_stats()
    return tuple(now[n] - base[n] for n in names)


def _boom(chunk):
    raise MappingError("injected work failure")


class TestLeaseLifecycle:
    def test_acquire_release_reuses_pool(self, base):
        first = poold.acquire(2)
        poold.release(first)
        second = poold.acquire(2)
        try:
            assert second is first
            assert _delta(base, "spawns", "reuses", "leases") == (1, 1, 2)
            assert poold.pool_stats()["alive"] == 1
        finally:
            poold.release(second)

    def test_wider_pool_satisfies_narrower_lease(self, base):
        wide = poold.acquire(4)
        poold.release(wide)
        narrow = poold.acquire(2)
        try:
            assert narrow is wide
            assert _delta(base, "spawns") == (1,)
        finally:
            poold.release(narrow)

    def test_narrow_pool_retired_for_wider_lease(self, base):
        narrow = poold.acquire(1)
        poold.release(narrow)
        wide = poold.acquire(2)
        try:
            assert wide is not narrow
            assert _delta(base, "spawns", "discards") == (2, 1)
            assert poold.pool_stats()["workers"] == 2
        finally:
            poold.release(wide)

    def test_discard_retires_and_respawns(self, base):
        first = poold.acquire(2)
        poold.discard(first)
        second = poold.acquire(2)
        try:
            assert second is not first
            assert _delta(base, "spawns", "discards", "reuses") == (2, 1, 0)
        finally:
            poold.release(second)

    def test_persistence_disabled_spawns_each_time(self, base, monkeypatch):
        monkeypatch.setenv("REPRO_POOL_PERSIST", "0")
        first = poold.acquire(2)
        poold.release(first)  # non-persistent release shuts down
        second = poold.acquire(2)
        poold.release(second)
        assert second is not first
        assert _delta(base, "spawns", "reuses") == (2, 0)
        stats = poold.pool_stats()
        assert stats["persistent"] == 0
        assert stats["alive"] == 0

    def test_fork_guard_drops_inherited_handle(self, base, monkeypatch):
        pool = poold.acquire(2)
        poold.release(pool)
        # Simulate waking up in a forked child: the recorded pid no
        # longer matches, so the inherited handle must not be reused
        # (its workers belong to the parent).
        monkeypatch.setattr(poold, "_PID", poold._PID - 1)
        fresh = poold.acquire(2)
        try:
            assert fresh is not pool
            assert _delta(base, "spawns", "reuses") == (2, 0)
        finally:
            poold.release(fresh)

    def test_pool_executes_after_reuse(self):
        first = poold.acquire(2)
        assert first.submit(abs, -3).result(timeout=60) == 3
        poold.release(first)
        second = poold.acquire(2)
        try:
            assert second is first
            assert second.submit(abs, -7).result(timeout=60) == 7
        finally:
            poold.release(second)


class TestSupervisorIntegration:
    """The supervisor leases from the shared pool, returns it warm on
    clean completion, and retires it when a failure escapes the
    ladder."""

    def _requests(self, small_bs):
        return [
            ("beam_steering", "raw", {"workload": small_bs}),
            ("beam_steering", "viram", {"workload": small_bs}),
        ]

    def _cold(self):
        from repro.perf.cache import RUN_CACHE
        from repro.perf.diskcache import DISK_CACHE

        RUN_CACHE.clear()
        DISK_CACHE.clear()

    def test_back_to_back_sweeps_reuse_one_pool(self, base, small_bs):
        from repro.perf.executor import run_cells

        self._cold()
        first = run_cells(self._requests(small_bs), jobs=2)
        mid = poold.pool_stats()
        assert mid["alive"] == 1
        self._cold()
        second = run_cells(self._requests(small_bs), jobs=2)
        after = poold.pool_stats()
        assert after["spawns"] == mid["spawns"]
        assert after["reuses"] > mid["reuses"]
        assert [repr(r) for r in first] == [repr(r) for r in second]

    def test_work_failure_retires_the_pool(self, base):
        from repro.resilience.supervisor import Supervisor

        sup = Supervisor(n_jobs=2, task=_boom)
        with pytest.raises(MappingError):
            sup.run([[("corner_turn", "viram", {})]])
        # The error propagated unchanged (model errors are never papered
        # over), and the pool it crossed was not kept warm.
        stats = poold.pool_stats()
        assert stats["alive"] == 0
        assert _delta(base, "discards") == (1,)
