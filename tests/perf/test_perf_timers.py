"""Tests for the wall-time instrumentation (:mod:`repro.perf.timers`)."""

import pytest

from repro.perf import timers


@pytest.fixture(autouse=True)
def fresh_timers():
    timers.reset()
    yield
    timers.reset()


def test_timer_records_total_and_calls():
    for _ in range(3):
        with timers.timer("work"):
            pass
    snap = timers.snapshot()
    assert snap["timings"]["work"]["calls"] == 3
    assert snap["timings"]["work"]["seconds"] >= 0.0


def test_timers_nest_by_path():
    with timers.timer("outer"):
        with timers.timer("inner"):
            pass
        with timers.timer("inner"):
            pass
    snap = timers.snapshot()
    assert snap["timings"]["outer"]["calls"] == 1
    assert snap["timings"]["outer/inner"]["calls"] == 2
    assert "inner" not in snap["timings"]


def test_nesting_recovers_after_exception():
    with pytest.raises(RuntimeError):
        with timers.timer("outer"):
            raise RuntimeError("boom")
    with timers.timer("after"):
        pass
    snap = timers.snapshot()
    # "after" is top-level again: the exception popped "outer" cleanly.
    assert "after" in snap["timings"]
    assert "outer/after" not in snap["timings"]


def test_counters_accumulate():
    timers.count("cache.hit")
    timers.count("cache.hit", 4)
    assert timers.snapshot()["counters"]["cache.hit"] == 5


def test_render_shows_tree_and_counters():
    with timers.timer("report"):
        with timers.timer("table3"):
            pass
    timers.count("runs", 2)
    text = timers.render()
    assert "report" in text
    assert "table3" in text
    assert "runs" in text
    # The child is indented under the parent.
    report_line = next(l for l in text.splitlines() if "report" in l)
    table_line = next(l for l in text.splitlines() if "table3" in l)
    assert len(table_line) - len(table_line.lstrip()) > len(
        report_line
    ) - len(report_line.lstrip())


def test_reset_clears_everything():
    with timers.timer("work"):
        pass
    timers.count("n")
    timers.reset()
    snap = timers.snapshot()
    assert snap["timings"] == {}
    assert snap["counters"] == {}
    assert "(none recorded)" in timers.render()
