"""Tests for the wall-time instrumentation (:mod:`repro.perf.timers`)."""

import re
import threading

import pytest

from repro.perf import timers


@pytest.fixture(autouse=True)
def fresh_timers():
    timers.reset()
    yield
    timers.reset()


def test_timer_records_total_and_calls():
    for _ in range(3):
        with timers.timer("work"):
            pass
    snap = timers.snapshot()
    assert snap["timings"]["work"]["calls"] == 3
    assert snap["timings"]["work"]["seconds"] >= 0.0


def test_timers_nest_by_path():
    with timers.timer("outer"):
        with timers.timer("inner"):
            pass
        with timers.timer("inner"):
            pass
    snap = timers.snapshot()
    assert snap["timings"]["outer"]["calls"] == 1
    assert snap["timings"]["outer/inner"]["calls"] == 2
    assert "inner" not in snap["timings"]


def test_nesting_recovers_after_exception():
    with pytest.raises(RuntimeError):
        with timers.timer("outer"):
            raise RuntimeError("boom")
    with timers.timer("after"):
        pass
    snap = timers.snapshot()
    # "after" is top-level again: the exception popped "outer" cleanly.
    assert "after" in snap["timings"]
    assert "outer/after" not in snap["timings"]


def test_counters_accumulate():
    timers.count("cache.hit")
    timers.count("cache.hit", 4)
    assert timers.snapshot()["counters"]["cache.hit"] == 5


def test_render_shows_tree_and_counters():
    with timers.timer("report"):
        with timers.timer("table3"):
            pass
    timers.count("runs", 2)
    text = timers.render()
    assert "report" in text
    assert "table3" in text
    assert "runs" in text
    # The child is indented under the parent.
    report_line = next(l for l in text.splitlines() if "report" in l)
    table_line = next(l for l in text.splitlines() if "table3" in l)
    assert len(table_line) - len(table_line.lstrip()) > len(
        report_line
    ) - len(report_line.lstrip())


def _time_on_thread(name):
    def body():
        with timers.timer(name):
            pass

    t = threading.Thread(target=body)
    t.start()
    t.join()


def test_worker_thread_spans_attach_under_worker_prefix():
    _time_on_thread("task")
    paths = list(timers.snapshot()["timings"])
    assert len(paths) == 1
    assert re.fullmatch(r"worker/\d+/task", paths[0]), paths


def test_distinct_threads_get_distinct_worker_numbers():
    _time_on_thread("task")
    _time_on_thread("task")
    paths = sorted(timers.snapshot()["timings"])
    assert len(paths) == 2  # no collision into one path
    prefixes = {p.rsplit("/", 1)[0] for p in paths}
    assert len(prefixes) == 2


def test_worker_and_main_thread_paths_do_not_collide():
    with timers.timer("task"):
        pass
    _time_on_thread("task")
    snap = timers.snapshot()["timings"]
    assert snap["task"]["calls"] == 1
    worker_paths = [p for p in snap if p.startswith("worker/")]
    assert len(worker_paths) == 1


def test_render_synthesizes_worker_root_as_aggregated():
    _time_on_thread("task")
    text = timers.render()
    # The "worker/<n>" prefix was never itself timed, so the tree walk
    # synthesizes it as an aggregated parent row above its child.
    agg_line = next(l for l in text.splitlines() if "(aggregated)" in l)
    assert "worker/" in agg_line
    task_line = next(l for l in text.splitlines() if "task" in l)
    assert len(task_line) - len(task_line.lstrip()) > len(agg_line) - len(
        agg_line.lstrip()
    )


def test_reset_clears_everything():
    with timers.timer("work"):
        pass
    timers.count("n")
    timers.reset()
    snap = timers.snapshot()
    assert snap["timings"] == {}
    assert snap["counters"] == {}
    assert "(none recorded)" in timers.render()
