"""Batch-vs-per-cell equivalence properties for the tensor engine.

The tensorized sweep engine's core claim (:mod:`repro.perf.tensorsweep`)
is that a mapping's batch entry point is *bitwise* identical to cold
per-cell ``run`` calls — ``run()`` is literally the batch of one.
Hypothesis stresses that claim with randomized calibration grids across
every registered (kernel, machine) pair — all four architecture
families times three kernels — plus the Raw matmul extension in each of
its modes.

A second group pins the planner-side fallback rules: an active tracer
must force per-cell execution (a traced run has to emit its spans), and
the fallback path must still produce bitwise-identical results;
non-batchable requests and singleton groups must demote to
:class:`~repro.perf.tensorsweep.SingleCell` units.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration import DEFAULT_CALIBRATION
from repro.check.oracles import diff_runs
from repro.eval.sensitivity import CONSTANT_FLOORS, perturbed_calibration
from repro.kernels.workloads import (
    small_beam_steering,
    small_corner_turn,
    small_cslc,
)
from repro.mappings import batch, raw_matmul, registry
from repro.perf import tensorsweep
from repro.perf.cache import RUN_CACHE
from repro.perf.planner import execute_requests
from repro.perf.tensorsweep import TENSOR_STATS, BatchGroup, SingleCell
from repro.trace.tracer import tracing

WORKLOADS = {
    "corner_turn": small_corner_turn(),
    "cslc": small_cslc(),
    "beam_steering": small_beam_steering(),
}

COMMON = dict(max_examples=10, deadline=None)

#: Per-field perturbation factors.  The window mirrors the sensitivity
#: sweep's ±25% range: wide enough to change every float expression,
#: narrow enough that fraction-valued constants stay physical.
_factor = st.floats(min_value=0.75, max_value=1.25, allow_nan=False)


def _grid_strategy(group_name):
    """Grids of 2–5 calibrations perturbing every *batchable* (float,
    non-structural) constant of one machine group independently."""
    group = getattr(DEFAULT_CALIBRATION, group_name)
    names = [
        f.name
        for f in dataclasses.fields(group)
        if f.name not in batch.STRUCTURAL_CAL_FIELDS[group_name]
    ]
    cell = st.fixed_dictionaries({name: _factor for name in names})

    def build(cells):
        cals = []
        for factors in cells:
            # Perturb relative to each constant's hard floor (the same
            # convention as perturbed_calibration): an inefficiency
            # factor can never drop below 1.
            new_group = dataclasses.replace(
                group,
                **{
                    name: (floor := CONSTANT_FLOORS.get(
                        (group_name, name), 0.0
                    )) + (getattr(group, name) - floor) * factor
                    for name, factor in factors.items()
                },
            )
            cals.append(
                dataclasses.replace(
                    DEFAULT_CALIBRATION, **{group_name: new_group}
                )
            )
        return cals

    return st.lists(cell, min_size=2, max_size=5).map(build)


def _assert_bitwise_equal(per_cell, batched):
    assert len(per_cell) == len(batched)
    for i, (a, b) in enumerate(zip(per_cell, batched)):
        diffs = diff_runs(a, b, rtol=0.0)
        assert not diffs, f"cell {i}: {diffs[:3]}"


class TestBatchMatchesPerCell:
    """run_batch(cals) must be bitwise-equal to per-cell run() calls."""

    @pytest.mark.parametrize("kernel,machine", registry.available())
    @settings(**COMMON)
    @given(data=st.data())
    def test_registry_pair(self, kernel, machine, data):
        runner = registry.batch_runner(kernel, machine)
        assert runner is not None, "every registry pair has a batch entry"
        cals = data.draw(_grid_strategy(batch.CAL_GROUP[machine]))
        workload = WORKLOADS[kernel]
        per_cell = [
            registry.run(
                kernel,
                machine,
                cache=False,
                calibration=cal,
                workload=workload,
            )
            for cal in cals
        ]
        batched = runner(cals, workload=workload)
        _assert_bitwise_equal(per_cell, batched)

    @pytest.mark.parametrize("mode", raw_matmul.MODES)
    @settings(**COMMON)
    @given(data=st.data())
    def test_raw_matmul(self, mode, data):
        cals = data.draw(_grid_strategy("raw"))
        per_cell = [
            raw_matmul.run(calibration=cal, mode=mode) for cal in cals
        ]
        batched = raw_matmul.run_batch(cals, mode=mode)
        _assert_bitwise_equal(per_cell, batched)


def _sensitivity_grid(n=3):
    """A small batchable grid, perturbing one VIRAM float constant."""
    return [
        perturbed_calibration("viram", "dram_row_cycle", 1 + 0.05 * k)
        for k in range(n)
    ]


def _requests(cals, small_ct):
    return [
        (
            "corner_turn",
            "viram",
            {"workload": small_ct, "calibration": cal},
        )
        for cal in cals
    ]


class TestTracerFallback:
    """An active tracer forces per-cell execution — and the per-cell
    path it falls back to is bitwise-identical to the batch path."""

    @pytest.fixture(autouse=True)
    def fresh_state(self):
        RUN_CACHE.clear()
        RUN_CACHE.enable()
        TENSOR_STATS.reset()
        yield
        RUN_CACHE.clear()

    def test_tracing_forces_per_cell_fallback(self, small_ct):
        requests = _requests(_sensitivity_grid(), small_ct)
        with tracing() as tracer:
            traced_runs = execute_requests(requests)
        stats = TENSOR_STATS.stats()
        assert stats["batches"] == 0
        assert stats["batched_cells"] == 0
        assert stats["tracer_fallbacks"] == len(requests)
        assert stats["fallback_cells"] == len(requests)
        # The traced runs really executed per cell: one trace per run.
        assert len(tracer.runs) == len(requests)
        assert all(run is not None for run in traced_runs)

    def test_same_grid_batches_without_tracer(self, small_ct):
        requests = _requests(_sensitivity_grid(), small_ct)
        execute_requests(requests)
        stats = TENSOR_STATS.stats()
        assert stats["batches"] == 1
        assert stats["batched_cells"] == len(requests)
        assert stats["fallback_cells"] == 0

    def test_traced_fallback_is_bitwise_identical(self, small_ct):
        requests = _requests(_sensitivity_grid(), small_ct)
        with tracing():
            traced = execute_requests(requests)
        RUN_CACHE.clear()
        batched = execute_requests(requests)
        _assert_bitwise_equal(traced, batched)


class TestPlanUnits:
    """Unit-partitioning edge cases: what batches and what falls back."""

    @pytest.fixture(autouse=True)
    def fresh_stats(self):
        TENSOR_STATS.reset()
        yield

    def _pairs(self, cals, small_ct, **extra):
        return [
            (
                (
                    "corner_turn",
                    "viram",
                    {"workload": small_ct, "calibration": cal, **extra},
                ),
                None,
            )
            for cal in cals
        ]

    def test_uniform_grid_is_one_batch(self, small_ct):
        units = tensorsweep.plan_units(
            self._pairs(_sensitivity_grid(4), small_ct)
        )
        assert len(units) == 1
        (group,) = units
        assert isinstance(group, BatchGroup)
        assert len(group) == 4
        assert group.positions == [0, 1, 2, 3]

    def test_cache_kwarg_forces_single(self, small_ct):
        units = tensorsweep.plan_units(
            self._pairs(_sensitivity_grid(3), small_ct, cache=False)
        )
        assert all(isinstance(u, SingleCell) for u in units)
        assert TENSOR_STATS.stats()["fallback_cells"] == 3

    def test_singleton_group_demotes_to_single(self, small_ct):
        units = tensorsweep.plan_units(
            self._pairs(_sensitivity_grid(1), small_ct)
        )
        assert len(units) == 1
        assert isinstance(units[0], SingleCell)
        assert TENSOR_STATS.stats()["batches"] == 0

    def test_structural_fields_split_groups(self, small_ct):
        # tlb_entries is structural for VIRAM: cells differing in it
        # generate different TLB walks and must not share a batch.
        base = _sensitivity_grid(2)
        other_geometry = [
            dataclasses.replace(
                cal,
                viram=dataclasses.replace(
                    cal.viram, tlb_entries=cal.viram.tlb_entries * 2
                ),
            )
            for cal in _sensitivity_grid(2)
        ]
        units = tensorsweep.plan_units(
            self._pairs(base + other_geometry, small_ct)
        )
        assert len(units) == 2
        assert all(isinstance(u, BatchGroup) for u in units)
        assert [u.positions for u in units] == [[0, 1], [2, 3]]
