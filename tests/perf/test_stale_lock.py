"""Two live processes contending for the disk-cache lock.

The stale-lock breaker in :class:`repro.perf.diskcache._FlockGuard` is
deliberately conservative: it only unlinks a lock whose *recorded
holder pid is provably dead* AND whose file has gone untouched for
:data:`~repro.perf.diskcache.STALE_LOCK_AGE` seconds.  These tests pin
both halves of that policy with real processes — a lock held by a live
process is never broken (even when its mtime is artificially ancient),
while a dead holder's aged leftover is.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.perf.diskcache import STALE_LOCK_AGE, _FlockGuard
from repro.resilience.stats import RESILIENCE

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork") or sys.platform == "win32",
    reason="requires POSIX flock semantics",
)

#: The holder script: take the flock, announce it, hold until told.
_HOLDER = """
import sys, time
from pathlib import Path
from repro.perf.diskcache import _FlockGuard

lock, held, release = Path(sys.argv[1]), Path(sys.argv[2]), Path(sys.argv[3])
with _FlockGuard(lock) as guard:
    assert guard._fh is not None, "holder never acquired the flock"
    held.touch()
    for _ in range(600):
        if release.exists():
            break
        time.sleep(0.05)
"""


def _spawn_holder(tmp_path: Path, lock: Path):
    held = tmp_path / "held"
    release = tmp_path / "release"
    proc = subprocess.Popen(
        [sys.executable, "-c", _HOLDER, str(lock), str(held),
         str(release)],
        env=dict(
            os.environ,
            PYTHONPATH=os.pathsep.join(
                p for p in (
                    str(Path(__file__).resolve().parents[2] / "src"),
                    os.environ.get("PYTHONPATH", ""),
                ) if p
            ),
        ),
    )
    deadline = time.monotonic() + 30
    while not held.exists():
        assert proc.poll() is None, "holder died before acquiring"
        assert time.monotonic() < deadline, "holder never acquired"
        time.sleep(0.02)
    return proc, release


class TestLiveHolderIsNeverBroken:
    def test_contender_waits_instead_of_breaking(self, tmp_path):
        import threading

        lock = tmp_path / "cache.lock"
        holder, release = _spawn_holder(tmp_path, lock)
        try:
            # Make the lock *look* stale on the age axis: hours old.
            # Only the live holder pid now stands between the breaker
            # and the unlink.
            ancient = time.time() - 10 * STALE_LOCK_AGE
            os.utime(lock, (ancient, ancient))
            broken_before = RESILIENCE.snapshot().get("locks_broken", 0)

            outcome = {}

            def contend():
                with _FlockGuard(lock) as guard:
                    outcome["acquired"] = guard._fh is not None
                    outcome["record"] = json.loads(lock.read_bytes())

            contender = threading.Thread(target=contend)
            contender.start()
            # The contender runs its stale check immediately, then
            # blocks in flock() — while the holder is demonstrably
            # alive.  It must still be waiting, on an intact lock file.
            time.sleep(0.5)
            assert contender.is_alive(), (
                "contender did not wait for a live holder"
            )
            assert lock.exists()
            assert holder.poll() is None

            release.touch()  # holder exits, releasing the flock
            contender.join(timeout=30)
            assert outcome.get("acquired")
            assert outcome["record"]["pid"] == os.getpid()
            broken_after = RESILIENCE.snapshot().get("locks_broken", 0)
            assert broken_after == broken_before, (
                "a lock with a LIVE recorded holder was broken"
            )
        finally:
            release.touch()
            holder.wait(timeout=30)

    def test_live_holder_record_blocks_breaker_directly(self, tmp_path):
        lock = tmp_path / "cache.lock"
        holder, release = _spawn_holder(tmp_path, lock)
        try:
            ancient = time.time() - 10 * STALE_LOCK_AGE
            os.utime(lock, (ancient, ancient))
            guard = _FlockGuard(lock)
            guard._break_if_stale()
            assert lock.exists(), (
                "breaker unlinked a lock whose holder is alive"
            )
        finally:
            release.touch()
            holder.wait(timeout=30)


class TestDeadHolderIsBroken:
    def test_dead_pid_plus_age_breaks(self, tmp_path):
        from repro.resilience.chaos import dead_pid

        lock = tmp_path / "cache.lock"
        lock.write_text(json.dumps({"pid": dead_pid(),
                                    "time": time.time() - 3600}))
        ancient = time.time() - 2 * STALE_LOCK_AGE
        os.utime(lock, (ancient, ancient))
        broken_before = RESILIENCE.snapshot().get("locks_broken", 0)
        _FlockGuard(lock)._break_if_stale()
        assert not lock.exists()
        assert (
            RESILIENCE.snapshot().get("locks_broken", 0)
            == broken_before + 1
        )

    def test_dead_pid_but_fresh_mtime_is_left_alone(self, tmp_path):
        from repro.resilience.chaos import dead_pid

        lock = tmp_path / "cache.lock"
        lock.write_text(json.dumps({"pid": dead_pid(),
                                    "time": time.time()}))
        _FlockGuard(lock)._break_if_stale()
        assert lock.exists(), "age guard must protect a fresh lock"

    def test_unparseable_record_is_left_alone(self, tmp_path):
        lock = tmp_path / "cache.lock"
        lock.write_bytes(b"")
        ancient = time.time() - 2 * STALE_LOCK_AGE
        os.utime(lock, (ancient, ancient))
        _FlockGuard(lock)._break_if_stale()
        assert lock.exists(), "nothing provable: the lock must survive"


class TestPolicyPins:
    def test_stale_age_is_sixty_seconds(self):
        # docs/robustness.md documents the 60 s window; a change here
        # must be a deliberate, documented decision.
        assert STALE_LOCK_AGE == 60.0
