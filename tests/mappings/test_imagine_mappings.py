"""Behavioural tests for the Imagine mappings (§3/§4 mechanisms)."""

import pytest

from repro.errors import MappingError
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.mappings import (
    imagine_beam_steering,
    imagine_corner_turn,
    imagine_cslc,
)


class TestCornerTurn:
    def test_memory_dominates(self, small_ct):
        """§4.2: 87% of cycles are memory transfers at canonical size;
        memory dominates at small sizes too."""
        run = imagine_corner_turn.run(small_ct)
        assert run.metrics["memory_fraction"] > 0.5

    def test_canonical_memory_fraction(self):
        run = imagine_corner_turn.run()
        assert run.metrics["memory_fraction"] == pytest.approx(0.87, abs=0.03)
        assert run.metrics["unoverlapped_kernel_fraction"] == pytest.approx(
            0.13, abs=0.03
        )

    def test_network_port_same_performance(self, small_ct):
        """§4.2: 'the performance would be the same.'"""
        base = imagine_corner_turn.run(small_ct)
        ported = imagine_corner_turn.run(small_ct, via_network_port=True)
        assert ported.cycles == pytest.approx(base.cycles)

    def test_write_row_activations_per_block_canonical(self):
        """Non-unit-stride 8-word blocks switch rows ~once per block at
        the canonical pitch (at small pitches several blocks share a DRAM
        row, which the model also captures)."""
        run = imagine_corner_turn.run()
        blocks = 1024 * 1024 // 8
        assert run.metrics["write_row_activations"] == pytest.approx(
            blocks, rel=0.1
        )

    def test_small_pitch_shares_rows(self, small_ct):
        """128-word rows pack four 8-word write blocks per 512-word DRAM
        row, so activations drop fourfold."""
        run = imagine_corner_turn.run(small_ct)
        assert run.metrics["write_row_activations"] == pytest.approx(
            small_ct.words / 8 / 4, rel=0.2
        )

    def test_indivisible_strip_rejected(self):
        with pytest.raises(MappingError):
            imagine_corner_turn.run(CornerTurnWorkload(rows=12, cols=16))


class TestCSLC:
    def test_memory_hidden_under_compute(self, small_cs):
        run = imagine_cslc.run(small_cs)
        assert run.breakdown.get("memory") == 0.0
        assert run.metrics["memory_hidden_cycles"] > 0

    def test_independent_ffts_faster(self, small_cs):
        """§4.3: eliminating inter-cluster communication helps."""
        parallel = imagine_cslc.run(small_cs)
        independent = imagine_cslc.run(small_cs, independent_ffts=True)
        assert independent.cycles < parallel.cycles

    def test_canonical_comm_penalty(self):
        """§4.3: 'performance is reduced by 30% because inter-cluster
        communication is used' (we land in the 15-35% band)."""
        run = imagine_cslc.run()
        assert 0.15 < run.metrics["comm_penalty_fraction"] < 0.35

    def test_canonical_ops_per_cycle(self):
        """§4.3: 'about 10 useful operations per cycle.'"""
        run = imagine_cslc.run()
        assert run.metrics["ops_per_cycle"] == pytest.approx(10.0, rel=0.3)

    def test_utilization_excluding_divider_higher(self, small_cs):
        run = imagine_cslc.run(small_cs)
        assert (
            run.metrics["fft_alu_utilization_no_div"]
            > run.metrics["fft_alu_utilization"]
        )

    def test_startup_per_transform(self, small_cs):
        run = imagine_cslc.run(small_cs)
        assert run.breakdown.get("startup") == pytest.approx(
            small_cs.transforms * 300.0
        )


class TestBeamSteering:
    def test_memory_and_exposed_kernel_small(self, small_bs):
        """At tiny stream lengths the prologue dominates, but the memory
        streams are still charged."""
        run = imagine_beam_steering.run(small_bs)
        assert run.breakdown.get("memory") > 0
        assert run.breakdown.get("kernel+prologue (exposed)") > 0

    def test_canonical_loadstore_fraction(self):
        run = imagine_beam_steering.run()
        assert run.metrics["loadstore_fraction"] == pytest.approx(
            0.89, abs=0.07
        )

    def test_tables_in_srf_about_2x(self):
        """§4.4: 'increased by a factor of about two.'"""
        base = imagine_beam_steering.run()
        srf = imagine_beam_steering.run(tables_in_srf=True)
        speedup = base.cycles / srf.cycles
        assert 1.5 < speedup < 3.5

    def test_exposed_kernel_below_total_kernel_time(self, small_bs):
        """Part of each invocation's kernel time overlaps the next
        invocation's streams in the schedule."""
        run = imagine_beam_steering.run(small_bs)
        assert run.metrics["kernel_hidden_cycles"] >= 0.0
        assert (
            run.breakdown.get("kernel+prologue (exposed)")
            <= run.cycles
        )
