"""Cross-validate the PPC corner turn's closed-form miss model against
the trace-driven cache simulator.

The full-size mapping uses closed forms (DESIGN.md: "fast analytic + slow
reference" policy); here the same traversal is replayed through
:class:`repro.memory.cache.CacheHierarchy` at sizes where the trace is
cheap, and the analytic classification must match what the trace shows.
"""

import numpy as np
import pytest

from repro.arch.ppc.machine import PpcMachine
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.mappings.ppc_corner_turn import (
    classify_write_revisits,
    scalar_miss_cycles,
)


def transpose_trace(workload: CornerTurnWorkload):
    """Word-address trace of the scalar transpose loop: read source
    row-major, write destination column-walk, interleaved per element.

    The destination pitch is padded by one cache line, as the mapping's
    modelled code does (see its module docstring) — without it every
    destination line aliases into one L1 set and both cache levels
    thrash on conflicts rather than capacity.
    """
    rows, cols = workload.rows, workload.cols
    dst_pitch = rows + 8  # one line of padding
    src = np.arange(rows * cols, dtype=np.int64)
    i = src // cols
    j = src % cols
    dst = rows * cols + j * dst_pitch + i
    trace = np.empty(2 * rows * cols, dtype=np.int64)
    trace[0::2] = src
    trace[1::2] = dst
    return trace


def run_trace(workload: CornerTurnWorkload):
    machine = PpcMachine()
    hierarchy = machine.make_hierarchy()
    return machine, hierarchy.run_trace(transpose_trace(workload))


class TestSmallMatrixL1Regime:
    """128 columns: write-reuse distance fits L1."""

    def test_classification(self):
        machine = PpcMachine()
        assert classify_write_revisits(128, machine) == "l1"

    def test_trace_confirms_l1_hits(self):
        workload = CornerTurnWorkload(rows=128, cols=128)
        machine, result = run_trace(workload)
        # Analytic: misses are compulsory only (reads + writes, one per
        # line).
        expected_compulsory = 2 * workload.words / 8
        assert result.l1.misses == pytest.approx(
            expected_compulsory, rel=0.05
        )

    def test_stall_cycles_match_analytic(self):
        workload = CornerTurnWorkload(rows=128, cols=128)
        machine, result = run_trace(workload)
        analytic = scalar_miss_cycles(workload, machine)
        total_analytic = (
            analytic["read_stall"]
            + analytic["write_first_stall"]
            + analytic["write_revisit_stall"]
        )
        assert result.stall_cycles == pytest.approx(total_analytic, rel=0.10)


class TestMediumMatrixL2Regime:
    """1024-column reuse distance spills L1 but fits L2.  A 256x1024
    matrix keeps the trace cheap while exercising the canonical regime."""

    WORKLOAD = CornerTurnWorkload(rows=256, cols=1024)

    def test_classification(self):
        machine = PpcMachine()
        assert classify_write_revisits(1024, machine) == "l2"

    def test_trace_shows_l1_write_misses_hitting_l2(self):
        machine, result = run_trace(self.WORKLOAD)
        # Most writes miss L1 (reuse distance 1024 lines) but hit L2.
        words = self.WORKLOAD.words
        assert result.l1.misses > 0.8 * words  # nearly every write misses
        assert result.l2.hits > 0.7 * (words - words / 8)

    def test_stall_cycles_match_analytic(self):
        machine, result = run_trace(self.WORKLOAD)
        analytic = scalar_miss_cycles(self.WORKLOAD, machine)
        total_analytic = (
            analytic["read_stall"]
            + analytic["write_first_stall"]
            + analytic["write_revisit_stall"]
        )
        assert result.stall_cycles == pytest.approx(total_analytic, rel=0.15)


class TestCslcStreamingMisses:
    """The PPC CSLC charges compulsory streaming misses with a closed
    form; the trace confirms it: sequential channel reads miss exactly
    once per line."""

    def test_sequential_stream_compulsory_only(self, small_cs):
        machine = PpcMachine()
        hierarchy = machine.make_hierarchy()
        words = (
            (small_cs.n_channels + small_cs.n_mains) * small_cs.samples * 2
        )
        result = hierarchy.run_trace(np.arange(words))
        expected_lines = words / machine.config.l1_line_words
        assert result.l1.misses == expected_lines
        assert result.stall_cycles == pytest.approx(
            machine.memory_miss_stall(expected_lines)
        )


class TestBeamSteeringTraceRegime:
    """Sanity on the beam-steering trace path the mapping uses directly."""

    def test_second_dwell_mostly_hits(self, small_bs):
        from repro.mappings.ppc_beam_steering import table_read_trace

        machine = PpcMachine()
        hierarchy = machine.make_hierarchy()
        trace = table_read_trace(small_bs)
        first = hierarchy.run_trace(trace[: trace.size // small_bs.dwells])
        later = hierarchy.run_trace(trace[trace.size // small_bs.dwells :])
        assert later.l1.miss_rate < first.l1.miss_rate
