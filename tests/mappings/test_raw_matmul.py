"""Tests for :mod:`repro.mappings.raw_matmul` (extension, §2.3's cited
Raw results)."""

import pytest

from repro.errors import MappingError
from repro.kernels.matmul import MatmulWorkload
from repro.mappings.raw_matmul import run, speedup_vs_single_tile

SMALL = MatmulWorkload(32, 32, 32)


class TestModes:
    def test_all_modes_functional(self):
        for mode in ("single", "mimd", "stream"):
            result = run(SMALL, mode=mode)
            assert result.functional_ok, mode
            assert result.cycles > 0

    def test_unknown_mode(self):
        with pytest.raises(MappingError):
            run(SMALL, mode="vliw")

    def test_indivisible_rejected(self):
        with pytest.raises(MappingError):
            run(MatmulWorkload(30, 32, 32))

    def test_stream_cheaper_than_mimd(self):
        assert run(SMALL, mode="stream").cycles < run(SMALL, mode="mimd").cycles

    def test_single_tile_slowest(self):
        single = run(SMALL, mode="single")
        mimd = run(SMALL, mode="mimd")
        assert single.cycles > 10 * mimd.cycles


class TestCitedSpeedups:
    """§2.3: 'speedup of up to 12 relative to single-tile performance on
    ILP benchmarks.  Speedups greater than 16 ... on streaming
    benchmarks.'  Dense matmul sits at the favourable end of the ILP
    band; the streaming mode must exceed 16."""

    def test_mimd_band(self):
        s = speedup_vs_single_tile(SMALL)
        assert 10.0 < s["mimd_speedup"] < 18.0

    def test_stream_exceeds_16(self):
        s = speedup_vs_single_tile(SMALL)
        assert s["stream_speedup"] > 16.0

    def test_stream_beats_mimd(self):
        s = speedup_vs_single_tile(SMALL)
        assert s["stream_speedup"] > s["mimd_speedup"]

    def test_single_tile_stalls_when_working_set_spills(self):
        big = run(MatmulWorkload(64, 64, 64), mode="single")
        assert big.breakdown.get("cache stalls") > 0
        tiny = run(MatmulWorkload(16, 16, 16), mode="single")
        assert tiny.breakdown.get("cache stalls") == 0.0
