"""Cross-cutting invariants for every mapping at small workload sizes.

These are the integration tests: all fifteen kernel x machine cells run
the full pipeline (pattern generation, machine models, functional
computation) on small workloads, and every KernelRun must satisfy the
same structural invariants.
"""

import numpy as np
import pytest

from repro.arch.base import KernelRun
from repro.mappings.registry import KERNELS, MACHINES, run

CELLS = [(k, m) for k in KERNELS for m in MACHINES]


@pytest.fixture(scope="module")
def small_runs():
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    workloads = {
        "corner_turn": small_corner_turn(),
        "cslc": small_cslc(),
        "beam_steering": small_beam_steering(),
    }
    return {
        (kernel, machine): run(kernel, machine, workload=workloads[kernel])
        for kernel, machine in CELLS
    }


@pytest.mark.parametrize("kernel,machine", CELLS)
class TestInvariants:
    def test_returns_kernel_run(self, small_runs, kernel, machine):
        assert isinstance(small_runs[(kernel, machine)], KernelRun)

    def test_positive_cycles(self, small_runs, kernel, machine):
        assert small_runs[(kernel, machine)].cycles > 0

    def test_breakdown_sums_to_total(self, small_runs, kernel, machine):
        r = small_runs[(kernel, machine)]
        assert r.cycles == pytest.approx(
            sum(v for _, v in r.breakdown.items())
        )

    def test_no_negative_categories(self, small_runs, kernel, machine):
        r = small_runs[(kernel, machine)]
        assert all(v >= 0 for _, v in r.breakdown.items())

    def test_functional_ok(self, small_runs, kernel, machine):
        assert small_runs[(kernel, machine)].functional_ok

    def test_output_present_and_finite(self, small_runs, kernel, machine):
        r = small_runs[(kernel, machine)]
        assert r.output is not None
        assert np.all(np.isfinite(np.asarray(r.output, dtype=np.complex128)))

    def test_ops_census_positive(self, small_runs, kernel, machine):
        assert small_runs[(kernel, machine)].ops.total > 0

    def test_within_physical_peak(self, small_runs, kernel, machine):
        """No mapping may exceed its machine's arithmetic peak."""
        r = small_runs[(kernel, machine)]
        assert r.percent_of_peak <= 1.0 + 1e-9

    def test_spec_name_consistent(self, small_runs, kernel, machine):
        r = small_runs[(kernel, machine)]
        assert r.machine == machine
        assert r.spec.name == machine


class TestCrossMachineFunctionalAgreement:
    """All machines must compute the same answer for the same kernel."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_outputs_agree(self, small_runs, kernel):
        outputs = [small_runs[(kernel, m)].output for m in MACHINES]
        reference = outputs[0]
        for machine, output in zip(MACHINES[1:], outputs[1:]):
            assert output.shape == reference.shape, machine
            assert np.allclose(
                np.asarray(output, dtype=np.complex128),
                np.asarray(reference, dtype=np.complex128),
                rtol=1e-4,
                atol=1e-6,
            ), f"{kernel} output differs on {machine}"


class TestDeterminism:
    @pytest.mark.parametrize("machine", MACHINES)
    def test_same_seed_same_cycles(self, machine, small_cs):
        a = run("cslc", machine, workload=small_cs, seed=7)
        b = run("cslc", machine, workload=small_cs, seed=7)
        assert a.cycles == b.cycles
        assert np.array_equal(a.output, b.output)
