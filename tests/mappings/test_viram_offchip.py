"""Direct tests for the VIRAM corner-turn off-chip regime (§4.6).

Runs go through the registry so the repeated 2048x2048 simulation is
memoized across tests (the results are value-identical either way).
"""

import pytest

from repro.kernels.corner_turn import CornerTurnWorkload
from repro.mappings.registry import run as registry_run

ONCHIP = CornerTurnWorkload(rows=1024, cols=1024)  # 2 x 4 MB < 13 MB
OFFCHIP = CornerTurnWorkload(rows=2048, cols=2048)  # 2 x 16 MB > 13 MB


def run_viram(workload):
    return registry_run("corner_turn", "viram", workload=workload)


class TestRegimeSelection:
    def test_canonical_stays_onchip(self):
        run = run_viram(ONCHIP)
        assert run.metrics["fits_onchip"]
        assert "off-chip dma" not in run.breakdown

    def test_oversized_goes_offchip(self):
        run = run_viram(OFFCHIP)
        assert not run.metrics["fits_onchip"]
        assert "off-chip dma" in run.breakdown


class TestOffchipAccounting:
    def test_dma_charged_at_two_words_per_cycle(self):
        run = run_viram(OFFCHIP)
        assert run.breakdown.get("off-chip dma") == pytest.approx(
            2.0 * OFFCHIP.words / 2.0
        )

    def test_onchip_work_hidden_under_dma(self):
        """The on-chip pipeline is faster than the DMA interface, so its
        exposed share is zero — the DMA wholly bounds the kernel."""
        run = run_viram(OFFCHIP)
        assert run.breakdown.get("on-chip (exposed)") == 0.0

    def test_breakdown_still_additive(self):
        run = run_viram(OFFCHIP)
        assert run.cycles == pytest.approx(
            sum(v for _, v in run.breakdown.items())
        )

    def test_functional_still_verified(self):
        run = run_viram(OFFCHIP)
        assert run.functional_ok

    def test_per_word_cost_roughly_doubles(self):
        """§4.6: 'VIRAM would lose much of its advantage.'"""
        onchip = run_viram(ONCHIP)
        offchip = run_viram(OFFCHIP)
        cpw_on = onchip.cycles / ONCHIP.words
        cpw_off = offchip.cycles / OFFCHIP.words
        assert 1.5 < cpw_off / cpw_on < 2.5
