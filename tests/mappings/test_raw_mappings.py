"""Behavioural tests for the Raw mappings (§3/§4 mechanisms)."""

import pytest

from repro.errors import MappingError
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.mappings import raw_beam_steering, raw_corner_turn, raw_cslc


class TestCornerTurn:
    def test_issue_rate_dominates(self, small_ct):
        """§4.2: load/store issue is the limiter."""
        run = raw_corner_turn.run(small_ct)
        assert run.breakdown.fraction("load/store issue") > 0.85

    def test_canonical_near_issue_bound(self):
        """§4.2: 'nearly identical to the maximum performance predicted
        by the instruction issue rate' — within 15%."""
        run = raw_corner_turn.run()
        assert run.cycles <= 1.15 * run.metrics["issue_bound_cycles"]

    def test_canonical_sixteen_instructions_per_cycle(self):
        run = raw_corner_turn.run()
        assert run.metrics["instructions_per_cycle"] == pytest.approx(
            16.0, rel=0.02
        )

    def test_ports_not_bottleneck(self, small_ct):
        run = raw_corner_turn.run(small_ct)
        assert run.metrics["port_utilization"] < 1.0

    def test_indivisible_block_rejected(self):
        with pytest.raises(MappingError):
            raw_corner_turn.run(CornerTurnWorkload(rows=96, cols=96))


class TestCSLC:
    def test_balanced_vs_imbalanced(self, small_cs):
        """§4.3: the static distribution idles tiles; the paper reports
        the perfect-balance extrapolation."""
        balanced = raw_cslc.run(small_cs, balanced=True)
        imbalanced = raw_cslc.run(small_cs, balanced=False)
        assert imbalanced.cycles > balanced.cycles
        assert "load-imbalance idle" in imbalanced.breakdown

    def test_canonical_imbalance_is_about_8_percent(self):
        run = raw_cslc.run(balanced=False)
        idle = run.breakdown.fraction("load-imbalance idle")
        assert idle == pytest.approx(0.0875, abs=0.01)

    def test_streamed_fft_removes_loads_and_stalls(self, small_cs):
        """§4.3: streaming eliminates FFT loads/stores and cache stalls."""
        base = raw_cslc.run(small_cs)
        streamed = raw_cslc.run(small_cs, streamed_fft=True)
        assert streamed.cycles < base.cycles
        assert streamed.breakdown.get("cache stalls") == 0.0
        assert streamed.breakdown.get("load/store") < base.breakdown.get(
            "load/store"
        )

    def test_canonical_streamed_improvement_near_70_percent(self):
        base = raw_cslc.run()
        streamed = raw_cslc.run(streamed_fft=True)
        improvement = base.cycles / streamed.cycles - 1.0
        assert improvement == pytest.approx(0.70, abs=0.15)

    def test_cache_stall_fraction_under_10_percent(self, small_cs):
        """§4.3: 'less than 10% of the execution time.'"""
        run = raw_cslc.run(small_cs)
        assert run.metrics["cache_stall_fraction"] < 0.10

    def test_dynamic_delivery_inside_stall_budget(self, small_cs):
        """The event-simulated dynamic-network delivery of a working set
        must fit within the calibrated stall fraction, or the §4.3
        '<10% stalls' claim would be bandwidth-infeasible."""
        run = raw_cslc.run(small_cs)
        assert (
            run.metrics["dynamic_delivery_fraction"]
            < run.metrics["cache_stall_fraction"] + 0.02
        )
        canonical = raw_cslc.run()
        assert canonical.metrics["dynamic_delivery_fraction"] < 0.10

    def test_radix2_uses_more_ops_than_radix4(self, small_cs):
        """§4.3's caveat, carried as a metric (the gap grows with FFT
        size; at the canonical 128 points it approaches the paper's
        ~1.5x including loads and stores)."""
        run = raw_cslc.run(small_cs)
        assert run.metrics["radix2_over_radix4_ops"] > 1.0
        canonical = raw_cslc.run()
        assert canonical.metrics["radix2_over_radix4_ops"] > 1.1

    def test_canonical_percent_of_peak(self):
        """§4.3: 'about 31.4% of the peak' on the radix-4 basis."""
        run = raw_cslc.run()
        assert run.metrics["percent_of_peak_radix4_basis"] == pytest.approx(
            0.314, abs=0.06
        )


class TestBeamSteering:
    def test_no_loads_or_stores(self, small_bs):
        """§4.4: 'loads and stores are not necessary.'"""
        run = raw_beam_steering.run(small_bs)
        assert run.metrics["loads_stores_issued"] == 0
        assert "load/store" not in run.breakdown

    def test_issue_slots_never_stalled_canonical(self):
        """§4.4: 'ALU utilization is very high' — no stall categories at
        canonical size (pipeline fill is negligible there)."""
        run = raw_beam_steering.run()
        assert run.metrics["issue_slot_occupancy"] > 0.95

    def test_compute_majority_canonical(self):
        run = raw_beam_steering.run()
        assert run.metrics["arithmetic_fraction"] > 0.5

    def test_ports_not_bottleneck(self, small_bs):
        run = raw_beam_steering.run(small_bs)
        assert run.metrics["port_utilization"] < 1.0
