"""Behavioural tests for the PowerPC G4 scalar/AltiVec mappings."""

import pytest

from repro.mappings import ppc_beam_steering, ppc_corner_turn, ppc_cslc


class TestCornerTurn:
    def test_scalar_memory_bound(self, small_ct):
        run = ppc_corner_turn.run_scalar(small_ct)
        assert run.metrics["memory_bound_fraction"] > 0.5

    def test_altivec_gains_little_on_corner_turn(self):
        """§4.5: AltiVec 'does not significantly improve performance for
        the corner turn'."""
        scalar = ppc_corner_turn.run_scalar()
        altivec = ppc_corner_turn.run_altivec()
        gain = scalar.cycles / altivec.cycles
        assert 1.0 < gain < 1.6

    def test_small_matrix_revisits_hit_l1(self, small_ct):
        """At 128 columns the write-reuse distance fits L1, so there is
        no revisit stall (validated against the trace in
        test_ppc_analytic_vs_trace.py)."""
        run = ppc_corner_turn.run_scalar(small_ct)
        assert run.metrics["write_revisit_level"] == "l1"
        assert run.breakdown.get("write revisit stalls") == 0.0

    def test_canonical_revisits_hit_l2(self):
        run = ppc_corner_turn.run_scalar()
        assert run.metrics["write_revisit_level"] == "l2"
        assert run.breakdown.get("write revisit stalls") > 0.0

    def test_altivec_odd_shape_falls_back(self):
        from repro.kernels.corner_turn import CornerTurnWorkload

        run = ppc_corner_turn.run_altivec(CornerTurnWorkload(rows=24, cols=24))
        assert run.machine == "ppc"  # scalar fallback


class TestCSLC:
    def test_twiddle_recomputation_dominates_scalar(self):
        """The scalar baseline's defining cost (see calibration anchor)."""
        run = ppc_cslc.run_scalar()
        assert run.metrics["trig_fraction"] > 0.5

    def test_altivec_gain_about_six(self):
        """§4.5: 'a performance factor of about six for the CSLC.'"""
        scalar = ppc_cslc.run_scalar()
        altivec = ppc_cslc.run_altivec()
        gain = scalar.cycles / altivec.cycles
        assert 4.5 < gain < 7.5

    def test_altivec_has_no_trig(self, small_cs):
        run = ppc_cslc.run_altivec(small_cs)
        assert "twiddle recomputation" not in run.breakdown

    def test_functional_both_paths(self, small_cs):
        assert ppc_cslc.run_scalar(small_cs).functional_ok
        assert ppc_cslc.run_altivec(small_cs).functional_ok


class TestBeamSteering:
    def test_altivec_gain_about_two(self):
        """§4.5: 'about two for beam steering.'"""
        scalar = ppc_beam_steering.run_scalar()
        altivec = ppc_beam_steering.run_altivec()
        gain = scalar.cycles / altivec.cycles
        assert 1.5 < gain < 2.5

    def test_table_trace_order(self, small_bs):
        """The trace interleaves coarse and fine reads per output."""
        trace = ppc_beam_steering.table_read_trace(small_bs)
        assert trace.size == 2 * small_bs.outputs
        # First output reads coarse[0] then fine[0*directions+0].
        assert trace[0] == 0
        assert trace[1] == small_bs.coarse_table_words

    def test_memory_stalls_present(self, small_bs):
        run = ppc_beam_steering.run_scalar(small_bs)
        assert run.breakdown.get("table read misses") > 0
        assert run.breakdown.get("write misses") > 0

    def test_stall_components_identical_across_paths(self, small_bs):
        """Scalar and AltiVec share the memory system (the kernel is
        table-bound either way, which is why the gain is only ~2x)."""
        scalar = ppc_beam_steering.run_scalar(small_bs)
        altivec = ppc_beam_steering.run_altivec(small_bs)
        assert scalar.breakdown.get("table read misses") == pytest.approx(
            altivec.breakdown.get("table read misses")
        )
