"""Tests for :mod:`repro.mappings.base` — the shared mapping helpers."""

import numpy as np
import pytest

from repro.calibration import DEFAULT_CALIBRATION, Calibration
from repro.errors import MappingError
from repro.mappings.base import functional_match, require, resolve_calibration


class TestFunctionalMatch:
    def test_float_tolerance(self):
        a = np.array([1.0, 2.0, 3.0])
        assert functional_match(a, a + 1e-8)
        assert not functional_match(a, a + 1.0)

    def test_integer_exact(self):
        a = np.array([1, 2, 3])
        assert functional_match(a, a.copy())
        assert not functional_match(a, np.array([1, 2, 4]))

    def test_shape_mismatch_fails(self):
        assert not functional_match(np.zeros(3), np.zeros(4))

    def test_complex_outputs(self):
        a = np.array([1 + 2j, 3 - 4j])
        assert functional_match(a, a + 1e-9)

    def test_failure_injection_reaches_kernel_run(self, small_ct):
        """A corrupted output must surface as functional_ok=False end to
        end, not be silently accepted."""
        from repro.kernels.corner_turn import corner_turn_reference

        matrix = small_ct.make_matrix(0)
        good = corner_turn_reference(matrix)
        corrupted = good.copy()
        corrupted[0, 0] += 100.0
        assert functional_match(good, corner_turn_reference(matrix))
        assert not functional_match(corrupted, corner_turn_reference(matrix))


class TestResolveCalibration:
    def test_default(self):
        assert resolve_calibration(None) is DEFAULT_CALIBRATION

    def test_explicit_passthrough(self):
        cal = Calibration()
        assert resolve_calibration(cal) is cal


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(MappingError, match="boom"):
            require(False, "boom")
