"""Behavioural tests for the VIRAM mappings (§3/§4 mechanisms)."""

import pytest

from repro.calibration import Calibration, ViramCalibration
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.mappings import viram_beam_steering, viram_corner_turn, viram_cslc


class TestCornerTurn:
    def test_block_not_divisible_rejected(self):
        from repro.errors import MappingError

        with pytest.raises(MappingError):
            viram_corner_turn.run(CornerTurnWorkload(rows=24, cols=24))

    def test_strided_loads_cost_twice_sequential_stores(self, small_ct):
        """The address-generator limit: 4 strided vs 8 sequential
        words/cycle means load issue time is twice store issue time."""
        run = viram_corner_turn.run(small_ct)
        assert run.breakdown.get("strided loads") == pytest.approx(
            2 * run.breakdown.get("sequential stores")
        )

    def test_startup_latency_per_block(self, small_ct):
        run = viram_corner_turn.run(small_ct)
        blocks = (small_ct.rows // 16) * (small_ct.cols // 16)
        assert run.breakdown.get("startup latency") == pytest.approx(
            blocks * 12.0
        )

    def test_row_cycle_zero_removes_activation_overhead(self, small_ct):
        cal = Calibration(viram=ViramCalibration(dram_row_cycle=0.0))
        run = viram_corner_turn.run(small_ct, calibration=cal)
        assert run.breakdown.get("dram row activations") == 0.0

    def test_canonical_overhead_anchors(self):
        """§4.2: ~21% precharge+TLB, ~24% strided-load limitation."""
        run = viram_corner_turn.run()
        assert run.metrics["precharge_tlb_fraction"] == pytest.approx(
            0.21, abs=0.04
        )
        assert run.metrics["strided_penalty_fraction"] == pytest.approx(
            0.24, abs=0.04
        )

    def test_scales_roughly_with_area(self, small_ct):
        small = viram_corner_turn.run(small_ct)
        bigger = viram_corner_turn.run(
            CornerTurnWorkload(rows=256, cols=256)
        )
        ratio = bigger.cycles / small.cycles
        assert 3.0 < ratio < 5.5  # 4x the data


class TestCSLC:
    def test_compute_charged_at_fp_rate(self, small_cs):
        run = viram_cslc.run(small_cs)
        assert run.breakdown.get("compute") == pytest.approx(
            run.ops.flops / 8.0
        )

    def test_shuffle_overhead_positive(self, small_cs):
        run = viram_cslc.run(small_cs)
        assert run.breakdown.get("fft shuffles") > 0

    def test_canonical_slowdown_factor(self):
        """§4.3: CSLC takes ~3.6x the peak-rate prediction."""
        run = viram_cslc.run()
        assert run.metrics["slowdown_vs_peak"] == pytest.approx(3.6, rel=0.2)

    def test_factor_decomposition_multiplies_out(self, small_cs):
        run = viram_cslc.run(small_cs)
        product = (
            run.metrics["overhead_instruction_factor"]
            * run.metrics["alu_restriction_factor"]
            * run.metrics["memory_startup_factor"]
        )
        assert product == pytest.approx(run.metrics["slowdown_vs_peak"])

    def test_cancellation_reported(self, small_cs):
        run = viram_cslc.run(small_cs)
        assert len(run.metrics["cancellation_db"]) == small_cs.n_mains


class TestBeamSteering:
    def test_compute_is_lower_bound_fraction(self, small_bs):
        """§4.4: compute is the 56% lower bound; memory is hidden."""
        run = viram_beam_steering.run(small_bs)
        frac = run.metrics["compute_lower_bound_fraction"]
        assert 0.4 < frac < 0.75
        assert run.breakdown.get("memory") == 0.0

    def test_canonical_lower_bound_matches_paper(self):
        run = viram_beam_steering.run()
        assert run.metrics["compute_lower_bound_fraction"] == pytest.approx(
            0.56, abs=0.05
        )

    def test_memory_hidden_cycles_reported(self, small_bs):
        run = viram_beam_steering.run(small_bs)
        assert run.metrics["memory_hidden_cycles"] > 0

    def test_dead_time_scales_with_instructions(self, small_bs):
        fast = Calibration(viram=ViramCalibration(vector_dead_time=0.0))
        lazy = Calibration(viram=ViramCalibration(vector_dead_time=8.0))
        a = viram_beam_steering.run(small_bs, calibration=fast)
        b = viram_beam_steering.run(small_bs, calibration=lazy)
        assert b.cycles > a.cycles
        assert a.breakdown.get("startup") == 0.0
