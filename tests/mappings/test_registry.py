"""Tests for :mod:`repro.mappings.registry`."""

import pytest

from repro.errors import MappingError
from repro.mappings.registry import KERNELS, MACHINES, available, run


class TestRegistry:
    def test_all_fifteen_cells_present(self):
        pairs = available()
        assert len(pairs) == 15
        for kernel in KERNELS:
            for machine in MACHINES:
                assert (kernel, machine) in pairs

    def test_unknown_kernel(self):
        with pytest.raises(MappingError):
            run("matmul", "viram")

    def test_unknown_machine(self):
        with pytest.raises(MappingError):
            run("cslc", "trips")

    def test_run_dispatches(self, small_ct):
        result = run("corner_turn", "raw", workload=small_ct)
        assert result.kernel == "corner_turn"
        assert result.machine == "raw"

    def test_kwargs_forwarded(self, small_cs):
        balanced = run("cslc", "raw", workload=small_cs, balanced=True)
        skewed = run("cslc", "raw", workload=small_cs, balanced=False)
        assert skewed.cycles > balanced.cycles

    def test_machine_order_matches_table3(self):
        assert MACHINES == ("ppc", "altivec", "viram", "imagine", "raw")
