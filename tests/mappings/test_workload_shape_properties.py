"""Property tests: mapping invariants hold across workload shapes.

The canonical sizes get exact assertions elsewhere; here hypothesis
varies the workload geometry and every mapping must keep its structural
invariants — additive breakdowns, positive cycles, verified outputs, and
feasible networks/ports.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.beam_steering import BeamSteeringWorkload
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.kernels.cslc import CSLCWorkload
from repro.mappings.registry import MACHINES, run

corner_sizes = st.integers(1, 4).map(lambda k: 64 * k)


@settings(max_examples=6, deadline=None)
@given(rows=corner_sizes, cols=corner_sizes)
def test_corner_turn_shape_invariants(rows, cols):
    workload = CornerTurnWorkload(rows=rows, cols=cols)
    for machine in MACHINES:
        result = run("corner_turn", machine, workload=workload)
        assert result.cycles > 0
        assert result.cycles == pytest.approx(
            sum(v for _, v in result.breakdown.items())
        )
        assert result.functional_ok, machine


@settings(max_examples=6, deadline=None)
@given(
    subbands=st.integers(2, 12),
    log_len=st.integers(4, 6),
)
def test_cslc_shape_invariants(subbands, log_len):
    length = 2 ** log_len
    workload = CSLCWorkload(
        samples=length * subbands,
        n_subbands=subbands,
        subband_len=length,
    )
    for machine in ("viram", "imagine", "raw"):
        result = run("cslc", machine, workload=workload, seed=1)
        assert result.cycles > 0
        assert result.functional_ok, machine
        assert result.percent_of_peak <= 1.0 + 1e-9


@settings(max_examples=6, deadline=None)
@given(
    elements=st.integers(1, 40).map(lambda k: 16 * k),
    directions=st.integers(1, 4),
    dwells=st.integers(1, 3),
)
def test_beam_steering_shape_invariants(elements, directions, dwells):
    workload = BeamSteeringWorkload(
        elements=elements, directions=directions, dwells=dwells
    )
    for machine in MACHINES:
        result = run("beam_steering", machine, workload=workload)
        assert result.cycles > 0
        assert result.functional_ok, machine
        # Output volume drives the op census exactly.
        assert result.ops.stores == workload.outputs
