"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.workloads import (
    small_beam_steering,
    small_corner_turn,
    small_cslc,
)


@pytest.fixture(autouse=True)
def isolated_disk_cache(tmp_path, monkeypatch):
    """Point the run-cache disk tier at a per-test directory.

    The disk tier persists across processes by design, which is exactly
    what tests must not see: an entry left by one test (or an earlier
    suite run) would satisfy a lookup another test expects to miss.  The
    cache resolves its root from the environment on every operation, so
    redirecting the variable is sufficient — no cache object state to
    reset beyond the counters.
    """
    from repro.perf.diskcache import DISK_CACHE

    monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path / "diskcache"))
    monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
    DISK_CACHE.enable()
    DISK_CACHE.clear()
    yield
    DISK_CACHE.enable()
    DISK_CACHE.clear()


@pytest.fixture(autouse=True)
def isolated_worker_pool():
    """Retire the persistent worker pool between tests.

    The pool deliberately outlives a sweep; across *tests* that warmth
    is a leak — a pool spawned under one test's monkeypatches (or
    before another test breaks pool spawning) would mask the condition
    the next test injects.  Shutdown is a no-op for tests that never
    touched the pool.
    """
    from repro.perf import poold

    poold.shutdown(wait=False)
    yield
    poold.shutdown(wait=False)


@pytest.fixture(autouse=True)
def isolated_obs(tmp_path, monkeypatch):
    """Point the observability layer at a per-test directory.

    The ledger and metrics history are per-checkout state; a record
    appended by one test must never become another test's regression
    baseline.  Also guarantees no recorder leaks across tests.
    """
    from repro.obs import ledger

    monkeypatch.setenv("REPRO_OBS_DIR", str(tmp_path / "obs"))
    monkeypatch.delenv("REPRO_OBS", raising=False)
    yield
    ledger._ACTIVE = None


@pytest.fixture(autouse=True)
def isolated_service(tmp_path, monkeypatch):
    """Point the simulation service at a per-test directory.

    The job journal and result store are durable by design — which is
    exactly the property tests must not share: a job journaled by one
    test would be replayed (or deduped against) by the next test's
    runtime.  Service counters are process-global, so they are reset on
    entry to keep delta assertions honest.
    """
    from repro.service.stats import SERVICE_STATS

    monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "service"))
    SERVICE_STATS.reset()
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_ct():
    return small_corner_turn()


@pytest.fixture
def small_cs():
    return small_cslc()


@pytest.fixture
def small_bs():
    return small_beam_steering()


@pytest.fixture
def small_workloads(small_ct, small_cs, small_bs):
    """Workload overrides keyed the way the experiment registry expects."""
    return {
        "corner_turn": small_ct,
        "cslc": small_cs,
        "beam_steering": small_bs,
    }
