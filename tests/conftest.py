"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.workloads import (
    small_beam_steering,
    small_corner_turn,
    small_cslc,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_ct():
    return small_corner_turn()


@pytest.fixture
def small_cs():
    return small_cslc()


@pytest.fixture
def small_bs():
    return small_beam_steering()


@pytest.fixture
def small_workloads(small_ct, small_cs, small_bs):
    """Workload overrides keyed the way the experiment registry expects."""
    return {
        "corner_turn": small_ct,
        "cslc": small_cs,
        "beam_steering": small_bs,
    }
