"""Tests for :mod:`repro.cli`."""

import json

import pytest

from repro.cli import _parse_option, main


class TestParseOption:
    def test_bool(self):
        assert _parse_option("balanced=false") == ("balanced", False)
        assert _parse_option("x=True") == ("x", True)

    def test_int_and_float(self):
        assert _parse_option("seed=3") == ("seed", 3)
        assert _parse_option("f=1.5") == ("f", 1.5)

    def test_string(self):
        assert _parse_option("mode=fast") == ("mode", "fast")

    def test_missing_equals(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_option("oops")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "corner_turn" in out
        assert "viram" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "figure8" in out

    def test_run(self, capsys):
        assert main(["run", "corner_turn", "raw"]) == 0
        out = capsys.readouterr().out
        assert "corner_turn on Raw" in out
        assert "functional check: ok" in out

    def test_run_with_option(self, capsys):
        assert main(
            ["run", "cslc", "raw", "--option", "balanced=false"]
        ) == 0
        out = capsys.readouterr().out
        assert "load-imbalance idle" in out

    def test_run_unknown_kernel_exits_nonzero(self, capsys):
        assert main(["run", "matmul3d", "raw"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_table(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Peak throughput" in capsys.readouterr().out

    def test_table_rejects_bad_number(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])

    def test_figure(self, capsys):
        assert main(["figure", "8"]) == 0
        assert "log scale" in capsys.readouterr().out

    def test_run_json(self, capsys):
        assert main(["run", "corner_turn", "viram", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kernel"] == "corner_turn"
        assert record["machine"] == "viram"
        assert record["cycles"] > 0
        assert record["config_hash"]
        assert record["functional_ok"] is True

    def test_run_trace_writes_chrome_json(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert (
            main(["run", "corner_turn", "viram", "--trace", str(path)]) == 0
        )
        captured = capsys.readouterr()
        assert "corner_turn on VIRAM" in captured.out
        assert str(path) in captured.err
        doc = json.loads(path.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_trace_chrome_format(self, capsys, tmp_path):
        path = tmp_path / "t.json"
        assert main(["trace", "corner_turn", "viram", "-o", str(path)]) == 0
        doc = json.loads(path.read_text())
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert spans
        assert doc["otherData"]["runs"][0]["kernel"] == "corner_turn"

    def test_trace_chrome_to_stdout(self, capsys):
        assert main(["trace", "beam_steering", "ppc"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "traceEvents" in doc

    def test_trace_svg_format(self, capsys, tmp_path):
        path = tmp_path / "timeline.svg"
        assert (
            main(
                [
                    "trace",
                    "corner_turn",
                    "viram",
                    "--format",
                    "svg",
                    "-o",
                    str(path),
                ]
            )
            == 0
        )
        text = path.read_text()
        assert text.startswith("<svg")
        assert 'data-track="accounting/' in text

    def test_trace_jsonl_format(self, capsys):
        assert (
            main(["trace", "corner_turn", "viram", "--format", "jsonl"]) == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == "repro-metrics/1"
        assert record["kernel"] == "corner_turn"
        assert record["trace_counters"]["trace.runs"] == 1.0

    def test_trace_with_option(self, capsys):
        assert (
            main(
                [
                    "trace",
                    "cslc",
                    "raw",
                    "--format",
                    "jsonl",
                    "--option",
                    "balanced=false",
                ]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["machine"] == "raw"

    def test_trace_unknown_kernel_exits_nonzero(self, capsys):
        assert main(["trace", "matmul3d", "raw"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "beam_steering" in result.stdout
