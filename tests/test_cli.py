"""Tests for :mod:`repro.cli`."""

import json

import pytest

from repro.cli import _parse_option, main


class TestParseOption:
    def test_bool(self):
        assert _parse_option("balanced=false") == ("balanced", False)
        assert _parse_option("x=True") == ("x", True)

    def test_int_and_float(self):
        assert _parse_option("seed=3") == ("seed", 3)
        assert _parse_option("f=1.5") == ("f", 1.5)

    def test_string(self):
        assert _parse_option("mode=fast") == ("mode", "fast")

    def test_missing_equals(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_option("oops")


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "corner_turn" in out
        assert "viram" in out

    def test_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out
        assert "figure8" in out

    def test_run(self, capsys):
        assert main(["run", "corner_turn", "raw"]) == 0
        out = capsys.readouterr().out
        assert "corner_turn on Raw" in out
        assert "functional check: ok" in out

    def test_run_with_option(self, capsys):
        assert main(
            ["run", "cslc", "raw", "--option", "balanced=false"]
        ) == 0
        out = capsys.readouterr().out
        assert "load-imbalance idle" in out

    def test_run_unknown_kernel_exits_nonzero(self, capsys):
        assert main(["run", "matmul3d", "raw"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_table(self, capsys):
        assert main(["table", "1"]) == 0
        assert "Peak throughput" in capsys.readouterr().out

    def test_table_rejects_bad_number(self):
        with pytest.raises(SystemExit):
            main(["table", "7"])

    def test_figure(self, capsys):
        assert main(["figure", "8"]) == 0
        assert "log scale" in capsys.readouterr().out

    def test_run_json(self, capsys):
        assert main(["run", "corner_turn", "viram", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["kernel"] == "corner_turn"
        assert record["machine"] == "viram"
        assert record["cycles"] > 0
        assert record["config_hash"]
        assert record["functional_ok"] is True

    def test_run_trace_writes_chrome_json(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert (
            main(["run", "corner_turn", "viram", "--trace", str(path)]) == 0
        )
        captured = capsys.readouterr()
        assert "corner_turn on VIRAM" in captured.out
        assert str(path) in captured.err
        doc = json.loads(path.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_trace_chrome_format(self, capsys, tmp_path):
        path = tmp_path / "t.json"
        assert main(["trace", "corner_turn", "viram", "-o", str(path)]) == 0
        doc = json.loads(path.read_text())
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert spans
        assert doc["otherData"]["runs"][0]["kernel"] == "corner_turn"

    def test_trace_chrome_to_stdout(self, capsys):
        assert main(["trace", "beam_steering", "ppc"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "traceEvents" in doc

    def test_trace_svg_format(self, capsys, tmp_path):
        path = tmp_path / "timeline.svg"
        assert (
            main(
                [
                    "trace",
                    "corner_turn",
                    "viram",
                    "--format",
                    "svg",
                    "-o",
                    str(path),
                ]
            )
            == 0
        )
        text = path.read_text()
        assert text.startswith("<svg")
        assert 'data-track="accounting/' in text

    def test_trace_jsonl_format(self, capsys):
        assert (
            main(["trace", "corner_turn", "viram", "--format", "jsonl"]) == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == "repro-metrics/1"
        assert record["kernel"] == "corner_turn"
        assert record["trace_counters"]["trace.runs"] == 1.0

    def test_trace_with_option(self, capsys):
        assert (
            main(
                [
                    "trace",
                    "cslc",
                    "raw",
                    "--format",
                    "jsonl",
                    "--option",
                    "balanced=false",
                ]
            )
            == 0
        )
        record = json.loads(capsys.readouterr().out)
        assert record["machine"] == "raw"

    def test_trace_unknown_kernel_exits_nonzero(self, capsys):
        assert main(["trace", "matmul3d", "raw"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_module_entry_point(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "beam_steering" in result.stdout


class TestObservabilityCommands:
    def _obs_root(self):
        import os
        from pathlib import Path

        return Path(os.environ["REPRO_OBS_DIR"])

    def test_session_commands_leave_ledger_and_history(self, capsys):
        from repro.obs.history import read_history
        from repro.obs.ledger import read_ledger

        assert main(["run", "corner_turn", "viram"]) == 0
        capsys.readouterr()

        ledgers = sorted(self._obs_root().glob("ledger/*.jsonl"))
        assert len(ledgers) == 1
        events, corrupt = read_ledger(ledgers[0])
        assert not corrupt
        assert events[0]["kind"] == "session.start"
        assert events[0]["payload"]["command"] == "run"
        assert events[0]["payload"]["argv"] == ["run", "corner_turn", "viram"]
        assert events[-1]["kind"] == "session.end"
        assert events[-1]["payload"]["exit_code"] == 0

        records, corrupt = read_history(self._obs_root() / "history.jsonl")
        assert not corrupt
        assert len(records) == 1
        assert records[0]["command"] == "run"
        assert records[0]["metrics"]["run.wall_seconds"] > 0

    def test_failed_command_records_ledger_but_no_history(self, capsys):
        assert main(["run", "matmul3d", "raw"]) == 1
        capsys.readouterr()
        ledgers = sorted(self._obs_root().glob("ledger/*.jsonl"))
        assert len(ledgers) == 1  # the session is still witnessed
        assert not (self._obs_root() / "history.jsonl").exists()

    def test_non_session_commands_stay_unobserved(self, capsys):
        assert main(["list"]) == 0
        capsys.readouterr()
        assert not list(self._obs_root().glob("ledger/*.jsonl"))

    def test_obs_disabled_by_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert main(["run", "corner_turn", "viram"]) == 0
        capsys.readouterr()
        assert not self._obs_root().exists()

    def test_metrics_history_lists_appended_records(self, capsys):
        assert main(["run", "corner_turn", "viram"]) == 0
        capsys.readouterr()
        assert main(["metrics", "history"]) == 0
        out = capsys.readouterr().out
        assert "run" in out
        # The listing command itself must not have appended a record.
        from repro.obs.history import read_history

        records, _ = read_history(self._obs_root() / "history.jsonl")
        assert [r["command"] for r in records] == ["run"]

    def test_metrics_history_json_lines(self, capsys):
        assert main(["run", "corner_turn", "viram"]) == 0
        capsys.readouterr()
        assert main(["metrics", "history", "--json"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert len(lines) == 1
        assert lines[0]["command"] == "run"

    def test_metrics_regress_empty_history_passes(self, capsys):
        assert main(["metrics", "regress"]) == 0
        out = capsys.readouterr().out
        assert "no history records" in out
        assert "PASS" in out

    def test_metrics_regress_detects_injected_drift(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.obs.history import (
            append_history,
            build_record,
            read_history,
        )

        # Run from an empty cwd so the repo's committed BENCH baselines
        # don't gate these synthetic records; history is env-pinned.
        monkeypatch.chdir(tmp_path)
        # Two agreeing records, then one with a drifted exact metric.
        for cycles in (1000.0, 1000.0):
            append_history(
                build_record(
                    "report", [], session="a" * 12, exit_code=0,
                    wall_seconds=1.0,
                    metrics={"run.corner_turn.viram.cycles": cycles},
                )
            )
        assert main(["metrics", "regress"]) == 0
        capsys.readouterr()

        append_history(
            build_record(
                "report", [], session="b" * 12, exit_code=0,
                wall_seconds=1.0,
                metrics={"run.corner_turn.viram.cycles": 1010.0},
            )
        )
        assert main(["metrics", "regress"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "run.corner_turn.viram.cycles" in out
        # The listing/regress session itself appends no history record.
        records, _ = read_history()
        assert len(records) == 3

    def test_metrics_regress_json_payload(self, capsys, tmp_path, monkeypatch):
        from repro.obs.history import append_history, build_record

        monkeypatch.chdir(tmp_path)
        append_history(
            build_record(
                "report", [], session="a" * 12, exit_code=0,
                wall_seconds=1.0,
            )
        )
        assert main(["metrics", "regress", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "comparisons" in payload

    def test_analyze_roofline_small(self, capsys):
        from repro.mappings import registry

        assert main(["analyze", "roofline", "--small"]) == 0
        out = capsys.readouterr().out
        assert "roofline attribution" in out
        for kernel, machine in registry.available():
            assert kernel in out and machine in out
        assert "pairs sit left of their ridge point" in out

    def test_analyze_roofline_json(self, capsys):
        from repro.mappings import registry

        assert main(["analyze", "roofline", "--small", "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == len(list(registry.available()))
        for record in records:
            assert 0.0 <= record["memory_fraction"] <= 1.0

    def test_analyze_roofline_html_dashboard(self, capsys, tmp_path):
        path = tmp_path / "dash.html"
        assert (
            main(["analyze", "roofline", "--small", "--html", str(path)])
            == 0
        )
        captured = capsys.readouterr()
        assert str(path) in captured.err
        text = path.read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "roofline" in text

    def test_pipeline_progress_jsonl_on_stderr_only(self, capsys):
        assert (
            main(
                ["pipeline", "fuzz", "--seed", "7", "--count", "5",
                 "--jobs", "1", "--progress", "jsonl"]
            )
            == 0
        )
        captured = capsys.readouterr()
        progress = [
            json.loads(line)
            for line in captured.err.splitlines()
            if line.strip().startswith("{")
        ]
        if progress:  # warm caches may leave nothing to narrate
            assert {"begin", "end"} <= {p["event"] for p in progress}
        # Progress must never leak onto stdout: the manifest/report text
        # must stay byte-identical whether or not progress is shown.
        assert not any(
            line.startswith('{"') for line in captured.out.splitlines()
        )

    def test_progress_rejects_unknown_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["report", "--progress", "loud"])


class TestFastStart:
    """The lazy-import fast path: observability-only commands must never
    pay the numpy/model import bill (the point of the PR 9 cold-start
    work).  Run in a subprocess so this test's own imports cannot
    contaminate ``sys.modules``."""

    _HEAVY = ("numpy", "repro.arch", "repro.kernels", "repro.mappings")

    def _assert_light(self, argv):
        import subprocess
        import sys

        code = (
            "import sys\n"
            "from repro.cli import main\n"
            f"rc = main({argv!r})\n"
            f"heavy = [m for m in {self._HEAVY!r} if m in sys.modules]\n"
            "if heavy:\n"
            "    print('heavy imports leaked:', heavy, file=sys.stderr)\n"
            "sys.exit(rc if rc else (2 if heavy else 0))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr

    def test_cache_stats_imports_no_numpy(self):
        self._assert_light(["cache", "stats"])

    def test_cache_stats_json_imports_no_numpy(self):
        self._assert_light(["cache", "stats", "--json"])

    def test_metrics_regress_imports_no_numpy(self):
        self._assert_light(["metrics", "regress"])
