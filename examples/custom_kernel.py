#!/usr/bin/env python3
"""Mapping a new kernel onto the machine models: matrix multiply on Raw.

The library's machine models are reusable beyond the paper's three
kernels.  This example walks through the extension shipped in
``repro.kernels.matmul`` / ``repro.mappings.raw_matmul``, which
reproduces the Raw results the paper cites in §2.3 ("speedup of up to 12
relative to single-tile performance on ILP benchmarks.  Speedups greater
than 16 ... on streaming benchmarks"), and shows the recipe for adding
your own kernel:

1. define a workload dataclass with exact operation censuses;
2. write a functional implementation (checked against an oracle);
3. compose the machine model's costing methods (tile issue, cache
   stalls, network transfers) into a cycle breakdown;
4. return a KernelRun so the evaluation tooling works unchanged.

Run:  python examples/custom_kernel.py
"""

from repro.kernels.matmul import MatmulWorkload
from repro.mappings.raw_matmul import MODES, run, speedup_vs_single_tile


def main() -> None:
    workload = MatmulWorkload(n=64, k=64, m=64)
    print(f"C[{workload.n},{workload.m}] = A @ B with k={workload.k} "
          f"({workload.macs:,} MACs)\n")

    print("Per-mode runs on the Raw model:")
    for mode in MODES:
        result = run(workload, mode=mode)
        print(f"\n--- mode = {mode} ---")
        print(result.breakdown.format())
        print(f"functional: {'ok' if result.functional_ok else 'FAILED'}")

    s = speedup_vs_single_tile(workload)
    print("\nSpeedup over the single-tile load/store baseline "
          "(§2.3's comparison):")
    print(f"  MIMD (load/store inner loop): {s['mimd_speedup']:6.1f}x "
          "(paper cites 'up to 12' across its ILP suite)")
    print(f"  streaming (operands from the network): "
          f"{s['stream_speedup']:6.1f}x (paper: 'greater than 16')")
    print("\nThe >16x is not magic: streaming removes the per-MAC load "
          "instruction, so 16 tiles each retire more useful arithmetic "
          "per cycle than the load/store baseline — §2.3's 'ability to "
          "operate on data directly from the networks'.")


if __name__ == "__main__":
    main()
