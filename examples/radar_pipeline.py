#!/usr/bin/env python3
"""A realistic radar-processing scenario: jam a signal, cancel it, steer.

The paper's kernels come from a radar pipeline; this example runs the
*functional* side end to end on synthetic data:

1. synthesize two main channels carrying chirp pulses plus a 30 dB
   jammer, and two auxiliary channels observing the jammer;
2. run the coherent side-lobe canceller (the paper's CSLC kernel:
   sub-band FFTs, adaptive weights, IFFTs) and report how many dB of
   jammer power are removed;
3. compute the beam-steering phase words for the cleaned dwell;
4. corner-turn the resulting data-cube face (the transpose every pulse-
   Doppler pipeline performs between range and pulse processing);

and then asks the performance models which of the paper's machines would
run this dwell fastest end to end.

Run:  python examples/radar_pipeline.py
"""

import numpy as np

from repro import run_kernel
from repro.kernels.beam_steering import beam_steering_reference, make_tables
from repro.kernels.corner_turn import CornerTurnWorkload, corner_turn_reference
from repro.kernels.cslc import cslc_reference
from repro.kernels.signal import make_jammed_channels, power_db
from repro.kernels.workloads import canonical_beam_steering, canonical_cslc
from repro.mappings.registry import MACHINES


def main() -> None:
    cslc_workload = canonical_cslc()
    beam_workload = canonical_beam_steering()

    print("1. Synthesizing jammed radar channels "
          f"({cslc_workload.n_mains} mains + {cslc_workload.n_aux} aux, "
          f"{cslc_workload.samples} samples, jammer +30 dB)...")
    channels = make_jammed_channels(
        cslc_workload.samples,
        cslc_workload.n_mains,
        cslc_workload.n_aux,
        jammer_to_signal_db=30.0,
        seed=7,
    )
    print(f"   main-channel power before cancellation: "
          f"{power_db(channels.mains[0]):6.1f} dB")

    print("2. Running the coherent side-lobe canceller "
          f"({cslc_workload.n_subbands} sub-bands x "
          f"{cslc_workload.subband_len}-pt FFTs)...")
    result = cslc_reference(channels, cslc_workload)
    for m, db in enumerate(result.cancellation_db):
        print(f"   main {m}: jammer power reduced by {db:5.1f} dB "
              f"(output power {power_db(result.outputs[m]):6.1f} dB)")

    print("3. Steering the cleaned beam "
          f"({beam_workload.elements} elements x "
          f"{beam_workload.directions} directions x "
          f"{beam_workload.dwells} dwells)...")
    tables = make_tables(beam_workload, seed=7)
    phases = beam_steering_reference(beam_workload, tables)
    print(f"   produced {phases.size:,} phase words "
          f"(sample: {phases[0, 0, :4].tolist()})")

    print("4. Corner-turning the data-cube face (1024 x 1024 words)...")
    ct = CornerTurnWorkload()
    matrix = ct.make_matrix(seed=7)
    transposed = corner_turn_reference(matrix)
    assert np.array_equal(transposed.T, matrix)
    print(f"   transposed {ct.nbytes / 2**20:.0f} MB")

    print("\n5. End-to-end dwell time on each of the paper's machines:")
    print(f"{'machine':10s}{'CSLC':>10s}{'steer':>10s}{'turn':>10s}"
          f"{'total ms':>10s}")
    totals = {}
    for machine in MACHINES:
        times = {
            kernel: run_kernel(kernel, machine).seconds * 1e3
            for kernel in ("cslc", "beam_steering", "corner_turn")
        }
        totals[machine] = sum(times.values())
        print(f"{machine:10s}{times['cslc']:>10.2f}"
              f"{times['beam_steering']:>10.2f}"
              f"{times['corner_turn']:>10.2f}{totals[machine]:>10.2f}")
    best = min(totals, key=totals.get)
    print(f"\nFastest end-to-end dwell: {best} "
          f"({totals[best]:.2f} ms) — the paper's conclusion that each "
          "architecture has its own strengths shows up here: the winner "
          "depends on the kernel mix.")


if __name__ == "__main__":
    main()
