#!/usr/bin/env python3
"""Architecture sensitivity explorer: turn the paper's knobs.

The paper repeatedly notes that some limits are *implementation* choices
rather than architectural ones — "the number of address generators is a
processor implementation choice and is not a limitation of the stream
architecture" (§4.2).  This example re-runs mappings with modified
machine configurations/calibrations and reports how the Table 3 numbers
move, then prints the paper's own §4 what-ifs from the experiment
registry.

Run:  python examples/architecture_explorer.py
"""

from repro import run_kernel
from repro.eval.experiments import run_experiment


def viram_address_generators() -> None:
    """§4.2: 24% of VIRAM's corner-turn cycles are the strided-load limit
    imposed by the four address generators.  With eight, strided loads
    would issue at the full datapath rate."""
    print("VIRAM corner turn vs address generators")
    run = run_kernel("corner_turn", "viram")
    print(f"  4 generators (shipped): {run.kilocycles:10,.0f} kcycles")
    strided = run.breakdown.get("strided loads")
    projected = run.cycles - strided / 2
    print(f"  8 generators (model):   {projected / 1e3:10,.0f} kcycles "
          "(strided loads reach the 8-word/cycle datapath)")
    print()


def imagine_controllers() -> None:
    """§4.2: Imagine's two 1-word/cycle controllers bound the corner
    turn; the memory term scales with controller count, the exposed
    kernel term does not."""
    print("Imagine corner turn vs memory controllers")
    run = run_kernel("corner_turn", "imagine")
    memory = run.breakdown.get("memory")
    other = run.cycles - memory
    print(f"  2 controllers (shipped): {run.kilocycles:10,.0f} kcycles")
    for n in (4, 8):
        projected = memory * 2 / n + other
        print(f"  {n} controllers (model):  {projected / 1e3:10,.0f} kcycles")
    print()


def raw_mesh_scaling() -> None:
    """§2.3 motivates tiled scaling; the corner turn is issue-rate bound,
    so it scales with tile count until the peripheral ports bind."""
    print("Raw corner turn vs mesh size")
    run = run_kernel("corner_turn", "raw")
    print(f"  4x4 mesh (shipped): {run.kilocycles:10,.0f} kcycles")
    words = 2 * run.metrics["blocks"] * 64 * 64
    for dim in (8, 16):
        tiles = dim * dim
        issue_bound = run.cycles * 16 / tiles
        port_bound = words / 28
        projected = max(issue_bound, port_bound)
        binding = "ports" if port_bound > issue_bound else "issue rate"
        print(f"  {dim}x{dim} mesh (model): {projected / 1e3:10,.0f} kcycles "
              f"(bound by {binding})")
    print()


def paper_what_ifs() -> None:
    print("The paper's own what-ifs (§4.2-§4.4):\n")
    for exp_id in (
        "ablation_imagine_network_port",
        "ablation_raw_streamed_fft",
        "ablation_raw_load_balance",
        "ablation_imagine_srf_tables",
        "ablation_imagine_independent_ffts",
        "ablation_imagine_fft_size",
        "ablation_viram_offchip",
    ):
        outcome = run_experiment(exp_id)
        print(f"== {outcome.title} ==")
        print(outcome.rendered)
        print()


def main() -> None:
    viram_address_generators()
    imagine_controllers()
    raw_mesh_scaling()
    paper_what_ifs()


if __name__ == "__main__":
    main()
