#!/usr/bin/env python3
"""Regenerate every table and figure of the paper and print the report.

This is the one-shot reproduction driver: it runs all fifteen Table 3
cells, derives Tables 1/2/4 and Figures 8/9, evaluates every §4
breakdown claim and what-if ablation, prints model-vs-paper ratios for
each quantitative statement, and writes figure8.svg / figure9.svg next
to this script.  EXPERIMENTS.md is a snapshot of the printed output.

Run:  python examples/reproduce_paper.py [output_dir]
"""

import sys
from pathlib import Path

from repro.eval.report import full_report
from repro.eval.svg import write_figures


def main() -> None:
    print(full_report())
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(__file__).resolve().parent / "figures"
    )
    paths = write_figures(out_dir)
    print()
    for path in paths:
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
