#!/usr/bin/env python3
"""Quickstart: run one kernel on every machine and print the comparison.

This is the smallest useful tour of the library: run the corner turn
(the paper's memory-bandwidth kernel) on all five platforms, show each
machine's cycle breakdown, and compare against the paper's Table 3.

Run:  python examples/quickstart.py [kernel]
where kernel is corner_turn (default), cslc, or beam_steering.
"""

import sys

from repro import run_kernel
from repro.eval.tables import MACHINE_TITLES, PAPER_TABLE3
from repro.mappings.registry import KERNELS, MACHINES


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "corner_turn"
    if kernel not in KERNELS:
        raise SystemExit(f"unknown kernel {kernel!r}; choose from {KERNELS}")

    print(f"Running {kernel} on all five platforms...\n")
    runs = {}
    for machine in MACHINES:
        runs[machine] = run_kernel(kernel, machine)

    print(f"{'machine':10s}{'model kcycles':>15s}{'paper kcycles':>15s}"
          f"{'ratio':>8s}{'time (ms)':>11s}{'functional':>12s}")
    for machine, run in runs.items():
        paper = PAPER_TABLE3[(kernel, machine)]
        print(
            f"{MACHINE_TITLES[machine]:10s}{run.kilocycles:>15,.0f}"
            f"{paper:>15,.0f}{run.kilocycles / paper:>8.2f}"
            f"{run.seconds * 1e3:>11.2f}"
            f"{'ok' if run.functional_ok else 'FAILED':>12s}"
        )

    print("\nPer-machine cycle breakdowns:\n")
    for machine, run in runs.items():
        print(f"--- {MACHINE_TITLES[machine]} ---")
        print(run.breakdown.format())
        print()


if __name__ == "__main__":
    main()
