"""Robustness bench: the Table 3 reproduction is not a single-knob fit.

Perturbs every calibrated constant by ±25% and measures the elasticity
of each affected Table 3 cell (relative cycle change per relative
constant change).  All elasticities must be sub-linear: each constant
prices only one mechanism inside its cell, so the headline agreement is
structural — it degrades gracefully rather than collapsing when any one
constant moves.
"""

from repro.eval.sensitivity import render, sweep


def test_robustness_sensitivity(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    worst = max(rows, key=lambda r: abs(r.elasticity))
    benchmark.extra_info["constants_swept"] = len(
        {(r.machine, r.constant) for r in rows}
    )
    benchmark.extra_info["max_elasticity"] = round(worst.elasticity, 3)
    benchmark.extra_info["max_elasticity_constant"] = (
        f"{worst.machine}.{worst.constant}"
    )
    print()
    print(render(rows))
    for r in rows:
        assert -0.01 <= r.elasticity <= 1.05, (r.machine, r.constant)
