"""Ablation bench: §3.1 — why the Raw corner-turn algorithm was designed.

"The algorithm, designed at MIT and implemented at USC/ISI, was
developed to ensure that all 16 Raw tiles are doing a load or store
during as many cycles as possible and to avoid bottlenecks in the static
networks and data ports."

With the designed placement every tile streams through its own edge
link, which exactly keeps pace with the load/store issue rate; funnel
the same traffic through one corner port and the mesh becomes 12x
network-bound — the bottleneck the algorithm exists to avoid.
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_ablation_raw_placement


def test_ablation_raw_placement(benchmark):
    outcome = benchmark.pedantic(
        exp_ablation_raw_placement, rounds=3, iterations=1
    )
    record_checks(benchmark, outcome)
    show(outcome)
    assert outcome.checks["designed_network_feasible"][0] == 1.0
    assert outcome.checks["naive_network_bottlenecks"][0] == 1.0
    ratio, _ = outcome.checks["naive_over_designed_link_load"]
    assert ratio > 4.0
