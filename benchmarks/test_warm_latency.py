"""Warm-path latency guard (``BENCH_PR9.json``).

PR 9's tentpole: a fully-cached fresh-process ``repro report`` must be
*interactive* — under 0.9s, at least 2x better than the 1.9s BENCH_PR4
measured for the same pass — without giving back the cold-path wins
(cold report stays ≤ 4.9s, BENCH_PR6's envelope).  Fresh interpreters
run four passes:

* **cold x2** — each against its own empty store: every cell simulates
  and is persisted through the packed index's ``put_many``;
* **warm x2** — the next two processes are served entirely by the
  packed index (one sequential manifest read + batched ``get_many``):
  zero misses, zero writes, byte-identical output.

Two warm passes rather than one so the guard also proves the warm path
is *stable* — the second pass re-reads a manifest the first one
already touched (atime updates, probe telemetry) and must see the same
bytes.  Timings are taken inside each child around ``full_report()``
so interpreter startup does not pollute the comparison; the separate
lazy-import tests guard startup itself.

``warm_report_seconds`` is declared in ``gated_time_metrics``: the
PR 8 regress gate *enforces* it (one-sided, +50%) instead of treating
it as cross-machine context — this file is refreshed by ``make
bench-warm`` on the measuring machine.

Run via ``make bench-warm``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from bench_utils import write_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_REPORT = REPO_ROOT / "tests" / "data" / "golden" / "report.txt"

#: Warm target (seconds) and the cold ceiling the PR must not regress.
WARM_BUDGET = 0.9
COLD_BUDGET = 4.9

_REPORT_CHILD = """
import json, sys, time
from repro.eval.report import full_report  # import outside the clock

t0 = time.perf_counter()
text = full_report()
elapsed = time.perf_counter() - t0

from repro.perf.diskcache import DISK_CACHE

with open(sys.argv[1], "w") as fh:
    json.dump({
        "seconds": elapsed,
        "disk": DISK_CACHE.stats(),
        "index": DISK_CACHE.index_stats(),
    }, fh)
sys.stdout.write(text + "\\n")
"""


def _run_child(disk_dir, result_path):
    env = dict(os.environ)
    env["REPRO_DISK_CACHE_DIR"] = str(disk_dir)
    env.pop("REPRO_DISK_CACHE", None)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.run(
        [sys.executable, "-c", _REPORT_CHILD, str(result_path)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        check=True,
        timeout=600,
    )
    return proc.stdout, json.loads(Path(result_path).read_text())


def test_warm_report_meets_interactive_budget(benchmark, tmp_path):
    disk_dir = tmp_path / "tier2"

    # Two independent cold passes (each against its own empty store) and
    # two warm passes; budgets are held against the *minimum* of each —
    # the standard least-noise latency estimate, since a shared CI box
    # can stall any single pass by hundreds of milliseconds.
    cold_stdout, cold = _run_child(disk_dir, tmp_path / "cold.json")
    _, cold2 = _run_child(tmp_path / "tier2-cold2", tmp_path / "cold2.json")
    cold_seconds = min(cold["seconds"], cold2["seconds"])
    warm1_stdout, warm1 = _run_child(disk_dir, tmp_path / "warm1.json")

    def warm_fresh_process():
        return _run_child(disk_dir, tmp_path / "warm2.json")

    warm2_stdout, warm2 = benchmark.pedantic(
        warm_fresh_process, rounds=1, iterations=1
    )

    # Byte-identity: cold, both warm passes, and the pinned golden.
    assert warm1_stdout == cold_stdout
    assert warm2_stdout == cold_stdout
    assert cold_stdout == GOLDEN_REPORT.read_text()

    # The warm passes were pure index reads: nothing simulated fresh
    # enough to miss, nothing written back, nothing corrupt.
    for warm in (warm1, warm2):
        assert warm["disk"]["misses"] == 0
        assert warm["disk"]["writes"] == 0
        assert warm["disk"]["hits"] >= 15
        assert warm["disk"]["corrupt"] == 0

    warm_seconds = min(warm1["seconds"], warm2["seconds"])
    assert warm_seconds < WARM_BUDGET, (
        f"warm fresh-process report took {warm_seconds:.2f}s "
        f"(budget {WARM_BUDGET}s); the warm path has regressed"
    )
    assert cold_seconds <= COLD_BUDGET, (
        f"cold report took {cold_seconds:.2f}s "
        f"(budget {COLD_BUDGET}s); the warm path bought latency "
        "by selling the cold path"
    )

    payload = {
        "warm_report_seconds": warm_seconds,
        "warm_repeat_seconds": max(warm1["seconds"], warm2["seconds"]),
        "cold_report_seconds": cold_seconds,
        "warm_speedup_vs_cold": cold_seconds / warm_seconds,
        "index_entries": warm2["index"]["entries"],
        "index_segments": warm2["index"]["segments"],
        "index_probe_p99_us": warm2["index"]["p99_us"],
        "warm_disk_stats": warm2["disk"],
    }
    write_bench(
        REPO_ROOT / "BENCH_PR9.json",
        payload,
        gated_time_metrics=["warm_report_seconds"],
    )
    benchmark.extra_info.update(payload)
