"""Benchmark: §4.4's beam-steering breakdown statements.

Paper anchors — VIRAM: the compute lower bound is 56% of simulated time
(the rest is dependency waits and vector initialisation); Imagine: 89%
loads/stores, 11% software-pipeline prologue; Raw: zero loads/stores
(operands streamed from the static network).
"""

from bench_utils import assert_ratio_band, record_checks, show

from repro.eval.experiments import exp_sec44


def test_sec44_beam_steering_breakdown(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_sec44, kwargs={"results": canonical_results}, rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    # The prologue share lands at ~6% vs the paper's 11% (our memory
    # term is slightly larger); give it a wider band.
    assert_ratio_band(
        outcome, 0.85, 1.15, skip=("imagine_prologue_fraction",)
    )
    model, paper = outcome.checks["imagine_prologue_fraction"]
    assert 0.3 < model / paper < 1.7
    model, paper = outcome.checks["raw_loads_stores"]
    assert model == paper == 0.0
