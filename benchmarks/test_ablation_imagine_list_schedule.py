"""Ablation bench: validate the Imagine kernel-cost model by genuinely
list-scheduling the cluster FFT microcode.

The block-level model prices a kernel body at its VLIW resource bound
times a calibrated packing inefficiency (1.15).  This bench builds the
real dataflow DAG of one cluster's share of the paper's 128-point
radix-4/radix-2 FFT and greedily schedules it on the 3 adders /
2 multipliers / 1 divider / 1 comm unit; the measured inefficiency must
bracket the calibrated constant.
"""

from bench_utils import show

from repro.arch.imagine.microcode import validate_fft_schedule
from repro.calibration import DEFAULT_CALIBRATION
from repro.kernels.fft import FFTPlan


def test_ablation_imagine_list_schedule(benchmark):
    validation = benchmark.pedantic(
        lambda: validate_fft_schedule(FFTPlan(128)), rounds=3, iterations=1
    )
    benchmark.extra_info["list_cycles"] = validation.list_cycles
    benchmark.extra_info["resource_bound"] = round(
        validation.resource_bound_cycles, 1
    )
    benchmark.extra_info["packing_inefficiency"] = round(
        validation.packing_inefficiency, 3
    )
    print()
    print(validation.summary)
    calibrated = DEFAULT_CALIBRATION.imagine.cluster_schedule_inefficiency
    assert 1.0 <= validation.packing_inefficiency < calibrated + 0.35
