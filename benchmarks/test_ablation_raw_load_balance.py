"""Ablation bench: §4.3 — Raw CSLC load imbalance.

"since the number of data sets is 73, which is not a multiple of the
number of tiles, some tiles processed five sets while others processed
four sets.  About 8% of CPU cycles are idle due to load balancing."  The
paper reports the perfect-balance extrapolation; this bench runs both
schedules and checks the idle fraction.
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_ablation_raw_load_balance


def test_ablation_raw_load_balance(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_ablation_raw_load_balance,
        kwargs={"results": canonical_results},
        rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    model, paper = outcome.checks["idle_fraction"]
    assert abs(model - paper) < 0.02
