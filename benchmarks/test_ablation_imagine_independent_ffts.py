"""Ablation bench: §4.3 — Imagine CSLC with independent per-cluster FFTs.

"Performance is reduced by 30% because inter-cluster communication is
used to perform parallel FFTs.  An alternative implementation, which was
not completed for this study, would execute independent FFTs in parallel
to eliminate inter-cluster communication overhead."

The independent variant removes the communication share of the kernel
time (the check anchors against the paper's ~30%); the total speedup is
smaller because the per-invocation prologue dominates the 128-point
kernels either way.
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_ablation_imagine_independent_ffts


def test_ablation_imagine_independent_ffts(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_ablation_imagine_independent_ffts,
        kwargs={"results": canonical_results},
        rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    removed, paper = outcome.checks["kernel_comm_share_removed"]
    assert 0.10 < removed < 0.40  # around the paper's ~30%
    speedup, _ = outcome.checks["total_speedup"]
    assert speedup > 1.0
