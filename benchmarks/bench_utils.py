"""Helpers shared by the benchmark files."""

from __future__ import annotations


def record_checks(benchmark, outcome) -> None:
    """Attach an experiment's model-vs-paper checks to the benchmark."""
    for name, (model, paper) in outcome.checks.items():
        benchmark.extra_info[name] = {
            "model": round(float(model), 4),
            "paper": round(float(paper), 4),
        }


def show(outcome) -> None:
    """Print the rendered experiment (visible with ``pytest -s``)."""
    print()
    print(outcome.rendered)


def assert_ratio_band(outcome, low: float, high: float, skip=()) -> None:
    """Assert every model/paper check ratio lies in [low, high]."""
    for name, ratio in outcome.check_ratios().items():
        if name in skip:
            continue
        assert low < ratio < high, f"{name}: ratio {ratio:.2f}"
