"""Helpers shared by the benchmark files."""

from __future__ import annotations

import os
from pathlib import Path


def write_bench(path, payload, gated_time_metrics=None) -> Path:
    """Write a ``BENCH_*.json`` guard in the versioned envelope.

    Wraps :func:`repro.obs.bench.write_bench_document`: the payload
    lands under ``metrics`` with ``schema_version``, per-metric
    ``units``, and the git sha (``REPRO_GIT_SHA``, set by CI) alongside.
    The regression gate reads these and the legacy flat files alike.
    ``gated_time_metrics`` names the time metrics the regress gate
    should *enforce* (not just report) against this file — only use it
    for numbers refreshed on the measuring machine.
    """
    from repro.obs.bench import write_bench_document

    return write_bench_document(
        Path(path),
        payload,
        git_sha=os.environ.get("REPRO_GIT_SHA") or None,
        gated_time_metrics=gated_time_metrics,
    )


def record_checks(benchmark, outcome) -> None:
    """Attach an experiment's model-vs-paper checks to the benchmark."""
    for name, (model, paper) in outcome.checks.items():
        benchmark.extra_info[name] = {
            "model": round(float(model), 4),
            "paper": round(float(paper), 4),
        }


def show(outcome) -> None:
    """Print the rendered experiment (visible with ``pytest -s``)."""
    print()
    print(outcome.rendered)


def assert_ratio_band(outcome, low: float, high: float, skip=()) -> None:
    """Assert every model/paper check ratio lies in [low, high]."""
    for name, ratio in outcome.check_ratios().items():
        if name in skip:
            continue
        assert low < ratio < high, f"{name}: ratio {ratio:.2f}"
