"""Helpers shared by the benchmark files."""

from __future__ import annotations

import os
from pathlib import Path


def write_bench(path, payload) -> Path:
    """Write a ``BENCH_*.json`` guard in the versioned envelope.

    Wraps :func:`repro.obs.bench.write_bench_document`: the payload
    lands under ``metrics`` with ``schema_version``, per-metric
    ``units``, and the git sha (``REPRO_GIT_SHA``, set by CI) alongside.
    The regression gate reads these and the legacy flat files alike.
    """
    from repro.obs.bench import write_bench_document

    return write_bench_document(
        Path(path), payload, git_sha=os.environ.get("REPRO_GIT_SHA") or None
    )


def record_checks(benchmark, outcome) -> None:
    """Attach an experiment's model-vs-paper checks to the benchmark."""
    for name, (model, paper) in outcome.checks.items():
        benchmark.extra_info[name] = {
            "model": round(float(model), 4),
            "paper": round(float(paper), 4),
        }


def show(outcome) -> None:
    """Print the rendered experiment (visible with ``pytest -s``)."""
    print()
    print(outcome.rendered)


def assert_ratio_band(outcome, low: float, high: float, skip=()) -> None:
    """Assert every model/paper check ratio lies in [low, high]."""
    for name, ratio in outcome.check_ratios().items():
        if name in skip:
            continue
        assert low < ratio < high, f"{name}: ratio {ratio:.2f}"
