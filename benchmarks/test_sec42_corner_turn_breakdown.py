"""Benchmark: §4.2's corner-turn breakdown statements.

Paper anchors — VIRAM: ~21% DRAM precharge + TLB overhead, ~24%
strided-load (address-generator) penalty; Imagine: 87% memory transfers,
13% unoverlapped kernel; Raw: 16 instructions/cycle, issue-rate bound.
"""

from bench_utils import assert_ratio_band, record_checks, show

from repro.eval.experiments import exp_sec42


def test_sec42_corner_turn_breakdown(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_sec42, kwargs={"results": canonical_results}, rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    assert_ratio_band(outcome, 0.70, 1.30)
