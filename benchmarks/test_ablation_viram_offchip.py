"""Ablation bench: §4.6 — the corner turn beyond VIRAM's on-chip DRAM.

"For embedded applications with reasonably sized data sets, the VIRAM
can be used as a one-chip system.  If the application size is larger
than the on-chip DRAM, the data needs to come from off-chip memory and
VIRAM would lose much of its advantage."

Sweeps the corner-turn matrix across the 13 MB boundary: VIRAM's
per-word cost roughly doubles at the 2-word/cycle DMA interface and its
standing relative to Raw worsens accordingly.
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_ablation_viram_offchip


def test_ablation_viram_offchip(benchmark):
    outcome = benchmark.pedantic(
        exp_ablation_viram_offchip, rounds=1, iterations=1
    )
    record_checks(benchmark, outcome)
    show(outcome)
    model, anchor = outcome.checks["offchip_penalty"]
    assert 1.5 < model < 2.5
    ratio, _ = outcome.checks["advantage_lost"]
    assert ratio > 1.3  # the advantage really shrinks
