"""Benchmark: §4.5's AltiVec gains over scalar PPC.

Paper anchors: "a performance factor of about six for the CSLC and about
two for beam steering and does not significantly improve performance for
the corner turn" (Table 3's corner-turn rows imply ~1.17x).
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_sec45


def test_sec45_altivec_gain(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_sec45, kwargs={"results": canonical_results}, rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    assert 4.5 < outcome.data["cslc"] < 7.5
    assert 1.5 < outcome.data["beam_steering"] < 2.5
    assert 1.0 < outcome.data["corner_turn"] < 1.6
