"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the
canonical workload sizes.  The full Table 3 sweep (all fifteen kernel x
machine runs) is computed once per session and shared; each benchmark
then times its own experiment and records model-vs-paper values in
``benchmark.extra_info`` so they appear in the benchmark report.

Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
rendered tables.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.eval.tables import run_table3


@pytest.fixture(scope="session", autouse=True)
def isolated_disk_cache(tmp_path_factory):
    """Point the persistent run-cache tier at a per-session directory so
    benchmark timings never depend on entries a previous run left in the
    user's real cache (and never pollute it)."""
    from repro.perf.diskcache import DISK_CACHE

    previous = os.environ.get("REPRO_DISK_CACHE_DIR")
    os.environ["REPRO_DISK_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("diskcache")
    )
    DISK_CACHE.clear()
    yield
    if previous is None:
        os.environ.pop("REPRO_DISK_CACHE_DIR", None)
    else:
        os.environ["REPRO_DISK_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def canonical_results():
    """The fifteen canonical Table 3 runs, shared across benchmarks."""
    return run_table3()
