"""Validation bench: the block-level machine models against their
fine-grained executors.

Each research machine's block-level cost model is cross-checked by a
finer mechanism-level executor over the paper's 128-point FFT:

* Imagine — the cluster-parallel butterfly dataflow DAG, greedily
  list-scheduled on 3 adders / 2 multipliers / 1 divider / 1 comm unit,
  versus the resource-bound + packing-inefficiency model.
* Raw — the per-tile single-issue pipeline with load-use and branch
  bubbles over the memory-to-memory radix-2 butterfly stream, versus
  instructions + the calibrated stall fraction.
* VIRAM — the hand-vectorised instruction stream (shuffles on VFU1
  feeding chained FP on VFU0, dead time only on true dependencies),
  versus the composite compute + shuffle + startup accounting.

The bench reports each ratio; all three must bracket 1.0 within the
documented bands, showing the Table 3 numbers rest on mechanisms, not
fitted totals.
"""

from repro.arch.imagine.microcode import validate_fft_schedule
from repro.arch.raw.machine import RawMachine
from repro.arch.raw.tile import execute_program, fft_program
from repro.arch.viram.isa import fft_stream, schedule_stream
from repro.arch.viram.machine import ViramMachine
from repro.kernels.fft import FFTPlan, radix2_radices


def _validate_all():
    results = {}

    imagine = validate_fft_schedule(FFTPlan(128))
    results["imagine_list_over_bound"] = imagine.packing_inefficiency

    raw_machine = RawMachine()
    plan_r2 = FFTPlan(128, radix2_radices(128))
    program = fft_program(plan_r2, transforms=6)
    executed = execute_program(program)
    block_busy = raw_machine.tile_cycles(program.total_instructions)
    block = block_busy + raw_machine.cache_stall_cycles(block_busy)
    results["raw_executor_over_block"] = executed.cycles / block

    viram_machine = ViramMachine()
    plan_r4 = FFTPlan(128)
    sched = schedule_stream(
        fft_stream(plan_r4, batch=64, machine=viram_machine), viram_machine
    )
    flops = plan_r4.flops() * 64
    permutes = plan_r4.shuffle_census().permutes * 64
    composite = (
        viram_machine.fp_issue_cycles(flops)
        + viram_machine.vfu_cycles(permutes)
        * viram_machine.cal.shuffle_exposed_fraction
        + viram_machine.dead_time(
            viram_machine.instruction_count(flops + permutes)
        )
    )
    results["viram_schedule_over_composite"] = sched.makespan / composite
    return results


def test_validation_fine_grained_models(benchmark):
    results = benchmark.pedantic(_validate_all, rounds=1, iterations=1)
    for name, value in results.items():
        benchmark.extra_info[name] = round(value, 3)
    print()
    for name, value in results.items():
        print(f"  {name}: {value:.3f}")
    assert 1.0 <= results["imagine_list_over_bound"] < 1.5
    assert 0.85 < results["raw_executor_over_block"] < 1.15
    assert 0.55 < results["viram_schedule_over_composite"] <= 1.0
