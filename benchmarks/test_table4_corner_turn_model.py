"""Benchmark: regenerate Table 4 — the §2.5 corner-turn performance model.

The §2.5 model predicts corner-turn lower bounds from peak rates (VIRAM
2M words at 8/cycle on-chip; Imagine 2M at 2/cycle off-chip; Raw bound by
the 16-load-store/cycle issue rate, not its ports).  The bench verifies
the bounds really lower-bound the modelled execution and that Raw runs
closest to its bound (§4.2: "nearly identical to the maximum performance
predicted by the instruction issue rate").
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_table4
from repro.mappings.registry import MACHINES


def test_table4_corner_turn_model(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_table4, kwargs={"results": canonical_results}, rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    for machine in MACHINES:
        row = outcome.data[machine]
        assert row["achieved_cycles"] >= 0.999 * row["bound_cycles"], machine
    # Raw sits closest to its bound; VIRAM within ~2.2x of its.
    gaps = {
        m: outcome.data[m]["achieved_cycles"] / outcome.data[m]["bound_cycles"]
        for m in ("viram", "imagine", "raw")
    }
    assert gaps["raw"] == min(gaps.values())
    assert gaps["raw"] < 1.15
    assert gaps["viram"] < 2.5
