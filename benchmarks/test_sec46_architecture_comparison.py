"""Benchmark: §4.6's architecture-comparison conclusions.

"The results show that all three of these architectures have strengths":
VIRAM beats the G4 AltiVec by more than 10x on all three kernels,
Imagine wins the CSLC, Raw wins the corner turn and beam steering.  The
geometric-mean speedups over AltiVec (the aggregation style §2.1 quotes
for VIRAM's EEMBC result) summarise each machine.
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_sec46


def test_sec46_architecture_comparison(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_sec46, kwargs={"results": canonical_results}, rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    viram_min, bar = outcome.checks["viram_min_speedup_over_altivec"]
    assert viram_min > bar  # §4.6: "more than a factor of 10"
    for name in (
        "imagine_wins_cslc",
        "raw_wins_corner_turn",
        "raw_wins_beam_steering",
    ):
        model, paper = outcome.checks[name]
        assert model == paper == 1.0, name
