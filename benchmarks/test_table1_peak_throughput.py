"""Benchmark: regenerate Table 1 (peak 32-bit words/cycle).

Paper values — VIRAM: on-chip 8, off-chip 2, computation 8; Imagine:
SRF 16, off-chip 2, computation 48; Raw: cache 16, off-chip 28,
computation 16.  The table is derived from the machine configs, so this
bench asserts exact agreement.
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_table1


def test_table1_peak_throughput(benchmark):
    outcome = benchmark.pedantic(exp_table1, rounds=3, iterations=1)
    record_checks(benchmark, outcome)
    show(outcome)
    for name, (model, paper) in outcome.checks.items():
        assert model == paper, name
