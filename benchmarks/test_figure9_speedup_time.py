"""Benchmark: regenerate Figure 9 — speedup vs PPC+AltiVec in wall time.

Same data as Figure 8 converted to execution time at each machine's
clock ("PPC=1 GHz, VIRAM=200 MHz, Imagine=300 MHz, and Raw=300 MHz"), so
the research chips' speedups shrink by their clock ratios: VIRAM by 5x,
Imagine and Raw by 10/3.  Acceptance as Figure 8 (within 2x, log-scale
shape), plus the structural relation figure9 = figure8 x clock ratio.
"""

import pytest
from bench_utils import record_checks, show

from repro.eval.experiments import exp_figure8, exp_figure9
from repro.mappings.registry import KERNELS


def test_figure9_speedup_time(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_figure9, kwargs={"results": canonical_results}, rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    for name, ratio in outcome.check_ratios().items():
        assert 0.5 < ratio < 2.0, f"{name}: {ratio:.2f}"

    fig8 = exp_figure8(results=canonical_results)
    clocks = {"ppc": 1e9, "altivec": 1e9, "viram": 2e8, "imagine": 3e8, "raw": 3e8}
    for kernel in KERNELS:
        for machine, time_speedup in outcome.data[kernel].items():
            expected = fig8.data[kernel][machine] * clocks[machine] / 1e9
            assert time_speedup == pytest.approx(expected, rel=1e-9)
