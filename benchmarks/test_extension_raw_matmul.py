"""Extension bench: §2.3's cited Raw kernel results on matrix multiply.

"Raw obtains speedup of up to 12 relative to single-tile performance on
ILP benchmarks.  Speedups greater than 16 can be achieved on streaming
benchmarks when compared to a single-issue load/store RISC architecture
because of a tile's ability to operate on data directly from the
networks."

Dense matmul sits at the favourable end of the cited ILP band (our MIMD
mode lands mid-teens); the streaming mode's >16x comes from eliminating
the per-MAC load — exactly the cited mechanism.
"""

from repro.kernels.matmul import MatmulWorkload
from repro.mappings.raw_matmul import speedup_vs_single_tile


def test_extension_raw_matmul(benchmark):
    result = benchmark.pedantic(
        lambda: speedup_vs_single_tile(MatmulWorkload(64, 64, 64)),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["mimd_speedup"] = round(result["mimd_speedup"], 2)
    benchmark.extra_info["stream_speedup"] = round(
        result["stream_speedup"], 2
    )
    print()
    print(
        f"single tile: {result['single_cycles']:,.0f} cycles; "
        f"MIMD x{result['mimd_speedup']:.1f}; "
        f"streamed x{result['stream_speedup']:.1f} "
        "(paper cites: up to 12 on ILP, >16 streaming)"
    )
    assert 10.0 < result["mimd_speedup"] < 18.0
    assert result["stream_speedup"] > 16.0
