"""Ablation bench: §4.3 — Raw CSLC with a network-streamed FFT.

"If FFT is implemented using the stream interface that uses [the] static
network, it hides the cache miss stalls, and load and store operations
are not needed.  A primitive implementation result suggests about 70% of
FFT performance improvement."
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_ablation_raw_streamed_fft


def test_ablation_raw_streamed_fft(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_ablation_raw_streamed_fft,
        kwargs={"results": canonical_results},
        rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    model, paper = outcome.checks["fft_improvement"]
    assert abs(model - paper) < 0.20
