"""Ablation bench: §4.2 — Imagine corner turn through the network port.

"If [the] network port were used to transfer data between SRF and an
external memory connected to [the] network port for corner turn, the
performance would be the same since the network port has peak
performance of two words per cycle."
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_ablation_imagine_network_port


def test_ablation_imagine_network_port(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_ablation_imagine_network_port,
        kwargs={"results": canonical_results},
        rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    model, paper = outcome.checks["port_over_base"]
    assert abs(model - paper) < 0.02  # "the same"
