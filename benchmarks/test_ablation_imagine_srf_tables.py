"""Ablation bench: §4.4 — Imagine beam steering with tables in the SRF.

"If table values were read from the stream register file rather than
memory on our kernel, performance would be increased by a factor of
about two."
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_ablation_imagine_srf_tables


def test_ablation_imagine_srf_tables(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_ablation_imagine_srf_tables,
        kwargs={"results": canonical_results},
        rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    model, paper = outcome.checks["srf_speedup"]
    assert 1.5 < model < 3.5
