"""Ablation bench: §4.3 — Imagine FFT ALU utilization versus size.

"Note that the utilization for the 128-point FFT is a little lower than
the more than 40% obtained in other processing intensive applications
...  The reason for the relatively low utilization is that the small
size of the FFT reduces the amount of software pipelining and increases
start-up overheads."

The same kernel model, swept over transform sizes, must show utilization
rising monotonically and crossing 40% at the kilopoint scales of the
media kernels the paper compares against.
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_ablation_imagine_fft_size


def test_ablation_imagine_fft_size(benchmark):
    outcome = benchmark.pedantic(
        exp_ablation_imagine_fft_size, rounds=3, iterations=1
    )
    record_checks(benchmark, outcome)
    show(outcome)
    sizes = sorted(outcome.data)
    utils = [outcome.data[n] for n in sizes]
    assert all(a < b for a, b in zip(utils, utils[1:]))  # monotone
    assert outcome.data[128] < 0.40  # the paper's "a little lower"
    assert max(utils) > 0.40  # the ">40%" regime is reachable
