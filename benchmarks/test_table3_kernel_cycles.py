"""Benchmark: regenerate Table 3 — the paper's headline result.

Runs all fifteen kernel x machine cells at canonical workload sizes
(corner turn 1024x1024; CSLC 4 channels x 8 K samples, 73 x 128-point
sub-bands; beam steering 1608 elements x 4 directions x 4 dwells) and
compares modelled kilocycles against the published Table 3.

Acceptance: every cell within 1.5x of the paper, ordering preserved per
kernel (the stricter per-cell ratios are recorded in extra_info and in
EXPERIMENTS.md — at the default calibration all fifteen land within
+/-12%).
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_table3
from repro.eval.tables import PAPER_TABLE3
from repro.mappings.registry import KERNELS, MACHINES


def test_table3_kernel_cycles(benchmark):
    outcome = benchmark.pedantic(exp_table3, rounds=1, iterations=1)
    record_checks(benchmark, outcome)
    show(outcome)
    for kernel in KERNELS:
        for machine in MACHINES:
            model = outcome.data[(kernel, machine)]
            paper = PAPER_TABLE3[(kernel, machine)]
            ratio = model / paper
            assert 1 / 1.5 < ratio < 1.5, (kernel, machine, ratio)
        model_order = sorted(
            MACHINES, key=lambda m: outcome.data[(kernel, m)]
        )
        paper_order = sorted(
            MACHINES, key=lambda m: PAPER_TABLE3[(kernel, m)]
        )
        assert model_order == paper_order, kernel
