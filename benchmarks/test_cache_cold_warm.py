"""Cold-vs-warm guard for the two-tier run cache (``BENCH_PR4.json``).

Three measurements of full-report generation:

* **cold** — fresh interpreter, both tiers empty: every cell simulates;
* **warm, same process** — an immediate second report in that
  interpreter, answered by the in-memory tier;
* **warm, new process** — another fresh interpreter sharing only the
  *disk* directory, so the persistence boundary itself (file reads,
  digest checks, unpickling) is what gets timed.

The tiers' contract is wall-clock only: all three passes must emit
byte-identical report text (also pinned against the golden fixture),
and the fresh-process warm pass must be at least 3x faster than cold.
Timings are taken *inside* each child around ``full_report()`` so
interpreter startup does not dilute the ratio.

Run via ``make bench-cache``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from bench_utils import write_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_REPORT = REPO_ROOT / "tests" / "data" / "golden" / "report.txt"

#: Child A: cold report, then an immediate same-process (memory-tier)
#: repeat.  Prints the first report; writes timings + stats as JSON.
_COLD_THEN_WARM = """
import json, sys, time
from repro.eval.report import full_report  # import outside the clock

t0 = time.perf_counter()
first = full_report()
cold = time.perf_counter() - t0

t0 = time.perf_counter()
second = full_report()
warm_same = time.perf_counter() - t0

from repro.perf.cache import RUN_CACHE
from repro.perf.diskcache import DISK_CACHE

with open(sys.argv[1], "w") as fh:
    json.dump({
        "cold_seconds": cold,
        "warm_same_process_seconds": warm_same,
        "repeat_identical": first == second,
        "run_cache": RUN_CACHE.stats(),
        "disk": DISK_CACHE.stats(),
    }, fh)
sys.stdout.write(first + "\\n")
"""

#: Child B: one report in a fresh interpreter whose only head start is
#: the shared disk directory.
_WARM_NEW_PROCESS = """
import json, sys, time
from repro.eval.report import full_report

t0 = time.perf_counter()
text = full_report()
elapsed = time.perf_counter() - t0

from repro.perf.diskcache import DISK_CACHE

with open(sys.argv[1], "w") as fh:
    json.dump({"seconds": elapsed, "disk": DISK_CACHE.stats()}, fh)
sys.stdout.write(text + "\\n")
"""


def _run_child(code, disk_dir, result_path):
    env = dict(os.environ)
    env["REPRO_DISK_CACHE_DIR"] = str(disk_dir)
    env.pop("REPRO_DISK_CACHE", None)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.run(
        [sys.executable, "-c", code, str(result_path)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        check=True,
        timeout=600,
    )
    return proc.stdout, json.loads(Path(result_path).read_text())


def test_disk_tier_cold_vs_warm_report(benchmark, tmp_path):
    disk_dir = tmp_path / "tier2"

    t0 = time.perf_counter()
    cold_stdout, cold = _run_child(
        _COLD_THEN_WARM, disk_dir, tmp_path / "cold.json"
    )
    cold_wall = time.perf_counter() - t0

    def warm_fresh_process():
        return _run_child(
            _WARM_NEW_PROCESS, disk_dir, tmp_path / "warm.json"
        )

    warm_stdout, warm = benchmark.pedantic(
        warm_fresh_process, rounds=1, iterations=1
    )

    # Determinism: all passes byte-identical, and pinned to the fixture.
    assert cold["repeat_identical"], "same-process repeat drifted"
    assert warm_stdout == cold_stdout
    assert cold_stdout == GOLDEN_REPORT.read_text()

    # The cold pass simulated and persisted; the fresh process was
    # served across the process boundary by the disk tier.
    assert cold["disk"]["writes"] >= 15
    assert warm["disk"]["hits"] >= 15
    assert warm["disk"]["corrupt"] == 0

    speedup = cold["cold_seconds"] / warm["seconds"]
    assert speedup >= 3.0, (
        f"fresh-process warm report only {speedup:.1f}x faster than cold "
        f"(cold {cold['cold_seconds']:.2f}s, warm {warm['seconds']:.2f}s); "
        "the disk tier has regressed"
    )

    payload = {
        "cold_report_seconds": cold["cold_seconds"],
        "warm_same_process_seconds": cold["warm_same_process_seconds"],
        "warm_new_process_seconds": warm["seconds"],
        "disk_tier_speedup": speedup,
        "memory_tier_speedup": cold["cold_seconds"]
        / cold["warm_same_process_seconds"],
        "cold_wall_seconds_incl_startup": cold_wall,
        "cold_disk_stats": cold["disk"],
        "warm_disk_stats": warm["disk"],
    }
    write_bench(REPO_ROOT / "BENCH_PR4.json", payload)
    benchmark.extra_info.update(payload)
