"""Benchmark: regenerate Table 2 (processor parameters).

Paper values — PPC G4: 1000 MHz, 4 ALUs, 5 GFLOPS; VIRAM: 200 MHz, 16
ALUs, 3.2 GFLOPS; Imagine: 300 MHz, 48 ALUs, 14.4 GFLOPS; Raw: 300 MHz,
16 ALUs, 4.64 GFLOPS.  Configured constants; exact agreement asserted.
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_table2


def test_table2_processor_parameters(benchmark):
    outcome = benchmark.pedantic(exp_table2, rounds=3, iterations=1)
    record_checks(benchmark, outcome)
    show(outcome)
    for name, (model, paper) in outcome.checks.items():
        assert model == paper, name
