"""Benchmark: §4.3's CSLC breakdown statements.

Paper anchors — VIRAM: ~3.6x the peak-rate prediction (1.67 shuffle
overhead x 1.52 FP-unit restriction x 1.41 memory/startup); Imagine:
~10 useful ops/cycle, 25.5% FFT ALU utilization, ~30% inter-cluster
communication penalty; Raw: ~31.4% of peak (radix-4 basis), ~26%
load/store cycles, <10% cache stalls, ~8% load-imbalance idle.

The utilization split between kernel time and startup differs from the
paper's accounting (see EXPERIMENTS.md), so the FFT-utilization check
gets a wider band.
"""

from bench_utils import assert_ratio_band, record_checks, show

from repro.eval.experiments import exp_sec43


def test_sec43_cslc_breakdown(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_sec43, kwargs={"results": canonical_results}, rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    assert_ratio_band(
        outcome,
        0.55,
        1.45,
        skip=("imagine_fft_alu_utilization",),
    )
    model, paper = outcome.checks["imagine_fft_alu_utilization"]
    assert 0.3 < model / paper < 1.5
