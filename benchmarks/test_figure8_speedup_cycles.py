"""Benchmark: regenerate Figure 8 — speedup vs PPC+AltiVec in cycles.

The paper plots, on a log axis, each platform's Table 3 cycle count
relative to the AltiVec row.  Key published ratios (derived from Table
3): corner turn — VIRAM ~53x, Imagine ~20x, Raw ~201x; CSLC — VIRAM
~11.6x, Imagine ~25x, Raw ~13.8x; beam steering — VIRAM ~10.4x, Imagine
~4.2x, Raw ~19.2x.  Acceptance: every modelled speedup within 2x of the
published ratio (log-scale shape) and the per-kernel winner unchanged.
"""

from bench_utils import record_checks, show

from repro.eval.experiments import exp_figure8
from repro.mappings.registry import KERNELS


RESEARCH = ("viram", "imagine", "raw")


def test_figure8_speedup_cycles(benchmark, canonical_results):
    outcome = benchmark.pedantic(
        exp_figure8, kwargs={"results": canonical_results}, rounds=1,
        iterations=1,
    )
    record_checks(benchmark, outcome)
    show(outcome)
    for name, ratio in outcome.check_ratios().items():
        assert 0.5 < ratio < 2.0, f"{name}: {ratio:.2f}"
    for kernel in KERNELS:
        model = outcome.data[kernel]
        assert all(model[m] > 1.0 for m in RESEARCH), kernel
