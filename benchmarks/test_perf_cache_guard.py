"""Perf-regression guard for the run cache and the vectorized hot paths.

Times the canonical Table 3 sweep cold (empty cache) and warm (every
cell cached) and asserts the warm pass is at least 10x faster — the
memoization contract with margin to spare.  Also measures one full
``report`` generation and writes ``BENCH_PR1.json`` at the repo root so
wall-times are tracked alongside the model-accuracy benchmarks.
"""

import time
from pathlib import Path

from bench_utils import write_bench
from repro.eval.report import full_report
from repro.eval.tables import run_table3
from repro.perf.cache import RUN_CACHE
from repro.perf.diskcache import DISK_CACHE

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_cached_table3_at_least_10x_faster(benchmark):
    RUN_CACHE.clear()
    DISK_CACHE.clear()  # the cold leg must simulate, not read tier 2

    t0 = time.perf_counter()
    cold_results = run_table3()
    cold = time.perf_counter() - t0

    def warm_pass():
        return run_table3()

    warm_results = benchmark.pedantic(warm_pass, rounds=3, iterations=1)
    warm = benchmark.stats.stats.mean

    assert repr(warm_results) == repr(cold_results)
    assert RUN_CACHE.hits >= 15
    speedup = cold / warm
    assert speedup >= 10.0, (
        f"cached sweep only {speedup:.1f}x faster (cold {cold:.3f}s, "
        f"warm {warm:.4f}s); the run cache has regressed"
    )

    t0 = time.perf_counter()
    report_text = full_report()
    report_seconds = time.perf_counter() - t0

    payload = {
        "table3_cold_seconds": cold,
        "table3_warm_seconds": warm,
        "cache_speedup": speedup,
        "report_seconds": report_seconds,
        "report_lines": report_text.count("\n") + 1,
        "run_cache": RUN_CACHE.stats(),
    }
    write_bench(REPO_ROOT / "BENCH_PR1.json", payload)
    benchmark.extra_info.update(payload)
