"""Tensor-engine guard (``BENCH_PR6.json``): cold report + dense sweep.

Two measurements of the tensorized sweep engine
(:mod:`repro.perf.tensorsweep`):

* **cold report** — fresh interpreter, both cache tiers empty: the
  whole ``full_report()`` pipeline, now with structure passes shared
  and evaluations batched, must land under 5 seconds (it took 9.2s at
  the PR 4 baseline — ``BENCH_PR4.json``'s ``cold_report_seconds``).
* **dense-grid speedup** — a 25-point sensitivity sweep (~1500 unique
  cells) evaluated twice from cold: once through the tensor engine,
  once with the batch registry emptied so every cell runs the scalar
  path.  The batched leg must be at least 3x faster *and* produce
  row-for-row identical elasticities — the speedup is only admissible
  because the results are bitwise the same.

The disk tier is off for the speedup legs (both would pay identical
persistence costs, diluting the engine comparison into an I/O
benchmark); the cold-report child keeps it on, matching the PR 4
methodology.

Run via ``make bench-tensor``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.eval import sensitivity
from bench_utils import write_bench
from repro.mappings import registry
from repro.perf.cache import RUN_CACHE
from repro.perf.diskcache import DISK_CACHE
from repro.perf.tensorsweep import TENSOR_STATS

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN_REPORT = REPO_ROOT / "tests" / "data" / "golden" / "report.txt"

#: Grid density for the speedup legs: 25 magnitudes per constant side
#: puts ~1500 unique cells in the plan (the ISSUE floor is 1000).
POINTS = 25

#: Cold-report child: time ``full_report()`` inside a fresh interpreter
#: with empty tiers (startup excluded, exactly as BENCH_PR4 measures).
_COLD_REPORT = """
import json, sys, time
from repro.eval.report import full_report  # import outside the clock

t0 = time.perf_counter()
text = full_report()
cold = time.perf_counter() - t0

from repro.perf.tensorsweep import TENSOR_STATS

with open(sys.argv[1], "w") as fh:
    json.dump({"seconds": cold, "tensor": TENSOR_STATS.stats()}, fh)
sys.stdout.write(text + "\\n")
"""


def _run_child(code, disk_dir, result_path):
    env = dict(os.environ)
    env["REPRO_DISK_CACHE_DIR"] = str(disk_dir)
    env.pop("REPRO_DISK_CACHE", None)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.run(
        [sys.executable, "-c", code, str(result_path)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        check=True,
        timeout=600,
    )
    return proc.stdout, json.loads(Path(result_path).read_text())


def _timed_sweep():
    RUN_CACHE.clear()
    TENSOR_STATS.reset()
    t0 = time.perf_counter()
    rows = sensitivity.sweep(points=POINTS)
    return time.perf_counter() - t0, rows, TENSOR_STATS.stats()


def test_tensor_engine_cold_report_and_dense_sweep(benchmark, tmp_path):
    # Leg 1: the batched dense sweep (serial, memory tier only).
    DISK_CACHE.disable()
    try:
        batched_seconds, batched_rows, batched_stats = benchmark.pedantic(
            _timed_sweep, rounds=1, iterations=1
        )[0:3]

        # The grid really was dense and really was batched.
        assert batched_stats["batched_cells"] >= 1000, batched_stats
        assert batched_stats["batches"] >= 1
        assert batched_stats["tracer_fallbacks"] == 0

        # Leg 2: the same grid with every batch entry point removed —
        # each cell pays a full scalar run, as it did before this PR.
        saved = dict(registry._BATCH_REGISTRY)
        registry._BATCH_REGISTRY.clear()
        try:
            single_seconds, single_rows, single_stats = _timed_sweep()
        finally:
            registry._BATCH_REGISTRY.update(saved)
        assert single_stats["batched_cells"] == 0
        assert single_stats["fallback_cells"] >= 1000
    finally:
        DISK_CACHE.enable()

    # Equivalence before speed: every row (cell, constant, magnitude,
    # and all three measured cycle counts) identical between legs.
    assert batched_rows == single_rows, "batched sweep diverged from scalar"

    speedup = single_seconds / batched_seconds
    assert speedup >= 3.0, (
        f"dense sweep only {speedup:.1f}x faster batched "
        f"(batched {batched_seconds:.2f}s, per-cell {single_seconds:.2f}s)"
    )

    # Leg 3: cold full_report in a fresh interpreter, empty tiers.
    cold_stdout, cold = _run_child(
        _COLD_REPORT, tmp_path / "tier2", tmp_path / "cold.json"
    )
    assert cold_stdout == GOLDEN_REPORT.read_text(), (
        "tensor-engine report drifted from the golden fixture"
    )
    assert cold["seconds"] < 5.0, (
        f"cold full_report took {cold['seconds']:.2f}s (target < 5s; "
        "PR 4 baseline was 9.2s)"
    )

    payload = {
        "cold_report_seconds": cold["seconds"],
        "cold_report_tensor_stats": cold["tensor"],
        "dense_grid_points": POINTS,
        "dense_grid_cells": batched_stats["batched_cells"]
        + batched_stats["fallback_cells"],
        "dense_grid_batches": batched_stats["batches"],
        "batched_sweep_seconds": batched_seconds,
        "per_cell_sweep_seconds": single_seconds,
        "batch_speedup": speedup,
        "rows_identical": batched_rows == single_rows,
    }
    write_bench(REPO_ROOT / "BENCH_PR6.json", payload)
    benchmark.extra_info.update(payload)
