"""§2.5 performance models: per-kernel lower-bound execution times.

"In this section, simple performance models used to estimate the upper
bound of the performance of the kernels on each architecture are
described.  We model computation and memory bandwidth.  Memory latency is
not modeled since these architectures can generally hide memory latency
on the kernels used in this study."

The bound for a kernel on a machine is the larger of its compute time at
the Table 1 computation rate and its memory time at the relevant word
rate.  Table 4 applies this to the corner turn; the same function also
produces the peak-rate predictions behind §4.3's "3.6 times longer than
what is predicted by peak performance" (VIRAM CSLC) and §4.4's "lower
bound of the computation time is 56%" (VIRAM beam steering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.kernels.beam_steering import BeamSteeringWorkload
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.kernels.cslc import CSLCWorkload
from repro.kernels.fft import FFTPlan, radix2_radices
from repro.kernels.workloads import (
    canonical_beam_steering,
    canonical_corner_turn,
    canonical_cslc,
)
from repro.models.throughput import peak_throughput_table


@dataclass(frozen=True)
class KernelBound:
    """A §2.5 lower bound on kernel cycles for one machine."""

    kernel: str
    machine: str
    compute_cycles: float
    memory_cycles: float

    @property
    def bound_cycles(self) -> float:
        """The binding constraint (max of compute and memory)."""
        return max(self.compute_cycles, self.memory_cycles)

    @property
    def binding(self) -> str:
        return "compute" if self.compute_cycles >= self.memory_cycles else "memory"


def _rates(machine: str) -> Dict[str, float]:
    for row in peak_throughput_table():
        if row.machine == machine:
            return {
                "onchip": row.onchip_words_per_cycle,
                "offchip": row.offchip_words_per_cycle,
                "computation": row.computation_words_per_cycle,
            }
    # The PPC baseline is not in Table 1; give it its AltiVec compute
    # peak and a one-word-per-cycle bus for the model's purposes.
    if machine in ("ppc", "altivec"):
        return {"onchip": 8.0, "offchip": 1.0, "computation": 8.0}
    raise ConfigError(f"unknown machine {machine!r}")


def machine_word_rates(machine: str) -> Dict[str, float]:
    """The machine's Table 1 word rates (``onchip``/``offchip``/
    ``computation`` words per cycle), with the PPC baseline's modelled
    values filled in.  The public face of :func:`_rates` — the roofline
    attribution (:mod:`repro.obs.roofline`) derives its memory roofs
    from the same rates the §2.5 bounds use."""
    return dict(_rates(machine))


def corner_turn_bound(
    machine: str, workload: Optional[CornerTurnWorkload] = None
) -> KernelBound:
    """Table 4's expected corner-turn execution for ``machine``.

    The corner turn moves every word once in and once out.  VIRAM's
    nearest DRAM is on-chip; Imagine and Raw stress the off-chip
    interface (§4.2) — except that on Raw the per-tile load/store issue
    rate (the on-chip rate) is the binding limit, exactly as §4.2 found.
    """
    workload = workload or canonical_corner_turn()
    rates = _rates(machine)
    words = 2.0 * workload.words
    if machine == "viram":
        memory = words / rates["onchip"]
    elif machine in ("imagine",):
        memory = words / rates["offchip"]
    elif machine == "raw":
        memory = max(words / rates["offchip"], words / rates["onchip"])
    else:
        memory = words / rates["offchip"]
    # The corner turn computes nothing; the load/store issue rate is the
    # compute-side constraint on load/store machines.
    compute = words / rates["computation"] if machine == "raw" else 0.0
    return KernelBound(
        kernel="corner_turn",
        machine=machine,
        compute_cycles=compute,
        memory_cycles=memory,
    )


def cslc_bound(
    machine: str, workload: Optional[CSLCWorkload] = None
) -> KernelBound:
    """Peak-rate CSLC prediction (the denominator of §4.3's factors).

    Uses each machine's own FFT algorithm (radix-2 on Raw, the mixed
    radix-4 plan elsewhere) and its Table 1 computation rate; the working
    set fits on-chip everywhere, so memory streams the interval data only
    once.
    """
    workload = workload or canonical_cslc()
    rates = _rates(machine)
    if machine == "raw":
        plan = FFTPlan(workload.subband_len, radix2_radices(workload.subband_len))
    else:
        plan = FFTPlan(workload.subband_len)
    flops = workload.op_counts(plan).flops
    compute = flops / (2.0 * rates["computation"]) if machine == "viram" else (
        flops / rates["computation"]
    )
    # VIRAM's Table 2 peak counts both vector units (16 ops/cycle), which
    # is the basis §4.3's "3.6x" uses; Table 1's computation rate is the
    # FP-capable 8.
    words = (
        (workload.n_channels + workload.n_mains)
        * workload.n_subbands
        * 2
        * workload.subband_len
    )
    memory_rate = rates["onchip"] if machine == "viram" else rates["offchip"]
    memory = words / memory_rate
    return KernelBound(
        kernel="cslc", machine=machine, compute_cycles=compute, memory_cycles=memory
    )


def beam_steering_bound(
    machine: str, workload: Optional[BeamSteeringWorkload] = None
) -> KernelBound:
    """Peak-rate beam-steering prediction (§4.4's 56% lower bound)."""
    workload = workload or canonical_beam_steering()
    rates = _rates(machine)
    arith = 6.0 * workload.outputs
    compute = arith / rates["computation"]
    words = 3.0 * workload.outputs  # 2 reads + 1 write
    memory_rate = rates["onchip"] if machine == "viram" else rates["offchip"]
    memory = words / memory_rate
    return KernelBound(
        kernel="beam_steering",
        machine=machine,
        compute_cycles=compute,
        memory_cycles=memory,
    )


def kernel_bound(kernel: str, machine: str, workload=None) -> KernelBound:
    """Dispatch to the per-kernel bound functions."""
    if kernel == "corner_turn":
        return corner_turn_bound(machine, workload)
    if kernel == "cslc":
        return cslc_bound(machine, workload)
    if kernel == "beam_steering":
        return beam_steering_bound(machine, workload)
    raise ConfigError(f"unknown kernel {kernel!r}")


def kernel_footprint_words(kernel: str, workload=None) -> float:
    """Minimum words any correct implementation must move (the traffic
    floor behind Tables 3-5's memory columns).

    * corner turn: every word in and out once — ``2 * words`` (§3.1);
    * CSLC: the interval data of all channels streamed once (§3.2);
    * beam steering: two table reads and one output write per output
      (§3.3, the same ``3 * outputs`` the §2.5 bound uses).

    ``repro.check`` asserts each run's reported memory traffic covers
    this floor; a mapping that moves less has dropped part of the
    working set.
    """
    if kernel == "corner_turn":
        workload = workload or canonical_corner_turn()
        return 2.0 * workload.words
    if kernel == "cslc":
        workload = workload or canonical_cslc()
        return float(
            (workload.n_channels + workload.n_mains)
            * workload.n_subbands
            * 2
            * workload.subband_len
        )
    if kernel == "beam_steering":
        workload = workload or canonical_beam_steering()
        return 3.0 * workload.outputs
    raise ConfigError(f"unknown kernel {kernel!r}")
