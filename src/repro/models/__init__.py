"""Analytic performance models (§2.5) and published machine parameters.

* :mod:`repro.models.throughput` — Table 1 (peak 32-bit words/cycle) and
  Table 2 (processor parameters), derived from the machine configs.
* :mod:`repro.models.bounds` — the §2.5 "simple performance models used
  to estimate the upper bound of the performance of the kernels":
  compute-rate and memory-rate lower bounds per kernel per machine
  (Table 4's expected corner-turn execution).
"""

from repro.models.bounds import KernelBound, kernel_bound
from repro.models.throughput import (
    peak_throughput_table,
    processor_parameter_table,
)

__all__ = [
    "KernelBound",
    "kernel_bound",
    "peak_throughput_table",
    "processor_parameter_table",
]
