"""Tables 1 and 2: peak throughput and processor parameters.

Table 1 ("Peak throughput (32-bit words per cycle)") and Table 2
("Processor Parameters") are configuration tables; this module derives
them from the machine configs so that any config change propagates, and
the benchmark compares the derived values against the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.arch.imagine.config import ImagineConfig
from repro.arch.imagine.machine import IMAGINE_SPEC
from repro.arch.ppc.machine import PPC_SPEC
from repro.arch.raw.config import RawConfig
from repro.arch.raw.machine import RAW_SPEC
from repro.arch.viram.config import ViramConfig
from repro.arch.viram.machine import VIRAM_SPEC

#: Table 1 as published (32-bit words per cycle).
PAPER_TABLE1: Dict[str, Dict[str, float]] = {
    "viram": {"onchip": 8, "offchip": 2, "computation": 8},
    "imagine": {"onchip": 16, "offchip": 2, "computation": 48},
    "raw": {"onchip": 16, "offchip": 28, "computation": 16},
}

#: Table 2 as published: (clock MHz, #ALUs, peak GFLOPS).
PAPER_TABLE2: Dict[str, Tuple[float, int, float]] = {
    "ppc": (1000, 4, 5.0),
    "viram": (200, 16, 3.2),
    "imagine": (300, 48, 14.4),
    "raw": (300, 16, 4.64),
}


@dataclass(frozen=True)
class ThroughputRow:
    """One Table 1 column: a machine's peak word rates."""

    machine: str
    onchip_words_per_cycle: float
    offchip_words_per_cycle: float
    computation_words_per_cycle: float


def peak_throughput_table(
    viram: Optional[ViramConfig] = None,
    imagine: Optional[ImagineConfig] = None,
    raw: Optional[RawConfig] = None,
) -> Tuple[ThroughputRow, ...]:
    """Derive Table 1 from the machine configurations.

    "On-chip" is each machine's nearest fast memory: VIRAM's DRAM
    datapath, Imagine's SRF, Raw's per-tile caches (one access per tile
    per cycle).  "Computation" counts 32-bit operations per cycle; for
    VIRAM this is the FP-capable rate (one vector unit), matching the
    published 8.
    """
    viram = viram or ViramConfig()
    imagine = imagine or ImagineConfig()
    raw = raw or RawConfig()
    return (
        ThroughputRow(
            machine="viram",
            onchip_words_per_cycle=viram.seq_words_per_cycle,
            offchip_words_per_cycle=viram.offchip_dma_words_per_cycle,
            computation_words_per_cycle=viram.lane_ops_per_cycle,
        ),
        ThroughputRow(
            machine="imagine",
            onchip_words_per_cycle=imagine.srf_words_per_cycle,
            offchip_words_per_cycle=imagine.memory_words_per_cycle,
            computation_words_per_cycle=imagine.total_alus,
        ),
        ThroughputRow(
            machine="raw",
            onchip_words_per_cycle=raw.onchip_words_per_cycle,
            offchip_words_per_cycle=raw.offchip_words_per_cycle,
            computation_words_per_cycle=raw.tiles,
        ),
    )


@dataclass(frozen=True)
class ParameterRow:
    """One Table 2 column: clock, ALU count, peak GFLOPS."""

    machine: str
    clock_mhz: float
    n_alus: int
    peak_gflops: float


def processor_parameter_table() -> Tuple[ParameterRow, ...]:
    """Derive Table 2 from the machine specs."""
    rows = []
    for spec in (PPC_SPEC, VIRAM_SPEC, IMAGINE_SPEC, RAW_SPEC):
        rows.append(
            ParameterRow(
                machine=spec.name,
                clock_mhz=spec.clock_mhz,
                n_alus=spec.n_alus,
                peak_gflops=spec.peak_gflops,
            )
        )
    return tuple(rows)
