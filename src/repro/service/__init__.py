"""Simulation-as-a-service: a crash-safe job runtime behind an HTTP API.

``repro serve`` (:mod:`repro.service.server`) turns the library into a
network service: run/sweep/report/pipeline requests arrive as JSON, are
*deduplicated by content* (the request digest is the job id, so N
identical requests collapse to one computation — the same identity the
cache tiers already key on), admitted through a bounded queue with an
explicit load-shedding ladder, and executed through the planner and the
resilient :class:`~repro.resilience.Supervisor`.

Robustness is the headline, not an afterthought:

* every job-state transition is journalled to an append-only
  write-ahead log (:mod:`repro.service.journal`) *before* it takes
  effect, so a SIGKILL'd server restarts, replays interrupted jobs
  idempotently, and converges to byte-identical results;
* saturation answers ``429 Retry-After`` instead of queueing unbounded
  work, and heavy jobs (sweeps, reports, pipelines) are shed before
  single runs — the service-tier analogue of the supervisor's
  parallel -> fresh-pool -> serial degradation ladder;
* SIGTERM drains gracefully: stop accepting, finish or journal
  in-flight jobs, flush the observability ledger;
* ``repro check --chaos`` gains service scenarios (kill -9 mid-job,
  torn journal tail, client disconnect, disk-cache corruption during a
  job) with the same byte-identical-convergence bar, and ``repro
  check --fast`` proves the journal schema, the job state machine, and
  dedup conservation on every run (``invariant.service.*``).

See docs/service.md for the API, the job lifecycle state machine, and
the durability guarantees.
"""

from __future__ import annotations

from repro.service.jobs import (
    HEAVY_KINDS,
    JOB_KINDS,
    STATES,
    TERMINAL_STATES,
    Job,
    job_id,
    legal_transition,
)
from repro.service.journal import JobJournal, journal_path, service_root
from repro.service.runtime import JobRuntime, ServiceConfig
from repro.service.stats import SERVICE_STATS

__all__ = [
    "HEAVY_KINDS",
    "JOB_KINDS",
    "Job",
    "JobJournal",
    "JobRuntime",
    "SERVICE_STATS",
    "STATES",
    "ServiceConfig",
    "TERMINAL_STATES",
    "job_id",
    "journal_path",
    "legal_transition",
    "service_root",
]
