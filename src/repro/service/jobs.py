"""The job model: content-addressed identity and a legal state machine.

A *job* is one service request — ``run``, ``sweep``, ``report``, or
``pipeline`` — with JSON parameters.  Its id is a content digest over
``(kind, params, model version stamp)``: two requests for the same
computation get the *same* id, which is what makes service-level
deduplication structural rather than heuristic (the id is the request
identity, exactly like a cache key), and folding in the model version
stamp means a retuned calibration can never serve a stale result under
an old id.

States and legal transitions (the journal replays are validated against
this machine, and ``invariant.service.state-machine`` re-proves it on
every ``repro check --fast``)::

    PENDING ──> RUNNING ──> DONE
       │           │ └────> FAILED
       │           └──────> PENDING   (crash replay: re-queued)
       └─────────> CANCELLED

``DONE``, ``FAILED``, and ``CANCELLED`` are terminal.  The only backward
edge is ``RUNNING -> PENDING``, taken exclusively by journal replay: a
job found ``RUNNING`` after a crash was interrupted mid-flight and is
re-queued — idempotently, because execution is a pure function of the
request and results converge through the content-addressed cache tiers.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ServiceError

#: Recognised job kinds (the request ``kind`` field).
JOB_KINDS: Tuple[str, ...] = ("run", "sweep", "report", "pipeline")

#: Kinds shed first under load: a sweep/report/pipeline costs orders of
#: magnitude more than a single run, so the admission ladder rejects
#: these while still admitting runs (docs/service.md, "Backpressure").
HEAVY_KINDS: Tuple[str, ...] = ("sweep", "report", "pipeline")

#: Job lifecycle states.
PENDING = "PENDING"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

STATES: Tuple[str, ...] = (PENDING, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES: Tuple[str, ...] = (DONE, FAILED, CANCELLED)

#: The legal state machine: ``current -> allowed next``.  ``None`` is
#: the pre-birth state (a job's first journal record must be PENDING).
LEGAL_TRANSITIONS: Dict[Optional[str], Tuple[str, ...]] = {
    None: (PENDING,),
    PENDING: (RUNNING, CANCELLED),
    RUNNING: (DONE, FAILED, PENDING),
    DONE: (),
    FAILED: (),
    CANCELLED: (),
}


def legal_transition(current: Optional[str], new: str) -> bool:
    """Whether ``current -> new`` is a legal job-state transition."""
    return new in LEGAL_TRANSITIONS.get(current, ())


def job_id(kind: str, params: Mapping[str, Any]) -> str:
    """Content-addressed job id (16 hex digits).

    Raises :class:`~repro.errors.ServiceError` for an unknown kind or
    parameters with no canonical encoding (a JSON request body always
    encodes; only programmatic callers can get this wrong).
    """
    from repro.perf.cache import content_digest, model_version_stamp

    if kind not in JOB_KINDS:
        raise ServiceError(
            f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
        )
    digest = content_digest(
        {
            "kind": kind,
            "params": dict(params),
            "stamp": model_version_stamp(),
        }
    )
    if digest is None:
        raise ServiceError(
            f"job parameters for kind {kind!r} are not content-addressable"
        )
    return digest[:16]


@dataclasses.dataclass
class Job:
    """One service job: identity, request, and mutable lifecycle state.

    The runtime mutates ``state`` only through
    :meth:`JobRuntime._transition`, which journals the new state *first*
    (write-ahead discipline) and validates legality; direct assignment
    is for the journal replayer, which has already validated the
    recorded history.
    """

    id: str
    kind: str
    params: Dict[str, Any]
    state: str = PENDING
    deadline_s: Optional[float] = None
    submitted_at: float = dataclasses.field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    replays: int = 0
    error: str = ""
    result_digest: str = ""

    def record(self) -> Dict[str, Any]:
        """The JSON-safe job record the API serves."""
        out: Dict[str, Any] = {
            "job": self.id,
            "kind": self.kind,
            "params": self.params,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "attempts": self.attempts,
            "replays": self.replays,
        }
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        if self.started_at is not None:
            out["started_at"] = self.started_at
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        if self.error:
            out["error"] = self.error
        if self.result_digest:
            out["result_digest"] = self.result_digest
        return out
