"""Service counters: every admission decision and lifecycle event, counted.

Like :mod:`repro.resilience.stats` one tier down, the service absorbs
trouble rather than surfacing it — a duplicate request becomes a dedup
hit, saturation becomes a 429, a crash becomes a replay — so counters
are the only external evidence of what happened.  This tally is exposed
to :data:`~repro.trace.telemetry.TELEMETRY` under ``service.*`` and is
what the dedup-conservation invariant and the chaos service scenarios
assert against (N identical submissions show ``deduped == N - 1`` and
exactly one planner execution).
"""

from __future__ import annotations

import threading
from typing import Dict

#: Counter names, in render order.  Declared up front so the telemetry
#: snapshot always carries every key — a zero is information ("no jobs
#: were shed" is exactly what a healthy smoke run asserts).
COUNTERS = (
    "submitted",
    "admitted",
    "deduped",
    "rejected_saturated",
    "rejected_shed",
    "rejected_draining",
    "rejected_invalid",
    "completed",
    "failed",
    "cancelled",
    "replayed",
    "journal_torn_tails",
    "drains",
    "http_requests",
    "http_errors",
    "client_disconnects",
)


class ServiceStats:
    """Thread-safe service counters (same shape as ResilienceStats)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTERS}

    def note(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (and mirror it onto the
        active tracer, if any, as ``service.<name>``)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
        from repro.trace.tracer import active_tracer

        tracer = active_tracer()
        if tracer is not None:
            tracer.count(f"service.{name}", n)

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        """All counters, the telemetry-source shape."""
        with self._lock:
            return dict(self._counters)

    def reset(self) -> None:
        with self._lock:
            self._counters = {name: 0 for name in COUNTERS}

    def render(self) -> str:
        """Aligned ``service.<name> value`` lines for ``--perf``."""
        snap = self.snapshot()
        width = max(len(name) for name in snap) + len("service.")
        lines = ["service:"]
        for name in sorted(snap):
            lines.append(f"  {f'service.{name}':<{width}s}  {snap[name]}")
        return "\n".join(lines)


#: Process-wide service tally, registered with TELEMETRY under
#: ``service`` (lazily, from :mod:`repro.trace.telemetry`).
SERVICE_STATS = ServiceStats()
