"""The job runtime: a durable, deduplicating, bounded work queue.

This is the service's core, independent of HTTP (the server in
:mod:`repro.service.server` is a thin adapter over it; tests drive the
runtime directly).  Responsibilities:

**Durability** — every state transition is journalled *before* it takes
effect (:mod:`repro.service.journal`).  On construction the runtime
replays the journal: terminal jobs are restored for dedup (a ``DONE``
job keeps serving its persisted result across restarts), and jobs a
crash left ``PENDING`` or ``RUNNING`` are re-queued — the ``RUNNING ->
PENDING`` transition is itself journalled, so the history shows the
replay.  Execution is a pure function of the request (and flows through
the content-addressed cache tiers), so replays converge to
byte-identical results; ``repro check --chaos`` kills the server
mid-job and asserts exactly that.

**Deduplication** — the job id *is* the request digest, so a duplicate
submission (concurrent or later) joins the existing job instead of
queueing a second computation: N identical requests collapse to one
execution, observable as ``service.deduped == N - 1`` with a single
``planner.executed`` unit (the ``invariant.service.dedup`` check).

**Admission control** — the queue is bounded (``max_queue``).  A full
queue rejects everything with a retry hint; above the shed watermark
(half full) heavy kinds (sweep/report/pipeline) are rejected while
single runs still land — the service-tier analogue of the supervisor's
parallel -> fresh-pool -> serial degradation ladder (docs/robustness.md).
Per-job deadlines are inherited by the Supervisor through
:func:`~repro.resilience.supervisor.deadline_scope`.

**Graceful drain** — :meth:`drain` stops admission, lets in-flight jobs
finish, and leaves queued jobs journalled as ``PENDING`` for the next
start to replay; nothing is lost, nothing is half-done.
"""

from __future__ import annotations

import dataclasses
import hashlib
import queue
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError, ServiceError
from repro.service import jobs as jobmod
from repro.service.execute import execute_job, result_text
from repro.service.jobs import Job, job_id
from repro.service.journal import JobJournal, journal_path, service_root
from repro.service.stats import SERVICE_STATS

__all__ = ["JobRuntime", "ServiceConfig", "Submission"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one runtime instance.

    ``workers`` is the number of executor threads (0 = none; tests and
    the replay-idempotence check drive :meth:`JobRuntime.run_pending`
    synchronously instead).  ``jobs`` is *intra*-job parallelism (the
    process-pool width sweep-shaped kinds use).  ``executor`` is
    injectable for tests.
    """

    root: Optional[Path] = None
    max_queue: int = 8
    workers: int = 1
    jobs: int = 1
    default_deadline_s: Optional[float] = None
    executor: Callable[..., Any] = execute_job

    @property
    def shed_watermark(self) -> int:
        """Queue depth at which heavy kinds start being shed (half of
        ``max_queue``, at least 1)."""
        return max(1, self.max_queue // 2)


@dataclasses.dataclass(frozen=True)
class Submission:
    """The outcome of one submit: the job (when one exists — rejections
    carry ``None``), the admission outcome, and a retry hint."""

    job: Optional[Job]
    outcome: str  # admitted | deduped | rejected_{saturated,shed,draining}
    retry_after_s: int = 0

    @property
    def rejected(self) -> bool:
        return self.outcome.startswith("rejected")


class JobRuntime:
    """See the module docstring; one instance per server process."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.root = (
            Path(self.config.root)
            if self.config.root is not None
            else service_root()
        )
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "results").mkdir(exist_ok=True)
        self.journal = JobJournal(journal_path(self.root))
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[str]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._draining = threading.Event()
        self.replayed_jobs = 0
        self._replay()

    # -- durability -----------------------------------------------------

    def _replay(self) -> None:
        """Restore journal state: terminal jobs for dedup, interrupted
        jobs back onto the queue (journalling the re-queue)."""
        from repro.obs.ledger import record

        if self.journal.torn_tails_healed:
            SERVICE_STATS.note(
                "journal_torn_tails", self.journal.torn_tails_healed
            )
        replayed, _problems = self.journal.replay()
        for job in sorted(replayed.values(), key=lambda j: j.submitted_at):
            if job.state == jobmod.RUNNING:
                # Interrupted mid-flight by a crash: journal the
                # re-queue so the history shows it, then treat as
                # PENDING.  Idempotent — execution is pure.
                self.journal.append(job.id, jobmod.PENDING)
                job.state = jobmod.PENDING
                job.replays += 1
                self.replayed_jobs += 1
                SERVICE_STATS.note("replayed")
                record("service.replay", job=job.id, job_kind=job.kind)
            self._jobs[job.id] = job
            if job.state == jobmod.PENDING:
                self._queue.put(job.id)

    def _transition(self, job: Job, state: str, **fields: Any) -> None:
        """Journal first (write-ahead), then apply in memory."""
        from repro.obs.ledger import record

        if not jobmod.legal_transition(job.state, state):
            raise ServiceError(
                f"illegal job transition {job.state} -> {state} "
                f"for {job.id}"
            )
        rec = self.journal.append(job.id, state, **fields)
        if state == jobmod.RUNNING:
            job.attempts += 1
            job.started_at = rec["ts"]
        if state in jobmod.TERMINAL_STATES:
            job.finished_at = rec["ts"]
            job.error = fields.get("error", "")
            job.result_digest = fields.get("result_digest", "")
        job.state = state
        record("service.job", job=job.id, state=state, job_kind=job.kind)

    # -- admission ------------------------------------------------------

    def queue_depth(self) -> int:
        """Jobs admitted but not yet picked up by a worker."""
        return self._queue.qsize()

    def _retry_after(self, depth: int) -> int:
        """A coarse how-long-until-capacity hint for ``Retry-After``:
        a nominal 2 s per queued job, never less than 1 s."""
        return max(1, 2 * depth)

    def submit(
        self,
        kind: str,
        params: Mapping[str, Any],
        deadline_s: Optional[float] = None,
    ) -> Submission:
        """Admit, dedup, or reject one request.

        Raises :class:`~repro.errors.ServiceError` for a malformed
        request (unknown kind, non-addressable params) — the HTTP layer
        maps that to 400; rejections for *load* return a
        :class:`Submission` with a retry hint instead (429/503).
        """
        from repro.obs.ledger import record

        SERVICE_STATS.note("submitted")
        try:
            jid = job_id(kind, params)
        except ServiceError:
            SERVICE_STATS.note("rejected_invalid")
            raise
        with self._lock:
            existing = self._jobs.get(jid)
            if existing is not None:
                SERVICE_STATS.note("deduped")
                record(
                    "service.submit", job=jid, job_kind=kind, outcome="deduped"
                )
                return Submission(existing, "deduped")
            if self._draining.is_set():
                SERVICE_STATS.note("rejected_draining")
                record(
                    "service.submit", job=jid, job_kind=kind,
                    outcome="rejected_draining",
                )
                return Submission(None, "rejected_draining", 5)
            depth = self.queue_depth()
            if depth >= self.config.max_queue:
                SERVICE_STATS.note("rejected_saturated")
                record(
                    "service.submit", job=jid, job_kind=kind,
                    outcome="rejected_saturated", depth=depth,
                )
                return Submission(
                    None, "rejected_saturated", self._retry_after(depth)
                )
            if depth >= self.config.shed_watermark and kind in (
                jobmod.HEAVY_KINDS
            ):
                # The load-shedding ladder: above the watermark, heavy
                # work is shed while single runs still land.
                SERVICE_STATS.note("rejected_shed")
                record(
                    "service.submit", job=jid, job_kind=kind,
                    outcome="rejected_shed", depth=depth,
                )
                return Submission(
                    None, "rejected_shed", self._retry_after(depth)
                )
            if deadline_s is None:
                deadline_s = self.config.default_deadline_s
            self.journal.append(
                jid,
                jobmod.PENDING,
                kind=kind,
                params=dict(params),
                deadline_s=deadline_s,
            )
            job = Job(
                id=jid, kind=kind, params=dict(params), deadline_s=deadline_s
            )
            self._jobs[jid] = job
            self._queue.put(jid)
            SERVICE_STATS.note("admitted")
            record("service.submit", job=jid, job_kind=kind, outcome="admitted")
            return Submission(job, "admitted")

    # -- execution ------------------------------------------------------

    def _execute(self, job: Job) -> None:
        """Run one job to a terminal state.  Never raises: a failure is
        a journalled FAILED job, not a dead worker thread."""
        from repro.resilience.stats import job_scope
        from repro.resilience.supervisor import deadline_scope

        with self._lock:
            if job.state != jobmod.PENDING:
                return  # cancelled (or raced) while queued
            self._transition(job, jobmod.RUNNING)
        try:
            with job_scope(job.id), deadline_scope(job.deadline_s):
                result = self.config.executor(
                    job.kind, job.params, jobs=self.config.jobs
                )
            text = result_text(result)
            digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
            self._write_result(job.id, text)
            with self._lock:
                self._transition(job, jobmod.DONE, result_digest=digest)
            SERVICE_STATS.note("completed")
        except Exception as exc:  # noqa: BLE001 — terminal FAILED state
            with self._lock:
                self._transition(
                    job,
                    jobmod.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                )
            SERVICE_STATS.note("failed")

    def _write_result(self, jid: str, text: str) -> None:
        from repro.ioutil import atomic_write_text

        atomic_write_text(self.result_path(jid), text)

    def result_path(self, jid: str) -> Path:
        return self.root / "results" / f"{jid}.json"

    def result_text(self, jid: str) -> Optional[str]:
        """The persisted result serialization, or ``None``."""
        try:
            return self.result_path(jid).read_text(encoding="utf-8")
        except OSError:
            return None

    # -- workers --------------------------------------------------------

    def start(self) -> None:
        """Spawn the executor threads (no-op when ``workers == 0``)."""
        for n in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-service-{n}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _worker(self) -> None:
        while True:
            try:
                jid = self._queue.get(timeout=0.1)
            except queue.Empty:
                if self._draining.is_set():
                    return
                continue
            job = self._jobs.get(jid)
            if job is not None:
                self._execute(job)

    def run_pending(self) -> int:
        """Synchronously execute everything queued (the ``workers=0``
        path tests and replay checks use); returns jobs executed."""
        n = 0
        while True:
            try:
                jid = self._queue.get_nowait()
            except queue.Empty:
                return n
            job = self._jobs.get(jid)
            if job is not None:
                self._execute(job)
                n += 1

    def wait(self, jid: str, timeout: float = 60.0) -> Job:
        """Block until job ``jid`` reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self._jobs.get(jid)
            if job is not None and job.state in jobmod.TERMINAL_STATES:
                return job
            time.sleep(0.01)
        raise ServiceError(f"timed out waiting for job {jid}")

    def drain(self, timeout: float = 30.0) -> Dict[str, int]:
        """Stop admission, finish in-flight jobs, stop the workers.

        Queued-but-unstarted jobs stay journalled as PENDING — the next
        start replays them.  Returns a census for the shutdown log.
        """
        from repro.obs.ledger import record

        self._draining.set()
        SERVICE_STATS.note("drains")
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []
        census = {
            "pending": sum(
                1 for j in self._jobs.values()
                if j.state == jobmod.PENDING
            ),
            "running": sum(
                1 for j in self._jobs.values()
                if j.state == jobmod.RUNNING
            ),
            "done": sum(
                1 for j in self._jobs.values() if j.state == jobmod.DONE
            ),
            "failed": sum(
                1 for j in self._jobs.values() if j.state == jobmod.FAILED
            ),
        }
        record("service.drain", **census)
        return census

    # -- introspection --------------------------------------------------

    def get(self, jid: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(jid)

    def jobs(self) -> List[Job]:
        """Every known job, oldest first."""
        with self._lock:
            return sorted(
                self._jobs.values(), key=lambda j: (j.submitted_at, j.id)
            )
