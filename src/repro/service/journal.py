"""The durable write-ahead job journal: append-only JSONL under
``.repro/service/``.

Every job-state transition is one JSON line, appended with a single
``O_APPEND`` write and fsynced *before* the transition takes effect in
memory — write-ahead discipline, so the on-disk history is never behind
the runtime's beliefs.  A record looks like::

    {"schema": 1, "seq": 12, "job": "a1b2c3d4e5f60718",
     "state": "RUNNING", "kind": "run", "ts": 1736264400.123,
     "pid": 4242, ...}

* ``seq`` — a journal-global monotonic sequence number starting at 0;
  gapless by construction (assigned and appended under one lock), and a
  gap on read is evidence of a lost record;
* ``job``/``state`` — the transition; the first record for a job also
  carries its full request (``kind``, ``params``, ``deadline_s``) so
  replay needs nothing but the journal;
* terminal records carry outcome evidence (``result_digest`` for DONE,
  ``error`` for FAILED).

Torn-tail tolerance mirrors the packed-index manifest discipline
(:mod:`repro.perf.index`): a crash mid-append can tear at most the
final line.  Pure readers (:func:`read_journal`) tolerate and report
torn lines without raising; the *writer* truncates a torn tail off on
open (quarantining the bytes beside the journal, never trusting them),
so the append stream stays parseable forever.

Replay (:func:`fold_records`) folds the record stream into per-job
final states, validating every transition against the legal state
machine of :mod:`repro.service.jobs`.  Jobs left ``PENDING`` or
``RUNNING`` by a crash are the replayer's work-list; ``DONE`` jobs
carry their result digest so a completed computation is never redone.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.ioutil import append_jsonl
from repro.service.jobs import Job, legal_transition

__all__ = [
    "JOURNAL_SCHEMA",
    "JobJournal",
    "fold_records",
    "journal_path",
    "read_journal",
    "service_root",
    "validate_records",
]

#: Journal format version, stamped on every record.
JOURNAL_SCHEMA = 1

#: Record fields every journal line must carry.
REQUIRED_FIELDS = ("schema", "seq", "job", "state", "ts")


def service_root() -> Path:
    """The service state directory.

    ``$REPRO_SERVICE_DIR`` when set, else ``.repro/service`` under the
    current working directory — service state is an artifact of *this
    checkout's* jobs, like the observability ledger and unlike the
    machine-wide disk cache.
    """
    env = os.environ.get("REPRO_SERVICE_DIR")
    if env:
        return Path(env)
    return Path(".repro") / "service"


def journal_path(root: Optional[Path] = None) -> Path:
    """The journal file under ``root`` (default: :func:`service_root`)."""
    return (root if root is not None else service_root()) / "journal.jsonl"


def read_journal(
    path: Optional[Path] = None,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Parse the journal line by line; pure reader, never raises.

    Returns ``(records, corrupt_lines)``: every line that parses as a
    JSON object is a record, every line that does not (a torn tail
    after a crash) is returned verbatim for the caller to count or
    quarantine.  Order is file order.
    """
    path = journal_path() if path is None else Path(path)
    records: List[Dict[str, Any]] = []
    corrupt: List[str] = []
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return [], []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            corrupt.append(line)
            continue
        if isinstance(obj, dict):
            records.append(obj)
        else:
            corrupt.append(line)
    return records, corrupt


def validate_records(records: List[Dict[str, Any]]) -> List[str]:
    """Problems with a journal record stream; empty list = valid.

    Checks the ``invariant.service.journal`` contract: schema fields
    present with the right types, ``seq`` gapless and monotonic from 0,
    and every per-job state sequence legal under the job state machine
    (first record PENDING, no transition out of a terminal state, the
    only backward edge RUNNING -> PENDING).
    """
    problems: List[str] = []
    states: Dict[str, Optional[str]] = {}
    for n, record in enumerate(records):
        missing = [f for f in REQUIRED_FIELDS if f not in record]
        if missing:
            problems.append(f"record {n}: missing fields {missing}")
            continue
        if record["schema"] != JOURNAL_SCHEMA:
            problems.append(
                f"record {n}: schema {record['schema']!r} != {JOURNAL_SCHEMA}"
            )
        if record["seq"] != n:
            problems.append(
                f"record {n}: seq {record['seq']!r} breaks the gapless "
                f"sequence (expected {n})"
            )
        job = record["job"]
        state = record["state"]
        current = states.get(job)
        if not legal_transition(current, state):
            problems.append(
                f"record {n}: job {job} illegal transition "
                f"{current} -> {state}"
            )
        states[job] = state
    return problems


def fold_records(records: List[Dict[str, Any]]) -> Dict[str, Job]:
    """Fold a (valid) record stream into per-job final states.

    Returns jobs keyed by id, each carrying its request (from the birth
    record), final state, attempt/replay tallies, and outcome evidence.
    Records for a job whose birth record is missing or whose transition
    is illegal are skipped — :func:`validate_records` is the reporting
    surface for those; replay must make progress on the salvageable
    majority rather than wedge on one bad record.
    """
    jobs: Dict[str, Job] = {}
    for record in records:
        job_id = record.get("job")
        state = record.get("state")
        if not isinstance(job_id, str) or state is None:
            continue
        job = jobs.get(job_id)
        if job is None:
            if not legal_transition(None, state):
                continue  # no birth record: unsalvageable
            jobs[job_id] = Job(
                id=job_id,
                kind=record.get("kind", ""),
                params=dict(record.get("params") or {}),
                state=state,
                deadline_s=record.get("deadline_s"),
                submitted_at=record.get("ts", 0.0),
            )
            continue
        if not legal_transition(job.state, state):
            continue
        if state == "RUNNING":
            job.attempts += 1
            job.started_at = record.get("ts")
        elif job.state == "RUNNING" and state == "PENDING":
            job.replays += 1
        if state in ("DONE", "FAILED", "CANCELLED"):
            job.finished_at = record.get("ts")
            job.error = record.get("error", "")
            job.result_digest = record.get("result_digest", "")
        job.state = state
    return jobs


class JobJournal:
    """Append-only journal writer with crash-safe open.

    ``seq`` assignment and the fsynced append happen under one lock, so
    sequence order equals file order and the gapless invariant holds by
    construction.  Opening for write heals a torn tail: the damaged
    trailing bytes are copied to ``journal.quarantine`` (evidence, never
    deleted) and truncated off the journal, and the writer resumes at
    the next sequence number after the last *complete* record.
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = journal_path() if path is None else Path(path)
        self._lock = threading.Lock()
        self._seq = 0
        self.torn_tails_healed = 0
        self._recover()

    def _recover(self) -> None:
        """Heal a torn tail and position ``seq`` after the last record."""
        records, corrupt = read_journal(self.path)
        if corrupt:
            self._truncate_tail()
            self.torn_tails_healed = len(corrupt)
        last_seq = -1
        for record in records:
            seq = record.get("seq")
            if isinstance(seq, int) and seq > last_seq:
                last_seq = seq
        self._seq = last_seq + 1

    def _truncate_tail(self) -> None:
        """Drop everything after the last complete (parseable) line,
        preserving the damaged bytes beside the journal for forensics."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        keep = 0
        for line_end in _line_ends(raw):
            line = raw[keep:line_end]
            try:
                json.loads(line.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                break
            keep = line_end + 1
        tail = raw[keep:]
        if not tail:
            return
        quarantine = self.path.with_suffix(".quarantine")
        try:
            with open(quarantine, "ab") as fh:
                fh.write(tail)
            with open(self.path, "r+b") as fh:
                fh.truncate(keep)
        except OSError:
            return

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._seq

    def append(self, job: str, state: str, **fields: Any) -> Dict[str, Any]:
        """Append one transition record; returns it with ``seq`` filled.

        The append is fsynced: this is a write-ahead log, and the
        caller applies the transition in memory only after this call
        returns — a crash can lose at most work, never history.
        """
        with self._lock:
            record: Dict[str, Any] = {
                "schema": JOURNAL_SCHEMA,
                "seq": self._seq,
                "job": job,
                "state": state,
                "ts": time.time(),
                "pid": os.getpid(),
            }
            record.update(fields)
            append_jsonl(self.path, record, fsync=True)
            self._seq += 1
        return record

    def replay(self) -> Tuple[Dict[str, Job], List[str]]:
        """``(jobs by id, problems)`` from the journal as it stands."""
        records, corrupt = read_journal(self.path)
        problems = validate_records(records)
        if corrupt:
            problems.append(f"{len(corrupt)} torn/corrupt line(s)")
        return fold_records(records), problems


def _line_ends(raw: bytes) -> List[int]:
    """Offsets of every newline byte in ``raw``."""
    out: List[int] = []
    start = 0
    while True:
        i = raw.find(b"\n", start)
        if i < 0:
            return out
        out.append(i)
        start = i + 1
