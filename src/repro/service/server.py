"""``repro serve``: the stdlib HTTP adapter over the job runtime.

``ThreadingHTTPServer`` + ``BaseHTTPRequestHandler`` — no dependency
beyond the standard library.  The HTTP layer is deliberately thin: all
durability, dedup, and admission logic lives in
:class:`~repro.service.runtime.JobRuntime`; this module only translates
requests to runtime calls and runtime outcomes to status codes.

API (see docs/service.md for the full contract)::

    GET  /healthz                cheap liveness (journal + queue census)
    GET  /healthz?full=1         the whole doctor probe battery, as JSON
    POST /v1/jobs                submit {"kind", "params", "deadline_s"?}
                                 -> 202 admitted | 200 deduped
                                 -> 429 + Retry-After saturated/shed
                                 -> 503 + Retry-After draining
                                 -> 400 malformed | 413 oversized
    GET  /v1/jobs                every known job, oldest first
    GET  /v1/jobs/<id>           one job record (404 unknown)
    GET  /v1/jobs/<id>/result    the persisted result bytes (409 until
                                 DONE; byte-identical to the CLI --json
                                 output for run jobs)
    GET  /v1/telemetry           service.* / resilience.* / planner
                                 counters (what the chaos scenarios and
                                 the dedup invariant assert against)

Handler threads never crash the server: a client that disconnects
mid-request is counted (``service.client_disconnects``) and the thread
moves on.  SIGTERM triggers a graceful drain — stop accepting, finish
or journal in-flight jobs, flush the obs ledger — and SIGINT behaves
the same, so Ctrl-C on a foreground server is a clean shutdown.

``--port 0`` binds an ephemeral port; ``--ready-file PATH`` writes a
JSON handshake (pid, port, url) once the socket is listening, which is
how the smoke script and the chaos scenarios find the server without
racing its startup.
"""

from __future__ import annotations

import json
import os
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.errors import ReproError, ServiceError
from repro.service import jobs as jobmod
from repro.service.runtime import JobRuntime, ServiceConfig
from repro.service.stats import SERVICE_STATS

__all__ = ["ServiceServer", "serve"]

#: Largest accepted request body; a sweep of every paper cell is ~10 KB,
#: so 1 MiB is generous headroom rather than a real limit.
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """One HTTP exchange; ``server.runtime`` is the shared JobRuntime."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging goes through the obs ledger, not stderr

    @property
    def runtime(self) -> JobRuntime:
        return self.server.runtime  # type: ignore[attr-defined]

    def _send_json(
        self,
        status: int,
        payload: Any,
        headers: Optional[Dict[str, str]] = None,
        raw_text: Optional[str] = None,
    ) -> None:
        body = (
            raw_text
            if raw_text is not None
            else json.dumps(payload, indent=2, sort_keys=True) + "\n"
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str,
               headers: Optional[Dict[str, str]] = None) -> None:
        SERVICE_STATS.note("http_errors")
        self._send_json(status, {"error": message}, headers=headers)

    def handle_one_request(self) -> None:  # noqa: D102
        try:
            super().handle_one_request()
        except (BrokenPipeError, ConnectionResetError, TimeoutError):
            # The client went away mid-exchange; the job (if admitted)
            # keeps running — results are poll-able, not streamed.
            SERVICE_STATS.note("client_disconnects")
            self.close_connection = True
        except Exception:  # noqa: BLE001 — a handler must not kill the server
            SERVICE_STATS.note("http_errors")
            self.close_connection = True

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        SERVICE_STATS.note("http_requests")
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/healthz":
            self._healthz(parse_qs(url.query))
        elif parts == ["v1", "jobs"]:
            self._send_json(
                200, {"jobs": [j.record() for j in self.runtime.jobs()]}
            )
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._get_job(parts[2])
        elif (
            len(parts) == 4
            and parts[:2] == ["v1", "jobs"]
            and parts[3] == "result"
        ):
            self._get_result(parts[2])
        elif parts == ["v1", "telemetry"]:
            self._telemetry()
        else:
            self._error(404, f"no route for GET {url.path}")

    def do_POST(self) -> None:  # noqa: N802
        SERVICE_STATS.note("http_requests")
        if urlparse(self.path).path != "/v1/jobs":
            self._error(404, f"no route for POST {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._error(411, "Content-Length required")
            return
        if length > MAX_BODY_BYTES:
            self._error(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            return
        body = self.rfile.read(length)
        if len(body) < length:
            # Disconnected mid-upload; nothing was admitted.
            SERVICE_STATS.note("client_disconnects")
            self.close_connection = True
            return
        try:
            request = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._error(400, f"body is not valid JSON: {exc}")
            return
        if not isinstance(request, dict):
            self._error(400, "body must be a JSON object")
            return
        self._submit(request)

    # -- route bodies ---------------------------------------------------

    def _submit(self, request: Dict[str, Any]) -> None:
        kind = request.get("kind")
        params = request.get("params")
        if not isinstance(kind, str) or not isinstance(params, dict):
            self._error(
                400, 'body must carry "kind" (string) and "params" (object)'
            )
            return
        deadline_s = request.get("deadline_s")
        try:
            submission = self.runtime.submit(
                kind,
                params,
                deadline_s=(
                    float(deadline_s) if deadline_s is not None else None
                ),
            )
        except ServiceError as exc:
            self._error(400, str(exc))
            return
        if submission.rejected:
            status = 503 if submission.outcome == "rejected_draining" else 429
            self._error(
                status,
                f"{submission.outcome}: "
                f"retry after {submission.retry_after_s}s",
                headers={"Retry-After": str(submission.retry_after_s)},
            )
            return
        job = submission.job
        assert job is not None
        self._send_json(
            202 if submission.outcome == "admitted" else 200,
            {"outcome": submission.outcome, **job.record()},
        )

    def _get_job(self, jid: str) -> None:
        job = self.runtime.get(jid)
        if job is None:
            self._error(404, f"unknown job {jid!r}")
            return
        self._send_json(200, job.record())

    def _get_result(self, jid: str) -> None:
        job = self.runtime.get(jid)
        if job is None:
            self._error(404, f"unknown job {jid!r}")
            return
        if job.state != jobmod.DONE:
            self._error(
                409, f"job {jid} is {job.state}, result not available"
            )
            return
        text = self.runtime.result_text(jid)
        if text is None:
            self._error(404, f"result file for {jid} is missing")
            return
        # Serve the persisted bytes verbatim: for run jobs this is
        # byte-identical to `repro run ... --json` stdout.
        self._send_json(200, None, raw_text=text)

    def _healthz(self, query: Dict[str, Any]) -> None:
        if query.get("full"):
            from repro.resilience.doctor import doctor_json, run_doctor

            record = doctor_json(run_doctor())
            self._send_json(200 if record["healthy"] else 503, record)
            return
        jobs = self.runtime.jobs()
        census = {
            state: sum(1 for j in jobs if j.state == state)
            for state in jobmod.STATES
        }
        payload = {
            "status": "ok",
            "pid": os.getpid(),
            "queue_depth": self.runtime.queue_depth(),
            "jobs": census,
            "journal_records": self.runtime.journal.next_seq,
        }
        self._send_json(200, payload)

    def _telemetry(self) -> None:
        from repro.perf import timers
        from repro.resilience.stats import RESILIENCE

        self._send_json(
            200,
            {
                "service": SERVICE_STATS.snapshot(),
                "resilience": RESILIENCE.snapshot(),
                "counters": timers.snapshot()["counters"],
            },
        )


class ServiceServer:
    """A bound server plus its runtime, with signal-driven drain."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.runtime = JobRuntime(config)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.runtime = self.runtime  # type: ignore[attr-defined]
        self._shutdown_started = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def write_ready_file(self, path: str) -> None:
        """Publish the startup handshake (atomic, so a polling client
        never reads a half-written file)."""
        from repro.ioutil import atomic_write_json

        host, port = self.address
        atomic_write_json(
            path,
            {"pid": os.getpid(), "host": host, "port": port,
             "url": self.url},
        )

    def request_shutdown(self) -> None:
        """Begin shutdown from any thread (idempotent).

        ``httpd.shutdown`` must not run on the serve_forever thread, so
        signal handlers delegate to a helper thread.
        """
        if self._shutdown_started.is_set():
            return
        self._shutdown_started.set()
        threading.Thread(target=self.httpd.shutdown, daemon=True).start()

    def install_signal_handlers(self) -> None:
        def _handler(signum: int, frame: Any) -> None:
            self.request_shutdown()

        signal.signal(signal.SIGTERM, _handler)
        signal.signal(signal.SIGINT, _handler)

    def serve_until_shutdown(self) -> Dict[str, int]:
        """Run: workers + accept loop, then drain.  Returns the drain
        census for the shutdown log."""
        self.runtime.start()
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.httpd.server_close()
        return self.runtime.drain()


def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    config: Optional[ServiceConfig] = None,
    ready_file: Optional[str] = None,
) -> Dict[str, int]:
    """Run the service until SIGTERM/SIGINT; returns the drain census.

    The obs ledger session wrapping (flight recorder, metrics history)
    comes from the CLI entry point, which treats ``serve`` as a session
    command — the ledger is flushed after the drain as part of normal
    session teardown.
    """
    from repro.obs.ledger import record

    server = ServiceServer(host=host, port=port, config=config)
    server.install_signal_handlers()
    if ready_file:
        server.write_ready_file(ready_file)
    record(
        "service.start",
        url=server.url,
        pid=os.getpid(),
        replayed=server.runtime.replayed_jobs,
    )
    return server.serve_until_shutdown()
