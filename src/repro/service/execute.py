"""Job executors: one pure function per job kind.

Every kind maps its JSON parameters onto an existing library entry
point — the *same* code path the CLI uses — and returns a JSON-safe
result.  Purity is the durability story: a job's result is a function
of ``(kind, params, model version)`` and nothing else, so a crash-
interrupted job can be replayed idempotently and *must* converge to the
byte-identical result (the chaos service scenarios assert exactly
that).

``run`` results are the CLI contract verbatim: serializing the returned
record with ``json.dumps(..., indent=2, sort_keys=True)`` reproduces
``repro run KERNEL MACHINE --json`` stdout byte-for-byte — the CI smoke
job compares the two.

All kinds dispatch through :func:`repro.perf.planner.execute_requests`
(or the drivers built on it), so results flow through both
content-addressed cache tiers and the supervised executor; a service
job enjoys the same retry/isolate/degrade ladder as a CLI sweep.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ServiceError

__all__ = ["execute_job", "result_text"]


def result_text(result: Any) -> str:
    """The canonical serialization of a job result.

    ``sort_keys`` + fixed indent + trailing newline: the byte string is
    a pure function of the result value, which is what makes "replay
    converges byte-identically" a checkable claim — and for ``run``
    jobs it equals the CLI's ``--json`` stdout.
    """
    import json

    return json.dumps(result, indent=2, sort_keys=True) + "\n"


def execute_job(
    kind: str, params: Mapping[str, Any], jobs: Optional[int] = None
) -> Any:
    """Execute one job; returns its JSON-safe result.

    ``jobs`` is the *intra-job* parallelism (process-pool width for
    sweep-shaped kinds), a server setting rather than part of the job's
    identity — results are byte-identical at any width.

    Raises :class:`~repro.errors.ServiceError` for malformed
    parameters; model errors (:class:`~repro.errors.ReproError`
    subclasses) propagate and fail the job.
    """
    params = dict(params)
    if kind == "run":
        return _execute_run(params)
    if kind == "sweep":
        return _execute_sweep(params, jobs)
    if kind == "report":
        return _execute_report(params, jobs)
    if kind == "pipeline":
        return _execute_pipeline(params, jobs)
    raise ServiceError(f"unknown job kind {kind!r}")


def _run_kwargs(params: Mapping[str, Any]) -> Dict[str, Any]:
    """Mapping kwargs from a run-shaped parameter dict (CLI parity:
    ``options`` plus ``seed``, seed defaulting to 0)."""
    options = params.get("options") or {}
    if not isinstance(options, dict):
        raise ServiceError(
            f"'options' must be an object, got {type(options).__name__}"
        )
    return dict(options, seed=int(params.get("seed", 0)))


def _require(params: Mapping[str, Any], field: str) -> Any:
    value = params.get(field)
    if value is None:
        raise ServiceError(f"missing required job parameter {field!r}")
    return value


def _run_record(kernel: str, machine: str, kwargs: Dict[str, Any],
                result: Any) -> Dict[str, Any]:
    from repro.eval.export import kernel_run_record
    from repro.perf.cache import cache_key

    return {
        "config_hash": cache_key(kernel, machine, kwargs),
        **kernel_run_record(result),
    }


def _execute_run(params: Mapping[str, Any]) -> Dict[str, Any]:
    """``run``: one kernel×machine cell -> the CLI ``--json`` record."""
    from repro.perf.planner import execute_requests

    kernel = str(_require(params, "kernel"))
    machine = str(_require(params, "machine"))
    kwargs = _run_kwargs(params)
    result = execute_requests([(kernel, machine, kwargs)], jobs=1)[0]
    return _run_record(kernel, machine, kwargs, result)


def _execute_sweep(
    params: Mapping[str, Any], jobs: Optional[int]
) -> List[Dict[str, Any]]:
    """``sweep``: a cell list -> one run record per cell, in order.

    ``params["cells"]`` is a list of run-shaped objects
    (``{"kernel": ..., "machine": ..., "options": {...}, "seed": N}``);
    the planner dedups overlapping cells and serves them from the cache
    tiers before dispatching the misses to the supervised pool.
    """
    from repro.perf.planner import execute_requests

    cells = _require(params, "cells")
    if not isinstance(cells, list) or not cells:
        raise ServiceError("'cells' must be a non-empty list")
    requests = []
    for n, cell in enumerate(cells):
        if not isinstance(cell, dict):
            raise ServiceError(f"cell {n} must be an object")
        requests.append(
            (
                str(_require(cell, "kernel")),
                str(_require(cell, "machine")),
                _run_kwargs(cell),
            )
        )
    results = execute_requests(requests, jobs=jobs)
    return [
        _run_record(kernel, machine, kwargs, result)
        for (kernel, machine, kwargs), result in zip(requests, results)
    ]


def _small_workloads() -> Dict[str, Any]:
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    return {
        "corner_turn": small_corner_turn(),
        "cslc": small_cslc(),
        "beam_steering": small_beam_steering(),
    }


def _execute_report(
    params: Mapping[str, Any], jobs: Optional[int]
) -> Dict[str, Any]:
    """``report``: the full experiment report as text.

    ``small`` (default true — a service should answer in seconds)
    selects the test-size workloads; ``validate`` (default false)
    appends the embedded fast-tier check block like the CLI does.
    """
    from repro.eval.report import full_report

    small = bool(params.get("small", True))
    text = full_report(
        workloads=_small_workloads() if small else None,
        jobs=jobs,
        validate=bool(params.get("validate", False)),
    )
    return {"report": text, "small": small}


def _execute_pipeline(
    params: Mapping[str, Any], jobs: Optional[int]
) -> List[Dict[str, Any]]:
    """``pipeline``: radar-pipeline scenario records, CLI-parity shape
    (``repro pipeline run MACHINE --json``)."""
    import dataclasses

    from repro.mappings.registry import MACHINES
    from repro.scenarios import (
        canonical_scenario,
        pipeline_record,
        run_scenarios,
        small_scenario,
    )

    machine = str(_require(params, "machine"))
    if machine == "all":
        machines = list(MACHINES)
    elif machine in MACHINES:
        machines = [machine]
    else:
        raise ServiceError(
            f"unknown machine {machine!r}; "
            f"expected one of {tuple(MACHINES)} or 'all'"
        )
    build = small_scenario if params.get("small", True) else canonical_scenario
    scenarios = [build(m) for m in machines]
    seed = params.get("seed")
    if seed:
        scenarios = [
            dataclasses.replace(s, seed=int(seed)) for s in scenarios
        ]
    pruns = run_scenarios(scenarios, jobs=jobs)
    return [pipeline_record(prun) for prun in pruns]
