"""Roofline attribution: arithmetic intensity and memory-bound fraction.

The paper's thesis is that these kernels are *memory-intensive* — that
cycles go to memory systems, not ALUs.  ``repro analyze roofline``
turns that claim into a computed artifact.  For every registered
kernel×machine pair it derives:

* **arithmetic intensity** — the kernel's arithmetic operations per
  memory word moved (the op census over the larger of the measured
  load/store traffic and the §2.5 footprint floor, so mappings whose
  census counts arithmetic only still get a defined intensity);
* **the machine's roofs** — peak arithmetic throughput
  (``flops_per_cycle`` from the Table 2 spec) and the memory roof
  ``intensity × words_per_cycle`` from the same Table 1 word rates the
  §2.5 bounds use (:func:`repro.models.bounds.machine_word_rates`);
  the *ridge point* is where they cross;
* **memory-bound fraction** — the share of the run's cycle ledger
  charged to memory categories, via a deterministic classifier over the
  breakdown category names (``read misses``, ``dram row activations``,
  ``streaming misses`` → memory; ``issue``, ``kernel``, ``twiddle
  recomputation`` → compute; ``startup``, ``loop overhead``, ``network
  sequencing`` → other);
* **trace cross-check** (``--traced``) — the busy fraction of the
  memory-class trace tracks (``dram/*``, ``tlb/*``, ``cache/*``) of a
  traced run, an independent, event-level view of the same attribution.

A pair is *memory-bound* two independent ways: by position (its
intensity falls left of the machine's ridge point, so the memory roof
caps attainable throughput) and by measurement (the majority of its
ledger cycles are charged to memory categories).  The analysis reports
both and the dashboard plots the classic log-log roofline.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "RooflinePoint",
    "analyze_roofline",
    "classify_category",
    "ledger_fractions",
    "render_roofline",
    "roofline_records",
]

#: Breakdown-category classifier keyword lists, checked in order:
#: memory first (so "load/store issue" lands on the memory side it
#: models), then compute, then the explicit other list, then fallback
#: "other".  Matching is case-insensitive substring.
MEMORY_KEYWORDS = (
    "miss",
    "dram",
    "tlb",
    "memory",
    "load",
    "store",
    "write",
    "read",
    "streaming",
    "cache",
    "activation",
)
COMPUTE_KEYWORDS = (
    "issue",
    "compute",
    "kernel",
    "flop",
    "twiddle",
    "dependency",
    "address",
    "shuffle",
)

#: Trace resource classes counted as memory-system activity for the
#: event-level cross-check.
MEMORY_TRACE_CLASSES = ("dram", "tlb", "cache", "memory", "srf")


def classify_category(name: str) -> str:
    """``memory`` / ``compute`` / ``other`` for one breakdown category."""
    lowered = name.lower()
    for keyword in MEMORY_KEYWORDS:
        if keyword in lowered:
            return "memory"
    for keyword in COMPUTE_KEYWORDS:
        if keyword in lowered:
            return "compute"
    return "other"


def ledger_fractions(breakdown: Any) -> Dict[str, float]:
    """Memory/compute/other fractions of a cycle ledger."""
    total = float(breakdown.total)
    sums = {"memory": 0.0, "compute": 0.0, "other": 0.0}
    for category, cycles in breakdown.items():
        sums[classify_category(category)] += float(cycles)
    if total <= 0:
        return {key: 0.0 for key in sums}
    return {key: value / total for key, value in sums.items()}


@dataclasses.dataclass(frozen=True)
class RooflinePoint:
    """One kernel×machine point under its machine's roofs."""

    kernel: str
    machine: str
    cycles: float
    #: Arithmetic ops per memory word moved.
    intensity: float
    #: Achieved arithmetic throughput (ops/cycle).
    achieved: float
    #: The machine's arithmetic roof (ops/cycle).
    peak: float
    #: The machine's memory word rate (words/cycle).
    word_rate: float
    #: Ledger attribution fractions (memory/compute/other).
    fractions: Mapping[str, float]
    #: Busy fraction of memory-class trace tracks (None when untraced).
    trace_memory_fraction: Optional[float] = None

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the memory roof meets the arithmetic roof."""
        if self.word_rate <= 0:
            return float("inf")
        return self.peak / self.word_rate

    @property
    def attainable(self) -> float:
        """min(arithmetic roof, memory roof at this intensity)."""
        return min(self.peak, self.intensity * self.word_rate)

    @property
    def memory_fraction(self) -> float:
        return float(self.fractions["memory"])

    @property
    def roofline_bound(self) -> str:
        """Position relative to the ridge: which roof caps this point."""
        return "memory" if self.intensity < self.ridge_intensity else "compute"

    @property
    def ledger_bound(self) -> str:
        """Which attribution class dominates the measured ledger."""
        return max(self.fractions, key=lambda k: self.fractions[k])


def _word_rate(kernel: str, machine: str) -> float:
    """The memory word rate the §2.5 bound holds this pair to: VIRAM
    streams its on-chip DRAM, everything else the off-chip interface."""
    from repro.models.bounds import machine_word_rates

    rates = machine_word_rates(machine)
    return rates["onchip"] if machine == "viram" else rates["offchip"]


def analyze_roofline(
    workloads: Optional[Mapping[str, Any]] = None,
    *,
    traced: bool = False,
) -> List[RooflinePoint]:
    """Build the roofline point set for every registered pair.

    Runs are read through the memoization cache (cache hits after any
    report); ``traced=True`` additionally re-executes each pair under
    the tracer for the event-level memory-busy cross-check — slower,
    and bypasses the run cache by design.
    """
    from repro.mappings import registry
    from repro.models.bounds import kernel_footprint_words
    from repro.obs.ledger import record

    points: List[RooflinePoint] = []
    for kernel, machine in registry.available():
        kwargs: Dict[str, Any] = {}
        if workloads and kernel in workloads:
            kwargs["workload"] = workloads[kernel]
        run = registry.run(kernel, machine, **kwargs)
        moved = max(
            float(run.ops.memory_ops),
            kernel_footprint_words(kernel, kwargs.get("workload")),
        )
        arithmetic = float(run.ops.arithmetic)
        intensity = arithmetic / moved if moved > 0 else 0.0
        trace_fraction: Optional[float] = None
        if traced:
            trace_fraction = _trace_memory_fraction(kernel, machine, kwargs)
        point = RooflinePoint(
            kernel=kernel,
            machine=machine,
            cycles=float(run.cycles),
            intensity=intensity,
            achieved=arithmetic / run.cycles if run.cycles else 0.0,
            peak=float(run.spec.flops_per_cycle),
            word_rate=_word_rate(kernel, machine),
            fractions=ledger_fractions(run.breakdown),
            trace_memory_fraction=trace_fraction,
        )
        points.append(point)
        record(
            "roofline.point",
            kernel=kernel,
            machine=machine,
            intensity=point.intensity,
            memory_fraction=point.memory_fraction,
            bound=point.roofline_bound,
        )
    return points


def _trace_memory_fraction(
    kernel: str, machine: str, kwargs: Dict[str, Any]
) -> Optional[float]:
    """Busy cycles on memory-class tracks over total span cycles of a
    traced run (``None`` when the trace has no spans)."""
    from repro.trace.run import trace_run

    _, tracer = trace_run(kernel, machine, **kwargs)
    by_class = tracer.busy_by_class()
    # The accounting/* tracks replicate the whole ledger; exclude them
    # so the fraction reflects the fine-grained resource tracks.
    busy = {
        cls: cycles for cls, cycles in by_class.items() if cls != "accounting"
    }
    total = sum(busy.values())
    if total <= 0:
        return None
    memory = sum(
        cycles
        for cls, cycles in busy.items()
        if cls in MEMORY_TRACE_CLASSES
    )
    return memory / total


def render_roofline(points: List[RooflinePoint]) -> str:
    """The text table ``repro analyze roofline`` prints."""
    header = (
        f"{'kernel':<14s} {'machine':<8s} {'AI (ops/word)':>13s} "
        f"{'ridge':>8s} {'mem frac':>9s} {'cmp frac':>9s} "
        f"{'oth frac':>9s} {'roofline':>9s} {'ledger':>8s}"
    )
    lines = ["roofline attribution (per kernel x machine):", header]
    for point in points:
        ridge = (
            f"{point.ridge_intensity:8.2f}"
            if point.ridge_intensity != float("inf")
            else "     inf"
        )
        lines.append(
            f"{point.kernel:<14s} {point.machine:<8s} "
            f"{point.intensity:13.3f} {ridge} "
            f"{point.memory_fraction:9.3f} "
            f"{point.fractions['compute']:9.3f} "
            f"{point.fractions['other']:9.3f} "
            f"{point.roofline_bound:>9s} {point.ledger_bound:>8s}"
        )
    n_memory = sum(1 for p in points if p.roofline_bound == "memory")
    lines.append(
        f"{n_memory}/{len(points)} pairs sit left of their ridge point "
        "(memory roof caps attainable throughput)"
    )
    return "\n".join(lines)


def roofline_records(points: List[RooflinePoint]) -> List[Dict[str, Any]]:
    """JSON-safe records (the ``--json`` shape and the dashboard input)."""
    out: List[Dict[str, Any]] = []
    for point in points:
        out.append(
            {
                "kernel": point.kernel,
                "machine": point.machine,
                "cycles": point.cycles,
                "intensity_ops_per_word": point.intensity,
                "achieved_ops_per_cycle": point.achieved,
                "peak_ops_per_cycle": point.peak,
                "word_rate_words_per_cycle": point.word_rate,
                "ridge_intensity": (
                    point.ridge_intensity
                    if point.ridge_intensity != float("inf")
                    else None
                ),
                "attainable_ops_per_cycle": point.attainable,
                "memory_fraction": point.fractions["memory"],
                "compute_fraction": point.fractions["compute"],
                "other_fraction": point.fractions["other"],
                "roofline_bound": point.roofline_bound,
                "ledger_bound": point.ledger_bound,
                "trace_memory_fraction": point.trace_memory_fraction,
            }
        )
    return out


def roofline_json(points: List[RooflinePoint]) -> str:
    return json.dumps(roofline_records(points), indent=2, sort_keys=True)
