"""The flight recorder: an append-only JSONL event ledger per session.

One CLI invocation = one *session* = one ledger file at
``<obs root>/ledger/<session>.jsonl``.  Every event is a single JSON
line::

    {"session": "a1b2c3d4e5f6", "seq": 7, "kind": "planner.dispatch",
     "ts": 1736264400.123, "payload": {"unit": "batch", "cells": 96}}

* ``session`` — a **content-addressed** id: the sha256 (truncated to 12
  hex digits) over the command name, its argv, the model version stamp,
  the pid, and the session start time, so two sessions can never share
  a ledger file and the id itself witnesses what was run;
* ``seq`` — a per-session monotonic sequence number starting at 0; a
  gap or repeat is evidence of a lost or duplicated event and the
  ``invariant.obs.*`` checks treat it as corruption;
* ``kind`` — a dotted event name (``session.start``, ``sweep.plan``,
  ``planner.dispatch``, ``supervisor.retry``, ``chaos.injection``,
  ``pipeline.run`` ...);
* ``payload`` — the structured event body; supervisor events carry the
  *same* payload objects the supervisor mirrors onto the tracer, so the
  chaos tests can compare them byte-for-byte.

Recording is opt-in and zero-overhead when off, exactly like the
tracer: instrumentation sites call the module-level :func:`record`,
which is a no-op unless a recorder is installed (a CLI session is
active or a test opened :func:`recording`).  Pool *workers* never
install a recorder — the parent records the dispatch decisions, the
workers just compute — so a parallel sweep writes one ledger, not five.

Durability: each event is appended with a single ``O_APPEND`` write
(:func:`repro.ioutil.append_jsonl`), so concurrent appenders cannot
interleave within a line and a crash can tear at most the final line —
which :func:`read_ledger` quarantines instead of trusting.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ioutil import append_jsonl

__all__ = [
    "FlightRecorder",
    "current_recorder",
    "end_session",
    "obs_enabled",
    "obs_root",
    "read_ledger",
    "record",
    "recording",
    "session_id",
    "start_session",
]

#: Ledger format version, stamped on every ``session.start`` event.
LEDGER_SCHEMA = 1


def obs_enabled() -> bool:
    """``False`` when ``REPRO_OBS=0`` disables the whole layer."""
    return os.environ.get("REPRO_OBS", "1") not in ("0", "false", "no")


def obs_root() -> Path:
    """The observability state directory.

    ``$REPRO_OBS_DIR`` when set, else ``.repro/obs`` under the current
    working directory (the ledger is an artifact of *this checkout's*
    runs, unlike the machine-wide disk cache).
    """
    env = os.environ.get("REPRO_OBS_DIR")
    if env:
        return Path(env)
    return Path(".repro") / "obs"


def session_id(
    command: str,
    argv: Sequence[str],
    *,
    pid: Optional[int] = None,
    started: Optional[float] = None,
) -> str:
    """Content-addressed session id (12 hex digits).

    Hashes what identifies the session — command, argv, model version,
    pid, start time — so ids are unique across concurrent processes and
    re-runs while remaining derivable from the session's own content.
    """
    from repro.perf.cache import model_version_stamp

    pid = os.getpid() if pid is None else pid
    started = time.time() if started is None else started
    text = "|".join(
        [
            model_version_stamp(),
            command,
            json.dumps(list(argv)),
            str(pid),
            f"{started:.6f}",
        ]
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


class FlightRecorder:
    """Append-only event recorder for one session.

    ``path=None`` keeps events in memory only (tests, the invariant
    checks); otherwise every event is appended to the ledger file as it
    is recorded.  Thread-safe: the sequence counter and the append are
    taken under one lock, so ``seq`` order equals file order.
    """

    def __init__(
        self,
        session: str,
        path: Optional[Path] = None,
        *,
        command: str = "",
    ) -> None:
        self.session = session
        self.command = command
        self.path = Path(path) if path is not None else None
        self.started = time.time()
        self._seq = 0
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._counts: Dict[str, int] = {}
        self._errors = 0

    def record(self, kind: str, **payload: Any) -> Dict[str, Any]:
        """Append one event; returns the event dict (with seq filled)."""
        with self._lock:
            event: Dict[str, Any] = {
                "session": self.session,
                "seq": self._seq,
                "kind": kind,
                "ts": time.time(),
                "payload": payload,
            }
            self._seq += 1
            self._events.append(event)
            self._counts[kind] = self._counts.get(kind, 0) + 1
            if self.path is not None:
                try:
                    append_jsonl(self.path, event)
                except OSError:
                    # The recorder observes; it must never take down the
                    # run it observes.  Count the miss so doctor can see.
                    self._errors += 1
        return event

    # -- reading ---------------------------------------------------------

    @property
    def events(self) -> Tuple[Dict[str, Any], ...]:
        with self._lock:
            return tuple(dict(e) for e in self._events)

    @property
    def n_events(self) -> int:
        with self._lock:
            return self._seq

    @property
    def write_errors(self) -> int:
        with self._lock:
            return self._errors

    def counts(self) -> Dict[str, int]:
        """Events recorded so far, tallied by kind."""
        with self._lock:
            return dict(self._counts)

    def events_of(self, prefix: str) -> List[Dict[str, Any]]:
        """Events whose kind equals ``prefix`` or starts with
        ``prefix + "."``, in sequence order."""
        with self._lock:
            return [
                dict(e)
                for e in self._events
                if e["kind"] == prefix or e["kind"].startswith(prefix + ".")
            ]

    def telemetry(self) -> Dict[str, Any]:
        """The ``obs.*`` telemetry-source shape."""
        with self._lock:
            out: Dict[str, Any] = {
                "session": self.session,
                "events": self._seq,
                "write_errors": self._errors,
            }
            for kind, n in self._counts.items():
                out[f"events.{kind}"] = n
        return out


#: The process-wide active recorder (``None`` = recording off).
_ACTIVE: Optional[FlightRecorder] = None


def current_recorder() -> Optional[FlightRecorder]:
    """The installed recorder, or ``None`` when recording is off."""
    return _ACTIVE


def record(kind: str, **payload: Any) -> Optional[Dict[str, Any]]:
    """Record one event on the active recorder; no-op when off."""
    recorder = _ACTIVE
    if recorder is None:
        return None
    return recorder.record(kind, **payload)


@contextmanager
def recording(
    recorder: Optional[FlightRecorder] = None,
) -> Iterator[FlightRecorder]:
    """Install ``recorder`` (default: a fresh in-memory one) as the
    active recorder for the duration of the context.  Re-entrant; the
    previous recorder is restored even when the body raises."""
    global _ACTIVE
    if recorder is None:
        recorder = FlightRecorder(session_id("recording", ()), path=None)
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous


def ledger_dir(root: Optional[Path] = None) -> Path:
    """The directory session ledgers are written to."""
    return (root if root is not None else obs_root()) / "ledger"


def start_session(
    command: str, argv: Sequence[str], *, root: Optional[Path] = None
) -> Optional[FlightRecorder]:
    """Open a session ledger and install its recorder process-wide.

    Returns the recorder, or ``None`` when the layer is disabled
    (``REPRO_OBS=0``) or the ledger directory cannot be created — a
    degraded environment must not block the command itself.
    """
    global _ACTIVE
    if not obs_enabled():
        return None
    started = time.time()
    session = session_id(command, argv, started=started)
    path = ledger_dir(root) / f"{session}.jsonl"
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    recorder = FlightRecorder(session, path, command=command)
    recorder.record(
        "session.start",
        schema=LEDGER_SCHEMA,
        command=command,
        argv=list(argv),
        pid=os.getpid(),
    )
    _ACTIVE = recorder
    return recorder


def end_session(exit_code: int) -> Optional[FlightRecorder]:
    """Record ``session.end`` and uninstall the active recorder."""
    global _ACTIVE
    recorder = _ACTIVE
    if recorder is None:
        return None
    recorder.record(
        "session.end",
        exit_code=int(exit_code),
        events=recorder.n_events,
        wall_seconds=time.time() - recorder.started,
    )
    _ACTIVE = None
    return recorder


def read_ledger(path: Path) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Parse a ledger file line by line.

    Returns ``(events, corrupt_lines)``: every line that parses as a
    JSON object becomes an event, every line that does not (a torn tail
    after a crash, editor damage) is returned verbatim for quarantine —
    never raised.  Order is file order.
    """
    events: List[Dict[str, Any]] = []
    corrupt: List[str] = []
    try:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
    except OSError:
        return [], []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            corrupt.append(line)
            continue
        if isinstance(obj, dict):
            events.append(obj)
        else:
            corrupt.append(line)
    return events, corrupt


def _obs_telemetry_source() -> Dict[str, Any]:
    """The ``obs`` TELEMETRY namespace: the active recorder's census."""
    recorder = _ACTIVE
    if recorder is None:
        return {}
    return recorder.telemetry()
