"""Live progress reporting for sweeps: TTY and JSON-lines modes.

A thousand-cell fuzz campaign used to be silent until it finished.  The
:class:`ProgressReporter` gives the planner and the Supervisor a place
to say what is happening *while* it happens:

* ``tty`` mode — one carriage-return-updated status line on stderr
  (``sweep: 412/1000 cells (3 batches, 240 cells batched) retries=1
  ladder=parallel``), throttled so a dense sweep does not spend its
  time printing;
* ``jsonl`` mode — one JSON object per update on stderr, for drivers
  that machine-read progress (CI logs, the future ``repro serve``);
* ``off`` — every call is a cheap no-op (the default unless a CLI flag
  or ``REPRO_PROGRESS`` turns it on).

Stdout is never touched: reports, manifests, and golden outputs stay
byte-identical whether or not progress is displayed.  Installation
mirrors the tracer: :func:`progress_reporting` installs a reporter
process-wide, instrumentation sites read it through
:func:`current_reporter` and treat ``None`` as "off".  Pool workers
inherit nothing — only the parent process reports.
"""

from __future__ import annotations

import json
import os
import sys
import time
from contextlib import contextmanager
from typing import Any, Dict, IO, Iterator, Optional

__all__ = [
    "ProgressReporter",
    "current_reporter",
    "progress_reporting",
    "resolve_mode",
]

MODES = ("off", "tty", "jsonl", "auto")

#: Minimum seconds between TTY repaints (JSONL records are not
#: throttled: each one is an event, not a repaint).
TTY_INTERVAL = 0.1


def resolve_mode(mode: Optional[str]) -> str:
    """Normalise a ``--progress`` value or ``REPRO_PROGRESS`` setting.

    ``auto`` (and ``None`` with ``REPRO_PROGRESS`` unset) means "tty
    when stderr is a terminal, else off" — progress never pollutes
    captured stderr unless explicitly requested.
    """
    if mode is None:
        mode = os.environ.get("REPRO_PROGRESS", "auto")
    mode = mode.lower()
    if mode not in MODES:
        from repro.errors import ConfigError

        raise ConfigError(
            f"unknown progress mode {mode!r}; expected one of {MODES}"
        )
    if mode == "auto":
        try:
            is_tty = sys.stderr.isatty()
        except Exception:
            is_tty = False
        return "tty" if is_tty else "off"
    return mode


class ProgressReporter:
    """Aggregates sweep state and renders it live.

    One reporter can observe several sweeps in sequence (a report's
    prewarm, its Table 3 sweep, a sensitivity grid): :meth:`begin_sweep`
    resets the per-sweep counters while the cumulative ``sweeps`` count
    survives.  All methods are safe to call when the sweep is empty.
    """

    def __init__(
        self,
        mode: str = "tty",
        stream: Optional[IO[str]] = None,
        clock=time.monotonic,
    ) -> None:
        if mode not in ("tty", "jsonl"):
            raise ValueError(f"reporter mode must be tty/jsonl, not {mode!r}")
        self.mode = mode
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._last_paint = 0.0
        self._painted = False
        self.sweeps = 0
        self.updates = 0
        self._reset_sweep("")

    def _reset_sweep(self, label: str) -> None:
        self.label = label
        self.total_cells = 0
        self.done_cells = 0
        self.total_units = 0
        self.done_units = 0
        self.batch_units = 0
        self.batched_cells = 0
        self.cached_cells = 0
        self.retries = 0
        self.ladder = "parallel"

    # -- sweep lifecycle -------------------------------------------------

    def begin_sweep(
        self,
        label: str,
        *,
        total_cells: int,
        cached_cells: int = 0,
        total_units: int = 0,
        batch_units: int = 0,
        batched_cells: int = 0,
    ) -> None:
        self._reset_sweep(label)
        self.sweeps += 1
        self.total_cells = int(total_cells)
        self.cached_cells = int(cached_cells)
        self.done_cells = int(cached_cells)
        self.total_units = int(total_units)
        self.batch_units = int(batch_units)
        self.batched_cells = int(batched_cells)
        self._emit(event="begin", force=True)

    def advance(self, cells: int = 1, units: int = 1) -> None:
        """``cells`` finished executing (``units`` dispatch units)."""
        self.done_cells += int(cells)
        self.done_units += int(units)
        self._emit(event="advance")

    def note_retry(self, chunks: int = 1) -> None:
        self.retries += int(chunks)
        self._emit(event="retry", force=True)

    def note_ladder(self, state: str) -> None:
        """Degradation-ladder transition (``parallel`` → ``fresh-pool``
        → ``isolating`` → ``serial``)."""
        self.ladder = state
        self._emit(event="ladder", force=True)

    def end_sweep(self) -> None:
        self._emit(event="end", force=True)
        if self.mode == "tty" and self._painted:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except Exception:
                pass
            self._painted = False

    # -- rendering -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "sweep": self.label,
            "cells_done": self.done_cells,
            "cells_total": self.total_cells,
            "cells_cached": self.cached_cells,
            "units_done": self.done_units,
            "units_total": self.total_units,
            "batch_units": self.batch_units,
            "batched_cells": self.batched_cells,
            "retries": self.retries,
            "ladder": self.ladder,
        }

    def status_line(self) -> str:
        parts = [
            f"{self.label or 'sweep'}: "
            f"{self.done_cells}/{self.total_cells} cells"
        ]
        if self.total_units:
            mix = f"{self.done_units}/{self.total_units} units"
            if self.batch_units:
                mix += (
                    f", {self.batch_units} batches"
                    f"/{self.batched_cells} cells"
                )
            parts.append(f"({mix})")
        if self.cached_cells:
            parts.append(f"cached={self.cached_cells}")
        if self.retries:
            parts.append(f"retries={self.retries}")
        if self.ladder != "parallel":
            parts.append(f"ladder={self.ladder}")
        return " ".join(parts)

    def _emit(self, event: str, force: bool = False) -> None:
        self.updates += 1
        try:
            if self.mode == "jsonl":
                record = {"event": event}
                record.update(self.snapshot())
                self.stream.write(json.dumps(record, sort_keys=True) + "\n")
                self.stream.flush()
                return
            now = self._clock()
            if not force and now - self._last_paint < TTY_INTERVAL:
                return
            self._last_paint = now
            self.stream.write("\r\x1b[2K" + self.status_line())
            self.stream.flush()
            self._painted = True
        except Exception:
            # Progress is decoration; a closed stream must not kill the
            # sweep it narrates.
            pass


#: The process-wide active reporter (``None`` = progress off).
_ACTIVE: Optional[ProgressReporter] = None


def current_reporter() -> Optional[ProgressReporter]:
    """The installed reporter, or ``None`` when progress is off."""
    return _ACTIVE


@contextmanager
def progress_reporting(
    mode: Optional[str] = None,
    stream: Optional[IO[str]] = None,
) -> Iterator[Optional[ProgressReporter]]:
    """Install a reporter for ``mode`` (resolved via
    :func:`resolve_mode`) for the duration of the context.  ``off``
    installs nothing and yields ``None``."""
    global _ACTIVE
    resolved = resolve_mode(mode)
    if resolved == "off":
        yield None
        return
    reporter = ProgressReporter(resolved, stream=stream)
    previous = _ACTIVE
    _ACTIVE = reporter
    try:
        yield reporter
    finally:
        if reporter._painted:
            reporter.end_sweep()
        _ACTIVE = previous
