"""Metrics history: one durable record per completed command.

``.repro/obs/history.jsonl`` is the longitudinal record the repo never
had: every ``repro report``, ``run``, ``sensitivity``, ``check``, and
``pipeline`` invocation appends one JSON line on successful completion
(:func:`append_history`, called by the CLI session wrapper) holding

* **run identity** — session id, command, argv, model version stamp,
  the git sha when the caller provides one (``REPRO_GIT_SHA``, set by
  CI), schema version;
* **wall timings** — the command's wall seconds plus the perf-timer
  tree from the TELEMETRY snapshot;
* **the full TELEMETRY snapshot** — cache tiers, tensor engine,
  resilience ledger, scenario stats, obs census;
* **deterministic model metrics** — per kernel×machine cycles and
  percent-of-peak for commands that ran the standard sweep
  (:func:`deterministic_run_metrics` reads them back through the run
  cache, so recording costs microseconds).

``repro metrics regress`` (:mod:`repro.obs.regress`) consumes these
records as its current-vs-baseline evidence; ``repro doctor`` probes
the file line-by-line and quarantines, never trusts, a torn tail.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.ioutil import append_jsonl, atomic_write_text
from repro.obs.ledger import obs_root

__all__ = [
    "HISTORY_SCHEMA",
    "append_history",
    "build_record",
    "deterministic_run_metrics",
    "history_path",
    "latest_record",
    "quarantine_corrupt",
    "read_history",
]

#: History record format version.
HISTORY_SCHEMA = 1


def history_path(root: Optional[Path] = None) -> Path:
    """Where the metrics history lives."""
    return (root if root is not None else obs_root()) / "history.jsonl"


def deterministic_run_metrics() -> Dict[str, float]:
    """Per kernel×machine cycles and percent-of-peak, as flat metrics.

    Reads every registered pair through ``registry.run`` — after a
    report these are all memoization-cache hits, so building the metric
    set costs microseconds and never re-simulates.  The values are
    deterministic for a model version, which is what lets the
    regression gate hold them to an exact tolerance band.
    """
    from repro.mappings import registry

    out: Dict[str, float] = {}
    for kernel, machine in registry.available():
        run = registry.run(kernel, machine)
        out[f"run.{kernel}.{machine}.cycles"] = float(run.cycles)
        out[f"run.{kernel}.{machine}.percent_of_peak"] = float(
            run.percent_of_peak
        )
    return out


def build_record(
    command: str,
    argv: Sequence[str],
    *,
    session: str,
    exit_code: int,
    wall_seconds: float,
    metrics: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Assemble one history record (JSON-safe, schema-stamped)."""
    from repro.perf.cache import model_version_stamp
    from repro.trace.telemetry import TELEMETRY

    telemetry = TELEMETRY.snapshot()
    # Only JSON-safe scalars survive; a source returning an exotic value
    # must not make the whole record unwritable.
    safe_telemetry: Dict[str, Any] = {}
    for key, value in telemetry.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            safe_telemetry[key] = value
        else:
            safe_telemetry[key] = repr(value)
    record: Dict[str, Any] = {
        "schema_version": HISTORY_SCHEMA,
        "session": session,
        "command": command,
        "argv": list(argv),
        "exit_code": int(exit_code),
        "finished": time.time(),
        "model_version": model_version_stamp(),
        "git_sha": os.environ.get("REPRO_GIT_SHA") or None,
        "metrics": dict(metrics or {}),
        "wall_seconds": float(wall_seconds),
        "telemetry": safe_telemetry,
    }
    record["metrics"][f"{command}.wall_seconds"] = float(wall_seconds)
    return record


def append_history(
    record: Dict[str, Any], root: Optional[Path] = None
) -> Optional[Path]:
    """Append one record to the history file; returns the path, or
    ``None`` when the file cannot be written (degraded environments
    must not block the command that just succeeded)."""
    path = history_path(root)
    try:
        return append_jsonl(path, record)
    except OSError:
        return None


def read_history(
    path: Optional[Path] = None,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Parse the history line by line.

    Returns ``(records, corrupt_lines)``; a line that does not parse as
    a JSON object (torn tail, editor damage) is returned for quarantine
    instead of raising, and lines whose ``schema_version`` is newer than
    this code understands are skipped into the corrupt list too — a
    future schema is unreadable, not trustable.
    """
    path = path if path is not None else history_path()
    records: List[Dict[str, Any]] = []
    corrupt: List[str] = []
    try:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
    except OSError:
        return [], []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            corrupt.append(line)
            continue
        if (
            not isinstance(obj, dict)
            or int(obj.get("schema_version", 0)) > HISTORY_SCHEMA
        ):
            corrupt.append(line)
            continue
        records.append(obj)
    return records, corrupt


def latest_record(
    path: Optional[Path] = None, command: Optional[str] = None
) -> Optional[Dict[str, Any]]:
    """The most recent (last) parseable record, optionally restricted to
    one command."""
    records, _ = read_history(path)
    if command is not None:
        records = [r for r in records if r.get("command") == command]
    return records[-1] if records else None


def quarantine_corrupt(path: Optional[Path] = None) -> int:
    """Rewrite the history without its corrupt lines, saving them next
    to the file (``history.quarantine``); returns how many lines were
    quarantined.  Atomic: readers see the old file or the healed one.
    """
    path = path if path is not None else history_path()
    records, corrupt = read_history(path)
    if not corrupt:
        return 0
    quarantine = Path(path).with_suffix(".quarantine")
    try:
        with open(quarantine, "a", encoding="utf-8") as fh:
            for line in corrupt:
                fh.write(line + "\n")
        atomic_write_text(
            path,
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
        )
    except OSError:
        return 0
    return len(corrupt)
