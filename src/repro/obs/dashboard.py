"""Self-contained HTML dashboard over the obs layer's evidence.

One file, no external assets, no JavaScript dependencies: the SVG is
hand-assembled exactly like :mod:`repro.eval.svg` (whose utilization
timeline it embeds verbatim).  Sections:

* **metric sparklines** — each numeric history metric plotted over the
  records in ``.repro/obs/history.jsonl``, newest value printed next to
  the line (the longitudinal view the regression gate takes bands
  over);
* **cache hit rates** — every ``hits``/``misses`` counter pair found in
  the latest record's TELEMETRY snapshot, rendered with its computed
  hit rate;
* **roofline chart** — the log-log intensity × throughput plane from
  :mod:`repro.obs.roofline`, one roof pair per machine, one point per
  kernel×machine, memory-bound points left of their ridge;
* **utilization timeline** — the per-resource busy/idle Gantt of a
  traced run (:func:`repro.trace.export.timeline_svg`), giving the
  event-level view behind the roofline's memory-bound fractions.

``repro analyze roofline --html out.html`` writes it; CI uploads it as
a build artifact.
"""

from __future__ import annotations

import html
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.ioutil import atomic_write_text

__all__ = [
    "build_dashboard",
    "cache_hit_rates",
    "history_series",
    "roofline_svg",
    "sparkline_svg",
    "write_dashboard",
]

#: Machine colors shared with the figure SVGs.
from repro.eval.svg import DEFAULT_COLOR, MACHINE_COLORS

SPARK_W, SPARK_H = 180, 36
ROOF_W, ROOF_H = 560, 360
ROOF_MARGIN = 48


def history_series(
    records: Sequence[Mapping[str, Any]], limit: int = 24
) -> Dict[str, List[float]]:
    """Per-metric value series over the history records (oldest first),
    restricted to metrics with at least one sample; at most ``limit``
    most-recent samples each."""
    series: Dict[str, List[float]] = {}
    for record in records:
        metrics = record.get("metrics")
        if not isinstance(metrics, Mapping):
            continue
        for name, value in metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                series.setdefault(name, []).append(float(value))
    return {name: values[-limit:] for name, values in sorted(series.items())}


def sparkline_svg(values: Sequence[float]) -> str:
    """A tiny inline polyline for one metric's history."""
    if not values:
        return ""
    vmin, vmax = min(values), max(values)
    span = (vmax - vmin) or 1.0
    n = len(values)
    step = SPARK_W / max(n - 1, 1)
    points = " ".join(
        f"{i * step:.1f},{SPARK_H - 3 - (SPARK_H - 6) * (v - vmin) / span:.1f}"
        for i, v in enumerate(values)
    )
    last_y = SPARK_H - 3 - (SPARK_H - 6) * (values[-1] - vmin) / span
    return (
        f'<svg width="{SPARK_W}" height="{SPARK_H}" '
        f'viewBox="0 0 {SPARK_W} {SPARK_H}" class="spark">'
        f'<polyline points="{points}" fill="none" stroke="#1a73e8" '
        'stroke-width="1.5"/>'
        f'<circle cx="{(n - 1) * step:.1f}" cy="{last_y:.1f}" r="2.5" '
        'fill="#1a73e8"/></svg>'
    )


def cache_hit_rates(telemetry: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Every ``<ns>.hits``/``<ns>.misses`` counter pair in a telemetry
    snapshot, with its hit rate."""
    out: List[Dict[str, Any]] = []
    for key in sorted(telemetry):
        if not key.endswith(".hits"):
            continue
        base = key[: -len(".hits")]
        misses = telemetry.get(base + ".misses")
        hits = telemetry[key]
        if not isinstance(hits, (int, float)) or not isinstance(
            misses, (int, float)
        ):
            continue
        total = float(hits) + float(misses)
        out.append(
            {
                "cache": base,
                "hits": float(hits),
                "misses": float(misses),
                "rate": (float(hits) / total) if total else None,
            }
        )
    return out


def _log_x(value: float, lo: float, hi: float) -> float:
    span = math.log10(hi / lo)
    return ROOF_MARGIN + (ROOF_W - 2 * ROOF_MARGIN) * (
        math.log10(max(value, lo) / lo) / span
    )


def _log_y(value: float, lo: float, hi: float) -> float:
    span = math.log10(hi / lo)
    return (ROOF_H - ROOF_MARGIN) - (ROOF_H - 2 * ROOF_MARGIN) * (
        math.log10(max(value, lo) / lo) / span
    )


def roofline_svg(records: Sequence[Mapping[str, Any]]) -> str:
    """The log-log roofline chart from :func:`roofline_records` output.

    Per machine: the sloped memory roof (``throughput = intensity ×
    word_rate``) up to its ridge, then the flat arithmetic roof.  Per
    kernel×machine: an achieved-throughput point, labelled and colored
    by machine; memory-bound points sit left of their machine's ridge.
    """
    if not records:
        return "<p>no roofline data</p>"
    intensities = [max(r["intensity_ops_per_word"], 1e-3) for r in records]
    peaks = [r["peak_ops_per_cycle"] for r in records]
    achieved = [max(r["achieved_ops_per_cycle"], 1e-4) for r in records]
    x_lo = min(intensities) / 4
    x_hi = max(
        max(intensities),
        max(
            (r["ridge_intensity"] or 1.0 for r in records),
        ),
    ) * 4
    y_lo = min(achieved) / 4
    y_hi = max(peaks) * 2

    parts: List[str] = []
    # One roof pair per machine.
    machines: Dict[str, Mapping[str, Any]] = {}
    for r in records:
        machines.setdefault(r["machine"], r)
    for machine, r in sorted(machines.items()):
        color = MACHINE_COLORS.get(machine, DEFAULT_COLOR)
        peak = r["peak_ops_per_cycle"]
        rate = r["word_rate_words_per_cycle"]
        ridge = (peak / rate) if rate else None
        if ridge:
            # Memory roof: from the left edge up to the ridge.
            x0, x1 = x_lo, min(ridge, x_hi)
            parts.append(
                f'<line class="roof-mem" data-machine="{machine}" '
                f'x1="{_log_x(x0, x_lo, x_hi):.1f}" '
                f'y1="{_log_y(x0 * rate, y_lo, y_hi):.1f}" '
                f'x2="{_log_x(x1, x_lo, x_hi):.1f}" '
                f'y2="{_log_y(x1 * rate, y_lo, y_hi):.1f}" '
                f'stroke="{color}" stroke-width="1" stroke-dasharray="4 3"/>'
            )
            flat_x0 = min(ridge, x_hi)
        else:
            flat_x0 = x_lo
        parts.append(
            f'<line class="roof-cpu" data-machine="{machine}" '
            f'x1="{_log_x(flat_x0, x_lo, x_hi):.1f}" '
            f'y1="{_log_y(peak, y_lo, y_hi):.1f}" '
            f'x2="{ROOF_W - ROOF_MARGIN}" '
            f'y2="{_log_y(peak, y_lo, y_hi):.1f}" '
            f'stroke="{color}" stroke-width="1"/>'
        )
    for r in records:
        color = MACHINE_COLORS.get(r["machine"], DEFAULT_COLOR)
        x = _log_x(max(r["intensity_ops_per_word"], 1e-3), x_lo, x_hi)
        y = _log_y(max(r["achieved_ops_per_cycle"], 1e-4), y_lo, y_hi)
        parts.append(
            f'<circle class="point" data-kernel="{r["kernel"]}" '
            f'data-machine="{r["machine"]}" '
            f'data-bound="{r["roofline_bound"]}" cx="{x:.1f}" cy="{y:.1f}" '
            f'r="4" fill="{color}"/>'
            f'<text x="{x + 6:.1f}" y="{y - 4:.1f}" font-size="8" '
            f'fill="#5f6368">{r["kernel"]}/{r["machine"]}</text>'
        )
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{ROOF_W}" '
        f'height="{ROOF_H}" viewBox="0 0 {ROOF_W} {ROOF_H}" '
        'font-family="sans-serif">'
        '<text x="16" y="20" font-size="13" font-weight="bold">'
        'roofline: achieved ops/cycle vs arithmetic intensity '
        '(log-log)</text>'
        f'<text x="{ROOF_W // 2}" y="{ROOF_H - 8}" font-size="10" '
        'text-anchor="middle">arithmetic intensity (ops/word)</text>'
        + "".join(parts)
        + "</svg>"
    )


def build_dashboard(
    history_records: Sequence[Mapping[str, Any]],
    roofline: Sequence[Mapping[str, Any]],
    *,
    timeline: Optional[str] = None,
) -> str:
    """Assemble the full HTML document as a string."""
    latest = history_records[-1] if history_records else {}
    telemetry = latest.get("telemetry") or {}
    series = history_series(history_records)

    spark_rows = "".join(
        "<tr><td><code>{name}</code></td><td>{svg}</td>"
        "<td class='num'>{last:.6g}</td><td class='num'>{n}</td></tr>".format(
            name=html.escape(name),
            svg=sparkline_svg(values),
            last=values[-1],
            n=len(values),
        )
        for name, values in series.items()
    )
    cache_rows = "".join(
        "<tr><td><code>{cache}</code></td><td class='num'>{hits:.0f}</td>"
        "<td class='num'>{misses:.0f}</td><td class='num'>{rate}</td></tr>"
        .format(
            cache=html.escape(row["cache"]),
            hits=row["hits"],
            misses=row["misses"],
            rate=(
                f"{row['rate']:.1%}" if row["rate"] is not None else "n/a"
            ),
        )
        for row in cache_hit_rates(telemetry)
    )
    roof_rows = "".join(
        "<tr><td>{kernel}</td><td>{machine}</td>"
        "<td class='num'>{ai:.3f}</td><td class='num'>{mem:.1%}</td>"
        "<td>{bound}</td></tr>".format(
            kernel=html.escape(r["kernel"]),
            machine=html.escape(r["machine"]),
            ai=r["intensity_ops_per_word"],
            mem=r["memory_fraction"],
            bound=r["roofline_bound"],
        )
        for r in roofline
    )
    session = html.escape(str(latest.get("session", "—")))
    command = html.escape(str(latest.get("command", "—")))
    sections = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro observability dashboard</title>",
        "<style>body{font-family:sans-serif;margin:24px;color:#202124}"
        "table{border-collapse:collapse;margin:12px 0}"
        "td,th{border:1px solid #dadce0;padding:4px 10px;font-size:12px}"
        "th{background:#f1f3f4;text-align:left}.num{text-align:right}"
        "h2{margin-top:32px}code{font-size:11px}</style></head><body>",
        "<h1>repro observability dashboard</h1>",
        f"<p>latest session <code>{session}</code> "
        f"(command <code>{command}</code>); "
        f"{len(history_records)} history record(s)</p>",
        "<h2>roofline attribution</h2>",
        roofline_svg(roofline),
        "<table><tr><th>kernel</th><th>machine</th><th>AI (ops/word)</th>"
        "<th>memory fraction</th><th>bound</th></tr>",
        roof_rows,
        "</table>",
        "<h2>metric history</h2>",
        "<table><tr><th>metric</th><th>trend</th><th>latest</th>"
        "<th>samples</th></tr>",
        spark_rows or "<tr><td colspan='4'>no history yet</td></tr>",
        "</table>",
        "<h2>cache hit rates (latest snapshot)</h2>",
        "<table><tr><th>cache</th><th>hits</th><th>misses</th>"
        "<th>rate</th></tr>",
        cache_rows or "<tr><td colspan='4'>no cache counters</td></tr>",
        "</table>",
    ]
    if timeline:
        sections += ["<h2>utilization timeline (traced run)</h2>", timeline]
    sections.append("</body></html>")
    return "".join(sections)


def write_dashboard(
    path: Path,
    history_records: Sequence[Mapping[str, Any]],
    roofline: Sequence[Mapping[str, Any]],
    *,
    timeline: Optional[str] = None,
) -> Path:
    """Atomically write the dashboard HTML; returns the path."""
    return atomic_write_text(
        path,
        build_dashboard(history_records, roofline, timeline=timeline),
    )
