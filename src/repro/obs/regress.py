"""``repro metrics regress``: the continuous-benchmarking gate.

Compares the **current** evidence (the newest record in
``.repro/obs/history.jsonl``) against two baseline families:

* **prior history** — the median of each metric over every earlier
  parseable history record (median, not mean: one outlier run must not
  move the baseline);
* **committed ``BENCH_*.json`` files** — the repo's perf-guard
  artifacts, read through the version-tolerant loader
  (:mod:`repro.obs.bench`), with the legacy metric names aliased onto
  the history names (``cold_report_seconds`` → ``report.wall_seconds``).

Every metric gets a *class* that decides its tolerance band:

* ``exact`` — the deterministic model outputs
  (``run.<kernel>.<machine>.cycles`` / ``.percent_of_peak``).  These
  are pure functions of the model version; **any** drift beyond float
  noise (rtol 1e-9), in either direction, is a failure — a faster
  wrong number is still a wrong number.
* ``time`` — wall-clock metrics (``*_seconds``).  One-sided: only a
  slowdown beyond ``time_rtol`` (default 0.5, i.e. +50%, overridable
  via ``REPRO_REGRESS_TIME_RTOL``) fails, and normally only against
  *history* baselines — committed BENCH timings were measured on other
  hardware and are reported for context.  A versioned BENCH file can
  opt specific timings *into* gating by naming them in its
  ``gated_time_metrics`` list (used by warm-latency guards whose
  numbers are refreshed on the measuring machine, e.g.
  ``BENCH_PR9.json``'s ``warm_report_seconds``).
* ``info`` — everything else (counts, ratios, cache stats): shown,
  never gated.

The gate exits non-zero iff at least one gated comparison regressed.
An empty history is not a failure (the gate runs after ``repro
report`` in CI, which guarantees a record) but is loudly reported.
"""

from __future__ import annotations

import dataclasses
import os
import statistics
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.bench import (
    discover_bench_files,
    load_bench_document,
    load_bench_metrics,
)
from repro.obs.history import history_path, read_history

__all__ = [
    "Comparison",
    "RegressReport",
    "bench_baselines",
    "bench_gated_time",
    "classify_metric",
    "history_baselines",
    "render_regress",
    "run_regress",
]

#: Relative tolerance for ``exact`` metrics (float noise only).
EXACT_RTOL = 1e-9

#: Legacy BENCH metric names → the history metric they correspond to.
BENCH_ALIASES = {
    "report_seconds": "report.wall_seconds",
    "cold_report_seconds": "report.wall_seconds",
    "warm_report_seconds": "run.warm_report_seconds",
}


def classify_metric(name: str) -> str:
    """``exact`` / ``time`` / ``info`` for one metric name."""
    if name.endswith(".cycles") or name.endswith(".percent_of_peak"):
        return "exact"
    if name.endswith("_seconds") or name.endswith(".seconds"):
        return "time"
    return "info"


def time_rtol() -> float:
    """The one-sided slowdown tolerance for ``time`` metrics."""
    try:
        return float(os.environ.get("REPRO_REGRESS_TIME_RTOL", "0.5"))
    except ValueError:
        return 0.5


@dataclasses.dataclass(frozen=True)
class Comparison:
    """One metric held against one baseline source."""

    metric: str
    metric_class: str
    current: Optional[float]
    baseline: float
    source: str
    #: ``ok`` / ``regressed`` / ``info``
    status: str
    detail: str = ""

    @property
    def gated(self) -> bool:
        return self.status in ("ok", "regressed")


@dataclasses.dataclass
class RegressReport:
    """Everything ``repro metrics regress`` concluded."""

    comparisons: List[Comparison]
    notes: List[str]
    current_session: Optional[str] = None
    current_command: Optional[str] = None

    @property
    def regressions(self) -> List[Comparison]:
        return [c for c in self.comparisons if c.status == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def history_baselines(
    records: List[Dict[str, Any]]
) -> Dict[str, Tuple[float, int]]:
    """Per-metric ``(median, n_samples)`` over prior history records."""
    samples: Dict[str, List[float]] = {}
    for record in records:
        metrics = record.get("metrics")
        if not isinstance(metrics, Mapping):
            continue
        for name, value in metrics.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                samples.setdefault(name, []).append(float(value))
    return {
        name: (statistics.median(values), len(values))
        for name, values in samples.items()
    }


def bench_baselines(
    bench_root: Optional[Path] = None,
) -> Tuple[Dict[str, Dict[str, float]], List[str]]:
    """``{source_name: {metric: value}}`` from the committed BENCH files
    plus a list of load errors (an unparseable committed baseline is
    itself worth failing loudly about — the caller decides)."""
    root = bench_root if bench_root is not None else Path(".")
    out: Dict[str, Dict[str, float]] = {}
    errors: List[str] = []
    for path in discover_bench_files(root):
        try:
            metrics, _ = load_bench_metrics(path)
        except (OSError, ValueError) as exc:
            errors.append(f"{path.name}: {exc}")
            continue
        aliased = {
            BENCH_ALIASES.get(name, name): value
            for name, value in metrics.items()
        }
        out[path.name] = aliased
    return out, errors


def bench_gated_time(
    bench_root: Optional[Path] = None,
) -> Dict[str, frozenset]:
    """Per BENCH file: the time-class metrics it declared *gated*
    (``gated_time_metrics`` in the versioned envelope), alias-resolved
    to history metric names.  Files that never opt in gate nothing —
    their timings stay cross-machine context."""
    root = bench_root if bench_root is not None else Path(".")
    out: Dict[str, frozenset] = {}
    for path in discover_bench_files(root):
        try:
            _, _, gated = load_bench_document(path)
        except (OSError, ValueError):
            continue  # already reported by bench_baselines
        if gated:
            out[path.name] = frozenset(
                BENCH_ALIASES.get(name, name) for name in gated
            )
    return out


def _compare(
    metric: str,
    cls: str,
    current: Optional[float],
    baseline: float,
    source: str,
    *,
    gate_time: bool,
) -> Comparison:
    if current is None:
        if cls == "exact":
            return Comparison(
                metric, cls, None, baseline, source,
                "regressed", "metric disappeared from current record",
            )
        return Comparison(
            metric, cls, None, baseline, source,
            "info", "not in current record",
        )
    if cls == "exact":
        scale = max(abs(baseline), 1e-12)
        rel = abs(current - baseline) / scale
        if rel > EXACT_RTOL:
            return Comparison(
                metric, cls, current, baseline, source, "regressed",
                f"deterministic metric drifted (rel {rel:.3e})",
            )
        return Comparison(metric, cls, current, baseline, source, "ok")
    if cls == "time":
        rtol = time_rtol()
        if not gate_time:
            return Comparison(
                metric, cls, current, baseline, source, "info",
                "cross-machine timing, context only",
            )
        if baseline > 0 and current > baseline * (1.0 + rtol):
            return Comparison(
                metric, cls, current, baseline, source, "regressed",
                f"slower than baseline by more than {rtol:.0%}",
            )
        return Comparison(metric, cls, current, baseline, source, "ok")
    return Comparison(metric, cls, current, baseline, source, "info")


def run_regress(
    path: Optional[Path] = None,
    *,
    bench_root: Optional[Path] = None,
    command: Optional[str] = None,
) -> RegressReport:
    """Build the full regression report (pure; printing/exit is CLI)."""
    records, corrupt = read_history(
        path if path is not None else history_path()
    )
    notes: List[str] = []
    if corrupt:
        notes.append(f"{len(corrupt)} corrupt history line(s) ignored")
    if command is not None:
        records = [r for r in records if r.get("command") == command]
    if not records:
        notes.append(
            "no history records to compare "
            "(run `repro report` first); nothing gated"
        )
        return RegressReport([], notes)
    current = records[-1]
    prior = records[:-1]
    current_metrics: Dict[str, float] = {
        name: float(value)
        for name, value in (current.get("metrics") or {}).items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    comparisons: List[Comparison] = []

    baselines = history_baselines(prior)
    if not prior:
        notes.append("no prior history records; history baselines empty")
    for name, (median, n) in sorted(baselines.items()):
        cls = classify_metric(name)
        comparisons.append(
            _compare(
                name, cls, current_metrics.get(name), median,
                f"history(n={n})", gate_time=True,
            )
        )

    bench, errors = bench_baselines(bench_root)
    gated_time = bench_gated_time(bench_root)
    for error in errors:
        notes.append(f"unreadable baseline {error}")
    # A record that carries no exact-class metrics at all (a command
    # that never swept the model) cannot be held to the BENCH model
    # baselines; one that carries some but lost one has drifted.
    has_run_metrics = any(
        classify_metric(n) == "exact" for n in current_metrics
    )
    for source, metrics in sorted(bench.items()):
        for name, value in sorted(metrics.items()):
            cls = classify_metric(name)
            if cls == "info":
                continue  # legacy counters: not comparable evidence
            if (
                cls == "exact"
                and name not in current_metrics
                and not has_run_metrics
            ):
                comparisons.append(
                    Comparison(
                        name, cls, None, value, source, "info",
                        "not measured by current record",
                    )
                )
                continue
            comparisons.append(
                _compare(
                    name, cls, current_metrics.get(name), value, source,
                    gate_time=name in gated_time.get(source, ()),
                )
            )
    report = RegressReport(
        comparisons,
        notes,
        current_session=current.get("session"),
        current_command=current.get("command"),
    )
    from repro.obs.ledger import record as ledger_record

    ledger_record(
        "regress.report",
        gated=sum(1 for c in comparisons if c.gated),
        regressions=len(report.regressions),
        ok=report.ok,
    )
    return report


def render_regress(report: RegressReport) -> str:
    """The text ``repro metrics regress`` prints."""
    lines = ["metrics regression gate"]
    if report.current_session:
        lines.append(
            f"current: session {report.current_session} "
            f"(command: {report.current_command})"
        )
    for note in report.notes:
        lines.append(f"note: {note}")
    gated = [c for c in report.comparisons if c.gated]
    info = [c for c in report.comparisons if not c.gated]
    if gated:
        lines.append(f"gated comparisons ({len(gated)}):")
        for c in gated:
            mark = "FAIL" if c.status == "regressed" else "ok  "
            current = "missing" if c.current is None else f"{c.current:.6g}"
            lines.append(
                f"  [{mark}] {c.metric} ({c.metric_class}): "
                f"current={current} baseline={c.baseline:.6g} "
                f"[{c.source}]" + (f" — {c.detail}" if c.detail else "")
            )
    if info:
        lines.append(f"informational ({len(info)}):")
        for c in info:
            current = "missing" if c.current is None else f"{c.current:.6g}"
            lines.append(
                f"  [info] {c.metric}: current={current} "
                f"baseline={c.baseline:.6g} [{c.source}]"
                + (f" — {c.detail}" if c.detail else "")
            )
    verdict = (
        "PASS: no regressions"
        if report.ok
        else f"FAIL: {len(report.regressions)} regression(s)"
    )
    lines.append(verdict)
    return "\n".join(lines)
