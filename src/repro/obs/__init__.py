"""Flight recorder and metrics history (the ``obs`` layer).

Everything the runtime knows about itself — planner dispatch decisions,
supervisor incidents, chaos injections, cache-tier hits, wall timings,
the full TELEMETRY snapshot — used to evaporate when the process
exited.  This package makes the telemetry *durable* and *actionable*:

* :mod:`repro.obs.ledger` — the **flight recorder**: an append-only
  JSON-lines event log per CLI session
  (``.repro/obs/ledger/<session>.jsonl``), every event stamped with a
  content-addressed session id and a monotonic sequence number;
* :mod:`repro.obs.history` — the **metrics history**: one record per
  completed command appended to ``.repro/obs/history.jsonl`` (full
  telemetry snapshot, wall timings, run identity, deterministic model
  metrics);
* :mod:`repro.obs.regress` — ``repro metrics regress``: the
  continuous-benchmarking gate that compares the latest history record
  against prior history and the committed ``BENCH_*.json`` baselines
  with per-metric tolerance bands, exiting non-zero on regression;
* :mod:`repro.obs.roofline` — ``repro analyze roofline``: per
  kernel×machine arithmetic intensity and memory-bound fraction derived
  from the cycle ledgers and trace tracks, reproducing the paper's
  "memory-intensive" argument as a computed artifact;
* :mod:`repro.obs.dashboard` — the self-contained HTML dashboard
  (history sparklines, cache hit rates, the roofline chart, utilization
  timelines reusing the SVG exporter);
* :mod:`repro.obs.progress` — the live :class:`ProgressReporter` (TTY
  and JSON-lines modes) wired into the planner and the Supervisor.

Observation only: nothing in this package may change a modelled number
or a byte of command stdout.  The ledger and history live in files, the
progress reporter writes to stderr, and the ``invariant.obs.*`` checks
(:mod:`repro.check.obs`) prove the ledger's accounting reconciles with
the planner/cache/supervisor telemetry it mirrors.
"""

from __future__ import annotations

from repro.obs.ledger import (
    FlightRecorder,
    current_recorder,
    end_session,
    obs_enabled,
    obs_root,
    read_ledger,
    record,
    recording,
    start_session,
)
from repro.obs.progress import (
    ProgressReporter,
    current_reporter,
    progress_reporting,
)

__all__ = [
    "FlightRecorder",
    "ProgressReporter",
    "current_recorder",
    "current_reporter",
    "end_session",
    "obs_enabled",
    "obs_root",
    "progress_reporting",
    "read_ledger",
    "record",
    "recording",
    "start_session",
]
