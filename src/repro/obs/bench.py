"""Versioned ``BENCH_*.json`` schema and the legacy-tolerant loader.

The repo accumulated one hand-shaped benchmark guard file per perf PR
(``BENCH_PR1.json``, ``BENCH_PR4.json``, ``BENCH_PR6.json``...), each a
bare dict of whatever that PR measured.  This module gives new files a
versioned envelope::

    {"schema_version": 1,
     "git_sha": "abc123..." | null,
     "units": {"cold_report_seconds": "s", ...},
     "metrics": {"cold_report_seconds": 4.85, ...}}

and reads the *legacy* flat files as schema version 0: every numeric
top-level value (recursing one level into nested dicts with dotted
names) becomes a metric, units are inferred from the metric name.  The
regression gate (:mod:`repro.obs.regress`) therefore treats committed
legacy baselines and freshly written versioned ones identically.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.ioutil import atomic_write_json

__all__ = [
    "BENCH_SCHEMA",
    "bench_document",
    "discover_bench_files",
    "infer_unit",
    "load_bench_document",
    "load_bench_metrics",
    "write_bench_document",
]

#: Current BENCH document schema version (legacy flat files read as 0).
BENCH_SCHEMA = 1

#: File-name pattern the baseline discovery accepts.
_BENCH_NAME = re.compile(r"^BENCH_[A-Za-z0-9_.-]+\.json$")


def infer_unit(name: str) -> str:
    """Unit string for a metric, inferred from its name."""
    if name.endswith("_seconds") or name.endswith(".seconds"):
        return "s"
    if "bytes" in name:
        return "bytes"
    if "speedup" in name or "ratio" in name:
        return "x"
    if "cycles" in name:
        return "cycles"
    return "count"


def bench_document(
    metrics: Mapping[str, Any],
    *,
    git_sha: Optional[str] = None,
    units: Optional[Mapping[str, str]] = None,
    gated_time_metrics: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Wrap flat benchmark metrics in the versioned envelope.

    Non-numeric values (nested stat dicts, booleans) are carried
    verbatim — they flatten on read exactly like the legacy files do.
    ``gated_time_metrics`` names time-class metrics the regression gate
    should *enforce* (one-sided) against this file, instead of treating
    them as cross-machine context — a file opts its own timings into
    gating only when they were measured as same-machine guards.
    """
    metrics = dict(metrics)
    resolved_units = {
        name: infer_unit(name)
        for name, value in metrics.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    if units:
        resolved_units.update(units)
    document = {
        "schema_version": BENCH_SCHEMA,
        "git_sha": git_sha,
        "units": resolved_units,
        "metrics": metrics,
    }
    if gated_time_metrics:
        document["gated_time_metrics"] = sorted(set(gated_time_metrics))
    return document


def write_bench_document(
    path: Path,
    metrics: Mapping[str, Any],
    *,
    git_sha: Optional[str] = None,
    units: Optional[Mapping[str, str]] = None,
    gated_time_metrics: Optional[Sequence[str]] = None,
) -> Path:
    """Atomically write a versioned BENCH document; returns the path."""
    return atomic_write_json(
        path,
        bench_document(
            metrics, git_sha=git_sha, units=units,
            gated_time_metrics=gated_time_metrics,
        ),
        sort_keys=True,
    )


def _flatten(prefix: str, obj: Any, out: Dict[str, float]) -> None:
    if isinstance(obj, bool):
        out[prefix] = float(obj)
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    elif isinstance(obj, Mapping):
        for key, value in obj.items():
            _flatten(f"{prefix}.{key}" if prefix else str(key), value, out)
    # strings, lists, nulls: not comparable metrics — dropped.


def _per_run_metrics(lines: List[str], path: Path) -> Dict[str, float]:
    """Flat metrics from a JSON-*lines* BENCH file of per-run records.

    ``BENCH_PR3.json`` is one ``repro-metrics/1`` record per line; each
    line's kernel×machine identity keys its deterministic model metrics
    as ``run.<kernel>.<machine>.cycles`` / ``.percent_of_peak`` — the
    same names :func:`repro.obs.history.deterministic_run_metrics`
    emits, so the regression gate compares them directly.
    """
    out: Dict[str, float] = {}
    for line in lines:
        if not line.strip():
            continue
        record = json.loads(line)
        if not isinstance(record, dict):
            raise ValueError(f"{path}: BENCH line is not a JSON object")
        kernel, machine = record.get("kernel"), record.get("machine")
        if not kernel or not machine:
            continue
        prefix = f"run.{kernel}.{machine}"
        for name in ("cycles", "percent_of_peak"):
            value = record.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"{prefix}.{name}"] = float(value)
    return out


def load_bench_metrics(path: Path) -> Tuple[Dict[str, float], int]:
    """Flat ``{metric: value}`` from a BENCH file plus its schema version.

    Versioned files (``schema_version >= 1``) flatten their ``metrics``
    block; legacy flat files (version 0) flatten the whole document;
    legacy JSON-*lines* files (one per-run record per line) contribute
    their ``run.<kernel>.<machine>.*`` model metrics.  Raises
    ``OSError``/``json.JSONDecodeError``/``ValueError`` on unreadable
    files — a committed baseline that does not parse *is* a failure.
    """
    metrics, version, _ = load_bench_document(path)
    return metrics, version


def load_bench_document(
    path: Path,
) -> Tuple[Dict[str, float], int, Tuple[str, ...]]:
    """:func:`load_bench_metrics` plus the file's ``gated_time_metrics``
    declaration (empty for legacy files and files that never opt in)."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        # More than one top-level JSON value: a JSON-lines record dump.
        return _per_run_metrics(text.splitlines(), Path(path)), 0, ()
    if not isinstance(document, dict):
        raise ValueError(f"{path}: BENCH document must be a JSON object")
    version = int(document.get("schema_version", 0))
    source = document.get("metrics", {}) if version >= 1 else document
    out: Dict[str, float] = {}
    _flatten("", source, out)
    out.pop("schema_version", None)
    gated = document.get("gated_time_metrics") if version >= 1 else None
    if not isinstance(gated, list):
        gated = ()
    return out, version, tuple(str(name) for name in gated)


def discover_bench_files(root: Path) -> List[Path]:
    """The ``BENCH_*.json`` files under ``root``, sorted by name."""
    try:
        candidates = sorted(Path(root).iterdir())
    except OSError:
        return []
    return [
        p for p in candidates
        if p.is_file() and _BENCH_NAME.match(p.name)
    ]
