"""Text renderings of the paper's tables with paper-vs-model columns."""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.arch.base import KernelRun
from repro.mappings.registry import KERNELS, MACHINES, run
from repro.models.bounds import kernel_bound
from repro.models.throughput import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    peak_throughput_table,
    processor_parameter_table,
)

#: Table 3 as published (cycles in 10^3).
PAPER_TABLE3: Dict[Tuple[str, str], float] = {
    ("corner_turn", "ppc"): 34_250,
    ("corner_turn", "altivec"): 29_288,
    ("corner_turn", "viram"): 554,
    ("corner_turn", "imagine"): 1_439,
    ("corner_turn", "raw"): 146,
    ("cslc", "ppc"): 29_013,
    ("cslc", "altivec"): 4_931,
    ("cslc", "viram"): 424,
    ("cslc", "imagine"): 196,
    ("cslc", "raw"): 357,
    ("beam_steering", "ppc"): 730,
    ("beam_steering", "altivec"): 364,
    ("beam_steering", "viram"): 35,
    ("beam_steering", "imagine"): 87,
    ("beam_steering", "raw"): 19,
}

KERNEL_TITLES = {
    "corner_turn": "Corner Turn",
    "cslc": "CSLC",
    "beam_steering": "Beam Steering",
}

MACHINE_TITLES = {
    "ppc": "PPC",
    "altivec": "Altivec",
    "viram": "VIRAM",
    "imagine": "Imagine",
    "raw": "Raw",
}


def run_table3(
    workloads: Optional[Mapping[str, object]] = None,
    runner: Callable[..., KernelRun] = run,
    jobs: Optional[int] = None,
) -> Dict[Tuple[str, str], KernelRun]:
    """Run all fifteen Table 3 cells; returns (kernel, machine) -> run.

    ``workloads`` optionally overrides the canonical workload per kernel
    (used by the tests to exercise the full pipeline at small sizes).
    ``jobs > 1`` evaluates the cells on a process pool (results are
    identical to serial execution; the cells are independent).  A custom
    ``runner`` forces serial execution — only the registry runner is
    safe to dispatch to workers.
    """
    cells = []
    for kernel in KERNELS:
        kwargs = {}
        if workloads and kernel in workloads:
            kwargs["workload"] = workloads[kernel]
        for machine in MACHINES:
            cells.append((kernel, machine, kwargs))
    if runner is run:
        from repro.perf.executor import run_cells

        outcomes = run_cells(cells, jobs=jobs)
    else:
        outcomes = [
            runner(kernel, machine, **kwargs)
            for kernel, machine, kwargs in cells
        ]
    return {
        (kernel, machine): outcome
        for (kernel, machine, _), outcome in zip(cells, outcomes)
    }


def render_table1() -> str:
    """Table 1 with model-derived and published values side by side."""
    lines = ["Table 1. Peak throughput (32-bit words per cycle)"]
    header = f"{'':24s}" + "".join(f"{m.upper():>12s}" for m in ("viram", "imagine", "raw"))
    lines.append(header)
    rows = {r.machine: r for r in peak_throughput_table()}
    for label, attr, key in (
        ("On-chip R/W", "onchip_words_per_cycle", "onchip"),
        ("Off-chip DRAM R/W", "offchip_words_per_cycle", "offchip"),
        ("Computation", "computation_words_per_cycle", "computation"),
    ):
        model = "".join(
            f"{getattr(rows[m], attr):>12.0f}" for m in ("viram", "imagine", "raw")
        )
        paper = "".join(
            f"{PAPER_TABLE1[m][key]:>12.0f}" for m in ("viram", "imagine", "raw")
        )
        lines.append(f"{label + ' (model)':24s}{model}")
        lines.append(f"{label + ' (paper)':24s}{paper}")
    return "\n".join(lines)


def render_table2() -> str:
    """Table 2 with model-configured and published values side by side."""
    lines = ["Table 2. Processor parameters"]
    machines = ("ppc", "viram", "imagine", "raw")
    rows = {r.machine: r for r in processor_parameter_table()}
    lines.append(f"{'':24s}" + "".join(f"{m.upper():>10s}" for m in machines))
    for label, attr, idx in (
        ("Clock (MHz)", "clock_mhz", 0),
        ("# of ALUs", "n_alus", 1),
        ("Peak GFLOPS", "peak_gflops", 2),
    ):
        model = "".join(f"{getattr(rows[m], attr):>10g}" for m in machines)
        paper = "".join(f"{PAPER_TABLE2[m][idx]:>10g}" for m in machines)
        lines.append(f"{label + ' (model)':24s}{model}")
        lines.append(f"{label + ' (paper)':24s}{paper}")
    return "\n".join(lines)


def render_table3(results: Mapping[Tuple[str, str], KernelRun]) -> str:
    """Table 3 with modelled kilocycles, published values, and ratios."""
    lines = ["Table 3. Experimental results (cycles in 10^3)"]
    header = f"{'':10s}" + "".join(
        f"{KERNEL_TITLES[k]:>28s}" for k in KERNELS
    )
    lines.append(header)
    lines.append(
        f"{'':10s}"
        + "".join(f"{'model':>12s}{'paper':>10s}{'x':>6s}" for _ in KERNELS)
    )
    for machine in MACHINES:
        cells = []
        for kernel in KERNELS:
            run_ = results[(kernel, machine)]
            paper = PAPER_TABLE3[(kernel, machine)]
            ratio = run_.kilocycles / paper if paper else float("nan")
            cells.append(f"{run_.kilocycles:>12,.0f}{paper:>10,.0f}{ratio:>6.2f}")
        lines.append(f"{MACHINE_TITLES[machine]:10s}" + "".join(cells))
    return "\n".join(lines)


def render_table4(
    results: Optional[Mapping[Tuple[str, str], KernelRun]] = None,
) -> str:
    """Table 4: §2.5-model expected corner-turn cycles versus achieved."""
    lines = [
        "Table 4. Corner turn: performance-model expectation vs achieved "
        "(kilocycles)"
    ]
    lines.append(
        f"{'machine':10s}{'bound':>12s}{'binding':>10s}{'achieved':>12s}"
        f"{'paper':>10s}{'ach/bound':>11s}"
    )
    for machine in MACHINES:
        bound = kernel_bound("corner_turn", machine)
        if results is not None:
            achieved = results[("corner_turn", machine)].kilocycles
        else:
            achieved = run("corner_turn", machine).kilocycles
        paper = PAPER_TABLE3[("corner_turn", machine)]
        lines.append(
            f"{MACHINE_TITLES[machine]:10s}"
            f"{bound.bound_cycles / 1e3:>12,.0f}{bound.binding:>10s}"
            f"{achieved:>12,.0f}{paper:>10,.0f}"
            f"{achieved / (bound.bound_cycles / 1e3):>11.2f}"
        )
    return "\n".join(lines)
