"""Evaluation harness: regenerate every table and figure of §4.

* :mod:`repro.eval.speedup` — Figure 8/9 speedup computations.
* :mod:`repro.eval.tables` — text renderings of Tables 1-4 with
  paper-vs-model comparison columns.
* :mod:`repro.eval.figures` — terminal log-scale bar charts for the
  figures.
* :mod:`repro.eval.experiments` — the experiment registry (one entry per
  table, figure, §4 breakdown, and what-if ablation).
* :mod:`repro.eval.report` — run everything and produce the full
  paper-vs-measured report.
* :mod:`repro.eval.scaling` — the §4.6 capacity-crossover sweep.
* :mod:`repro.eval.sensitivity` — calibration elasticity analysis.
* :mod:`repro.eval.export` — JSON export of runs and experiments.
* :mod:`repro.eval.svg` — SVG renderings of Figures 8/9.
"""

from repro.eval.experiments import EXPERIMENTS, ExperimentResult, run_experiment
from repro.eval.export import full_document, write_json
from repro.eval.report import full_report
from repro.eval.scaling import corner_turn_scaling, crossover_summary
from repro.eval.sensitivity import sweep as sensitivity_sweep
from repro.eval.speedup import speedup_cycles, speedup_time
from repro.eval.tables import PAPER_TABLE3, run_table3

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "PAPER_TABLE3",
    "corner_turn_scaling",
    "crossover_summary",
    "full_document",
    "full_report",
    "run_experiment",
    "run_table3",
    "sensitivity_sweep",
    "speedup_cycles",
    "speedup_time",
    "write_json",
]
