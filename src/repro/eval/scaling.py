"""Scaling study: §4.6's capacity-crossover claim.

"VIRAM is especially suitable for vectorizable applications ... that are
small enough to fit in the on-chip memory. ... If the application size
is larger than the on-chip DRAM, the data needs to come from off-chip
memory and VIRAM would lose much of its advantage."

:func:`corner_turn_scaling` sweeps the corner-turn matrix size across
the 13 MB boundary and reports per-machine cycles-per-word, making the
crossover visible: on-chip, VIRAM moves a word every ~0.27 cycles of
bandwidth; off-chip it falls to the 2-word/cycle DMA interface and loses
roughly a factor of four, while Raw and Imagine scale linearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.mappings.registry import run

#: Machines whose corner turn scales cleanly with matrix size.
SCALING_MACHINES = ("viram", "imagine", "raw")

#: Default sweep: 512 (1 MB) to 2048 (16 MB) square matrices, crossing
#: VIRAM's 13 MB on-chip capacity between 1024 and 2048.  Pass larger
#: sizes (4096, ...) for a longer sweep; the models scale linearly.
DEFAULT_SIZES = (512, 1024, 2048)


@dataclass(frozen=True)
class ScalingPoint:
    """One (size, machine) measurement of the sweep."""

    size: int
    machine: str
    cycles: float
    cycles_per_word: float
    fits_onchip: bool


def corner_turn_scaling(
    sizes: Sequence[int] = DEFAULT_SIZES,
    machines: Sequence[str] = SCALING_MACHINES,
    jobs: Optional[int] = None,
) -> Tuple[ScalingPoint, ...]:
    """Run the corner turn at each square ``size`` on each machine.

    Results are memoised per (sizes, machines): the sweep is
    deterministic and each large-matrix run costs seconds.  ``jobs > 1``
    evaluates the grid on a process pool — the points are independent,
    so the tuple is identical to serial execution (and the memo is
    shared across ``jobs`` values).
    """
    return _corner_turn_scaling(tuple(sizes), tuple(machines), jobs=jobs)


@lru_cache(maxsize=16)
def _scaling_memo(
    sizes: Tuple[int, ...], machines: Tuple[str, ...]
) -> Dict[str, object]:
    """Shared memo cell for one (sizes, machines) grid.

    ``jobs`` must not be part of the memo key — parallel and serial
    results are identical, so the first evaluation wins regardless of
    how it was computed.
    """
    return {}


def _corner_turn_scaling(
    sizes: Tuple[int, ...], machines: Tuple[str, ...],
    jobs: Optional[int] = None,
) -> Tuple[ScalingPoint, ...]:
    if not sizes:
        raise ExperimentError("empty size sweep")
    memo = _scaling_memo(sizes, machines)
    if "points" in memo:
        return memo["points"]
    from repro.perf.executor import run_cells

    workloads = {
        size: CornerTurnWorkload(rows=size, cols=size) for size in sizes
    }
    grid = [(size, machine) for size in sizes for machine in machines]
    outcomes = run_cells(
        [
            ("corner_turn", machine, {"workload": workloads[size]})
            for size, machine in grid
        ],
        jobs=jobs,
    )
    points = []
    for (size, machine), result in zip(grid, outcomes):
        points.append(
            ScalingPoint(
                size=size,
                machine=machine,
                cycles=result.cycles,
                cycles_per_word=result.cycles / workloads[size].words,
                fits_onchip=bool(
                    result.metrics.get("fits_onchip", True)
                ),
            )
        )
    memo["points"] = tuple(points)
    return memo["points"]


def crossover_summary(points: Sequence[ScalingPoint]) -> Dict[str, float]:
    """Quantify §4.6: VIRAM's per-word cost on- vs off-chip, and its
    standing relative to Raw in each regime."""
    viram = {p.size: p for p in points if p.machine == "viram"}
    raw = {p.size: p for p in points if p.machine == "raw"}
    onchip = [p for p in viram.values() if p.fits_onchip]
    offchip = [p for p in viram.values() if not p.fits_onchip]
    if not onchip or not offchip:
        raise ExperimentError(
            "sweep does not cross VIRAM's on-chip capacity; widen the sizes"
        )
    onchip_cpw = max(p.cycles_per_word for p in onchip)
    offchip_cpw = min(p.cycles_per_word for p in offchip)
    biggest_on = max(p.size for p in onchip)
    smallest_off = min(p.size for p in offchip)
    return {
        "viram_onchip_cycles_per_word": onchip_cpw,
        "viram_offchip_cycles_per_word": offchip_cpw,
        "offchip_penalty": offchip_cpw / onchip_cpw,
        "viram_over_raw_onchip": (
            viram[biggest_on].cycles / raw[biggest_on].cycles
        ),
        "viram_over_raw_offchip": (
            viram[smallest_off].cycles / raw[smallest_off].cycles
        ),
    }


def render_scaling(points: Sequence[ScalingPoint]) -> str:
    """Text table of the sweep."""
    sizes = sorted({p.size for p in points})
    machines = sorted({p.machine for p in points})
    lines = [
        "Corner-turn scaling (cycles per word moved; * = exceeds VIRAM "
        "on-chip DRAM)"
    ]
    header = f"{'size':>8s}" + "".join(f"{m:>12s}" for m in machines)
    lines.append(header)
    by_key = {(p.size, p.machine): p for p in points}
    for size in sizes:
        cells = []
        for machine in machines:
            p = by_key[(size, machine)]
            mark = "*" if (machine == "viram" and not p.fits_onchip) else " "
            cells.append(f"{p.cycles_per_word:>11.3f}{mark}")
        lines.append(f"{size:>8d}" + "".join(cells))
    return "\n".join(lines)
