"""Run every registered experiment and assemble the full report.

The report is the paper-vs-measured record: every table, figure, §4
breakdown and what-if ablation, each with its quantitative checks and
model/paper ratios.  EXPERIMENTS.md is a snapshot of this output.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.eval.experiments import EXPERIMENTS, ExperimentResult, prewarm
from repro.eval.tables import run_table3


def full_report(
    workloads: Optional[Dict[str, object]] = None,
    jobs: Optional[int] = None,
    validate: bool = True,
    metrics_path: Optional[str] = None,
    sensitivity_points: Optional[int] = None,
) -> str:
    """Run all experiments (sharing one Table 3 sweep) and render them.

    ``jobs > 1`` prewarms the run cache on a process pool first; the
    experiments then render from cache hits, so the report text is
    byte-identical to a serial run.

    Unless ``validate=False``, the report ends with the fast tier of
    ``repro check`` run over the very results just rendered — every
    published table ships pre-validated against the §2.5 bounds,
    footprints, and differential oracles.

    ``metrics_path`` additionally writes the JSON-lines metrics manifest
    (one record per Table 3 run, with config hashes) as a side effect;
    the report text is unaffected.

    ``sensitivity_points`` (CLI: ``repro report --density N``) appends a
    calibration-sensitivity section with ``N`` perturbation magnitudes
    per constant side; the dense grid collapses into tensor batches
    (:mod:`repro.perf.tensorsweep`), so even ``N=100`` adds only a few
    structure passes.  ``None`` (the default) leaves the report text
    unchanged.
    """
    from repro.perf.executor import resolve_jobs

    if resolve_jobs(jobs) > 1:
        prewarm(workloads, jobs=jobs)
    results = run_table3(workloads)
    if metrics_path is not None:
        from repro.trace.export import write_metrics_manifest

        write_metrics_manifest(metrics_path, results, workloads)
    sections = []
    for experiment_id, fn in EXPERIMENTS.items():
        outcome: ExperimentResult = fn(results=results, workloads=workloads)
        lines = [f"== {outcome.title} =="]
        lines.append(outcome.rendered)
        if outcome.checks:
            lines.append("")
            lines.append("checks (model vs paper):")
            for name, (model, paper) in outcome.checks.items():
                ratio = f"{model / paper:6.2f}x" if paper else "   n/a"
                lines.append(
                    f"  {name:40s} model={model:12.4g} paper={paper:12.4g} "
                    f"ratio={ratio}"
                )
        sections.append("\n".join(lines))
    if sensitivity_points is not None:
        from repro.eval import sensitivity

        rows = sensitivity.sweep(
            workloads=workloads, jobs=jobs, points=int(sensitivity_points)
        )
        sections.append(
            "== Calibration sensitivity ==\n" + sensitivity.render(rows)
        )
    if validate:
        from repro.check import validation_section

        sections.append(
            "== Validation (repro check --fast) ==\n"
            + validation_section(workloads)
        )
    return "\n\n".join(sections)
