"""SVG renderings of the paper's figures (no plotting dependencies).

Figures 8 and 9 are grouped bar charts on a log axis.  This module emits
them as self-contained SVG documents: one group of bars per kernel, one
bar per machine (model value), with the paper's value drawn as a tick so
the comparison is visible in the figure itself, exactly like the text
renderer in :mod:`repro.eval.figures` but as a real graphic.

The XML is hand-assembled; the structure is simple enough that the tests
parse it back with :mod:`xml.etree` and check the geometry.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError

#: Distinct fill per machine (hex, color-blind-safe-ish).
MACHINE_COLORS = {
    "ppc": "#9aa0a6",
    "altivec": "#5f6368",
    "viram": "#1a73e8",
    "imagine": "#e8710a",
    "raw": "#188038",
}
DEFAULT_COLOR = "#7b1fa2"

BAR_WIDTH = 28
BAR_GAP = 8
GROUP_GAP = 48
CHART_HEIGHT = 280
MARGIN_LEFT = 56
MARGIN_TOP = 48
MARGIN_BOTTOM = 72


def _log_height(value: float, vmax: float) -> float:
    """Bar height on a log axis from 0.1 to vmax."""
    floor = 0.1
    if value <= floor:
        return 1.0
    span = math.log10(vmax / floor)
    return CHART_HEIGHT * math.log10(value / floor) / span


def speedup_figure_svg(
    title: str,
    data: Mapping[str, Mapping[str, float]],
    paper: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> str:
    """Render a Figure 8/9-style grouped log-bar chart as an SVG string.

    ``data`` maps kernel -> machine -> model speedup; ``paper``
    optionally supplies published values, drawn as horizontal ticks over
    the bars.
    """
    if not data:
        raise ExperimentError("no data to render")
    values = [v for series in data.values() for v in series.values()]
    if paper:
        values += [v for series in paper.values() for v in series.values()]
    vmax = max(max(values), 1.0) * 1.2

    parts = []
    x = MARGIN_LEFT
    baseline = MARGIN_TOP + CHART_HEIGHT
    for kernel, series in data.items():
        group_start = x
        for machine, value in series.items():
            height = _log_height(value, vmax)
            color = MACHINE_COLORS.get(machine, DEFAULT_COLOR)
            parts.append(
                f'<rect class="bar" data-kernel="{kernel}" '
                f'data-machine="{machine}" data-value="{value:.4g}" '
                f'x="{x}" y="{baseline - height:.1f}" width="{BAR_WIDTH}" '
                f'height="{height:.1f}" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x + BAR_WIDTH / 2}" y="{baseline + 14}" '
                f'font-size="9" text-anchor="middle">{machine}</text>'
            )
            if paper and machine in paper.get(kernel, {}):
                tick_y = baseline - _log_height(paper[kernel][machine], vmax)
                parts.append(
                    f'<line class="paper-tick" data-kernel="{kernel}" '
                    f'data-machine="{machine}" x1="{x - 3}" '
                    f'y1="{tick_y:.1f}" x2="{x + BAR_WIDTH + 3}" '
                    f'y2="{tick_y:.1f}" stroke="#d93025" '
                    'stroke-width="2"/>'
                )
            x += BAR_WIDTH + BAR_GAP
        label_x = (group_start + x - BAR_GAP) / 2
        parts.append(
            f'<text x="{label_x}" y="{baseline + 32}" font-size="11" '
            f'font-weight="bold" text-anchor="middle">{kernel}</text>'
        )
        x += GROUP_GAP

    width = x + MARGIN_LEFT - GROUP_GAP
    # Log gridlines at powers of ten.
    grid = []
    decade = 1.0
    while decade <= vmax:
        y = baseline - _log_height(decade, vmax)
        grid.append(
            f'<line x1="{MARGIN_LEFT - 8}" y1="{y:.1f}" x2="{width - 8}" '
            f'y2="{y:.1f}" stroke="#dadce0" stroke-width="1"/>'
            f'<text x="{MARGIN_LEFT - 12}" y="{y + 3:.1f}" font-size="9" '
            f'text-anchor="end">{decade:g}x</text>'
        )
        decade *= 10.0

    height_total = baseline + MARGIN_BOTTOM
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height_total}" viewBox="0 0 {width} {height_total}" '
        'font-family="sans-serif">'
        f'<title>{title}</title>'
        f'<text x="{MARGIN_LEFT}" y="{MARGIN_TOP - 24}" font-size="13" '
        f'font-weight="bold">{title}</text>'
        f'<text x="{MARGIN_LEFT}" y="{MARGIN_TOP - 8}" font-size="10" '
        'fill="#5f6368">bars: model; red ticks: paper; log scale</text>'
        + "".join(grid)
        + f'<line x1="{MARGIN_LEFT - 8}" y1="{baseline}" x2="{width - 8}" '
        f'y2="{baseline}" stroke="#202124" stroke-width="1"/>'
        + "".join(parts)
        + "</svg>"
    )


#: Row fill per resource class (first track-path component) for the
#: utilization timeline; classes without an entry fall back.
CLASS_COLORS = {
    "accounting": "#1a73e8",
    "dram": "#e8710a",
    "tlb": "#d93025",
    "cache": "#9334e6",
    "resource": "#188038",
    "engine": "#5f6368",
    "viram": "#129eaf",
    "imagine": "#b06000",
    "raw": "#0d652d",
    "ppc": "#3c4043",
}

TL_ROW_HEIGHT = 20
TL_ROW_GAP = 6
TL_LABEL_WIDTH = 230
TL_CHART_WIDTH = 640
TL_MARGIN_TOP = 52
TL_MARGIN_BOTTOM = 40


def utilization_timeline_svg(
    title: str,
    tracks: Mapping[str, Sequence[Tuple[float, float]]],
    total: float,
) -> str:
    """Render per-track busy/idle segments as a Gantt-style SVG.

    ``tracks`` maps track name -> merged ``(start, end)`` busy intervals
    (cycles); ``total`` is the horizon the horizontal axis spans.  Each
    busy interval becomes a ``rect`` carrying ``data-track``/
    ``data-start``/``data-end``, and each row a ``data-busy`` total, so
    the tests can parse the geometry back out, mirroring
    :func:`speedup_figure_svg`.
    """
    if not tracks:
        raise ExperimentError("no tracks to render")
    if total <= 0:
        raise ExperimentError(f"non-positive horizon {total}")

    def x_of(cycles: float) -> float:
        return TL_LABEL_WIDTH + TL_CHART_WIDTH * cycles / total

    parts = []
    y = TL_MARGIN_TOP
    for track, segments in tracks.items():
        cls = track.split("/", 1)[0]
        color = CLASS_COLORS.get(cls, DEFAULT_COLOR)
        busy = sum(end - start for start, end in segments)
        parts.append(
            f'<text x="{TL_LABEL_WIDTH - 8}" y="{y + TL_ROW_HEIGHT - 6}" '
            f'font-size="10" text-anchor="end">{track}</text>'
        )
        parts.append(
            f'<rect class="row" data-track="{track}" '
            f'data-busy="{busy:.4f}" x="{TL_LABEL_WIDTH}" y="{y}" '
            f'width="{TL_CHART_WIDTH}" height="{TL_ROW_HEIGHT}" '
            'fill="#f1f3f4"/>'
        )
        for start, end in segments:
            width = max(0.5, x_of(end) - x_of(start))
            parts.append(
                f'<rect class="busy" data-track="{track}" '
                f'data-start="{start:.4f}" data-end="{end:.4f}" '
                f'x="{x_of(start):.2f}" y="{y + 2}" width="{width:.2f}" '
                f'height="{TL_ROW_HEIGHT - 4}" fill="{color}"/>'
            )
        y += TL_ROW_HEIGHT + TL_ROW_GAP

    # Cycle axis: five evenly spaced ticks including 0 and the horizon.
    axis = []
    for i in range(5):
        cycles = total * i / 4
        x = x_of(cycles)
        axis.append(
            f'<line x1="{x:.2f}" y1="{TL_MARGIN_TOP - 6}" x2="{x:.2f}" '
            f'y2="{y}" stroke="#dadce0" stroke-width="1"/>'
            f'<text x="{x:.2f}" y="{y + 16}" font-size="9" '
            f'text-anchor="middle">{cycles:,.0f}</text>'
        )

    width = TL_LABEL_WIDTH + TL_CHART_WIDTH + 24
    height = y + TL_MARGIN_BOTTOM
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="sans-serif">'
        f'<title>{title}</title>'
        f'<text x="16" y="22" font-size="13" font-weight="bold">'
        f'{title}</text>'
        f'<text x="16" y="38" font-size="10" fill="#5f6368">'
        'per-track busy intervals, simulated cycles</text>'
        + "".join(axis)
        + "".join(parts)
        + "</svg>"
    )


def write_figures(
    directory: Union[str, Path],
    results=None,
) -> "list[Path]":
    """Write figure8.svg and figure9.svg into ``directory``.

    Runs the Table 3 sweep (or reuses ``results``) and renders both
    speedup figures with their paper ticks.
    """
    from repro.eval.experiments import exp_figure8, exp_figure9
    from repro.eval.tables import run_table3

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    results = results if results is not None else run_table3()
    written = []
    for exp, name in ((exp_figure8, "figure8"), (exp_figure9, "figure9")):
        outcome = exp(results=results)
        paper = {
            kernel: {
                machine: outcome.checks[f"{kernel}_{machine}"][1]
                for machine in series
            }
            for kernel, series in outcome.data.items()
        }
        svg = speedup_figure_svg(outcome.title, outcome.data, paper)
        path = directory / f"{name}.svg"
        path.write_text(svg)
        written.append(path)
    return written
