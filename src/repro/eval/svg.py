"""SVG renderings of the paper's figures (no plotting dependencies).

Figures 8 and 9 are grouped bar charts on a log axis.  This module emits
them as self-contained SVG documents: one group of bars per kernel, one
bar per machine (model value), with the paper's value drawn as a tick so
the comparison is visible in the figure itself, exactly like the text
renderer in :mod:`repro.eval.figures` but as a real graphic.

The XML is hand-assembled; the structure is simple enough that the tests
parse it back with :mod:`xml.etree` and check the geometry.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.errors import ExperimentError

#: Distinct fill per machine (hex, color-blind-safe-ish).
MACHINE_COLORS = {
    "ppc": "#9aa0a6",
    "altivec": "#5f6368",
    "viram": "#1a73e8",
    "imagine": "#e8710a",
    "raw": "#188038",
}
DEFAULT_COLOR = "#7b1fa2"

BAR_WIDTH = 28
BAR_GAP = 8
GROUP_GAP = 48
CHART_HEIGHT = 280
MARGIN_LEFT = 56
MARGIN_TOP = 48
MARGIN_BOTTOM = 72


def _log_height(value: float, vmax: float) -> float:
    """Bar height on a log axis from 0.1 to vmax."""
    floor = 0.1
    if value <= floor:
        return 1.0
    span = math.log10(vmax / floor)
    return CHART_HEIGHT * math.log10(value / floor) / span


def speedup_figure_svg(
    title: str,
    data: Mapping[str, Mapping[str, float]],
    paper: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> str:
    """Render a Figure 8/9-style grouped log-bar chart as an SVG string.

    ``data`` maps kernel -> machine -> model speedup; ``paper``
    optionally supplies published values, drawn as horizontal ticks over
    the bars.
    """
    if not data:
        raise ExperimentError("no data to render")
    values = [v for series in data.values() for v in series.values()]
    if paper:
        values += [v for series in paper.values() for v in series.values()]
    vmax = max(max(values), 1.0) * 1.2

    parts = []
    x = MARGIN_LEFT
    baseline = MARGIN_TOP + CHART_HEIGHT
    for kernel, series in data.items():
        group_start = x
        for machine, value in series.items():
            height = _log_height(value, vmax)
            color = MACHINE_COLORS.get(machine, DEFAULT_COLOR)
            parts.append(
                f'<rect class="bar" data-kernel="{kernel}" '
                f'data-machine="{machine}" data-value="{value:.4g}" '
                f'x="{x}" y="{baseline - height:.1f}" width="{BAR_WIDTH}" '
                f'height="{height:.1f}" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x + BAR_WIDTH / 2}" y="{baseline + 14}" '
                f'font-size="9" text-anchor="middle">{machine}</text>'
            )
            if paper and machine in paper.get(kernel, {}):
                tick_y = baseline - _log_height(paper[kernel][machine], vmax)
                parts.append(
                    f'<line class="paper-tick" data-kernel="{kernel}" '
                    f'data-machine="{machine}" x1="{x - 3}" '
                    f'y1="{tick_y:.1f}" x2="{x + BAR_WIDTH + 3}" '
                    f'y2="{tick_y:.1f}" stroke="#d93025" '
                    'stroke-width="2"/>'
                )
            x += BAR_WIDTH + BAR_GAP
        label_x = (group_start + x - BAR_GAP) / 2
        parts.append(
            f'<text x="{label_x}" y="{baseline + 32}" font-size="11" '
            f'font-weight="bold" text-anchor="middle">{kernel}</text>'
        )
        x += GROUP_GAP

    width = x + MARGIN_LEFT - GROUP_GAP
    # Log gridlines at powers of ten.
    grid = []
    decade = 1.0
    while decade <= vmax:
        y = baseline - _log_height(decade, vmax)
        grid.append(
            f'<line x1="{MARGIN_LEFT - 8}" y1="{y:.1f}" x2="{width - 8}" '
            f'y2="{y:.1f}" stroke="#dadce0" stroke-width="1"/>'
            f'<text x="{MARGIN_LEFT - 12}" y="{y + 3:.1f}" font-size="9" '
            f'text-anchor="end">{decade:g}x</text>'
        )
        decade *= 10.0

    height_total = baseline + MARGIN_BOTTOM
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height_total}" viewBox="0 0 {width} {height_total}" '
        'font-family="sans-serif">'
        f'<title>{title}</title>'
        f'<text x="{MARGIN_LEFT}" y="{MARGIN_TOP - 24}" font-size="13" '
        f'font-weight="bold">{title}</text>'
        f'<text x="{MARGIN_LEFT}" y="{MARGIN_TOP - 8}" font-size="10" '
        'fill="#5f6368">bars: model; red ticks: paper; log scale</text>'
        + "".join(grid)
        + f'<line x1="{MARGIN_LEFT - 8}" y1="{baseline}" x2="{width - 8}" '
        f'y2="{baseline}" stroke="#202124" stroke-width="1"/>'
        + "".join(parts)
        + "</svg>"
    )


def write_figures(
    directory: Union[str, Path],
    results=None,
) -> "list[Path]":
    """Write figure8.svg and figure9.svg into ``directory``.

    Runs the Table 3 sweep (or reuses ``results``) and renders both
    speedup figures with their paper ticks.
    """
    from repro.eval.experiments import exp_figure8, exp_figure9
    from repro.eval.tables import run_table3

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    results = results if results is not None else run_table3()
    written = []
    for exp, name in ((exp_figure8, "figure8"), (exp_figure9, "figure9")):
        outcome = exp(results=results)
        paper = {
            kernel: {
                machine: outcome.checks[f"{kernel}_{machine}"][1]
                for machine in series
            }
            for kernel, series in outcome.data.items()
        }
        svg = speedup_figure_svg(outcome.title, outcome.data, paper)
        path = directory / f"{name}.svg"
        path.write_text(svg)
        written.append(path)
    return written
