"""Calibration sensitivity analysis.

DESIGN.md §5 commits every free constant to a §4 anchor; this module
quantifies how much each constant actually matters.  For every (machine,
constant) pair it perturbs the constant by ±delta, re-runs the Table 3
cells that constant can influence, and reports the *elasticity* — the
relative cycle change per relative constant change.  Low elasticities
mean the headline reproduction is structural rather than fitted; the
tests pin the expected magnitudes for the most-scrutinised constants.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.calibration import DEFAULT_CALIBRATION, Calibration
from repro.errors import ExperimentError
from repro.mappings.registry import run

Cell = Tuple[str, str]  # (kernel, machine)

#: Which Table 3 cells each calibrated constant can influence.  Constants
#: not listed (integer geometry like TLB entry counts) are excluded from
#: the sweep.
CONSTANT_CELLS: Dict[Tuple[str, str], Tuple[Cell, ...]] = {
    ("viram", "dram_row_cycle"): (("corner_turn", "viram"),),
    ("viram", "tlb_miss_cycles"): (("corner_turn", "viram"),),
    ("viram", "exposed_load_latency"): (("corner_turn", "viram"),),
    ("viram", "vector_dead_time"): (
        ("cslc", "viram"),
        ("beam_steering", "viram"),
    ),
    ("viram", "shuffle_exposed_fraction"): (("cslc", "viram"),),
    ("viram", "memory_exposed_fraction"): (("cslc", "viram"),),
    ("imagine", "dram_row_cycle"): (("corner_turn", "imagine"),),
    ("imagine", "kernel_startup"): (
        ("corner_turn", "imagine"),
        ("cslc", "imagine"),
        ("beam_steering", "imagine"),
    ),
    ("imagine", "gather_derate"): (("beam_steering", "imagine"),),
    ("imagine", "cluster_schedule_inefficiency"): (("cslc", "imagine"),),
    ("imagine", "comm_exposure"): (
        ("corner_turn", "imagine"),
        ("cslc", "imagine"),
    ),
    ("raw", "block_loop_overhead_per_row"): (("corner_turn", "raw"),),
    ("raw", "cache_stall_fraction"): (("cslc", "raw"),),
    ("raw", "fft_addr_ops_per_butterfly"): (("cslc", "raw"),),
    ("raw", "fft_loop_ops_per_butterfly"): (("cslc", "raw"),),
    ("raw", "stream_ops_per_output"): (("beam_steering", "raw"),),
    ("ppc", "l2_hit_cycles"): (("corner_turn", "ppc"),),
    ("ppc", "dram_latency_cycles"): (
        ("corner_turn", "ppc"),
        ("corner_turn", "altivec"),
        ("beam_steering", "ppc"),
    ),
    ("ppc", "trig_call_cycles"): (("cslc", "ppc"),),
    ("ppc", "fp_dependency_stall"): (("cslc", "ppc"),),
    ("ppc", "vector_dependency_stall_per_butterfly"): (("cslc", "altivec"),),
    ("ppc", "store_queue_exposure"): (
        ("beam_steering", "ppc"),
        ("beam_steering", "altivec"),
    ),
}


#: Constants with a hard lower bound: the perturbation scales the excess
#: over the floor rather than the raw value (a VLIW schedule can never
#: beat its resource bound, so the inefficiency factor floors at 1).
CONSTANT_FLOORS: Dict[Tuple[str, str], float] = {
    ("imagine", "cluster_schedule_inefficiency"): 1.0,
}


def perturbed_calibration(
    machine: str, constant: str, factor: float,
    base: Optional[Calibration] = None,
) -> Calibration:
    """A calibration with one machine's constant scaled by ``factor``
    (relative to its floor, where one exists)."""
    base = base or DEFAULT_CALIBRATION
    group = getattr(base, machine, None)
    if group is None:
        raise ExperimentError(f"unknown machine group {machine!r}")
    if constant not in {f.name for f in fields(group)}:
        raise ExperimentError(
            f"unknown constant {machine}.{constant}"
        )
    value = getattr(group, constant)
    floor = CONSTANT_FLOORS.get((machine, constant), 0.0)
    new_value = floor + (value - floor) * factor
    new_group = replace(group, **{constant: new_value})
    return replace(base, **{machine: new_group})


@dataclass(frozen=True)
class SensitivityRow:
    """Elasticity of one Table 3 cell to one calibration constant."""

    machine: str
    constant: str
    kernel: str
    cell_machine: str
    baseline_cycles: float
    up_cycles: float
    down_cycles: float
    delta: float

    @property
    def elasticity(self) -> float:
        """Central-difference relative sensitivity d(ln cycles)/d(ln c)."""
        if self.baseline_cycles == 0:
            return 0.0
        return (self.up_cycles - self.down_cycles) / (
            2 * self.delta * self.baseline_cycles
        )


def sweep(
    delta: float = 0.25,
    constants: Optional[Sequence[Tuple[str, str]]] = None,
    workloads: Optional[Dict[str, object]] = None,
    jobs: Optional[int] = None,
    points: int = 1,
) -> Tuple[SensitivityRow, ...]:
    """Perturb each constant by ±``delta`` and measure its cells.

    ``constants`` restricts the sweep (default: all of
    :data:`CONSTANT_CELLS`); ``workloads`` overrides the canonical
    workloads per kernel (used by tests for speed); ``jobs > 1``
    evaluates the perturbed cells on a process pool — each (cell,
    calibration) run is independent, so the rows are identical to
    serial execution.

    ``points`` densifies the perturbation grid: each constant is
    measured at ``points`` magnitudes ``delta * k / points``
    (``k = 1..points``) on each side of the anchor, yielding ``points``
    rows per (constant, cell) — each row's :attr:`SensitivityRow.delta`
    records its own magnitude, so elasticities stay local.  The CLI
    exposes this as ``--points`` (alias ``--density``).  Because the
    dense cells differ only in float calibration constants, the planner
    collapses each (cell, constant) column into one tensor batch
    (:mod:`repro.perf.tensorsweep`), so a 100-point grid costs roughly
    one structure pass per cell rather than 200 full simulations.
    """
    if not 0 < delta < 1:
        raise ExperimentError(f"delta must be in (0, 1), got {delta}")
    points = int(points)
    if points < 1:
        raise ExperimentError(f"points must be >= 1, got {points}")
    targets = list(constants) if constants else list(CONSTANT_CELLS)

    def cell_kwargs(kernel: str, cal: Calibration) -> Dict[str, object]:
        kwargs: Dict[str, object] = {"calibration": cal}
        if workloads and kernel in workloads:
            kwargs["workload"] = workloads[kernel]
        return kwargs

    # Collection pass: one plan slot per *unique* (cell, calibration)
    # measurement, in deterministic order.  The plan hoists shared
    # requests at collection time — the unperturbed base cell, which
    # every (machine, constant) pair touching that cell would otherwise
    # re-request (and, with caching off, re-simulate), is collected
    # once; so are cells reached by several constants.
    from repro.perf.planner import SweepPlan

    plan = SweepPlan()
    row_specs = []
    for machine, constant in targets:
        if (machine, constant) not in CONSTANT_CELLS:
            raise ExperimentError(
                f"no cell map for constant {machine}.{constant}"
            )
        magnitudes = [delta * k / points for k in range(1, points + 1)]
        perturbations = [
            (
                d,
                perturbed_calibration(machine, constant, 1 + d),
                perturbed_calibration(machine, constant, 1 - d),
            )
            for d in magnitudes
        ]
        for cell in CONSTANT_CELLS[(machine, constant)]:
            kernel, cell_machine = cell
            for d, up, down in perturbations:
                indices = {
                    which: plan.add(
                        kernel, cell_machine, **cell_kwargs(kernel, cal)
                    )
                    for which, cal in (
                        ("baseline", DEFAULT_CALIBRATION),
                        ("up", up),
                        ("down", down),
                    )
                }
                row_specs.append((machine, constant, cell, d, indices))

    outcomes = plan.execute(jobs=jobs)
    rows: List[SensitivityRow] = []
    for machine, constant, (kernel, cell_machine), d, indices in row_specs:
        rows.append(
            SensitivityRow(
                machine=machine,
                constant=constant,
                kernel=kernel,
                cell_machine=cell_machine,
                baseline_cycles=outcomes[indices["baseline"]].cycles,
                up_cycles=outcomes[indices["up"]].cycles,
                down_cycles=outcomes[indices["down"]].cycles,
                delta=d,
            )
        )
    return tuple(rows)


def render(rows: Sequence[SensitivityRow]) -> str:
    """Text table, most sensitive first."""
    ordered = sorted(rows, key=lambda r: -abs(r.elasticity))
    lines = [
        "Calibration sensitivity (elasticity = % cycle change per % "
        "constant change)"
    ]
    lines.append(
        f"{'constant':42s}{'cell':28s}{'elasticity':>11s}"
    )
    for r in ordered:
        name = f"{r.machine}.{r.constant}"
        cell = f"{r.kernel}/{r.cell_machine}"
        lines.append(f"{name:42s}{cell:28s}{r.elasticity:>11.3f}")
    return "\n".join(lines)
