"""Speedup computations for Figures 8 and 9.

Figure 8 plots speedup relative to the PPC-with-AltiVec row *in cycles*;
Figure 9 converts to execution time at each machine's clock ("PPC=1 GHz,
VIRAM=200 MHz, Imagine=300 MHz, and Raw=300 MHz").  Both use a log-scale
axis in the paper; :mod:`repro.eval.figures` renders the log bars.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.arch.base import KernelRun
from repro.errors import ExperimentError

BASELINE = "altivec"


def speedup_cycles(
    runs: Mapping[str, KernelRun], baseline: str = BASELINE
) -> Dict[str, float]:
    """Per-machine speedup over ``baseline`` in cycle counts (Figure 8)."""
    if baseline not in runs:
        raise ExperimentError(f"baseline {baseline!r} missing from runs")
    base = runs[baseline].cycles
    if base <= 0:
        raise ExperimentError("baseline has zero cycles")
    return {name: base / run.cycles for name, run in runs.items()}


def speedup_time(
    runs: Mapping[str, KernelRun], baseline: str = BASELINE
) -> Dict[str, float]:
    """Per-machine speedup over ``baseline`` in wall time (Figure 9)."""
    if baseline not in runs:
        raise ExperimentError(f"baseline {baseline!r} missing from runs")
    base = runs[baseline].seconds
    if base <= 0:
        raise ExperimentError("baseline has zero time")
    return {name: base / run.seconds for name, run in runs.items()}
