"""Terminal renderings of the paper's figures.

Figures 8 and 9 are grouped bar charts of speedup over the AltiVec
baseline on a logarithmic vertical axis.  These helpers render the same
data as horizontal log-scale bars, one group per kernel, with the paper's
value printed next to the model's so the comparison is visible inline.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

BAR_WIDTH = 40


def _log_bar(value: float, vmax: float, width: int = BAR_WIDTH) -> str:
    """A log-scale bar for ``value`` on an axis reaching ``vmax``."""
    if value <= 0 or vmax <= 1:
        return ""
    frac = math.log10(max(value, 1.0)) / math.log10(vmax)
    return "#" * max(1, int(round(frac * width)))


def speedup_figure(
    title: str,
    data: Mapping[str, Mapping[str, float]],
    paper: Optional[Mapping[str, Mapping[str, float]]] = None,
) -> str:
    """Render a Figure 8/9-style chart.

    ``data`` maps kernel -> machine -> speedup (model); ``paper``
    optionally supplies the published speedups for the side-by-side
    column.  Bars are log-scaled to the largest value present.
    """
    vmax = max(
        (v for series in data.values() for v in series.values() if v > 0),
        default=1.0,
    )
    if paper:
        vmax = max(
            vmax,
            max(
                (v for series in paper.values() for v in series.values()),
                default=1.0,
            ),
        )
    lines = [title, f"(log scale, axis max ~{vmax:,.0f}x)"]
    for kernel, series in data.items():
        lines.append(f"  {kernel}:")
        for machine, value in series.items():
            bar = _log_bar(value, vmax)
            suffix = f"  model {value:8.2f}x"
            if paper and machine in paper.get(kernel, {}):
                suffix += f"   paper {paper[kernel][machine]:8.2f}x"
            lines.append(f"    {machine:8s} |{bar:<{BAR_WIDTH}s}|{suffix}")
    return "\n".join(lines)
