"""Machine-readable export of reproduction results.

Serialises kernel runs and experiment outcomes to plain JSON-compatible
dictionaries (and to JSON files), so downstream analyses — notebooks,
regression dashboards, paper-comparison scripts — do not need to import
the library's types.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.arch.base import KernelRun
from repro.eval.experiments import EXPERIMENTS, ExperimentResult
from repro.eval.tables import PAPER_TABLE3, run_table3

SCHEMA_VERSION = 1


def _plain(value):
    """Coerce numpy scalars/containers into JSON-safe Python values."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def kernel_run_record(run: KernelRun) -> Dict:
    """A JSON-safe record of one kernel run (outputs omitted: they are
    workload-sized arrays; the functional flag carries their verdict)."""
    return {
        "kernel": run.kernel,
        "machine": run.machine,
        "clock_hz": run.spec.clock_hz,
        "cycles": run.cycles,
        "kilocycles": run.kilocycles,
        "seconds": run.seconds,
        "breakdown": _plain(run.breakdown.as_dict()),
        "ops": _plain(run.ops.as_dict()),
        "functional_ok": bool(run.functional_ok),
        "flops_per_cycle": run.flops_per_cycle,
        "percent_of_peak": run.percent_of_peak,
        "metrics": _plain(run.metrics),
    }


def experiment_record(outcome: ExperimentResult) -> Dict:
    """A JSON-safe record of one experiment outcome."""
    return {
        "id": outcome.id,
        "title": outcome.title,
        "checks": {
            name: {"model": _plain(model), "paper": _plain(paper)}
            for name, (model, paper) in outcome.checks.items()
        },
        "rendered": outcome.rendered,
    }


def table3_document(
    results: Optional[Mapping[Tuple[str, str], KernelRun]] = None,
) -> Dict:
    """The full Table 3 sweep plus paper values as one document."""
    results = results if results is not None else run_table3()
    return {
        "schema_version": SCHEMA_VERSION,
        "table3": [
            {
                **kernel_run_record(run),
                "paper_kilocycles": PAPER_TABLE3[(kernel, machine)],
            }
            for (kernel, machine), run in sorted(results.items())
        ],
    }


def full_document(
    results: Optional[Mapping[Tuple[str, str], KernelRun]] = None,
    include_experiments: bool = True,
    workloads: Optional[Dict] = None,
) -> Dict:
    """Everything: Table 3 records plus every experiment's checks.

    ``workloads`` (per-kernel overrides) is forwarded to the experiments
    so their re-runs stay consistent with ``results``.
    """
    results = results if results is not None else run_table3(workloads)
    document = table3_document(results)
    if include_experiments:
        document["experiments"] = [
            experiment_record(fn(results=results, workloads=workloads))
            for fn in EXPERIMENTS.values()
        ]
    return document


def write_json(
    path: Union[str, Path],
    document: Optional[Dict] = None,
) -> Path:
    """Write ``document`` (default: :func:`full_document`) to ``path``."""
    path = Path(path)
    if document is None:
        document = full_document()
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


#: Column order of :func:`table3_csv`; floats are written with ``repr``
#: so the file round-trips exactly (golden snapshots diff it verbatim).
CSV_COLUMNS = (
    "kernel",
    "machine",
    "cycles",
    "kilocycles",
    "seconds",
    "paper_kilocycles",
    "flops_per_cycle",
    "percent_of_peak",
    "functional_ok",
)


def table3_csv(
    results: Optional[Mapping[Tuple[str, str], KernelRun]] = None,
) -> str:
    """The Table 3 sweep as CSV text, one row per (kernel, machine).

    Rows are sorted, floats are ``repr``-exact, and the column set is
    :data:`CSV_COLUMNS` — deterministic by construction, which is what
    lets the golden-snapshot test pin the output byte for byte.
    """
    results = results if results is not None else run_table3()
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for (kernel, machine), run in sorted(results.items()):
        writer.writerow(
            [
                kernel,
                machine,
                repr(float(run.cycles)),
                repr(float(run.kilocycles)),
                repr(float(run.seconds)),
                repr(float(PAPER_TABLE3[(kernel, machine)])),
                repr(float(run.flops_per_cycle)),
                repr(float(run.percent_of_peak)),
                str(bool(run.functional_ok)),
            ]
        )
    return buffer.getvalue()


def write_csv(
    path: Union[str, Path],
    results: Optional[Mapping[Tuple[str, str], KernelRun]] = None,
) -> Path:
    """Write :func:`table3_csv` to ``path``."""
    path = Path(path)
    path.write_text(table3_csv(results))
    return path
