"""The experiment registry: one entry per table, figure, §4 breakdown,
and what-if ablation of the paper (see DESIGN.md §3 for the index).

Every experiment returns an :class:`ExperimentResult` carrying structured
``data`` (for the tests and benchmarks), a human-readable ``rendered``
block, and ``checks`` — named (model, paper) pairs for each quantitative
claim the paper makes, which the benchmark suite asserts against with
shape tolerances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.arch.base import KernelRun
from repro.errors import ExperimentError
from repro.eval.figures import speedup_figure
from repro.eval.speedup import speedup_cycles, speedup_time
from repro.eval.tables import (
    KERNELS,
    MACHINES,
    PAPER_TABLE3,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    run_table3,
)
from repro.mappings.registry import run
from repro.models.throughput import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    peak_throughput_table,
    processor_parameter_table,
)

Results = Mapping[Tuple[str, str], KernelRun]


@dataclass
class ExperimentResult:
    """Outcome of one registered experiment."""

    id: str
    title: str
    data: Dict = field(default_factory=dict)
    rendered: str = ""
    checks: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    def check_ratios(self) -> Dict[str, float]:
        """model/paper ratio per check (nan-free; paper==0 is skipped)."""
        return {
            name: model / paper
            for name, (model, paper) in self.checks.items()
            if paper
        }


def _need_results(results: Optional[Results], workloads=None) -> Results:
    return results if results is not None else run_table3(workloads)


def exp_table1(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    rows = {r.machine: r for r in peak_throughput_table()}
    checks = {}
    for m, row in rows.items():
        checks[f"{m}_onchip"] = (row.onchip_words_per_cycle, PAPER_TABLE1[m]["onchip"])
        checks[f"{m}_offchip"] = (
            row.offchip_words_per_cycle,
            PAPER_TABLE1[m]["offchip"],
        )
        checks[f"{m}_computation"] = (
            row.computation_words_per_cycle,
            PAPER_TABLE1[m]["computation"],
        )
    return ExperimentResult(
        id="table1",
        title="Table 1: peak throughput (32-bit words/cycle)",
        data={m: vars(r) for m, r in rows.items()},
        rendered=render_table1(),
        checks=checks,
    )


def exp_table2(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    rows = {r.machine: r for r in processor_parameter_table()}
    checks = {}
    for m, row in rows.items():
        clock, alus, gflops = PAPER_TABLE2[m]
        checks[f"{m}_clock_mhz"] = (row.clock_mhz, clock)
        checks[f"{m}_alus"] = (float(row.n_alus), float(alus))
        checks[f"{m}_gflops"] = (row.peak_gflops, gflops)
    return ExperimentResult(
        id="table2",
        title="Table 2: processor parameters",
        data={m: vars(r) for m, r in rows.items()},
        rendered=render_table2(),
        checks=checks,
    )


def exp_table3(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    results = _need_results(results, workloads)
    checks = {
        f"{kernel}_{machine}": (
            results[(kernel, machine)].kilocycles,
            PAPER_TABLE3[(kernel, machine)],
        )
        for kernel in KERNELS
        for machine in MACHINES
    }
    return ExperimentResult(
        id="table3",
        title="Table 3: kernel cycle counts (10^3 cycles)",
        data={k: r.kilocycles for k, r in results.items()},
        rendered=render_table3(results),
        checks=checks,
    )


def exp_table4(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    from repro.models.bounds import kernel_bound

    results = _need_results(results, workloads)
    data = {}
    checks = {}
    for machine in MACHINES:
        bound = kernel_bound("corner_turn", machine)
        achieved = results[("corner_turn", machine)].cycles
        data[machine] = {
            "bound_cycles": bound.bound_cycles,
            "binding": bound.binding,
            "achieved_cycles": achieved,
        }
        # The bound must lower-bound the achieved cycles (ratio >= 1).
        checks[f"{machine}_achieved_over_bound"] = (
            achieved / bound.bound_cycles,
            1.0,
        )
    return ExperimentResult(
        id="table4",
        title="Table 4: corner-turn performance-model expectation",
        data=data,
        rendered=render_table4(results),
        checks=checks,
    )


def _paper_speedups_cycles() -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for kernel in KERNELS:
        base = PAPER_TABLE3[(kernel, "altivec")]
        out[kernel] = {
            m: base / PAPER_TABLE3[(kernel, m)] for m in MACHINES
        }
    return out


def _paper_speedups_time(results: Results) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for kernel in KERNELS:
        base = PAPER_TABLE3[(kernel, "altivec")] / results[
            (kernel, "altivec")
        ].spec.clock_hz
        out[kernel] = {}
        for m in MACHINES:
            t = PAPER_TABLE3[(kernel, m)] / results[(kernel, m)].spec.clock_hz
            out[kernel][m] = base / t
    return out


def exp_figure8(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    results = _need_results(results, workloads)
    model = {
        kernel: speedup_cycles(
            {m: results[(kernel, m)] for m in MACHINES}
        )
        for kernel in KERNELS
    }
    paper = _paper_speedups_cycles()
    checks = {
        f"{kernel}_{m}": (model[kernel][m], paper[kernel][m])
        for kernel in KERNELS
        for m in MACHINES
    }
    return ExperimentResult(
        id="figure8",
        title="Figure 8: speedup vs PPC+AltiVec (cycles, log scale)",
        data=model,
        rendered=speedup_figure(
            "Figure 8. Speedup compared with PPC with AltiVec (cycles)",
            model,
            paper,
        ),
        checks=checks,
    )


def exp_figure9(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    results = _need_results(results, workloads)
    model = {
        kernel: speedup_time({m: results[(kernel, m)] for m in MACHINES})
        for kernel in KERNELS
    }
    paper = _paper_speedups_time(results)
    checks = {
        f"{kernel}_{m}": (model[kernel][m], paper[kernel][m])
        for kernel in KERNELS
        for m in MACHINES
    }
    return ExperimentResult(
        id="figure9",
        title="Figure 9: speedup vs PPC+AltiVec (execution time, log scale)",
        data=model,
        rendered=speedup_figure(
            "Figure 9. Speedup compared with PPC with AltiVec (execution "
            "time at 1 GHz / 200 MHz / 300 MHz / 300 MHz)",
            model,
            paper,
        ),
        checks=checks,
    )


def exp_sec42(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    """§4.2's corner-turn analysis statements."""
    results = _need_results(results, workloads)
    viram = results[("corner_turn", "viram")]
    imagine = results[("corner_turn", "imagine")]
    raw = results[("corner_turn", "raw")]
    checks = {
        "viram_precharge_tlb_fraction": (
            viram.metrics["precharge_tlb_fraction"],
            0.21,
        ),
        "viram_strided_penalty_fraction": (
            viram.metrics["strided_penalty_fraction"],
            0.24,
        ),
        "imagine_memory_fraction": (imagine.metrics["memory_fraction"], 0.87),
        "imagine_kernel_fraction": (
            imagine.metrics["unoverlapped_kernel_fraction"],
            0.13,
        ),
        "raw_instructions_per_cycle": (
            raw.metrics["instructions_per_cycle"],
            16.0,
        ),
    }
    rendered = "\n\n".join(
        f"--- {m} ---\n{results[('corner_turn', m)].breakdown.format()}"
        for m in ("viram", "imagine", "raw")
    )
    return ExperimentResult(
        id="sec4.2",
        title="§4.2: corner-turn cycle breakdowns",
        data={m: results[("corner_turn", m)].breakdown.as_dict() for m in MACHINES},
        rendered=rendered,
        checks=checks,
    )


def exp_sec43(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    """§4.3's CSLC analysis statements."""
    results = _need_results(results, workloads)
    viram = results[("cslc", "viram")]
    imagine = results[("cslc", "imagine")]
    raw = results[("cslc", "raw")]
    checks = {
        "viram_slowdown_vs_peak": (viram.metrics["slowdown_vs_peak"], 3.6),
        "imagine_ops_per_cycle": (imagine.metrics["ops_per_cycle"], 10.0),
        "imagine_fft_alu_utilization": (
            imagine.metrics["fft_alu_utilization"],
            0.255,
        ),
        "imagine_comm_penalty": (
            imagine.metrics["comm_penalty_fraction"],
            0.30,
        ),
        "raw_percent_of_peak": (
            raw.metrics["percent_of_peak_radix4_basis"],
            0.314,
        ),
        "raw_loadstore_fraction": (raw.metrics["loadstore_fraction"], 0.26),
        "raw_cache_stall_fraction_max": (
            raw.metrics["cache_stall_fraction"],
            0.10,
        ),
        "raw_imbalance_idle": (raw.metrics["imbalance_idle_fraction"], 0.08),
    }
    rendered = "\n\n".join(
        f"--- {m} ---\n{results[('cslc', m)].breakdown.format()}"
        for m in ("viram", "imagine", "raw")
    )
    return ExperimentResult(
        id="sec4.3",
        title="§4.3: CSLC cycle breakdowns",
        data={m: results[("cslc", m)].breakdown.as_dict() for m in MACHINES},
        rendered=rendered,
        checks=checks,
    )


def exp_sec44(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    """§4.4's beam-steering analysis statements."""
    results = _need_results(results, workloads)
    viram = results[("beam_steering", "viram")]
    imagine = results[("beam_steering", "imagine")]
    raw = results[("beam_steering", "raw")]
    checks = {
        "viram_compute_lower_bound": (
            viram.metrics["compute_lower_bound_fraction"],
            0.56,
        ),
        "imagine_loadstore_fraction": (
            imagine.metrics["loadstore_fraction"],
            0.89,
        ),
        "imagine_prologue_fraction": (
            imagine.metrics["prologue_fraction"],
            0.11,
        ),
        "raw_loads_stores": (float(raw.metrics["loads_stores_issued"]), 0.0),
    }
    rendered = "\n\n".join(
        f"--- {m} ---\n{results[('beam_steering', m)].breakdown.format()}"
        for m in ("viram", "imagine", "raw")
    )
    return ExperimentResult(
        id="sec4.4",
        title="§4.4: beam-steering cycle breakdowns",
        data={
            m: results[("beam_steering", m)].breakdown.as_dict()
            for m in MACHINES
        },
        rendered=rendered,
        checks=checks,
    )


def exp_sec45(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    """§4.5: the AltiVec gain over scalar PPC per kernel."""
    results = _need_results(results, workloads)
    gains = {
        kernel: results[(kernel, "ppc")].cycles
        / results[(kernel, "altivec")].cycles
        for kernel in KERNELS
    }
    checks = {
        "cslc_gain": (gains["cslc"], 6.0),
        "beam_steering_gain": (gains["beam_steering"], 2.0),
        "corner_turn_gain": (gains["corner_turn"], 1.17),
    }
    rendered = "\n".join(
        f"AltiVec gain on {k}: model {v:.2f}x" for k, v in gains.items()
    )
    return ExperimentResult(
        id="sec4.5",
        title="§4.5: AltiVec gain over scalar PPC",
        data=gains,
        rendered=rendered,
        checks=checks,
    )


def exp_sec46(results: Optional[Results] = None, workloads=None) -> ExperimentResult:
    """§4.6's architecture-comparison claims.

    "VIRAM outperformed the G4 Altivec by more than a factor of 10 on
    all three of our kernels and showed especially good performance on
    the kernels that emphasize memory bandwidth"; Imagine "has the best
    performance of the three architectures on CSLC" (§4.3); "The Raw
    beam steering implementation has the best performance of the three
    architectures" (§4.4) and Raw leads the corner turn (Table 3).  The
    geometric-mean speedups (the aggregation §2.1 quotes for EEMBC) are
    reported per machine.
    """
    from repro.sim.stats import geometric_mean

    results = _need_results(results, workloads)
    speedups = {
        kernel: speedup_cycles({m: results[(kernel, m)] for m in MACHINES})
        for kernel in KERNELS
    }
    geomeans = {
        machine: geometric_mean(
            [speedups[kernel][machine] for kernel in KERNELS]
        )
        for machine in ("viram", "imagine", "raw")
    }
    winners = {
        kernel: min(
            ("viram", "imagine", "raw"),
            key=lambda m: results[(kernel, m)].cycles,
        )
        for kernel in KERNELS
    }
    checks = {
        "viram_min_speedup_over_altivec": (
            min(speedups[kernel]["viram"] for kernel in KERNELS),
            10.0,
        ),
        "imagine_wins_cslc": (
            1.0 if winners["cslc"] == "imagine" else 0.0,
            1.0,
        ),
        "raw_wins_corner_turn": (
            1.0 if winners["corner_turn"] == "raw" else 0.0,
            1.0,
        ),
        "raw_wins_beam_steering": (
            1.0 if winners["beam_steering"] == "raw" else 0.0,
            1.0,
        ),
    }
    rendered = "\n".join(
        [
            "per-kernel winner among the research machines:",
            *(f"  {k}: {w}" for k, w in winners.items()),
            "geometric-mean speedup over AltiVec (cycles):",
            *(f"  {m}: {g:6.1f}x" for m, g in geomeans.items()),
        ]
    )
    return ExperimentResult(
        id="sec4.6",
        title="§4.6: architecture comparison "
        "(each architecture has its own strengths)",
        data={"speedups": speedups, "geomeans": geomeans, "winners": winners},
        rendered=rendered,
        checks=checks,
    )


def exp_ablation_imagine_network_port(
    results: Optional[Results] = None, workloads=None
) -> ExperimentResult:
    """§4.2 what-if: corner turn through Imagine's network port."""
    kwargs = {"workload": workloads.get("corner_turn")} if workloads else {}
    base = (
        results[("corner_turn", "imagine")]
        if results is not None
        else run("corner_turn", "imagine", **kwargs)
    )
    ported = run("corner_turn", "imagine", via_network_port=True, **kwargs)
    checks = {"port_over_base": (ported.cycles / base.cycles, 1.0)}
    return ExperimentResult(
        id="ablation_imagine_network_port",
        title="§4.2 what-if: corner turn via the network port "
        "(paper: 'the performance would be the same')",
        data={"base_cycles": base.cycles, "port_cycles": ported.cycles},
        rendered=(
            f"memory-controller route: {base.kilocycles:,.0f} kcycles\n"
            f"network-port route:      {ported.kilocycles:,.0f} kcycles"
        ),
        checks=checks,
    )


def exp_ablation_raw_streamed_fft(
    results: Optional[Results] = None, workloads=None
) -> ExperimentResult:
    """§4.3 what-if: Raw FFT streamed over the static network."""
    kwargs = {"workload": workloads.get("cslc")} if workloads else {}
    base = (
        results[("cslc", "raw")]
        if results is not None
        else run("cslc", "raw", **kwargs)
    )
    streamed = run("cslc", "raw", streamed_fft=True, **kwargs)
    improvement = base.cycles / streamed.cycles - 1.0
    checks = {"fft_improvement": (improvement, 0.70)}
    return ExperimentResult(
        id="ablation_raw_streamed_fft",
        title="§4.3 what-if: Raw CSLC with network-streamed FFT "
        "(paper: 'about 70% of FFT performance improvement')",
        data={"base_cycles": base.cycles, "streamed_cycles": streamed.cycles},
        rendered=(
            f"load/store FFT: {base.kilocycles:,.0f} kcycles\n"
            f"streamed FFT:   {streamed.kilocycles:,.0f} kcycles\n"
            f"improvement:    {100 * improvement:.0f}%"
        ),
        checks=checks,
    )


def exp_ablation_raw_load_balance(
    results: Optional[Results] = None, workloads=None
) -> ExperimentResult:
    """§4.3 what-if: real 73-sets-on-16-tiles imbalance vs extrapolation."""
    kwargs = {"workload": workloads.get("cslc")} if workloads else {}
    balanced = (
        results[("cslc", "raw")]
        if results is not None
        else run("cslc", "raw", **kwargs)
    )
    imbalanced = run("cslc", "raw", balanced=False, **kwargs)
    idle = 1.0 - balanced.cycles / imbalanced.cycles
    checks = {"idle_fraction": (idle, 0.08)}
    return ExperimentResult(
        id="ablation_raw_load_balance",
        title="§4.3 what-if: Raw CSLC load imbalance "
        "(paper: 'about 8% of CPU cycles are idle')",
        data={
            "balanced_cycles": balanced.cycles,
            "imbalanced_cycles": imbalanced.cycles,
        },
        rendered=(
            f"perfect balance (reported): {balanced.kilocycles:,.0f} kcycles\n"
            f"static 73-on-16 schedule:   {imbalanced.kilocycles:,.0f} "
            f"kcycles\nidle fraction:              {100 * idle:.1f}%"
        ),
        checks=checks,
    )


def exp_ablation_imagine_srf_tables(
    results: Optional[Results] = None, workloads=None
) -> ExperimentResult:
    """§4.4 what-if: beam-steering tables read from the SRF."""
    kwargs = {"workload": workloads.get("beam_steering")} if workloads else {}
    base = (
        results[("beam_steering", "imagine")]
        if results is not None
        else run("beam_steering", "imagine", **kwargs)
    )
    srf = run("beam_steering", "imagine", tables_in_srf=True, **kwargs)
    speedup = base.cycles / srf.cycles
    checks = {"srf_speedup": (speedup, 2.0)}
    return ExperimentResult(
        id="ablation_imagine_srf_tables",
        title="§4.4 what-if: Imagine beam steering with tables in the SRF "
        "(paper: 'increased by a factor of about two')",
        data={"base_cycles": base.cycles, "srf_cycles": srf.cycles},
        rendered=(
            f"tables in DRAM: {base.kilocycles:,.0f} kcycles\n"
            f"tables in SRF:  {srf.kilocycles:,.0f} kcycles\n"
            f"speedup:        {speedup:.2f}x"
        ),
        checks=checks,
    )


def exp_ablation_imagine_independent_ffts(
    results: Optional[Results] = None, workloads=None
) -> ExperimentResult:
    """§4.3 what-if: Imagine CSLC with independent per-cluster FFTs.

    "An alternative implementation, which was not completed for this
    study, would execute independent FFTs in parallel to eliminate
    inter-cluster communication overhead."  The paper quantifies the
    parallel version's penalty at ~30% of kernel time; the check anchors
    the kernel-time reduction of the independent variant against it.
    """
    kwargs = {"workload": workloads.get("cslc")} if workloads else {}
    base = (
        results[("cslc", "imagine")]
        if results is not None
        else run("cslc", "imagine", **kwargs)
    )
    independent = run("cslc", "imagine", independent_ffts=True, **kwargs)
    kernel_reduction = (
        (base.breakdown.get("kernel") - independent.breakdown.get("kernel"))
        / base.breakdown.get("kernel")
        if base.breakdown.get("kernel")
        else 0.0
    )
    checks = {
        # The penalty the independent version removes, as a fraction of
        # the parallel version's kernel time (paper: "reduced by 30%").
        "kernel_comm_share_removed": (kernel_reduction, 0.30),
        "total_speedup": (base.cycles / independent.cycles, 1.0),
    }
    return ExperimentResult(
        id="ablation_imagine_independent_ffts",
        title="§4.3 what-if: Imagine CSLC with independent FFTs "
        "(paper: would 'eliminate inter-cluster communication overhead')",
        data={
            "parallel_cycles": base.cycles,
            "independent_cycles": independent.cycles,
        },
        rendered=(
            f"cluster-parallel FFTs: {base.kilocycles:,.0f} kcycles\n"
            f"independent FFTs:      {independent.kilocycles:,.0f} kcycles\n"
            f"kernel time removed:   {100 * kernel_reduction:.0f}% "
            "(the inter-cluster communication share)"
        ),
        checks=checks,
    )


def exp_ablation_imagine_fft_size(
    results: Optional[Results] = None, workloads=None
) -> ExperimentResult:
    """§4.3 what-if: Imagine FFT ALU utilization versus transform size.

    "Note that the utilization for the 128-point FFT is a little lower
    than the more than 40% obtained in other processing intensive
    applications ...  The reason for the relatively low utilization is
    that the small size of the FFT reduces the amount of software
    pipelining and increases start-up overheads."  Sweeping the FFT size
    with the same kernel model shows utilization rising monotonically as
    the per-invocation prologue amortises, crossing 40% at the
    kilopoint sizes of the media kernels the paper compares against.
    """
    from repro.arch.imagine.machine import ImagineMachine
    from repro.kernels.fft import FFTPlan
    from repro.mappings.imagine_cslc import _transform_mix

    machine = ImagineMachine()
    utilization = {}
    for n in (128, 256, 512, 1024, 4096):
        plan = FFTPlan(n)
        mix = _transform_mix(plan, machine, parallel=True)
        kernel = machine.kernel_cycles(mix) + machine.kernel_startups(1)
        utilization[n] = plan.flops() / (
            machine.config.total_alus * kernel
        )
    checks = {
        "util_128": (utilization[128], 0.255),
        "util_large_exceeds_40pct": (
            max(utilization[1024], utilization[4096]),
            0.40,
        ),
    }
    rendered = "\n".join(
        f"  {n:>5}-point FFT: {100 * u:5.1f}% of the 48 ALUs"
        for n, u in utilization.items()
    )
    return ExperimentResult(
        id="ablation_imagine_fft_size",
        title="§4.3 what-if: Imagine FFT ALU utilization vs size "
        "(paper: 128-pt is below the >40% of larger kernels because of "
        "start-up overheads)",
        data=utilization,
        rendered=rendered,
        checks=checks,
    )


def exp_ablation_raw_placement(
    results: Optional[Results] = None, workloads=None
) -> ExperimentResult:
    """§3.1's negative space: why the Raw corner turn needed designing.

    "The algorithm ... was developed to ensure that all 16 Raw tiles are
    doing a load or store during as many cycles as possible and to avoid
    bottlenecks in the static networks and data ports."  With the
    designed placement (each tile streams through its adjacent
    peripheral port) the worst static-network link carries a tile's own
    traffic and the issue rate limits; with a naive placement that
    funnels every tile's blocks through one corner port, the shared
    links and the single port saturate and the network becomes the
    limiter — the bottleneck the algorithm was built to avoid.
    """
    from repro.arch.raw.machine import RawMachine
    from repro.arch.raw.network import StaticNetwork

    machine = RawMachine()
    config = machine.config
    words_per_tile = 2.0 * 1024 * 1024 / config.tiles  # canonical matrix

    # Designed placement: each tile streams through its own dedicated
    # edge link to an adjacent peripheral port — no mesh links shared,
    # so the worst link carries exactly one tile's traffic.
    designed_min = words_per_tile / config.static_link_words_per_cycle

    # Naive placement: every tile's blocks funnel through one corner
    # port; the corner tile's outgoing mesh links carry the rest of the
    # chip's traffic.
    naive = StaticNetwork(config)
    corner = (0, 0)
    for r in range(config.mesh_rows):
        for c in range(config.mesh_cols):
            naive.add_flow(corner, (r, c), words_per_tile)
    naive_min = naive.min_cycles()

    issue_bound = 2.0 * 1024 * 1024 / config.tiles  # 1 load/store per cycle
    checks = {
        "designed_network_feasible": (
            1.0 if designed_min <= issue_bound else 0.0,
            1.0,
        ),
        "naive_network_bottlenecks": (
            1.0 if naive_min > issue_bound else 0.0,
            1.0,
        ),
        "naive_over_designed_link_load": (
            naive.max_link_words / words_per_tile,
            1.0,  # anchor: strictly worse; magnitude reported
        ),
    }
    rendered = (
        f"issue-rate bound:            {issue_bound:,.0f} cycles\n"
        f"designed placement min time: {designed_min:,.0f} cycles "
        "(network exactly keeps pace — not the limiter)\n"
        f"naive single-port placement: {naive_min:,.0f} cycles "
        "(network-bound, 12x worse — the bottleneck §3.1's algorithm "
        "avoids)"
    )
    return ExperimentResult(
        id="ablation_raw_placement",
        title="§3.1 what-if: Raw corner-turn placement "
        "(paper: designed 'to avoid bottlenecks in the static networks "
        "and data ports')",
        data={
            "issue_bound": issue_bound,
            "designed_min_cycles": designed_min,
            "naive_min_cycles": naive_min,
        },
        rendered=rendered,
        checks=checks,
    )


def exp_ablation_viram_offchip(
    results: Optional[Results] = None, workloads=None
) -> ExperimentResult:
    """§4.6 what-if: the corner turn beyond VIRAM's on-chip DRAM.

    "If the application size is larger than the on-chip DRAM, the data
    needs to come from off-chip memory and VIRAM would lose much of its
    advantage."  Sweeps the matrix size across the 13 MB boundary; the
    paper's claim is qualitative, so the check anchors the off-chip
    penalty at ~2x per word (the 2-word/cycle DMA interface against the
    ~0.54-cycle/word on-chip figure).
    """
    from repro.eval.scaling import (
        corner_turn_scaling,
        crossover_summary,
        render_scaling,
    )

    points = corner_turn_scaling()
    summary = crossover_summary(points)
    checks = {
        "offchip_penalty": (summary["offchip_penalty"], 2.0),
        # VIRAM's standing vs Raw must worsen once off-chip.
        "advantage_lost": (
            summary["viram_over_raw_offchip"]
            / summary["viram_over_raw_onchip"],
            1.0,
        ),
    }
    return ExperimentResult(
        id="ablation_viram_offchip",
        title="§4.6 what-if: corner turn beyond VIRAM's on-chip DRAM "
        "(paper: 'VIRAM would lose much of its advantage')",
        data={"points": [vars(p) for p in points], **summary},
        rendered=render_scaling(points)
        + "\n"
        + "\n".join(f"{k} = {v:.2f}" for k, v in summary.items()),
        checks=checks,
    )


EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": exp_table1,
    "table2": exp_table2,
    "table3": exp_table3,
    "table4": exp_table4,
    "figure8": exp_figure8,
    "figure9": exp_figure9,
    "sec4.2": exp_sec42,
    "sec4.3": exp_sec43,
    "sec4.4": exp_sec44,
    "sec4.5": exp_sec45,
    "sec4.6": exp_sec46,
    "ablation_imagine_network_port": exp_ablation_imagine_network_port,
    "ablation_raw_streamed_fft": exp_ablation_raw_streamed_fft,
    "ablation_raw_load_balance": exp_ablation_raw_load_balance,
    "ablation_imagine_srf_tables": exp_ablation_imagine_srf_tables,
    "ablation_imagine_independent_ffts": exp_ablation_imagine_independent_ffts,
    "ablation_imagine_fft_size": exp_ablation_imagine_fft_size,
    "ablation_raw_placement": exp_ablation_raw_placement,
    "ablation_viram_offchip": exp_ablation_viram_offchip,
}


def prewarm_requests(workloads=None):
    """Every run request the full experiment suite will issue.

    Covers the fifteen Table 3 cells, each ablation's variant runs, and
    the §4.6 scaling sweep (which always uses the canonical sizes).
    Evaluating these through the sweep executor seeds the run cache, so
    the experiments themselves — which call :func:`run` serially while
    rendering — become pure cache hits.
    """
    requests = []

    def kw(kernel: str, **extra):
        kwargs = dict(extra)
        if workloads and kernel in workloads:
            kwargs["workload"] = workloads[kernel]
        return kwargs

    for kernel in KERNELS:
        for machine in MACHINES:
            requests.append((kernel, machine, kw(kernel)))
    # Ablation variants (see the exp_ablation_* experiments above).
    requests.append(
        ("corner_turn", "imagine", kw("corner_turn", via_network_port=True))
    )
    requests.append(("cslc", "raw", kw("cslc", streamed_fft=True)))
    requests.append(("cslc", "raw", kw("cslc", balanced=False)))
    requests.append(
        ("beam_steering", "imagine", kw("beam_steering", tables_in_srf=True))
    )
    requests.append(("cslc", "imagine", kw("cslc", independent_ffts=True)))
    # The §4.6 scaling sweep ignores workload overrides by design.
    from repro.eval.scaling import DEFAULT_SIZES, SCALING_MACHINES
    from repro.kernels.corner_turn import CornerTurnWorkload

    for size in DEFAULT_SIZES:
        workload = CornerTurnWorkload(rows=size, cols=size)
        for machine in SCALING_MACHINES:
            requests.append(("corner_turn", machine, {"workload": workload}))
    return requests


def prewarm(workloads=None, jobs=None) -> int:
    """Seed the run cache with the full suite's runs (``jobs > 1``:
    evaluate them on a process pool).  Returns the number of requests."""
    from repro.perf.executor import run_cells

    requests = prewarm_requests(workloads)
    run_cells(requests, jobs=jobs)
    return len(requests)


def run_experiment(
    experiment_id: str,
    results: Optional[Results] = None,
    workloads=None,
) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(EXPERIMENTS)}"
        ) from None
    return fn(results=results, workloads=workloads)
