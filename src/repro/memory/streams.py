"""Address-pattern descriptors.

Kernel mappings describe their memory traffic as *patterns* — compact
descriptions of ordered word-address sequences — rather than issuing
addresses one by one.  The DRAM, cache, and TLB models consume patterns and
compute costs from the full sequence at once (vectorised with numpy), which
is what makes full-size workloads (a 1 M-element corner turn) tractable in
pure Python while keeping the address streams *exact*.

All addresses are in units of 32-bit words.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import PatternError


class AccessPattern:
    """Base class: an ordered sequence of word addresses."""

    @property
    def n_words(self) -> int:
        """Number of word accesses in the pattern."""
        raise NotImplementedError

    def addresses(self) -> np.ndarray:
        """The address sequence as an ``int64`` numpy array, in order."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{type(self).__name__}({self.n_words} words)"

    def _check(self) -> None:
        if self.n_words < 0:
            raise PatternError(f"{self!r}: negative length")


class Sequential(AccessPattern):
    """``n`` consecutive words starting at ``start``."""

    def __init__(self, start: int, n: int) -> None:
        if start < 0:
            raise PatternError(f"negative start address {start}")
        if n < 0:
            raise PatternError(f"negative length {n}")
        self.start = int(start)
        self.n = int(n)

    @property
    def n_words(self) -> int:
        return self.n

    def addresses(self) -> np.ndarray:
        return np.arange(self.start, self.start + self.n, dtype=np.int64)

    def describe(self) -> str:
        return f"Sequential(start={self.start}, n={self.n})"


class Strided(AccessPattern):
    """``n`` single-word accesses, ``stride`` words apart."""

    def __init__(self, start: int, n: int, stride: int) -> None:
        if start < 0:
            raise PatternError(f"negative start address {start}")
        if n < 0:
            raise PatternError(f"negative length {n}")
        if stride <= 0:
            raise PatternError(f"stride must be positive, got {stride}")
        self.start = int(start)
        self.n = int(n)
        self.stride = int(stride)

    @property
    def n_words(self) -> int:
        return self.n

    def addresses(self) -> np.ndarray:
        return self.start + self.stride * np.arange(self.n, dtype=np.int64)

    def describe(self) -> str:
        return f"Strided(start={self.start}, n={self.n}, stride={self.stride})"


class Tiled2D(AccessPattern):
    """All elements of a ``rows`` x ``cols`` tile of a 2-D array.

    The array has row pitch ``pitch`` words; the tile's top-left element is
    at word address ``base``.  ``order`` selects traversal: ``"row"`` walks
    the tile row-major (rows outer), ``"col"`` column-major — the latter is
    how a blocked transpose reads its source tile with strided vector
    loads.
    """

    def __init__(
        self, base: int, rows: int, cols: int, pitch: int, order: str = "row"
    ) -> None:
        if base < 0:
            raise PatternError(f"negative base address {base}")
        if rows < 0 or cols < 0:
            raise PatternError(f"negative tile shape {rows}x{cols}")
        if pitch < cols:
            raise PatternError(f"pitch {pitch} smaller than tile cols {cols}")
        if order not in ("row", "col"):
            raise PatternError(f"order must be 'row' or 'col', got {order!r}")
        self.base = int(base)
        self.rows = int(rows)
        self.cols = int(cols)
        self.pitch = int(pitch)
        self.order = order

    @property
    def n_words(self) -> int:
        return self.rows * self.cols

    def addresses(self) -> np.ndarray:
        r = np.arange(self.rows, dtype=np.int64)
        c = np.arange(self.cols, dtype=np.int64)
        grid = self.base + self.pitch * r[:, None] + c[None, :]
        if self.order == "col":
            grid = grid.T
        return grid.reshape(-1)

    def describe(self) -> str:
        return (
            f"Tiled2D(base={self.base}, {self.rows}x{self.cols}, "
            f"pitch={self.pitch}, order={self.order})"
        )


class Gather(AccessPattern):
    """Indexed accesses ``base + indices[i]`` (table lookups)."""

    def __init__(self, base: int, indices: Sequence[int]) -> None:
        if base < 0:
            raise PatternError(f"negative base address {base}")
        self.base = int(base)
        self._indices = np.asarray(indices, dtype=np.int64)
        if self._indices.ndim != 1:
            raise PatternError("gather indices must be one-dimensional")
        if self._indices.size and self._indices.min() < 0:
            raise PatternError("gather indices must be non-negative")

    @property
    def n_words(self) -> int:
        return int(self._indices.size)

    def addresses(self) -> np.ndarray:
        return self.base + self._indices

    def describe(self) -> str:
        return f"Gather(base={self.base}, n={self.n_words})"


class Custom(AccessPattern):
    """An explicit address sequence (already computed by the caller)."""

    def __init__(self, addresses: Sequence[int], label: str = "custom") -> None:
        self._addresses = np.asarray(addresses, dtype=np.int64)
        if self._addresses.ndim != 1:
            raise PatternError("custom addresses must be one-dimensional")
        if self._addresses.size and self._addresses.min() < 0:
            raise PatternError("custom addresses must be non-negative")
        self.label = label

    @property
    def n_words(self) -> int:
        return int(self._addresses.size)

    def addresses(self) -> np.ndarray:
        return self._addresses

    def describe(self) -> str:
        return f"Custom({self.label}, n={self.n_words})"


class Concat(AccessPattern):
    """Ordered concatenation of sub-patterns."""

    def __init__(self, patterns: Sequence[AccessPattern]) -> None:
        self.patterns: Tuple[AccessPattern, ...] = tuple(patterns)
        for p in self.patterns:
            if not isinstance(p, AccessPattern):
                raise PatternError(f"not an AccessPattern: {p!r}")

    @property
    def n_words(self) -> int:
        return sum(p.n_words for p in self.patterns)

    def addresses(self) -> np.ndarray:
        if not self.patterns:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([p.addresses() for p in self.patterns])

    def describe(self) -> str:
        return f"Concat({len(self.patterns)} patterns, {self.n_words} words)"
