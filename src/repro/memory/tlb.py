"""Fully-associative LRU TLB model.

VIRAM's corner-turn overhead includes TLB misses (§4.2: "about 21% of the
total cycles are overhead due to DRAM pre-charge cycles ... and TLB
misses").  The mappings feed the TLB the page sequence their address
streams touch; the model returns the miss count under LRU replacement.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.trace.tracer import active_tracer


class TLB:
    """Fully-associative, LRU translation buffer.

    Parameters
    ----------
    entries:
        Number of TLB entries.
    page_words:
        Page size in 32-bit words.
    miss_cycles:
        Exposed refill cost per miss (hardware table walk).
    """

    def __init__(self, entries: int, page_words: int, miss_cycles: float) -> None:
        if entries <= 0:
            raise ConfigError(f"TLB entries must be positive, got {entries}")
        if page_words <= 0:
            raise ConfigError(f"page_words must be positive, got {page_words}")
        if miss_cycles < 0:
            raise ConfigError(f"negative miss_cycles {miss_cycles}")
        self.entries = entries
        self.page_words = page_words
        self.miss_cycles = miss_cycles
        self._resident: "OrderedDict[int, None]" = OrderedDict()
        self._misses = 0
        self._accesses = 0

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def accesses(self) -> int:
        return self._accesses

    @property
    def stall_cycles(self) -> float:
        """Total exposed refill cycles so far."""
        return self._misses * self.miss_cycles

    def reset(self) -> None:
        self._resident.clear()
        self._misses = 0
        self._accesses = 0

    def access_pages(self, pages: Sequence[int]) -> int:
        """Run a page-id sequence through the TLB; returns misses added.

        Consecutive repeats are cheap, so callers may pass raw per-access
        page streams; for long streams prefer :meth:`access_addresses`,
        which compresses runs first.
        """
        # Hot loop: native-int list, bound methods, and batched counter
        # updates keep full-size workloads cheap without changing the
        # miss semantics.
        pages = np.asarray(pages, dtype=np.int64).tolist()
        misses = 0
        resident = self._resident
        move_to_end = resident.move_to_end
        popitem = resident.popitem
        entries = self.entries
        for page in pages:
            if page in resident:
                move_to_end(page)
                continue
            misses += 1
            resident[page] = None
            if len(resident) > entries:
                popitem(last=False)
        self._accesses += len(pages)
        self._misses += misses
        tracer = active_tracer()
        if tracer is not None:
            tracer.count("tlb.accesses", float(len(pages)))
            tracer.count("tlb.misses", float(misses))
            if misses:
                # The exposed refill time for this batch, at the track
                # cursor; the tlb track's busy sum therefore equals
                # misses * miss_cycles — the ledger's "tlb misses".
                tracer.span(
                    "refill",
                    "tlb",
                    misses * self.miss_cycles,
                    args={"misses": misses, "pages": len(pages)},
                )
        return misses

    def access_addresses(self, word_addresses: Sequence[int]) -> int:
        """Translate a word-address stream; returns misses added.

        The stream is compressed to its run-length-encoded page sequence
        first (consecutive accesses to the same page cost one lookup),
        which keeps full-size workloads fast without changing the miss
        count: repeated hits never alter LRU order relative to a single
        hit.
        """
        addresses = np.asarray(word_addresses, dtype=np.int64)
        if addresses.size == 0:
            return 0
        pages = addresses // self.page_words
        keep = np.ones(pages.size, dtype=bool)
        keep[1:] = pages[1:] != pages[:-1]
        return self.access_pages(pages[keep])
