"""Set-associative cache hierarchy with trace-driven simulation.

The PowerPC G4 baseline rows of the paper are dominated by cache behaviour
(§4.5: the corner turn "is limited by main memory bandwidth"; beam
steering's calibration tables stress the hierarchy), so the baseline model
needs a real cache.  This module provides:

* :class:`CacheLevel` — one set-associative, LRU, write-allocate cache
  level simulated line-by-line from an address trace.
* :class:`CacheHierarchy` — L1 + optional L2 composition: L1 misses are
  replayed into L2; the result carries per-level hit/miss counts and a
  stall-cycle total computed from per-level latencies.

Traces are word-address numpy arrays (see :mod:`repro.memory.streams`);
the simulator converts them to line addresses internally.  For full-size
workloads the PPC mappings use closed-form miss counts validated against
this simulator at small sizes (see ``tests/memory/test_cache.py`` and
``tests/mappings/test_ppc_analytic_vs_trace.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.trace.tracer import TRACK_SEP, active_tracer
from repro.units import WORD_BYTES


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    assoc: int
    hit_cycles: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigError(f"{self.name}: size must be positive")
        if self.line_bytes <= 0 or self.line_bytes % WORD_BYTES:
            raise ConfigError(
                f"{self.name}: line size must be a positive multiple of "
                f"{WORD_BYTES} bytes"
            )
        if self.size_bytes % self.line_bytes:
            raise ConfigError(f"{self.name}: size not a multiple of line size")
        if self.assoc <= 0:
            raise ConfigError(f"{self.name}: associativity must be positive")
        if self.n_lines % self.assoc:
            raise ConfigError(
                f"{self.name}: line count {self.n_lines} not divisible by "
                f"associativity {self.assoc}"
            )
        if self.hit_cycles < 0:
            raise ConfigError(f"{self.name}: negative hit latency")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.assoc

    @property
    def line_words(self) -> int:
        return self.line_bytes // WORD_BYTES


@dataclass
class LevelResult:
    """Hit/miss tally for one level over one trace."""

    name: str
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class CacheLevel:
    """One set-associative LRU cache level.

    State persists across :meth:`lookup_lines` calls so multi-phase kernels
    see warm caches.  Lines are identified by line address (word address
    divided by line words); sets are selected by line address modulo set
    count.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # set index -> list of line tags in LRU order (front = MRU).
        self._sets: Dict[int, List[int]] = {}

    def reset(self) -> None:
        self._sets.clear()

    def lookup_lines(self, line_addresses: Sequence[int]) -> LevelResult:
        """Run ``line_addresses`` through the cache; returns hit/miss tally.

        Returns the tally; the caller can obtain the missing line addresses
        with :meth:`miss_lines` semantics via :meth:`lookup_lines_misses`.
        """
        result, _ = self._lookup(line_addresses, collect_misses=False)
        return result

    def lookup_lines_misses(
        self, line_addresses: Sequence[int]
    ) -> "tuple[LevelResult, np.ndarray]":
        """Like :meth:`lookup_lines` but also returns the missed lines in
        order, for replay into the next level."""
        return self._lookup(line_addresses, collect_misses=True)

    def _lookup(
        self, line_addresses: Sequence[int], collect_misses: bool
    ) -> "tuple[LevelResult, np.ndarray]":
        n_sets = self.config.n_sets
        assoc = self.config.assoc
        sets = self._sets
        hits = 0
        misses: List[int] = []
        for line in np.asarray(line_addresses, dtype=np.int64):
            line = int(line)
            set_idx = line % n_sets
            ways = sets.get(set_idx)
            if ways is None:
                ways = []
                sets[set_idx] = ways
            try:
                pos = ways.index(line)
            except ValueError:
                pos = -1
            if pos >= 0:
                hits += 1
                if pos != 0:
                    ways.insert(0, ways.pop(pos))
            else:
                if collect_misses:
                    misses.append(line)
                ways.insert(0, line)
                if len(ways) > assoc:
                    ways.pop()
        result = LevelResult(
            name=self.config.name,
            accesses=int(np.asarray(line_addresses).size),
            hits=hits,
        )
        tracer = active_tracer()
        if tracer is not None and result.accesses:
            tracer.instant(
                "lookup",
                f"cache{TRACK_SEP}{self.config.name}",
                args={
                    "accesses": result.accesses,
                    "hits": result.hits,
                    "misses": result.misses,
                },
            )
            tracer.count(f"cache.{self.config.name}.hits", float(result.hits))
            tracer.count(
                f"cache.{self.config.name}.misses", float(result.misses)
            )
        if not collect_misses:
            return result, np.empty(0, dtype=np.int64)
        return result, np.asarray(misses, dtype=np.int64)

    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(ways) for ways in self._sets.values())


@dataclass(frozen=True)
class HierarchyResult:
    """Outcome of running a trace through the hierarchy."""

    word_accesses: int
    l1: LevelResult
    l2: Optional[LevelResult]
    memory_accesses: int
    stall_cycles: float

    @property
    def stalls_per_access(self) -> float:
        if self.word_accesses == 0:
            return 0.0
        return self.stall_cycles / self.word_accesses


class CacheHierarchy:
    """L1 (+ optional L2) in front of a fixed-latency memory.

    ``memory_latency`` is charged once per line that misses the last level.
    L1 hit time is *not* charged (it is part of the load/store instruction
    cost in the CPU models); L2 hit time is charged per L1 miss that hits
    in L2.
    """

    def __init__(
        self,
        l1: CacheConfig,
        l2: Optional[CacheConfig],
        memory_latency: float,
    ) -> None:
        if memory_latency < 0:
            raise ConfigError("negative memory latency")
        if l2 is not None and l2.line_bytes < l1.line_bytes:
            raise ConfigError("L2 line size smaller than L1 line size")
        self.l1 = CacheLevel(l1)
        self.l2 = CacheLevel(l2) if l2 is not None else None
        self.memory_latency = memory_latency

    def reset(self) -> None:
        self.l1.reset()
        if self.l2 is not None:
            self.l2.reset()

    def run_trace(self, word_addresses: Sequence[int]) -> HierarchyResult:
        """Simulate a word-address trace; returns per-level tallies.

        Adjacent accesses to the same line still perform separate lookups
        (they hit), matching a CPU issuing one load/store per word.
        """
        words = np.asarray(word_addresses, dtype=np.int64)
        l1_lines = words // self.l1.config.line_words
        l1_result, l1_misses = self.l1.lookup_lines_misses(l1_lines)

        if self.l2 is None:
            memory_accesses = l1_result.misses
            stall = memory_accesses * self.memory_latency
            return HierarchyResult(
                word_accesses=int(words.size),
                l1=l1_result,
                l2=None,
                memory_accesses=memory_accesses,
                stall_cycles=stall,
            )

        ratio = self.l2.config.line_words // self.l1.config.line_words
        l2_lines = l1_misses // ratio if ratio > 1 else l1_misses
        l2_result, _ = self.l2.lookup_lines_misses(l2_lines)
        memory_accesses = l2_result.misses
        stall = (
            l2_result.hits * self.l2.config.hit_cycles
            + memory_accesses
            * (self.l2.config.hit_cycles + self.memory_latency)
        )
        return HierarchyResult(
            word_accesses=int(words.size),
            l1=l1_result,
            l2=l2_result,
            memory_accesses=memory_accesses,
            stall_cycles=stall,
        )
