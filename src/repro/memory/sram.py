"""Capacity-checked scratchpad memories.

The paper's experimental design hinges on capacity relationships: the
corner-turn matrix was sized to exceed Imagine's 128 KB SRF and Raw's
aggregate local memory but fit VIRAM's 13 MB on-chip DRAM (§3.1), and the
CSLC working set was sized to fit local memories (§4.3).  Mappings assert
those relationships by allocating their working sets from a
:class:`Scratchpad`; exceeding capacity raises
:class:`repro.errors.CapacityError` instead of silently mis-modelling.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import CapacityError, ConfigError


class Scratchpad:
    """A named on-chip memory with explicit allocation bookkeeping."""

    def __init__(self, name: str, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ConfigError(f"{name}: capacity must be positive")
        self.name = name
        self.capacity_bytes = capacity_bytes
        self._allocations: Dict[str, int] = {}
        self._high_water = 0

    @property
    def used_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def high_water_bytes(self) -> int:
        """Peak allocation over the scratchpad's lifetime."""
        return self._high_water

    def allocate(self, label: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``label``.

        Raises :class:`CapacityError` if the allocation would exceed
        capacity, and :class:`ConfigError` on a duplicate label.
        """
        if nbytes < 0:
            raise ConfigError(f"{self.name}: negative allocation {nbytes}")
        if label in self._allocations:
            raise ConfigError(f"{self.name}: duplicate allocation {label!r}")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise CapacityError(
                f"{self.name}: allocating {nbytes} B for {label!r} exceeds "
                f"capacity ({self.used_bytes}/{self.capacity_bytes} B used)"
            )
        self._allocations[label] = nbytes
        self._high_water = max(self._high_water, self.used_bytes)

    def free(self, label: str) -> None:
        """Release the allocation made under ``label``."""
        try:
            del self._allocations[label]
        except KeyError:
            raise ConfigError(f"{self.name}: no allocation {label!r}") from None

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` could be allocated right now."""
        return nbytes <= self.free_bytes

    def reset(self) -> None:
        self._allocations.clear()
        self._high_water = 0

    def __repr__(self) -> str:
        return (
            f"Scratchpad({self.name!r}, used={self.used_bytes}/"
            f"{self.capacity_bytes} B)"
        )
