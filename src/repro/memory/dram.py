"""Banked DRAM with open-row state and activate/precharge exposure.

Organization
------------
The model uses a conventional row-interleaved organization: word address
``a`` maps to

* bank ``(a // row_words) % banks`` and
* row ``a // (row_words * banks)`` within that bank,

so consecutive ``row_words`` words live in one bank's open row and
consecutive DRAM rows rotate across banks.  Each bank holds one open row;
an access to a different row in the same bank costs a row cycle
(precharge + activate).  This captures the behaviours the paper leans on:

* VIRAM (§4.2): strided corner-turn loads touch a new DRAM row per matrix
  row, costing precharge overhead, while sequential stores reuse open rows
  ("[precharge cycles] would be mostly hidden with sequential accesses").
* Imagine (§4.2): the 8-word output blocks written at non-unit stride
  cause a row switch per block, making memory transfers 87% of the cycles.

Exposure policy
---------------
How much of the row-cycle time is *exposed* (i.e., lengthens the access
stream) depends on the memory controller:

* ``"bank-parallel"`` — activations overlap with data transfer in other
  banks; time is exposed only when the most-loaded bank's activation work
  exceeds the pattern's transfer time.  This models VIRAM's wide on-chip
  interface with independent pipelined banks.
* ``"serialized"`` — every activation stalls the stream for a full row
  cycle.  This models a simple streaming controller that processes one
  access stream in order (Imagine's memory controllers reorder across
  streams but each stream's row switches still cost time).

Two implementations are provided and cross-validated by tests:

* :class:`DRAM` — vectorised (numpy) stateful costing of whole patterns.
* :class:`DRAMReference` — a per-access pure-Python simulator with
  identical semantics, used as the test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.memory.streams import AccessPattern

_POLICIES = ("bank-parallel", "serialized")


@dataclass(frozen=True)
class DRAMConfig:
    """Static DRAM organization and timing.

    Parameters
    ----------
    name:
        Diagnostic label ("viram-onchip", "imagine-offchip", ...).
    banks:
        Number of independent banks (VIRAM: 2 wings x 4 banks = 8).
    row_words:
        Words per bank row (row buffer size).
    row_cycle:
        Cycles of precharge + activate exposed per row switch (before any
        bank-parallel amortisation).
    access_latency:
        Pipelined access latency in cycles; reported separately because the
        studied architectures generally hide it (§2.5), but mappings can
        charge it where the paper says it is exposed (VIRAM's "initial load
        latencies are not hidden").
    activation_policy:
        ``"bank-parallel"`` or ``"serialized"`` (see module docstring).
    """

    name: str
    banks: int
    row_words: int
    row_cycle: float
    access_latency: float
    activation_policy: str = "bank-parallel"

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise ConfigError(f"{self.name}: banks must be positive")
        if self.row_words <= 0:
            raise ConfigError(f"{self.name}: row_words must be positive")
        if self.row_cycle < 0:
            raise ConfigError(f"{self.name}: negative row_cycle")
        if self.access_latency < 0:
            raise ConfigError(f"{self.name}: negative access_latency")
        if self.activation_policy not in _POLICIES:
            raise ConfigError(
                f"{self.name}: activation_policy must be one of {_POLICIES}"
            )


@dataclass(frozen=True)
class DRAMCost:
    """Cost of streaming one pattern through the DRAM.

    ``issue_cycles`` is data-transfer time at the caller-supplied rate;
    ``activation_cycles`` is exposed row-switch time; ``access_latency`` is
    the (usually hidden) pipeline latency, reported for callers that need
    to expose it.
    """

    words: int
    issue_cycles: float
    activation_cycles: float
    activations: int
    access_latency: float

    @property
    def stream_cycles(self) -> float:
        """Exposed cycles for the stream: transfer plus row switches."""
        return self.issue_cycles + self.activation_cycles

    @property
    def cycles_per_word(self) -> float:
        if self.words == 0:
            return 0.0
        return self.stream_cycles / self.words


def _bank_and_row(addresses: np.ndarray, config: DRAMConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Map word addresses to (bank, row-within-bank) arrays."""
    dram_row = addresses // config.row_words
    bank = dram_row % config.banks
    row = dram_row // config.banks
    return bank, row


class DRAM:
    """Vectorised stateful DRAM cost model (see module docstring).

    The object keeps the open-row register of every bank across calls, so
    a sequence of :meth:`access` calls models a program-ordered access
    stream: rows opened by one pattern stay open for the next.
    """

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._open_rows: Dict[int, int] = {}
        self._total_activations = 0
        self._total_words = 0

    @property
    def open_rows(self) -> Dict[int, int]:
        """Copy of the per-bank open-row registers (bank -> row)."""
        return dict(self._open_rows)

    @property
    def total_activations(self) -> int:
        return self._total_activations

    @property
    def total_words(self) -> int:
        return self._total_words

    def reset(self) -> None:
        """Close all rows and clear counters."""
        self._open_rows.clear()
        self._total_activations = 0
        self._total_words = 0

    def access(
        self,
        pattern: AccessPattern,
        *,
        rate_words_per_cycle: float,
        kind: str = "read",
    ) -> DRAMCost:
        """Cost of streaming ``pattern`` at the given issue rate.

        ``rate_words_per_cycle`` is the *architectural* issue limit of the
        requester (address generators, port width); the DRAM adds exposed
        row-switch time on top.  ``kind`` is informational ("read"/"write").
        """
        if rate_words_per_cycle <= 0:
            raise ConfigError(
                f"rate_words_per_cycle must be positive, got {rate_words_per_cycle}"
            )
        if kind not in ("read", "write"):
            raise ConfigError(f"kind must be 'read' or 'write', got {kind!r}")
        addresses = pattern.addresses()
        n = int(addresses.size)
        if n == 0:
            return DRAMCost(0, 0.0, 0.0, 0, self.config.access_latency)

        bank, row = _bank_and_row(addresses, self.config)
        activations, per_bank = self._count_activations(bank, row)

        issue_cycles = n / rate_words_per_cycle
        if self.config.activation_policy == "serialized":
            activation_cycles = activations * self.config.row_cycle
        else:
            # Bank-parallel: the most-loaded bank's activation work is
            # exposed only where it exceeds the pattern's transfer time.
            worst = max(per_bank.values()) if per_bank else 0
            activation_cycles = max(
                0.0, worst * self.config.row_cycle - issue_cycles
            )

        self._total_activations += activations
        self._total_words += n
        return DRAMCost(
            words=n,
            issue_cycles=issue_cycles,
            activation_cycles=activation_cycles,
            activations=activations,
            access_latency=self.config.access_latency,
        )

    def _count_activations(
        self, bank: np.ndarray, row: np.ndarray
    ) -> Tuple[int, Dict[int, int]]:
        """Count row switches in program order and update open rows.

        Within each bank the access order is preserved (stable sort by
        bank), so a switch is counted whenever the row differs from the
        bank's previous access — exactly what the per-access reference
        implementation does.
        """
        order = np.argsort(bank, kind="stable")
        b_sorted = bank[order]
        r_sorted = row[order]

        # Boundaries between bank groups in the sorted arrays.
        group_start = np.ones(b_sorted.size, dtype=bool)
        group_start[1:] = b_sorted[1:] != b_sorted[:-1]

        # Row change relative to the previous access in the same bank.
        changed = np.ones(r_sorted.size, dtype=bool)
        changed[1:] = r_sorted[1:] != r_sorted[:-1]

        # First access of each bank group: compare against the open row.
        start_idx = np.nonzero(group_start)[0]
        for idx in start_idx:
            b = int(b_sorted[idx])
            open_row = self._open_rows.get(b)
            changed[idx] = open_row != int(r_sorted[idx])

        misses = changed  # group-start entries were fixed up above
        # Count per bank and total.
        miss_banks = b_sorted[misses]
        per_bank: Dict[int, int] = {}
        for b, count in zip(*np.unique(miss_banks, return_counts=True)):
            per_bank[int(b)] = int(count)
        activations = int(misses.sum())

        # Update open rows: last row accessed in each bank.
        end_idx = np.concatenate([start_idx[1:] - 1, [b_sorted.size - 1]])
        for idx in end_idx:
            self._open_rows[int(b_sorted[idx])] = int(r_sorted[idx])

        return activations, per_bank


class DRAMReference:
    """Per-access pure-Python DRAM simulator (test oracle for :class:`DRAM`).

    Semantics are identical to :class:`DRAM`; only the implementation
    differs (an explicit loop with per-bank open-row registers).  Tests
    cross-validate activation counts exactly and cycle totals to floating
    point tolerance.
    """

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._open_rows: Dict[int, int] = {}

    def reset(self) -> None:
        self._open_rows.clear()

    def access(
        self,
        pattern: AccessPattern,
        *,
        rate_words_per_cycle: float,
        kind: str = "read",
    ) -> DRAMCost:
        """Reference implementation of :meth:`DRAM.access`."""
        if rate_words_per_cycle <= 0:
            raise ConfigError(
                f"rate_words_per_cycle must be positive, got {rate_words_per_cycle}"
            )
        addresses = pattern.addresses()
        config = self.config
        activations = 0
        per_bank: Dict[int, int] = {}
        for a in addresses:
            dram_row = int(a) // config.row_words
            bank = dram_row % config.banks
            row = dram_row // config.banks
            if self._open_rows.get(bank) != row:
                activations += 1
                per_bank[bank] = per_bank.get(bank, 0) + 1
                self._open_rows[bank] = row
        n = int(addresses.size)
        issue_cycles = n / rate_words_per_cycle if n else 0.0
        if config.activation_policy == "serialized":
            activation_cycles = activations * config.row_cycle
        else:
            worst = max(per_bank.values()) if per_bank else 0
            activation_cycles = max(0.0, worst * config.row_cycle - issue_cycles)
        return DRAMCost(
            words=n,
            issue_cycles=issue_cycles,
            activation_cycles=activation_cycles,
            activations=activations,
            access_latency=config.access_latency,
        )


def pad_pitch_for_banks(cols: int, config: DRAMConfig) -> int:
    """Row pitch (>= ``cols``) that spreads strided column walks over banks.

    A matrix stored with row pitch ``p`` is walked column-wise with stride
    ``p``; successive accesses advance ``p // row_words`` DRAM rows, and if
    that advance shares a factor with the bank count the walk hits only a
    subset of banks (the "DRAM bank conflicts" §3.1 avoids with padding).
    This helper returns the smallest pitch whose row advance is coprime
    with the bank count (odd, for power-of-two bank counts).  When the
    advance is zero (several matrix rows share a DRAM row) no padding is
    needed.
    """
    import math

    if cols <= 0:
        raise ConfigError(f"cols must be positive, got {cols}")
    pitch = cols
    while True:
        advance = pitch // config.row_words
        if advance == 0 or math.gcd(advance, config.banks) == 1:
            return pitch
        # Step to the next row boundary: the advance increases by one,
        # which flips parity (and so reaches coprimality for power-of-two
        # bank counts within at most ``banks`` steps).
        remainder = pitch % config.row_words
        pitch += config.row_words - remainder if remainder else config.row_words
