"""Banked DRAM with open-row state and activate/precharge exposure.

Organization
------------
The model uses a conventional row-interleaved organization: word address
``a`` maps to

* bank ``(a // row_words) % banks`` and
* row ``a // (row_words * banks)`` within that bank,

so consecutive ``row_words`` words live in one bank's open row and
consecutive DRAM rows rotate across banks.  Each bank holds one open row;
an access to a different row in the same bank costs a row cycle
(precharge + activate).  This captures the behaviours the paper leans on:

* VIRAM (§4.2): strided corner-turn loads touch a new DRAM row per matrix
  row, costing precharge overhead, while sequential stores reuse open rows
  ("[precharge cycles] would be mostly hidden with sequential accesses").
* Imagine (§4.2): the 8-word output blocks written at non-unit stride
  cause a row switch per block, making memory transfers 87% of the cycles.

Exposure policy
---------------
How much of the row-cycle time is *exposed* (i.e., lengthens the access
stream) depends on the memory controller:

* ``"bank-parallel"`` — activations overlap with data transfer in other
  banks; time is exposed only when the most-loaded bank's activation work
  exceeds the pattern's transfer time.  This models VIRAM's wide on-chip
  interface with independent pipelined banks.
* ``"serialized"`` — every activation stalls the stream for a full row
  cycle.  This models a simple streaming controller that processes one
  access stream in order (Imagine's memory controllers reorder across
  streams but each stream's row switches still cost time).

Two implementations are provided and cross-validated by tests:

* :class:`DRAM` — vectorised (numpy) stateful costing of whole patterns.
* :class:`DRAMReference` — a per-access pure-Python simulator with
  identical semantics, used as the test oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.memory.streams import AccessPattern
from repro.trace.tracer import TRACK_SEP, active_tracer

_POLICIES = ("bank-parallel", "serialized")


@dataclass(frozen=True)
class DRAMConfig:
    """Static DRAM organization and timing.

    Parameters
    ----------
    name:
        Diagnostic label ("viram-onchip", "imagine-offchip", ...).
    banks:
        Number of independent banks (VIRAM: 2 wings x 4 banks = 8).
    row_words:
        Words per bank row (row buffer size).
    row_cycle:
        Cycles of precharge + activate exposed per row switch (before any
        bank-parallel amortisation).
    access_latency:
        Pipelined access latency in cycles; reported separately because the
        studied architectures generally hide it (§2.5), but mappings can
        charge it where the paper says it is exposed (VIRAM's "initial load
        latencies are not hidden").
    activation_policy:
        ``"bank-parallel"`` or ``"serialized"`` (see module docstring).
    """

    name: str
    banks: int
    row_words: int
    row_cycle: float
    access_latency: float
    activation_policy: str = "bank-parallel"

    def __post_init__(self) -> None:
        if self.banks <= 0:
            raise ConfigError(f"{self.name}: banks must be positive")
        if self.row_words <= 0:
            raise ConfigError(f"{self.name}: row_words must be positive")
        if self.row_cycle < 0:
            raise ConfigError(f"{self.name}: negative row_cycle")
        if self.access_latency < 0:
            raise ConfigError(f"{self.name}: negative access_latency")
        if self.activation_policy not in _POLICIES:
            raise ConfigError(
                f"{self.name}: activation_policy must be one of {_POLICIES}"
            )


@dataclass(frozen=True)
class DRAMCost:
    """Cost of streaming one pattern through the DRAM.

    ``issue_cycles`` is data-transfer time at the caller-supplied rate;
    ``activation_cycles`` is exposed row-switch time; ``access_latency`` is
    the (usually hidden) pipeline latency, reported for callers that need
    to expose it.
    """

    words: int
    issue_cycles: float
    activation_cycles: float
    activations: int
    access_latency: float

    @property
    def stream_cycles(self) -> float:
        """Exposed cycles for the stream: transfer plus row switches."""
        return self.issue_cycles + self.activation_cycles

    @property
    def cycles_per_word(self) -> float:
        if self.words == 0:
            return 0.0
        return self.stream_cycles / self.words


@dataclass(frozen=True)
class DRAMBatchCost:
    """Per-segment costs of one batched access run (see
    :meth:`DRAM.access_run`).

    Each field is an array with one entry per segment; entry ``i`` is
    exactly what a standalone :meth:`DRAM.access` call for segment ``i``
    would have returned, given the open-row state left by segments
    ``0..i-1``.

    ``worst`` is segment ``i``'s most-loaded-bank activation count — the
    quantity the ``bank-parallel`` exposure policy multiplies by the row
    cycle.  Exposing it lets callers re-derive ``activation_cycles`` for
    a *different* row-cycle value (the tensorized sweep engine evaluates
    one address run under a whole batch of calibrations) without
    re-walking the address stream: activation counts depend only on
    addresses and geometry, never on the timing constants.
    """

    words: np.ndarray
    issue_cycles: np.ndarray
    activation_cycles: np.ndarray
    activations: np.ndarray
    worst: np.ndarray
    access_latency: float

    @property
    def n_segments(self) -> int:
        return int(self.words.size)

    def segment(self, i: int) -> DRAMCost:
        """Segment ``i``'s cost as a standalone :class:`DRAMCost`."""
        return DRAMCost(
            words=int(self.words[i]),
            issue_cycles=float(self.issue_cycles[i]),
            activation_cycles=float(self.activation_cycles[i]),
            activations=int(self.activations[i]),
            access_latency=self.access_latency,
        )


def _bank_and_row(addresses: np.ndarray, config: DRAMConfig) -> Tuple[np.ndarray, np.ndarray]:
    """Map word addresses to (bank, row-within-bank) arrays.

    Addresses are non-negative, so when the geometry is a power of two
    (every modelled machine's is) the divisions reduce to shifts and
    masks — int64 division has no SIMD path and dominates large runs.
    """
    row_words = config.row_words
    banks = config.banks
    if row_words & (row_words - 1) == 0 and banks & (banks - 1) == 0:
        # Call the ufuncs directly: the operator form (``addresses >> k``
        # with a Python-int scalar) takes numpy's slow scalar-promotion
        # path and costs ~10x more on megaword address runs.
        dram_row = np.right_shift(addresses, row_words.bit_length() - 1)
        bank = np.bitwise_and(dram_row, banks - 1)
        row = np.right_shift(dram_row, banks.bit_length() - 1)
        return bank, row
    dram_row = addresses // row_words
    bank = dram_row % banks
    row = dram_row // banks
    return bank, row


class DRAM:
    """Vectorised stateful DRAM cost model (see module docstring).

    The object keeps the open-row register of every bank across calls, so
    a sequence of :meth:`access` calls models a program-ordered access
    stream: rows opened by one pattern stay open for the next.
    """

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._open_rows: Dict[int, int] = {}
        self._total_activations = 0
        self._total_words = 0

    @property
    def open_rows(self) -> Dict[int, int]:
        """Copy of the per-bank open-row registers (bank -> row)."""
        return dict(self._open_rows)

    @property
    def total_activations(self) -> int:
        return self._total_activations

    @property
    def total_words(self) -> int:
        return self._total_words

    def reset(self) -> None:
        """Close all rows and clear counters."""
        self._open_rows.clear()
        self._total_activations = 0
        self._total_words = 0

    def access(
        self,
        pattern: AccessPattern,
        *,
        rate_words_per_cycle: float,
        kind: str = "read",
    ) -> DRAMCost:
        """Cost of streaming ``pattern`` at the given issue rate.

        ``rate_words_per_cycle`` is the *architectural* issue limit of the
        requester (address generators, port width); the DRAM adds exposed
        row-switch time on top.  ``kind`` is informational ("read"/"write").
        """
        if rate_words_per_cycle <= 0:
            raise ConfigError(
                f"rate_words_per_cycle must be positive, got {rate_words_per_cycle}"
            )
        if kind not in ("read", "write"):
            raise ConfigError(f"kind must be 'read' or 'write', got {kind!r}")
        addresses = pattern.addresses()
        n = int(addresses.size)
        if n == 0:
            return DRAMCost(0, 0.0, 0.0, 0, self.config.access_latency)
        batch = self.access_run(
            addresses,
            np.asarray([n], dtype=np.int64),
            np.asarray([rate_words_per_cycle], dtype=np.float64),
        )
        return batch.segment(0)

    def access_run(
        self,
        addresses: Sequence[int],
        seg_lengths: Sequence[int],
        rates_words_per_cycle: Sequence[float],
        kinds: Optional[Sequence[str]] = None,
    ) -> DRAMBatchCost:
        """Cost of streaming many back-to-back patterns in one call.

        ``addresses`` is the program-ordered concatenation of the
        segments' word addresses; segment ``i`` spans the next
        ``seg_lengths[i]`` entries and issues at
        ``rates_words_per_cycle[i]``.  Semantically identical to calling
        :meth:`access` once per segment (open-row state threads through
        the whole run and persists afterwards), but activation counting
        is vectorised over the entire address stream — one numpy pass
        instead of per-segment Python calls — which is what makes
        megaword blocked mappings (the VIRAM corner turn's thousands of
        16x16 tiles) fast.
        """
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        seg_lengths = np.ascontiguousarray(seg_lengths, dtype=np.int64)
        rates = np.ascontiguousarray(rates_words_per_cycle, dtype=np.float64)
        n_seg = int(seg_lengths.size)
        if rates.size != n_seg:
            raise ConfigError(
                f"{rates.size} rates for {n_seg} segments"
            )
        if n_seg and seg_lengths.min() < 0:
            raise ConfigError("negative segment length")
        if n_seg and rates.min() <= 0:
            raise ConfigError("rate_words_per_cycle must be positive")
        if kinds is not None:
            for kind in kinds:
                if kind not in ("read", "write"):
                    raise ConfigError(
                        f"kind must be 'read' or 'write', got {kind!r}"
                    )
        if int(seg_lengths.sum()) != int(addresses.size):
            raise ConfigError(
                f"segment lengths sum to {int(seg_lengths.sum())} but "
                f"{int(addresses.size)} addresses were given"
            )

        tracer = active_tracer()
        issue_cycles = np.zeros(n_seg, dtype=np.float64)
        nonempty = seg_lengths > 0
        issue_cycles[nonempty] = seg_lengths[nonempty] / rates[nonempty]

        worst = np.zeros(n_seg, dtype=np.int64)
        activations = np.zeros(n_seg, dtype=np.int64)
        if addresses.size:
            # Segment id of an address position, recovered lazily from the
            # segment start offsets — materialising a per-address id array
            # with ``np.repeat`` costs more than the whole bank pass on
            # megaword runs, and only the (few) activating positions ever
            # need their segment resolved.
            seg_starts = np.cumsum(seg_lengths) - seg_lengths
            bank, row = _bank_and_row(addresses, self.config)
            # Per bank, in program order: an access activates when its row
            # differs from the bank's previous access (or its open row, for
            # the bank's first access of the run).  Banks are independent,
            # so each is one vectorised pass.
            for b in range(self.config.banks):
                idx = np.flatnonzero(bank == b)
                if idx.size == 0:
                    continue
                rows_b = row[idx]
                changed = np.empty(idx.size, dtype=bool)
                changed[0] = self._open_rows.get(b) != int(rows_b[0])
                changed[1:] = rows_b[1:] != rows_b[:-1]
                per_seg = np.bincount(
                    np.searchsorted(
                        seg_starts, idx[changed], side="right"
                    ) - 1,
                    minlength=n_seg,
                )
                np.maximum(worst, per_seg, out=worst)
                activations += per_seg
                self._open_rows[b] = int(rows_b[-1])
                if tracer is not None:
                    tracer.count(
                        f"dram.{self.config.name}.bank{b:02d}.activations",
                        float(per_seg.sum()),
                    )

        if self.config.activation_policy == "serialized":
            activation_cycles = activations * self.config.row_cycle
        else:
            # Bank-parallel: per segment, the most-loaded bank's activation
            # work is exposed only where it exceeds the transfer time.
            activation_cycles = np.maximum(
                0.0, worst * self.config.row_cycle - issue_cycles
            )

        self._total_activations += int(activations.sum())
        self._total_words += int(addresses.size)
        if tracer is not None:
            # One span per segment on the device's track, back-to-back at
            # the track cursor: cost models compute durations, not start
            # times, so the timeline shows relative occupancy, and the
            # track's busy sum equals the run's exposed DRAM cycles.
            track = f"dram{TRACK_SEP}{self.config.name}"
            stream = issue_cycles + activation_cycles
            kinds_seq = tuple(kinds) if kinds is not None else None
            for i in range(n_seg):
                tracer.span(
                    kinds_seq[i] if kinds_seq else "segment",
                    track,
                    float(stream[i]),
                    args={
                        "words": int(seg_lengths[i]),
                        "activations": int(activations[i]),
                    },
                )
            tracer.count(
                f"dram.{self.config.name}.words", float(addresses.size)
            )
            tracer.count(
                f"dram.{self.config.name}.activations",
                float(activations.sum()),
            )
        return DRAMBatchCost(
            words=seg_lengths,
            issue_cycles=issue_cycles,
            activation_cycles=activation_cycles,
            activations=activations,
            worst=worst,
            access_latency=self.config.access_latency,
        )


class DRAMReference:
    """Per-access pure-Python DRAM simulator (test oracle for :class:`DRAM`).

    Semantics are identical to :class:`DRAM`; only the implementation
    differs (an explicit loop with per-bank open-row registers).  Tests
    cross-validate activation counts exactly and cycle totals to floating
    point tolerance.
    """

    def __init__(self, config: DRAMConfig) -> None:
        self.config = config
        self._open_rows: Dict[int, int] = {}

    def reset(self) -> None:
        self._open_rows.clear()

    def access(
        self,
        pattern: AccessPattern,
        *,
        rate_words_per_cycle: float,
        kind: str = "read",
    ) -> DRAMCost:
        """Reference implementation of :meth:`DRAM.access`."""
        if rate_words_per_cycle <= 0:
            raise ConfigError(
                f"rate_words_per_cycle must be positive, got {rate_words_per_cycle}"
            )
        addresses = pattern.addresses()
        config = self.config
        activations = 0
        per_bank: Dict[int, int] = {}
        for a in addresses:
            dram_row = int(a) // config.row_words
            bank = dram_row % config.banks
            row = dram_row // config.banks
            if self._open_rows.get(bank) != row:
                activations += 1
                per_bank[bank] = per_bank.get(bank, 0) + 1
                self._open_rows[bank] = row
        n = int(addresses.size)
        issue_cycles = n / rate_words_per_cycle if n else 0.0
        if config.activation_policy == "serialized":
            activation_cycles = activations * config.row_cycle
        else:
            worst = max(per_bank.values()) if per_bank else 0
            activation_cycles = max(0.0, worst * config.row_cycle - issue_cycles)
        return DRAMCost(
            words=n,
            issue_cycles=issue_cycles,
            activation_cycles=activation_cycles,
            activations=activations,
            access_latency=config.access_latency,
        )


def pad_pitch_for_banks(cols: int, config: DRAMConfig) -> int:
    """Row pitch (>= ``cols``) that spreads strided column walks over banks.

    A matrix stored with row pitch ``p`` is walked column-wise with stride
    ``p``; successive accesses advance ``p // row_words`` DRAM rows, and if
    that advance shares a factor with the bank count the walk hits only a
    subset of banks (the "DRAM bank conflicts" §3.1 avoids with padding).
    This helper returns the smallest pitch whose row advance is coprime
    with the bank count (odd, for power-of-two bank counts).  When the
    advance is zero (several matrix rows share a DRAM row) no padding is
    needed.
    """
    import math

    if cols <= 0:
        raise ConfigError(f"cols must be positive, got {cols}")
    pitch = cols
    while True:
        advance = pitch // config.row_words
        if advance == 0 or math.gcd(advance, config.banks) == 1:
            return pitch
        # Step to the next row boundary: the advance increases by one,
        # which flips parity (and so reaches coprimality for power-of-two
        # bank counts within at most ``banks`` steps).
        remainder = pitch % config.row_words
        pitch += config.row_words - remainder if remainder else config.row_words
