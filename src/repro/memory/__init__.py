"""Memory-system models shared by the four machine models.

* :mod:`repro.memory.streams` — address-pattern descriptors (sequential,
  strided, tiled, gather) that kernels hand to the memory models.
* :mod:`repro.memory.dram` — banked DRAM with open-row state, activate/
  precharge exposure, and per-machine organization configs.
* :mod:`repro.memory.cache` — set-associative write-back caches with
  trace-driven simulation (PPC G4 hierarchy, Raw local-memory caching).
* :mod:`repro.memory.tlb` — fully-associative LRU TLB.
* :mod:`repro.memory.sram` — capacity-checked scratchpads (Imagine SRF,
  Raw tile memories, VIRAM vector register file backing).
"""

from repro.memory.cache import CacheConfig, CacheHierarchy, CacheLevel
from repro.memory.dram import DRAM, DRAMConfig, DRAMCost, DRAMReference
from repro.memory.sram import Scratchpad
from repro.memory.streams import (
    AccessPattern,
    Concat,
    Custom,
    Gather,
    Sequential,
    Strided,
    Tiled2D,
)
from repro.memory.tlb import TLB

__all__ = [
    "AccessPattern",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevel",
    "Concat",
    "Custom",
    "DRAM",
    "DRAMConfig",
    "DRAMCost",
    "DRAMReference",
    "Gather",
    "Scratchpad",
    "Sequential",
    "Strided",
    "TLB",
    "Tiled2D",
]
