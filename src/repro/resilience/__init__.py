"""Resilient execution runtime: supervise, inject, heal, diagnose.

The perf layer (PRs 1–4) made the reproduction *fast*; this package
makes it *survivable*.  Four pieces, layered over the existing
executor and disk cache without touching modelled numbers:

* :mod:`repro.resilience.supervisor` — a :class:`Supervisor` around the
  process pool: per-chunk deadlines, bounded retries with exponential
  backoff and deterministic jitter, worker-crash isolation (a poisoned
  cell is retried alone, then marked failed without sinking its
  chunk-mates), pool resurrection after ``BrokenProcessPool``, and an
  explicit degradation ladder (parallel → fresh pool → serial) with
  every transition counted under ``resilience.*`` telemetry;
* :mod:`repro.resilience.chaos` — deterministic fault injection for the
  live runtime (``REPRO_CHAOS=<spec>`` / ``repro check --chaos``):
  worker SIGKILL, task hangs, disk I/O errors, stale locks, entry
  corruption, with the bar that report output stays byte-identical;
* disk-cache self-healing (in :mod:`repro.perf.diskcache`): corrupt
  entries are *quarantined* with a structured incident record instead
  of deleted, stale interprocess locks are broken by pid+age, and
  ``lookup`` never raises on a damaged store;
* :mod:`repro.resilience.doctor` — the ``repro doctor`` health probes
  (pool spawn, store round-trip, digest sweep, lock, telemetry).

Import discipline: this ``__init__`` pulls in only the cycle-free core
(stats, supervisor).  :mod:`.chaos` and :mod:`.doctor` import the disk
cache, which itself reports into :data:`RESILIENCE` — import them as
submodules (``from repro.resilience import chaos``) at use sites.
"""

from repro.resilience.stats import RESILIENCE, ResilienceStats
from repro.resilience.supervisor import (
    RetryPolicy,
    Supervisor,
    default_policy,
)

__all__ = [
    "RESILIENCE",
    "ResilienceStats",
    "RetryPolicy",
    "Supervisor",
    "default_policy",
]
