"""Resilience counters: every recovery action, counted and named.

The supervisor's whole value is that failures are *absorbed* — a killed
worker becomes a retried chunk, a corrupt cache entry becomes a
quarantined file — which means the only external evidence that anything
happened is telemetry.  This module is that evidence: a process-wide
tally of retries, degradations, crashes, deadline misses, pool
resurrections, broken locks, and quarantines, exposed to the
:data:`~repro.trace.telemetry.TELEMETRY` registry under the
``resilience.*`` namespace and printed by ``repro report --perf``.

The acceptance contract of the chaos harness reads these directly:
under an injected worker kill a healthy supervisor shows
``resilience.retries >= 1`` and ``resilience.degradations == 0`` —
recovered in place, never silently downgraded to serial.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from typing import Any, Dict, Iterator, List, Union

from repro.trace.tracer import active_tracer

#: The service job (by id) on whose behalf the current thread is
#: working, or ``""`` outside any job.  Supervisor events and
#: degradation incidents stamp this into their payloads so ledger
#: events, journal records, and incident JSON are joinable.
_JOB_CONTEXT: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_service_job", default=""
)


def current_job() -> str:
    """The service job id the current context is executing, or ``""``."""
    return _JOB_CONTEXT.get()


@contextlib.contextmanager
def job_scope(job: str) -> Iterator[None]:
    """Attribute supervisor incidents in this block to service job
    ``job`` (context-local; concurrent jobs don't bleed into each
    other's payloads)."""
    token = _JOB_CONTEXT.set(job)
    try:
        yield
    finally:
        _JOB_CONTEXT.reset(token)

#: Counter names, in render order.  Declared up front so the telemetry
#: snapshot always carries every key (a zero is information: "no
#: degradations" is exactly what the chaos acceptance check asserts).
COUNTERS = (
    "retries",
    "degradations",
    "worker_crashes",
    "deadline_exceeded",
    "pool_restarts",
    "isolated_cells",
    "failed_cells",
    "io_errors",
    "io_retries",
    "locks_broken",
    "quarantined",
    "chaos_injections",
)


class ResilienceStats:
    """Thread-safe counters plus a last-degradation-reason gauge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self._last_degradation_reason = ""
        self._incidents: List[Dict[str, Any]] = []

    def note(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n`` (and mirror it onto the
        active tracer, if any, as ``resilience.<name>``)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
        tracer = active_tracer()
        if tracer is not None:
            tracer.count(f"resilience.{name}", n)

    def note_degradation(self, reason: str) -> None:
        """Record one parallel→serial degradation and why it happened.

        The reason string replaces the bare ``RuntimeWarning`` the
        executor used to emit: it survives in the telemetry snapshot,
        the metrics manifest, and the ``--perf`` output, where a warning
        would have scrolled away.
        """
        with self._lock:
            self._counters["degradations"] += 1
            self._last_degradation_reason = reason
        payload = {"reason": reason}
        job = current_job()
        if job:
            payload["job"] = job
        self.log_incident("degradation", payload)
        tracer = active_tracer()
        if tracer is not None:
            tracer.count("resilience.degradations")
            tracer.instant(
                "degradation",
                track="resilience/supervisor",
                args=payload,
            )
        from repro.obs.ledger import record

        record("supervisor.degradation", **payload)

    def log_incident(self, kind: str, payload: Dict[str, Any]) -> None:
        """Keep one supervisor event's structured payload.

        The *same* payload object the supervisor mirrors onto the
        tracer and the flight-recorder ledger, so the chaos acceptance
        tests can compare the ledger's ``supervisor.*`` events against
        this log byte-for-byte (``json.dumps(..., sort_keys=True)``).
        """
        with self._lock:
            self._incidents.append({"kind": kind, "payload": dict(payload)})

    def incidents(self) -> List[Dict[str, Any]]:
        """The structured incident log, in occurrence order."""
        with self._lock:
            return [
                {"kind": i["kind"], "payload": dict(i["payload"])}
                for i in self._incidents
            ]

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    @property
    def last_degradation_reason(self) -> str:
        with self._lock:
            return self._last_degradation_reason

    def snapshot(self) -> Dict[str, Union[int, str]]:
        """Counters plus the reason gauge, the telemetry-source shape."""
        with self._lock:
            out: Dict[str, Union[int, str]] = dict(self._counters)
            out["last_degradation_reason"] = self._last_degradation_reason
        return out

    def reset(self) -> None:
        with self._lock:
            self._counters = {name: 0 for name in COUNTERS}
            self._last_degradation_reason = ""
            self._incidents = []

    def render(self) -> str:
        """Aligned ``resilience.<name> value`` lines for ``--perf``."""
        snap = self.snapshot()
        width = max(len(name) for name in snap) + len("resilience.")
        lines = ["resilience:"]
        for name in sorted(snap):
            lines.append(f"  {f'resilience.{name}':<{width}s}  {snap[name]}")
        return "\n".join(lines)


#: Process-wide resilience tally, registered with TELEMETRY at import
#: of :mod:`repro.trace.telemetry`.
RESILIENCE = ResilienceStats()
