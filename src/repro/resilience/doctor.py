"""``repro doctor``: health probes for the execution runtime.

Before trusting a long sweep to an environment, probe the things that
fail in practice: can a process pool actually spawn and round-trip
work, can the disk cache write/read/verify an entry, can the
interprocess lock be acquired, is the store free of corruption, and is
the telemetry registry sane.  Each probe returns ``pass``, ``warn``
(degraded but survivable — e.g. no pool, serial fallback available), or
``fail`` (the runtime would misbehave); the CLI prints the table and
exits non-zero iff any probe failed, naming it.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

PASS = "pass"
WARN = "warn"
FAIL = "fail"


@dataclasses.dataclass(frozen=True)
class ProbeResult:
    """Outcome of one health probe."""

    name: str
    status: str
    detail: str = ""

    def format(self) -> str:
        line = f"{self.status.upper():4s} {self.name}"
        if self.detail:
            line += f" — {self.detail}"
        return line


def _pool_probe() -> int:
    """Top-level for pickling: the pool round-trip payload."""
    return 42


def probe_pool_spawn() -> ProbeResult:
    """Spawn a one-worker pool and round-trip a trivial task."""
    name = "probe.pool-spawn"
    try:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            value = pool.submit(_pool_probe).result(timeout=60)
        if value != 42:
            return ProbeResult(
                name, FAIL, f"pool returned {value!r}, expected 42"
            )
        return ProbeResult(name, PASS, "1-worker pool round-trip ok")
    except Exception as exc:
        # No pool is a *degradation*, not a failure: the supervised
        # executor falls back to serial and says so in telemetry.
        return ProbeResult(
            name, WARN,
            f"process pool unavailable ({type(exc).__name__}: {exc}); "
            "sweeps will run serially",
        )


def probe_disk_cache_rw() -> ProbeResult:
    """Insert, look up, and evict a probe entry in the live store."""
    from repro.perf.diskcache import DISK_CACHE

    name = "probe.disk-cache-rw"
    if not DISK_CACHE.enabled:
        return ProbeResult(
            name, WARN, "disk tier disabled (REPRO_DISK_CACHE=0)"
        )
    key = "doctorprobe"
    payload = {"probe": "doctor", "value": 1.25}
    try:
        if not DISK_CACHE.insert(key, payload):
            return ProbeResult(
                name, FAIL,
                f"insert refused (read-only store at {DISK_CACHE.root()}?)",
            )
        value = DISK_CACHE.lookup(key)
        if value != payload:
            return ProbeResult(
                name, FAIL, f"lookup returned {value!r} for probe entry"
            )
        return ProbeResult(
            name, PASS, f"write+verified-read ok at {DISK_CACHE.root()}"
        )
    finally:
        DISK_CACHE.evict(key)


def probe_disk_cache_verify() -> ProbeResult:
    """Digest-verify every persisted entry of the current stamp."""
    from repro.perf.diskcache import DISK_CACHE

    name = "probe.disk-cache-verify"
    if not DISK_CACHE.enabled:
        return ProbeResult(name, WARN, "disk tier disabled")
    bad = DISK_CACHE.verify()
    if bad:
        return ProbeResult(
            name, FAIL,
            f"{len(bad)} corrupt entries in {DISK_CACHE.stamp_dir()}: "
            + ", ".join(k[:12] for k in bad[:5])
            + " — run `repro cache prune` or `repro cache clear`",
        )
    n = len(DISK_CACHE)
    return ProbeResult(name, PASS, f"{n} entries, all digests verified")


def probe_lock() -> ProbeResult:
    """Acquire and release the interprocess lock."""
    from repro.perf.diskcache import DISK_CACHE

    name = "probe.lock"
    try:
        with DISK_CACHE._interprocess_lock() as guard:
            if getattr(guard, "_fh", None) is None:
                return ProbeResult(
                    name, WARN,
                    "flock unavailable; prune runs unserialised",
                )
        return ProbeResult(name, PASS, "interprocess lock acquired")
    except Exception as exc:
        return ProbeResult(
            name, FAIL, f"lock acquisition raised {type(exc).__name__}: {exc}"
        )


def probe_quarantine() -> ProbeResult:
    """Report quarantined entries (evidence of past corruption)."""
    from repro.perf.diskcache import DISK_CACHE

    name = "probe.quarantine"
    incidents = DISK_CACHE.incidents()
    if not incidents:
        return ProbeResult(name, PASS, "no quarantined entries")
    reasons = {i.get("reason", "?") for i in incidents}
    return ProbeResult(
        name, WARN,
        f"{len(incidents)} quarantined entries "
        f"({', '.join(sorted(reasons))}) under "
        f"{DISK_CACHE.quarantine_dir()} — healed, kept for forensics",
    )


def probe_telemetry() -> ProbeResult:
    """Snapshot the telemetry registry and require the core namespaces."""
    from repro.trace.telemetry import TELEMETRY

    name = "probe.telemetry"
    required = {"perf.timers", "perf.cache", "perf.diskcache", "resilience"}
    missing = required - set(TELEMETRY.namespaces())
    if missing:
        return ProbeResult(
            name, FAIL, f"namespaces missing: {sorted(missing)}"
        )
    snap = TELEMETRY.snapshot()
    errors = [k for k in snap if k.endswith(".error")]
    if errors:
        return ProbeResult(
            name, FAIL,
            "sources raised: "
            + "; ".join(f"{k}={snap[k]}" for k in errors[:3]),
        )
    return ProbeResult(
        name, PASS, f"{len(TELEMETRY.namespaces())} sources, snapshot clean"
    )


def probe_obs() -> ProbeResult:
    """Probe the observability layer: ledger dir writable, history
    parseable line by line (quarantining a corrupt trailing line rather
    than trusting it)."""
    import os

    from repro.obs.history import history_path, quarantine_corrupt, read_history
    from repro.obs.ledger import ledger_dir, obs_enabled

    name = "probe.obs"
    if not obs_enabled():
        return ProbeResult(name, WARN, "obs layer disabled (REPRO_OBS=0)")
    # Ledger directory must be creatable and writable.
    directory = ledger_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        probe_file = directory / f".doctor-probe-{os.getpid()}"
        probe_file.write_text("probe\n", encoding="utf-8")
        probe_file.unlink()
    except OSError as exc:
        return ProbeResult(
            name, FAIL,
            f"ledger dir not writable ({directory}): "
            f"{type(exc).__name__}: {exc}",
        )
    # History must parse line by line; a torn tail is healed, not trusted.
    path = history_path()
    records, corrupt = read_history(path)
    if corrupt:
        healed = quarantine_corrupt(path)
        if healed:
            return ProbeResult(
                name, WARN,
                f"history had {healed} corrupt line(s); quarantined to "
                f"{path.with_suffix('.quarantine')}",
            )
        return ProbeResult(
            name, FAIL,
            f"history has {len(corrupt)} corrupt line(s) and "
            "quarantine failed (read-only store?)",
        )
    return ProbeResult(
        name, PASS,
        f"ledger dir writable, {len(records)} history record(s) parseable",
    )


def probe_service_journal() -> ProbeResult:
    """Validate the service job journal: parseable, gapless sequence,
    every per-job history legal under the job state machine.

    A missing journal is a clean PASS (the service has simply never
    run here); a torn tail is a WARN (the next server start heals it);
    schema or state-machine violations are hard failures — they mean
    replay would reconstruct the wrong job states.
    """
    from repro.service.journal import (
        journal_path,
        read_journal,
        validate_records,
    )

    name = "probe.service-journal"
    path = journal_path()
    if not path.is_file():
        return ProbeResult(name, PASS, f"no journal at {path} (never served)")
    records, corrupt = read_journal(path)
    problems = validate_records(records)
    if problems:
        return ProbeResult(
            name, FAIL,
            f"{len(problems)} violation(s) in {path}: "
            + "; ".join(problems[:3]),
        )
    if corrupt:
        return ProbeResult(
            name, WARN,
            f"{len(corrupt)} torn line(s) at the tail of {path}; "
            "the next server start quarantines and heals them",
        )
    return ProbeResult(
        name, PASS, f"{len(records)} record(s), sequence and states legal"
    )


#: The probe battery, in run order.
PROBES: Tuple[Tuple[str, Callable[[], ProbeResult]], ...] = (
    ("pool-spawn", probe_pool_spawn),
    ("disk-cache-rw", probe_disk_cache_rw),
    ("disk-cache-verify", probe_disk_cache_verify),
    ("lock", probe_lock),
    ("quarantine", probe_quarantine),
    ("telemetry", probe_telemetry),
    ("obs", probe_obs),
    ("service-journal", probe_service_journal),
)


def run_doctor() -> List[ProbeResult]:
    """Run every probe; a probe that *raises* is itself a failure."""
    results: List[ProbeResult] = []
    for short_name, probe in PROBES:
        try:
            results.append(probe())
        except Exception as exc:  # noqa: BLE001 - a probe must not kill doctor
            results.append(
                ProbeResult(
                    f"probe.{short_name}", FAIL,
                    f"probe crashed: {type(exc).__name__}: {exc}",
                )
            )
    return results


def render_doctor(results: List[ProbeResult]) -> str:
    """The pass/warn/fail table the CLI prints."""
    counts = {PASS: 0, WARN: 0, FAIL: 0}
    for result in results:
        counts[result.status] += 1
    lines = [
        f"repro doctor: {len(results)} probes — "
        f"{counts[PASS]} pass, {counts[WARN]} warn, {counts[FAIL]} fail"
    ]
    for result in results:
        lines.append("  " + result.format())
    failing = [r.name for r in results if r.status == FAIL]
    if failing:
        lines.append("verdict: UNHEALTHY (failing: " + ", ".join(failing) + ")")
    else:
        lines.append("verdict: HEALTHY")
    return "\n".join(lines)


def doctor_json(results: List[ProbeResult]) -> Dict[str, object]:
    """The machine-readable doctor record (``repro doctor --json`` and
    the service ``/healthz?full=1`` endpoint): one object per probe
    plus the overall verdict and exit code, so CI and the service can
    consume doctor results without scraping the text table."""
    return {
        "probes": [
            {"name": r.name, "status": r.status, "detail": r.detail}
            for r in results
        ],
        "healthy": all(r.status != FAIL for r in results),
        "verdict": (
            "HEALTHY"
            if all(r.status != FAIL for r in results)
            else "UNHEALTHY"
        ),
        "exit_code": exit_code(results),
    }


def exit_code(results: List[ProbeResult]) -> int:
    """0 when no probe failed (warnings allowed), else 2."""
    return 0 if all(r.status != FAIL for r in results) else 2
