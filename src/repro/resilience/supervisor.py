"""Supervised process-pool execution: retry, deadline, isolate, degrade.

The plain executor treats the process pool as all-or-nothing: any
infrastructure failure abandons parallelism for the whole sweep.  The
:class:`Supervisor` turns the pool into a *supervised* resource with an
explicit recovery ladder, applied per chunk of work:

1. **retry with backoff** — a chunk whose worker crashed
   (``BrokenProcessPool``) or whose result missed the per-chunk deadline
   is re-dispatched on a fresh pool, up to
   :attr:`RetryPolicy.max_retries` times, with exponential backoff and
   deterministic jitter between rounds;
2. **isolate** — a chunk that keeps failing is *split*: its cells are
   retried one at a time, so a single poisoned cell (one that reliably
   kills its worker or hangs) cannot sink its chunk-mates, whose results
   are computed and persisted normally;
3. **mark failed** — a cell that fails even alone is reported via
   :class:`~repro.errors.WorkerCrashError` /
   :class:`~repro.errors.DeadlineExceeded` carrying a structured
   ``incident`` (cell index, attempts, last error) — after every
   healthy cell has completed and reached the cache tiers;
4. **degrade** — failures of the pool *transport* itself (spawn failure,
   unpicklable payloads, a sandbox without ``fork``) raise plain
   :class:`~repro.errors.TransientError`, which the executor converts
   into a serial fallback, counted under ``resilience.degradations``
   with the reason string recorded in telemetry.

Every transition is counted in :data:`~repro.resilience.stats.RESILIENCE`
(``resilience.retries``, ``.worker_crashes``, ``.deadline_exceeded``,
``.pool_restarts``, ``.isolated_cells``, ``.failed_cells``,
``.degradations``) and mirrored onto the active tracer's
``resilience/supervisor`` track, so a chaos run leaves a full audit
trail while its *output* stays byte-identical to an undisturbed run.

Mapping failures (:class:`~repro.errors.ReproError` raised by the work
itself) propagate unchanged — the supervisor recovers infrastructure,
never papers over model errors.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlineExceeded,
    ReproError,
    TransientError,
    WorkerCrashError,
)
from repro.resilience.stats import RESILIENCE, current_job
from repro.trace.tracer import active_tracer

__all__ = ["RetryPolicy", "Supervisor", "deadline_scope", "default_policy"]

#: A caller-scoped deadline override (seconds), taking precedence over
#: ``REPRO_CHUNK_DEADLINE``.  The service runtime sets this so a job's
#: per-request deadline is *inherited* by every supervised chunk the
#: job dispatches — backpressure reaches all the way down the stack.
_DEADLINE_OVERRIDE: contextvars.ContextVar[Optional[float]] = (
    contextvars.ContextVar("repro_deadline_override", default=None)
)


@contextlib.contextmanager
def deadline_scope(seconds: Optional[float]) -> Iterator[None]:
    """Run a block with a per-chunk deadline override.

    ``None`` is a no-op (the environment default applies); ``0`` or
    negative disables deadlines for the scope.  Context-local, so
    concurrent service jobs on different worker threads each carry
    their own deadline.
    """
    if seconds is None:
        yield
        return
    token = _DEADLINE_OVERRIDE.set(float(seconds))
    try:
        yield
    finally:
        _DEADLINE_OVERRIDE.reset(token)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy with exponential backoff and jitter.

    ``deadline`` bounds how long the supervisor waits on one chunk's
    future, measured from when it starts waiting (``None`` disables
    deadlines).  ``jitter`` is a ±fraction applied to each backoff
    delay; it is *deterministic* — a hash of the retry token and attempt
    number, not a random draw — so supervised runs remain exactly
    reproducible.
    """

    max_retries: int = 3
    backoff: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.25
    deadline: Optional[float] = 300.0

    def delay(self, attempt: int, token: str = "") -> float:
        """Backoff before retry ``attempt`` (0-based), jittered."""
        base = self.backoff * (self.multiplier ** attempt)
        digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF  # [0, 1]
        return max(0.0, base * (1.0 + self.jitter * (2.0 * unit - 1.0)))


def default_policy() -> RetryPolicy:
    """The environment-tunable policy the executor uses.

    ``REPRO_CHUNK_DEADLINE`` (seconds, ``0`` disables),
    ``REPRO_MAX_RETRIES``, and ``REPRO_RETRY_BACKOFF`` override the
    defaults — the chaos harness and CI use these to shrink timescales.
    An active :func:`deadline_scope` (a service job's per-request
    deadline) takes precedence over the environment.
    """
    override = _DEADLINE_OVERRIDE.get()
    deadline: Optional[float] = (
        override
        if override is not None
        else float(os.environ.get("REPRO_CHUNK_DEADLINE", "300"))
    )
    if deadline is not None and deadline <= 0:
        deadline = None
    return RetryPolicy(
        max_retries=int(os.environ.get("REPRO_MAX_RETRIES", "3")),
        backoff=float(os.environ.get("REPRO_RETRY_BACKOFF", "0.05")),
        deadline=deadline,
    )


def _classify_infra(exc: BaseException) -> Optional[str]:
    """Reason string if ``exc`` is a pool-transport failure the serial
    path would not suffer, else ``None`` (the error should propagate).

    ``AttributeError``/``TypeError`` are included because payload
    pickling failures surface as them; a genuine work error caught by
    this net still surfaces correctly — the serial fallback re-executes
    the work and raises it there.
    """
    import pickle

    if isinstance(
        exc,
        (OSError, pickle.PicklingError, AttributeError, TypeError,
         ImportError, ValueError, RuntimeError, MemoryError),
    ):
        return f"{type(exc).__name__}: {exc}"
    return None


class Supervisor:
    """Run chunks of work on a supervised process pool.

    ``task`` is the picklable chunk function (defaults to the executor's
    ``_execute_chunk``); ``sleep`` is injectable for tests.  One
    supervisor instance drives one sweep: :meth:`run` takes the ordered
    chunk list and returns one result list per chunk.
    """

    def __init__(
        self,
        n_jobs: int,
        policy: Optional[RetryPolicy] = None,
        task: Optional[Callable[[Sequence[Any]], List[Any]]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if task is None:
            from repro.perf.executor import _execute_chunk

            task = _execute_chunk
        self._n_jobs = max(1, int(n_jobs))
        self._policy = policy if policy is not None else default_policy()
        self._task = task
        self._sleep = sleep
        self._pool = None

    # -- pool lifecycle -------------------------------------------------

    def _ensure_pool(self):
        """The live pool, leasing the process-wide persistent pool (or
        spawning, when persistence is off or the held pool is too
        narrow); raises :class:`TransientError` when the environment
        cannot host one."""
        if self._pool is None:
            from repro.perf import poold

            try:
                self._pool = poold.acquire(self._n_jobs)
            except Exception as exc:
                reason = _classify_infra(exc)
                if reason is None:
                    raise
                raise TransientError(
                    f"process pool unavailable ({reason})"
                ) from exc
        return self._pool

    def _release_pool(self) -> None:
        """Return a healthy pool at the end of a run.  A persistent
        pool stays warm for the next sweep; otherwise it shuts down."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            from repro.perf import poold

            poold.release(pool)

    def _discard_pool(self, wait: bool = False) -> None:
        """Drop the current pool for good — broken transport, crashed
        or hung workers.  The shared persistent pool (if this was it)
        is retired too, so the next lease spawns fresh workers."""
        pool = self._pool
        self._pool = None
        if pool is not None:
            from repro.perf import poold

            poold.discard(pool, wait=wait)

    def _restart_pool(self) -> None:
        self._discard_pool(wait=False)
        RESILIENCE.note("pool_restarts")
        self._event("pool_restart")

    @staticmethod
    def _event(name: str, **args: Any) -> None:
        """Emit one supervisor event to every observer at once.

        The *same* payload dict goes to the structured incident log,
        the flight-recorder ledger (``supervisor.<name>``), and the
        tracer's ``resilience/supervisor`` track — the chaos acceptance
        tests compare the first two byte-for-byte, so the payload must
        be built exactly once.  Events raised while a service job is
        executing carry that job's id (``job``), making incident JSON,
        ledger events, and journal records joinable in postmortems.
        """
        from repro.obs.ledger import record

        from repro.obs.progress import current_reporter

        payload = dict(args)
        job = current_job()
        if job:
            payload.setdefault("job", job)
        RESILIENCE.log_incident(name, payload)
        record(f"supervisor.{name}", **payload)
        reporter = current_reporter()
        if reporter is not None:
            if name == "retry":
                reporter.note_retry(int(payload.get("chunks", 1)))
                reporter.note_ladder("fresh-pool")
            elif name == "isolate":
                reporter.note_ladder("isolating")
        tracer = active_tracer()
        if tracer is not None:
            tracer.instant(
                f"resilience.{name}",
                track="resilience/supervisor",
                args=payload or None,
            )

    @staticmethod
    def _chunk_census(chunk: Sequence[Any]) -> Tuple[int, int]:
        """``(cells, units)`` a finished chunk contributes to progress.

        Dispatch-unit chunks count each unit's cell positions; plain
        request chunks count one cell per item.
        """
        cells = 0
        for item in chunk:
            positions = getattr(item, "positions", None)
            cells += len(positions) if positions else 1
        return cells, len(chunk)

    def _advance(self, chunk: Sequence[Any]) -> None:
        from repro.obs.progress import current_reporter

        reporter = current_reporter()
        if reporter is not None:
            cells, units = self._chunk_census(chunk)
            reporter.advance(cells=cells, units=units)

    # -- supervised execution -------------------------------------------

    def run(self, chunks: Sequence[Sequence[Any]]) -> List[List[Any]]:
        """Evaluate every chunk, in order, surviving worker failures.

        Returns one result list per chunk.  Raises
        :class:`WorkerCrashError` / :class:`DeadlineExceeded` when a
        cell failed even in isolation (after completing every healthy
        cell), :class:`TransientError` when the pool transport itself is
        unusable (callers degrade to serial), and propagates
        :class:`ReproError` from the work unchanged.
        """
        if not chunks:
            return []
        results: Dict[int, List[Any]] = {}
        attempts: Dict[int, int] = {i: 0 for i in range(len(chunks))}
        poisoned: Dict[int, BaseException] = {}
        todo = list(range(len(chunks)))
        round_no = 0
        try:
            while todo:
                failed = self._dispatch_round(chunks, todo, results)
                todo = []
                retryable: List[int] = []
                for ci, exc in failed.items():
                    attempts[ci] += 1
                    if attempts[ci] > self._policy.max_retries:
                        poisoned[ci] = exc
                    else:
                        retryable.append(ci)
                if retryable:
                    RESILIENCE.note("retries", len(retryable))
                    self._event(
                        "retry", chunks=len(retryable), round=round_no
                    )
                    self._restart_pool()
                    self._sleep(
                        self._policy.delay(round_no, token="round")
                    )
                    todo = sorted(retryable)
                    round_no += 1
                elif failed:
                    # Everything that failed is out of chunk-level
                    # retries; fall through to isolation.
                    self._restart_pool()
            if poisoned:
                self._isolate(chunks, poisoned, results)
            return [results[i] for i in range(len(chunks))]
        except BaseException:
            # Any failure that escapes the ladder may have left the
            # transport suspect — retire it rather than reuse it warm.
            self._discard_pool(wait=False)
            raise
        finally:
            self._release_pool()

    def _dispatch_round(
        self,
        chunks: Sequence[Sequence[Any]],
        todo: List[int],
        results: Dict[int, List[Any]],
    ) -> Dict[int, BaseException]:
        """Submit every chunk in ``todo`` and wait for each in order.

        Fills ``results``; returns the chunks that failed with a
        *recoverable* failure (crash or deadline).  Transport failures
        raise :class:`TransientError`; work failures propagate.
        """
        import concurrent.futures as cf
        from concurrent.futures.process import BrokenProcessPool

        pool = self._ensure_pool()
        futures: Dict[int, "cf.Future"] = {}
        submit_error: Optional[BaseException] = None
        for ci in todo:
            try:
                futures[ci] = pool.submit(self._task, chunks[ci])
            except BrokenProcessPool as exc:
                submit_error = exc
                break
            except Exception as exc:
                self._cancel(futures)
                reason = _classify_infra(exc)
                if reason is None:
                    raise
                raise TransientError(
                    f"pool submit failed ({reason})"
                ) from exc

        failed: Dict[int, BaseException] = {}
        pool_broken = submit_error is not None
        if pool_broken:
            RESILIENCE.note("worker_crashes")
            self._event("worker_crash", phase="submit")
        for ci, fut in futures.items():
            if pool_broken:
                # The pool is gone; every unresolved sibling retries.
                if self._harvest(fut, ci, results):
                    self._advance(chunks[ci])
                else:
                    failed[ci] = submit_error or WorkerCrashError(
                        "worker crashed"
                    )
                continue
            try:
                results[ci] = fut.result(timeout=self._policy.deadline)
                self._advance(chunks[ci])
            except cf.TimeoutError:
                RESILIENCE.note("deadline_exceeded")
                self._event(
                    "deadline_exceeded",
                    chunk=ci,
                    deadline=self._policy.deadline,
                )
                failed[ci] = DeadlineExceeded(
                    f"chunk {ci} exceeded its "
                    f"{self._policy.deadline:.3g}s deadline"
                )
            except BrokenProcessPool as exc:
                RESILIENCE.note("worker_crashes")
                self._event("worker_crash", chunk=ci)
                submit_error = exc
                pool_broken = True
                failed[ci] = exc
            except ReproError:
                self._cancel(futures)
                raise
            except Exception as exc:
                self._cancel(futures)
                reason = _classify_infra(exc)
                if reason is None:
                    raise
                raise TransientError(
                    f"pool execution failed ({reason})"
                ) from exc
        # Chunks that never got submitted after a mid-submit break.
        for ci in todo:
            if ci not in results and ci not in failed:
                failed[ci] = submit_error or WorkerCrashError(
                    "worker crashed before dispatch"
                )
        if pool_broken:
            self._discard_pool(wait=False)
        return failed

    @staticmethod
    def _harvest(fut, ci: int, results: Dict[int, List[Any]]) -> bool:
        """Salvage an already-completed future from a broken pool."""
        if fut.done() and not fut.cancelled():
            try:
                exc = fut.exception(timeout=0)
            except Exception:
                return False
            if exc is None:
                results[ci] = fut.result(timeout=0)
                return True
        return False

    @staticmethod
    def _cancel(futures: Dict[int, Any]) -> None:
        for fut in futures.values():
            fut.cancel()

    def _isolate(
        self,
        chunks: Sequence[Sequence[Any]],
        poisoned: Dict[int, BaseException],
        results: Dict[int, List[Any]],
    ) -> None:
        """Retry each poisoned chunk cell-by-cell; healthy cells
        complete, persistently failing cells are marked and reported
        *after* every sibling has run."""
        failures: List[Tuple[int, int, int, BaseException]] = []
        for ci in sorted(poisoned):
            chunk = chunks[ci]
            RESILIENCE.note("isolated_cells", len(chunk))
            self._event("isolate", chunk=ci, cells=len(chunk))
            out: List[Any] = []
            for j, cell in enumerate(chunk):
                value, n_attempts, err = self._run_cell_alone(ci, j, cell)
                if err is None:
                    out.append(value)
                    self._advance([cell])
                else:
                    RESILIENCE.note("failed_cells")
                    self._event("cell_failed", chunk=ci, cell=j)
                    failures.append((ci, j, n_attempts, err))
                    out.append(None)
            results[ci] = out
        if failures:
            incident = {
                "failed_cells": [
                    {
                        "chunk": ci,
                        "cell": j,
                        "attempts": n,
                        "error": f"{type(err).__name__}: {err}",
                    }
                    for ci, j, n, err in failures
                ],
            }
            self._event("incident", **incident)
            _, _, _, first = failures[0]
            cls = (
                DeadlineExceeded
                if isinstance(first, DeadlineExceeded)
                else WorkerCrashError
            )
            raise cls(
                f"{len(failures)} cell(s) failed even in isolation "
                f"(first: chunk {failures[0][0]} cell {failures[0][1]}: "
                f"{type(first).__name__}: {first})",
                incident=incident,
            )

    def _run_cell_alone(
        self, ci: int, j: int, cell: Any
    ) -> Tuple[Any, int, Optional[BaseException]]:
        """One cell on its own pool submission, with its own retry
        budget; returns ``(value, attempts, last_error)``."""
        import concurrent.futures as cf
        from concurrent.futures.process import BrokenProcessPool

        last: Optional[BaseException] = None
        for attempt in range(self._policy.max_retries + 1):
            if attempt:
                RESILIENCE.note("retries")
                self._restart_pool()
                self._sleep(
                    self._policy.delay(attempt - 1, token=f"cell{ci}.{j}")
                )
            try:
                pool = self._ensure_pool()
                fut = pool.submit(self._task, [cell])
                value = fut.result(timeout=self._policy.deadline)
                return value[0], attempt + 1, None
            except cf.TimeoutError:
                RESILIENCE.note("deadline_exceeded")
                last = DeadlineExceeded(
                    f"cell {j} of chunk {ci} exceeded its "
                    f"{self._policy.deadline:.3g}s deadline in isolation"
                )
            except BrokenProcessPool as exc:
                RESILIENCE.note("worker_crashes")
                last = exc
            except ReproError:
                raise
            except Exception as exc:
                reason = _classify_infra(exc)
                if reason is None:
                    raise
                raise TransientError(
                    f"pool execution failed ({reason})"
                ) from exc
        self._discard_pool(wait=False)
        return None, self._policy.max_retries + 1, last
