"""Chaos scenarios for the simulation service: crash, tear, disconnect.

The in-process chaos harness (:mod:`repro.resilience.chaos`) proves the
*sweep runtime* converges under injected faults; this module proves the
*service* does — with real processes, real signals, and real sockets,
because "SIGKILL'd mid-job" cannot be faithfully simulated in-process.
Each scenario boots ``python -m repro serve`` as a subprocess on an
ephemeral port with isolated state directories (service journal, disk
cache, obs ledger all under a temp root — the user's state is never
touched), drives it over HTTP, and asserts the acceptance bar from
docs/service.md:

* ``chaos.service.kill-replay`` — SIGKILL the server while a sweep job
  is RUNNING; a restart on the same directories must replay the job to
  DONE with result bytes **identical** to an uninterrupted server's;
* ``chaos.service.torn-journal`` — the crash also tears the journal
  tail (garbage appended mid-record); the restart must quarantine the
  torn bytes and come up healthy;
* ``chaos.service.client-disconnect`` — a client that sends half a
  request body and vanishes must be counted and survived, not crash a
  handler thread;
* ``chaos.service.corrupt-recompute`` — a cache entry corrupted on disk
  *while the job that wrote it was in flight* (the ``corrupt=1`` chaos
  hook, active inside the server process) must be quarantined by the
  next server, which recomputes the byte-identical result;
* ``chaos.service.drain`` — every surviving server exits 0 on SIGTERM
  with a clean drain.

Scenario failures are reported as ``CheckResult`` rows so
``run_chaos_check`` can merge them into the chaos report; the CLI's
replay-command suffix (see :func:`repro.resilience.chaos.
run_chaos_check`) then makes any failure a one-command local repro.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.check.report import FAIL, PASS, CheckResult

__all__ = ["service_chaos_checks"]

#: How long to wait for a server subprocess to publish its ready file.
READY_TIMEOUT_S = 60.0

#: How long to wait for a job to reach a terminal state.
JOB_TIMEOUT_S = 120.0


def _repo_pythonpath() -> str:
    """A PYTHONPATH that resolves :mod:`repro` in the subprocess even
    when the parent found it via an installed path."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    existing = os.environ.get("PYTHONPATH")
    return src + (os.pathsep + existing if existing else "")


def _service_env(tmp: Path, tag: str) -> Dict[str, str]:
    """A subprocess environment with every stateful surface redirected
    under ``tmp`` and any inherited chaos spec stripped."""
    env = dict(os.environ)
    for name in ("REPRO_CHAOS", "REPRO_CHAOS_DIR", "REPRO_CHUNK_DEADLINE"):
        env.pop(name, None)
    env["PYTHONPATH"] = _repo_pythonpath()
    env["REPRO_SERVICE_DIR"] = str(tmp / tag / "svc")
    env["REPRO_DISK_CACHE_DIR"] = str(tmp / tag / "cache")
    env["REPRO_OBS_DIR"] = str(tmp / tag / "obs")
    return env


class _Server:
    """One ``repro serve`` subprocess with the ready-file handshake."""

    def __init__(self, tmp: Path, env: Dict[str, str], tag: str) -> None:
        self.tag = tag
        self.ready_file = tmp / f"ready-{tag}.json"
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--workers", "1",
                "--ready-file", str(self.ready_file),
            ],
            env=env,
            cwd=str(tmp),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        self.url = self._await_ready()

    def _await_ready(self) -> str:
        deadline = time.monotonic() + READY_TIMEOUT_S
        while time.monotonic() < deadline:
            if self.ready_file.is_file():
                try:
                    handshake = json.loads(self.ready_file.read_text())
                    return str(handshake["url"])
                except (ValueError, KeyError):
                    pass  # mid-write; the write is atomic, retry
            if self.proc.poll() is not None:
                stderr = (self.proc.stderr.read() or b"").decode(
                    "utf-8", "replace"
                )
                raise RuntimeError(
                    f"server {self.tag} exited rc={self.proc.returncode} "
                    f"before ready: {stderr[-500:]}"
                )
            time.sleep(0.05)
        raise RuntimeError(f"server {self.tag} never became ready")

    def sigkill(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=30)

    def sigterm(self) -> int:
        """Graceful shutdown; returns the exit code (0 = clean drain)."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=30)
            return -9

    def ensure_dead(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)
        if self.proc.stderr is not None:
            self.proc.stderr.close()
        try:
            self.ready_file.unlink()
        except OSError:
            pass


def _http(
    method: str, url: str, body: Optional[Dict[str, Any]] = None,
    timeout: float = 30.0,
) -> Tuple[int, bytes]:
    """One HTTP exchange; HTTP error statuses are returned, not raised."""
    data = (
        json.dumps(body).encode("utf-8") if body is not None else None
    )
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _submit(server: _Server, payload: Dict[str, Any]) -> Tuple[int, Dict]:
    status, body = _http("POST", server.url + "/v1/jobs", payload)
    return status, json.loads(body.decode("utf-8"))


def _poll_job(
    server: _Server, jid: str, until: Tuple[str, ...],
    timeout: float = JOB_TIMEOUT_S,
) -> Optional[Dict[str, Any]]:
    """Poll the job record until its state is in ``until`` (or timeout,
    returning the last record seen — possibly ``None``)."""
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        status, body = _http("GET", f"{server.url}/v1/jobs/{jid}")
        if status == 200:
            last = json.loads(body.decode("utf-8"))
            if last.get("state") in until:
                return last
        time.sleep(0.01)
    return last


def _telemetry(server: _Server) -> Dict[str, Any]:
    status, body = _http("GET", server.url + "/v1/telemetry")
    return json.loads(body.decode("utf-8")) if status == 200 else {}


def _result_bytes(server: _Server, jid: str) -> Optional[bytes]:
    status, body = _http("GET", f"{server.url}/v1/jobs/{jid}/result")
    return body if status == 200 else None


def _sweep_payload(fast: bool) -> Dict[str, Any]:
    """A sweep whose cells all have distinct seeds, so every cell is a
    genuine computation (no cache collapse) and the RUNNING window is
    wide enough to land a SIGKILL inside."""
    seeds = range(2 if fast else 4)
    cells = [
        {"kernel": kernel, "machine": machine, "seed": seed}
        for seed in seeds
        for kernel, machine in (
            ("corner_turn", "viram"),
            ("cslc", "raw"),
            ("beam_steering", "imagine"),
        )
    ]
    return {"kind": "sweep", "params": {"cells": cells}}


def _append_torn_tail(env: Dict[str, str]) -> Path:
    """Tear the journal the way a crash mid-append would: half a record,
    no newline.  Returns the journal path."""
    path = Path(env["REPRO_SERVICE_DIR"]) / "journal.jsonl"
    with open(path, "ab") as fh:
        fh.write(b'{"schema": 1, "seq": 999999, "job": "c0ffee')
    return path


def _half_post(url: str) -> None:
    """Open a socket, claim a 512-byte body, send 20 bytes, vanish."""
    from urllib.parse import urlparse

    parts = urlparse(url)
    with socket.create_connection(
        (parts.hostname, parts.port), timeout=10
    ) as sock:
        sock.sendall(
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Host: repro\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: 512\r\n"
            b"\r\n"
            b'{"kind": "run", "par'
        )
        # Abort without finishing the body: RST on close via SO_LINGER
        # is not needed — a FIN with 492 bytes owed is disconnection
        # enough for the short-read path.


def service_chaos_checks(fast: bool = True) -> List[CheckResult]:
    """Run the service scenario battery; one ``CheckResult`` per claim.

    ``fast`` shrinks the sweep used as the kill target (fewer seeds);
    every scenario still runs.  A scenario that errors out (server never
    ready, HTTP failure) fails its row with the exception text rather
    than raising — chaos reporting must itself be crash-safe.
    """
    import tempfile

    results: List[CheckResult] = []
    with tempfile.TemporaryDirectory(prefix="repro-svc-chaos-") as raw:
        tmp = Path(raw)
        try:
            results.extend(_crash_battery(tmp, fast))
        except Exception as exc:  # noqa: BLE001 — report, don't explode
            results.append(
                CheckResult(
                    "chaos.service.kill-replay", FAIL,
                    f"scenario error: {type(exc).__name__}: {exc}",
                )
            )
        try:
            results.append(_corrupt_battery(tmp))
        except Exception as exc:  # noqa: BLE001
            results.append(
                CheckResult(
                    "chaos.service.corrupt-recompute", FAIL,
                    f"scenario error: {type(exc).__name__}: {exc}",
                )
            )
    return results


def _crash_battery(tmp: Path, fast: bool) -> List[CheckResult]:
    """kill-replay + torn-journal + client-disconnect + drain, all on
    one crashed-and-restarted server (plus a pristine reference)."""
    results: List[CheckResult] = []
    env = _service_env(tmp, "crash")
    payload = _sweep_payload(fast)

    victim = _Server(tmp, env, "victim")
    reborn = None
    reference = None
    try:
        status, record = _submit(victim, payload)
        jid = record.get("job", "")
        admitted = status == 202 and record.get("outcome") == "admitted"
        seen = _poll_job(victim, jid, ("RUNNING", "DONE"), timeout=30)
        killed_mid_job = bool(seen) and seen.get("state") == "RUNNING"
        victim.sigkill()
        journal = _append_torn_tail(env)

        reborn = _Server(tmp, env, "reborn")
        health, _ = _http("GET", reborn.url + "/healthz")
        quarantine = journal.with_suffix(".quarantine")
        final = _poll_job(reborn, jid, ("DONE", "FAILED"))
        replayed = int(
            _telemetry(reborn).get("service", {}).get("replayed", 0)
        )
        chaotic = _result_bytes(reborn, jid)

        reference = _Server(tmp, _service_env(tmp, "ref"), "ref")
        status_r, record_r = _submit(reference, payload)
        same_id = record_r.get("job") == jid  # job identity is content-addressed
        final_r = _poll_job(reference, jid, ("DONE", "FAILED"))
        clean = _result_bytes(reference, jid)

        converged = (
            chaotic is not None and clean is not None and chaotic == clean
        )
        if (
            admitted and killed_mid_job and replayed >= 1
            and final is not None and final.get("state") == "DONE"
            and same_id and converged
        ):
            results.append(
                CheckResult(
                    "chaos.service.kill-replay", PASS,
                    f"SIGKILL at RUNNING, restart replayed job {jid} to "
                    "DONE, result byte-identical to an undisturbed server",
                )
            )
        else:
            results.append(
                CheckResult(
                    "chaos.service.kill-replay", FAIL,
                    f"admitted={admitted} killed_mid_job={killed_mid_job} "
                    f"replayed={replayed} "
                    f"final={(final or {}).get('state')} "
                    f"ref={(final_r or {}).get('state')} "
                    f"same_id={same_id} bytes_equal={converged}",
                )
            )

        if health == 200 and quarantine.is_file():
            results.append(
                CheckResult(
                    "chaos.service.torn-journal", PASS,
                    "torn tail quarantined on restart, /healthz 200",
                )
            )
        else:
            results.append(
                CheckResult(
                    "chaos.service.torn-journal", FAIL,
                    f"healthz={health} "
                    f"quarantine_exists={quarantine.is_file()}",
                )
            )

        _half_post(reborn.url)
        health2, _ = _http("GET", reborn.url + "/healthz")
        disconnects = int(
            _telemetry(reborn)
            .get("service", {})
            .get("client_disconnects", 0)
        )
        if health2 == 200 and disconnects >= 1:
            results.append(
                CheckResult(
                    "chaos.service.client-disconnect", PASS,
                    "half-sent POST survived: server live, "
                    f"service.client_disconnects={disconnects}",
                )
            )
        else:
            results.append(
                CheckResult(
                    "chaos.service.client-disconnect", FAIL,
                    f"healthz={health2} client_disconnects={disconnects}",
                )
            )

        rc_reborn = reborn.sigterm()
        rc_ref = reference.sigterm()
        if rc_reborn == 0 and rc_ref == 0:
            results.append(
                CheckResult(
                    "chaos.service.drain", PASS,
                    "SIGTERM drained both servers, exit 0",
                )
            )
        else:
            results.append(
                CheckResult(
                    "chaos.service.drain", FAIL,
                    f"exit codes: reborn={rc_reborn} reference={rc_ref}",
                )
            )
    finally:
        for server in (victim, reborn, reference):
            if server is not None:
                server.ensure_dead()
    return results


def _corrupt_battery(tmp: Path) -> CheckResult:
    """A cache entry corrupted while its writing job was in flight must
    be quarantined and recomputed byte-identically by the next server."""
    env = _service_env(tmp, "corrupt")
    env["REPRO_CHAOS"] = "corrupt=1"
    env["REPRO_CHAOS_DIR"] = str(tmp / "corrupt" / "tokens")
    payload = {
        "kind": "run",
        "params": {"kernel": "corner_turn", "machine": "viram", "seed": 7},
    }

    writer = _Server(tmp, env, "writer")
    reader = None
    try:
        _, record = _submit(writer, payload)
        jid = record.get("job", "")
        final_w = _poll_job(writer, jid, ("DONE", "FAILED"))
        first = _result_bytes(writer, jid)
        writer.sigterm()
        fired = (Path(env["REPRO_CHAOS_DIR"]) / "corrupt-0.token").is_file()

        # A fresh journal forces a real re-execution (no dedup), but the
        # same disk-cache root serves the now-corrupted entry.
        env2 = dict(env)
        env2.pop("REPRO_CHAOS", None)
        env2["REPRO_SERVICE_DIR"] = str(tmp / "corrupt" / "svc2")
        reader = _Server(tmp, env2, "reader")
        _, record2 = _submit(reader, payload)
        jid2 = record2.get("job", "")
        final_r = _poll_job(reader, jid2, ("DONE", "FAILED"))
        second = _result_bytes(reader, jid2)
        quarantined = int(
            _telemetry(reader).get("resilience", {}).get("quarantined", 0)
        )
        reader.sigterm()

        converged = (
            first is not None and second is not None and first == second
        )
        done = (
            (final_w or {}).get("state") == "DONE"
            and (final_r or {}).get("state") == "DONE"
        )
        if fired and done and quarantined >= 1 and converged:
            return CheckResult(
                "chaos.service.corrupt-recompute", PASS,
                "entry corrupted mid-job; next server quarantined it "
                f"(resilience.quarantined={quarantined}) and recomputed "
                "byte-identically",
            )
        return CheckResult(
            "chaos.service.corrupt-recompute", FAIL,
            f"injection_fired={fired} states=({(final_w or {}).get('state')},"
            f" {(final_r or {}).get('state')}) quarantined={quarantined} "
            f"bytes_equal={converged}",
        )
    finally:
        for server in (writer, reader):
            if server is not None:
                server.ensure_dead()
