"""Runtime chaos harness: deterministic fault injection mid-sweep.

``repro check --inject`` proves the *oracles* can see corruption; this
module proves the *runtime* can survive it.  Activated by the
``REPRO_CHAOS`` environment variable (or ``repro check --chaos``), it
injects a budgeted number of real failures into a live sweep — worker
SIGKILL, task hangs, disk I/O errors, stale lock files, cache-entry
corruption — and the acceptance bar is strict: the sweep completes and
its report output is **byte-identical** to an undisturbed run, with the
recoveries visible only in the ``resilience.*`` telemetry.

Spec grammar (comma-separated ``name=value`` tokens)::

    REPRO_CHAOS="kill=1,disk=1"            # one worker kill, one read error
    REPRO_CHAOS="hang=1,hang_s=2.5"        # one 2.5 s task hang
    REPRO_CHAOS="lock=1,corrupt=1"         # stale lock + bit-flipped entry
    REPRO_CHAOS="kill=1,service=0"         # skip the service scenarios

Faults (each value is an *injection budget* for the whole sweep):

``kill``
    A pool worker SIGKILLs itself at the start of a chunk; the
    supervisor sees ``BrokenProcessPool``, resurrects the pool, and
    retries the lost chunks.
``hang``
    A worker sleeps ``hang_s`` seconds (parameter, default 2.0) at the
    start of a chunk; with ``REPRO_CHUNK_DEADLINE`` below ``hang_s``
    this exercises the deadline/retry path, otherwise it is pure delay.
``disk``
    One disk-cache read attempt raises ``OSError``.  The cache retries
    a failed read once, so ``disk=1`` is a *transient* error (healed by
    the retry) while ``disk=2`` can make both attempts of one read fail
    (*persistent* for that lookup, degrading to a recomputed miss).
``lock``
    A stale lock file (dead pid, hour-old mtime) is planted immediately
    before a lock acquisition; the acquirer must detect it by pid+age
    and break it safely.
``corrupt``
    A just-published cache entry has one payload byte flipped on disk
    (digest left stale); the next reader must quarantine it and
    recompute.

``repro check --chaos`` additionally runs the *service* scenario
battery (:mod:`repro.resilience.servicechaos`) — SIGKILL'd servers,
torn journals, vanished clients — unless the spec carries
``service=0``.  Every failing chaos row embeds the exact replay command
(spec included), so a red CI check is one paste away from a local
reproduction.

Determinism comes from *budget tokens*, not randomness: each potential
injection site claims a token file (``O_CREAT|O_EXCL``, atomic across
processes) from the shared state directory — the first ``N`` sites to
reach a fault fire, every later site is a no-op.  The state directory
defaults to ``<disk-cache root>/.chaos`` so pool workers (which inherit
the environment) share the budget with their parent; ``dir=`` in the
spec or ``REPRO_CHAOS_DIR`` overrides it.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, Mapping, Optional

from repro.errors import ConfigError

__all__ = [
    "FAULTS",
    "ChaosSpec",
    "parse_spec",
    "active_spec",
    "claim",
    "reset_tokens",
    "tokens_claimed",
    "on_worker_chunk",
    "on_disk_read",
    "on_disk_insert",
    "on_lock_acquire",
    "dead_pid",
    "run_chaos_check",
]

#: Recognised fault names (values are injection budgets).
FAULTS = ("kill", "hang", "disk", "lock", "corrupt")

#: Recognised parameter names (values are floats/strings).
PARAMS = ("hang_s", "dir", "service")

#: The spec ``repro check --chaos`` uses when none is given — matches
#: the acceptance scenario: one worker kill plus one transient disk
#: error per sweep.
DEFAULT_SPEC = "kill=1,disk=1"


@dataclasses.dataclass(frozen=True)
class ChaosSpec:
    """A parsed chaos specification: fault budgets plus parameters."""

    counts: Mapping[str, int]
    hang_s: float = 2.0
    state_dir: Optional[str] = None
    service: int = 1

    def budget(self, fault: str) -> int:
        return int(self.counts.get(fault, 0))

    def describe(self) -> str:
        parts = [
            f"{name}={self.counts[name]}"
            for name in FAULTS
            if self.counts.get(name)
        ]
        return ",".join(parts) or "(empty)"


def parse_spec(text: str) -> ChaosSpec:
    """Parse a ``REPRO_CHAOS`` spec string; raises
    :class:`~repro.errors.ConfigError` on malformed input."""
    counts: Dict[str, int] = {}
    hang_s = 2.0
    state_dir: Optional[str] = None
    service = 1
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        name, sep, value = token.partition("=")
        name = name.strip()
        if not sep:
            raise ConfigError(
                f"chaos spec token {token!r} must look like name=value"
            )
        if name in FAULTS:
            try:
                counts[name] = counts.get(name, 0) + int(value)
            except ValueError:
                raise ConfigError(
                    f"chaos fault {name!r} needs an integer budget, "
                    f"got {value!r}"
                ) from None
        elif name == "hang_s":
            try:
                hang_s = float(value)
            except ValueError:
                raise ConfigError(
                    f"chaos parameter hang_s needs a float, got {value!r}"
                ) from None
        elif name == "dir":
            state_dir = value
        elif name == "service":
            try:
                service = int(value)
            except ValueError:
                raise ConfigError(
                    f"chaos parameter service needs 0 or 1, got {value!r}"
                ) from None
        else:
            raise ConfigError(
                f"unknown chaos fault {name!r}; expected one of "
                f"{FAULTS + PARAMS}"
            )
    if any(n < 0 for n in counts.values()):
        raise ConfigError("chaos budgets must be >= 0")
    return ChaosSpec(
        counts=counts, hang_s=hang_s, state_dir=state_dir, service=service
    )


#: Parse cache keyed by the raw spec text (hot-path hooks re-read the
#: environment on every call; parsing must not be the cost).
_PARSED: Dict[str, ChaosSpec] = {}


def active_spec() -> Optional[ChaosSpec]:
    """The spec from ``REPRO_CHAOS``, or ``None`` when chaos is off."""
    text = os.environ.get("REPRO_CHAOS")
    if not text:
        return None
    spec = _PARSED.get(text)
    if spec is None:
        spec = parse_spec(text)
        _PARSED[text] = spec
    return spec


def state_dir(spec: ChaosSpec) -> Path:
    """The token directory shared by every process of the sweep."""
    if spec.state_dir:
        return Path(spec.state_dir)
    env = os.environ.get("REPRO_CHAOS_DIR")
    if env:
        return Path(env)
    from repro.perf.diskcache import DISK_CACHE

    return DISK_CACHE.root() / ".chaos"


def claim(fault: str, spec: Optional[ChaosSpec] = None) -> bool:
    """Atomically claim one injection token for ``fault``.

    Returns ``True`` when this call should inject (a token was free);
    once the fault's budget is exhausted every later call returns
    ``False`` — in this process or any sibling sharing the state dir.
    """
    if spec is None:
        spec = active_spec()
    if spec is None:
        return False
    budget = spec.budget(fault)
    if budget <= 0:
        return False
    directory = state_dir(spec)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError:
        return False
    for i in range(budget):
        token = directory / f"{fault}-{i}.token"
        try:
            fd = os.open(str(token), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(f'{{"pid": {os.getpid()}, "time": {time.time()}}}\n')
        return True
    return False


def reset_tokens(spec: ChaosSpec) -> None:
    """Return every token to the budget (start of a fresh chaos run)."""
    directory = state_dir(spec)
    if directory.is_dir():
        for token in directory.glob("*.token"):
            try:
                token.unlink()
            except OSError:
                pass


def tokens_claimed(spec: ChaosSpec) -> Dict[str, int]:
    """How many tokens of each fault have fired so far."""
    directory = state_dir(spec)
    out = {fault: 0 for fault in FAULTS}
    if directory.is_dir():
        for token in directory.glob("*.token"):
            fault = token.name.rsplit("-", 1)[0]
            if fault in out:
                out[fault] += 1
    return out


def _note(name: str, fault: str = "") -> None:
    from repro.resilience.stats import RESILIENCE

    RESILIENCE.note(name)
    if fault:
        # Mirror the injection into the flight recorder.  Worker
        # processes have no recorder installed, so only parent-side
        # injections (disk, lock, corrupt in-parent) appear in the
        # session ledger — the kill/hang evidence is the supervisor's
        # own recovery events.
        from repro.obs.ledger import record

        record("chaos.injection", fault=fault)


# -- injection hooks --------------------------------------------------
#
# Each hook is called from an instrumentation site and is a no-op
# unless REPRO_CHAOS is set *and* the matching budget has a free token.


def on_worker_chunk() -> None:
    """Worker-side hook at the start of every chunk: may SIGKILL the
    worker or hang the task, per the active spec."""
    spec = active_spec()
    if spec is None:
        return
    if claim("kill", spec):
        os.kill(os.getpid(), signal.SIGKILL)
    if claim("hang", spec):
        _note("chaos_injections", fault="hang")
        time.sleep(spec.hang_s)


def on_disk_read(path: os.PathLike) -> None:
    """Disk-cache read hook: may raise an injected ``OSError``."""
    if claim("disk"):
        _note("chaos_injections", fault="disk")
        raise OSError(f"chaos: injected disk read error for {path}")


def on_disk_insert(path: os.PathLike) -> None:
    """Disk-cache publish hook: may flip one byte of the entry just
    written (digest left stale — the read path must quarantine it)."""
    if claim("corrupt"):
        _note("chaos_injections", fault="corrupt")
        try:
            with open(path, "r+b") as fh:
                fh.seek(-1, os.SEEK_END)
                byte = fh.read(1)
                fh.seek(-1, os.SEEK_END)
                fh.write(bytes((byte[0] ^ 0xFF,)))
        except OSError:
            pass


def on_lock_acquire(path: os.PathLike) -> None:
    """Lock-acquisition hook: may plant a stale lock file (dead pid,
    hour-old mtime) that the acquirer must detect and break."""
    if claim("lock"):
        _note("chaos_injections", fault="lock")
        path = Path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                f'{{"pid": {dead_pid()}, "time": {time.time() - 3600}}}\n'
            )
            old = time.time() - 3600
            os.utime(path, (old, old))
        except OSError:
            pass


def dead_pid() -> int:
    """A pid guaranteed dead right now (a just-reaped child's)."""
    proc = subprocess.Popen(
        [sys.executable, "-c", "pass"],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    proc.wait()
    return proc.pid


# -- the chaos convergence check --------------------------------------


def run_chaos_check(
    spec_text: Optional[str] = None,
    jobs: int = 2,
    fast: bool = True,
):
    """Run the full report twice — undisturbed, then under chaos — and
    assert the supervised runtime converged.

    Returns a :class:`~repro.check.report.CheckReport` with one row per
    assertion: the chaotic report must be byte-identical to the clean
    one, injected faults must actually have fired, recoveries must show
    in ``resilience.*`` telemetry, and the runtime must not have
    degraded to serial.  Both runs use an ephemeral disk-cache root so
    the user's store is never touched.

    The reports are generated with ``validate=False``: the subject here
    is the *runtime* (supervisor, cache tiers, locks), and the rendered
    experiment sections are the convergence bar.  Running the embedded
    fast-tier validation mid-chaos would — correctly — flag an injected
    ``corrupt`` entry that no reader has healed yet, turning detection
    into divergence; proving the *oracles* see corruption is ``repro
    check --inject``'s job.
    """
    import tempfile

    from repro.check.report import FAIL, PASS, WARN, CheckReport
    from repro.eval.report import full_report
    from repro.perf.cache import RUN_CACHE
    from repro.resilience.stats import RESILIENCE

    spec_text = spec_text or DEFAULT_SPEC
    spec = parse_spec(spec_text)
    from repro.obs.ledger import record as ledger_record

    ledger_record("chaos.check", spec=spec_text, jobs=int(jobs))
    report = CheckReport(tier="chaos")
    workloads = None
    if fast:
        from repro.kernels.workloads import (
            small_beam_steering,
            small_corner_turn,
            small_cslc,
        )

        workloads = {
            "corner_turn": small_corner_turn(),
            "cslc": small_cslc(),
            "beam_steering": small_beam_steering(),
        }

    saved = {
        name: os.environ.get(name)
        for name in (
            "REPRO_CHAOS", "REPRO_DISK_CACHE_DIR", "REPRO_CHUNK_DEADLINE",
        )
    }
    os.environ.pop("REPRO_CHAOS", None)
    reread = None
    try:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
            os.environ["REPRO_DISK_CACHE_DIR"] = tmp
            RUN_CACHE.clear()
            baseline = full_report(
                workloads=workloads, jobs=1, validate=False
            )

            # Fresh tiers so the chaotic run re-dispatches everything.
            RUN_CACHE.clear()
            os.environ["REPRO_DISK_CACHE_DIR"] = os.path.join(tmp, "chaos")
            if spec.budget("hang") and saved["REPRO_CHUNK_DEADLINE"] is None:
                # Make hangs observable: deadline below the hang time.
                os.environ["REPRO_CHUNK_DEADLINE"] = str(
                    max(0.5, spec.hang_s / 4.0)
                )
            reset_tokens(spec)
            RESILIENCE.reset()
            os.environ["REPRO_CHAOS"] = spec_text
            chaotic = full_report(
                workloads=workloads, jobs=max(2, jobs), validate=False
            )
            if spec.budget("lock"):
                # Lock acquisitions only happen on prune; force one so
                # the planted stale lock is actually encountered.
                from repro.perf.diskcache import DISK_CACHE

                DISK_CACHE.prune()
            os.environ.pop("REPRO_CHAOS", None)
            if spec.budget("corrupt"):
                # The corrupted entry is only *read* by a later process;
                # replay the report from the damaged store and require
                # the reader to quarantine, recompute, and still match.
                RUN_CACHE.clear()
                reread = full_report(
                    workloads=workloads, jobs=1, validate=False
                )

            snap = RESILIENCE.snapshot()
            claimed = tokens_claimed(spec)
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        RUN_CACHE.clear()

    if reread is not None and reread != baseline:
        report.add(
            "chaos.report.reread-identical", FAIL,
            "replay from the damaged store diverged from the clean run",
        )
    elif reread is not None:
        report.add("chaos.report.reread-identical", PASS)

    if chaotic == baseline:
        report.add(
            "chaos.report.identical", PASS,
            f"byte-identical under {spec.describe()}",
        )
    else:
        import difflib

        diff = "".join(
            difflib.unified_diff(
                baseline.splitlines(keepends=True)[:2000],
                chaotic.splitlines(keepends=True)[:2000],
                fromfile="clean", tofile="chaos",
            )
        )
        report.add(
            "chaos.report.identical", FAIL,
            "chaotic report diverged from clean run: "
            + " | ".join(diff.splitlines()[:8]),
        )

    requested = {f: spec.budget(f) for f in FAULTS if spec.budget(f)}
    unfired = {
        f: n - claimed.get(f, 0)
        for f, n in requested.items()
        if claimed.get(f, 0) < n
    }
    if not requested:
        report.add("chaos.injections.fired", WARN, "empty chaos spec")
    elif unfired:
        report.add(
            "chaos.injections.fired", WARN,
            "budget not exhausted (site never reached): "
            + ", ".join(f"{f} {n} left" for f, n in unfired.items()),
        )
    else:
        report.add("chaos.injections.fired", PASS)

    if spec.budget("kill") or spec.budget("hang"):
        recovered = int(snap.get("retries", 0)) >= 1
        report.add(
            "chaos.supervisor.recovered",
            PASS if recovered else FAIL,
            f"resilience.retries={snap.get('retries', 0)}"
            + ("" if recovered else " — expected >= 1 under kill/hang"),
        )
    report.add(
        "chaos.supervisor.no-degradation",
        PASS if int(snap.get("degradations", 0)) == 0 else FAIL,
        f"resilience.degradations={snap.get('degradations', 0)}"
        + (
            f" (last: {snap.get('last_degradation_reason', '')})"
            if int(snap.get("degradations", 0)) else ""
        ),
    )
    if spec.budget("corrupt"):
        quarantined = int(snap.get("quarantined", 0))
        report.add(
            "chaos.diskcache.self-healed",
            PASS if quarantined >= 1 else FAIL,
            f"resilience.quarantined={quarantined}"
            + ("" if quarantined else " — corrupt entry never quarantined"),
        )
    if spec.budget("lock"):
        broken = int(snap.get("locks_broken", 0))
        report.add(
            "chaos.diskcache.lock-broken",
            PASS if broken >= 1 else FAIL,
            f"resilience.locks_broken={broken}"
            + ("" if broken else " — stale lock never detected"),
        )

    if spec.service:
        # The service scenarios run real server subprocesses (SIGKILL
        # mid-job, torn journal, vanished client, corrupted cache entry)
        # against temp state roots; ``service=0`` in the spec skips them.
        from repro.resilience.servicechaos import service_chaos_checks

        report.extend(service_chaos_checks(fast=fast))

    _embed_replay_command(report, spec_text, fast)
    return report


def _embed_replay_command(report, spec_text: str, fast: bool) -> None:
    """Suffix every failure with the one command that replays it.

    The chaos run's determinism token is the spec itself (budget tokens,
    not RNG), so embedding the active spec in each failure detail makes
    any red row locally reproducible without spelunking CI environment
    variables.
    """
    from repro.check.report import FAIL, CheckResult

    command = f"python -m repro check --chaos '{spec_text}'" + (
        "" if fast else " --full"
    )
    for n, result in enumerate(report.results):
        if result.status != FAIL or "replay:" in result.detail:
            continue
        detail = (result.detail + " | " if result.detail else "")
        report.results[n] = CheckResult(
            result.name, result.status, detail + f"replay: {command}"
        )
