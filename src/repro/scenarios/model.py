"""Scenario model: multi-stage radar chains as frozen value objects.

The paper evaluates corner turn, CSLC, and beam steering as isolated
kernels; a real radar chain runs them back to back — the corner turn
reorganises the sample matrix, the CSLC cancels jammers in the
reorganised data, and beam steering phases the array for the next
dwell.  A :class:`Scenario` captures one such chain: a machine, an
ordered tuple of :class:`StageSpec` records (kernel + workload +
mapping options + optional per-stage calibration), a functional seed,
and an optional chain-wide calibration.

Everything is a frozen dataclass, for the same reason the workloads
are: the scenario *is* its content.  :attr:`Scenario.scenario_id` is a
content digest over the whole record
(:func:`repro.perf.cache.content_digest`), so two processes that build
the same scenario agree on its name, and the planner/cache layers see
per-stage requests whose :func:`~repro.perf.cache.cache_key` is exactly
the key a standalone ``registry.run`` of the same cell would mint —
scenario execution reuses every cache tier unchanged.

To keep that key equality, :meth:`Scenario.stage_kwargs` *omits*
defaulted arguments: a canonical stage contributes ``{}`` (the very
kwargs ``run_table3`` uses), a small-workload stage contributes
``{"workload": wl}`` (the fast check tier's kwargs), and only explicit
seeds, calibrations, and options appear at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.calibration import Calibration
from repro.errors import ConfigError
from repro.kernels.beam_steering import BeamSteeringWorkload
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.kernels.cslc import CSLCWorkload

#: The canonical radar chain, in dataflow order (§3: the corner turn
#: reorganises the interval's samples, the CSLC filters them, beam
#: steering phases the array for the next dwell).
STAGE_ORDER: Tuple[str, ...] = ("corner_turn", "cslc", "beam_steering")

#: Workload record type each stage kernel takes.
WORKLOAD_TYPES: Dict[str, type] = {
    "corner_turn": CornerTurnWorkload,
    "cslc": CSLCWorkload,
    "beam_steering": BeamSteeringWorkload,
}


@dataclass(frozen=True)
class StageSpec:
    """One pipeline stage: a kernel invocation's full configuration.

    ``workload`` ``None`` means the canonical (paper-size) workload;
    ``options`` is a sorted tuple of ``(name, value)`` mapping options
    (use :func:`stage` to build one from keywords); ``calibration``
    overrides the scenario-wide calibration for this stage only.
    """

    kernel: str
    workload: Optional[Any] = None
    options: Tuple[Tuple[str, Any], ...] = ()
    calibration: Optional[Calibration] = None

    def __post_init__(self) -> None:
        if self.kernel not in WORKLOAD_TYPES:
            raise ConfigError(
                f"unknown stage kernel {self.kernel!r}; "
                f"expected one of {STAGE_ORDER}"
            )
        if self.workload is not None and not isinstance(
            self.workload, WORKLOAD_TYPES[self.kernel]
        ):
            raise ConfigError(
                f"stage {self.kernel!r} takes a "
                f"{WORKLOAD_TYPES[self.kernel].__name__}, "
                f"got {type(self.workload).__name__}"
            )
        if tuple(sorted(self.options)) != self.options:
            raise ConfigError(
                f"stage options must be a sorted tuple of (name, value) "
                f"pairs, got {self.options!r}"
            )

    def resolved_workload(self) -> Any:
        """The workload this stage runs (canonical when unset)."""
        if self.workload is not None:
            return self.workload
        from repro.kernels import workloads

        return getattr(workloads, f"canonical_{self.kernel}")()

    def output_words(self) -> int:
        """32-bit words this stage hands to its successor.

        Corner turn: the transposed matrix.  CSLC: the cancelled main
        channels, one complex (2-word) sample per sub-band bin.  Beam
        steering: one phase word per output.
        """
        wl = self.resolved_workload()
        if self.kernel == "corner_turn":
            return int(wl.words)
        if self.kernel == "cslc":
            return int(wl.n_mains * wl.n_subbands * wl.subband_len * 2)
        return int(wl.outputs)


def stage(
    kernel: str,
    workload: Optional[Any] = None,
    calibration: Optional[Calibration] = None,
    **options: Any,
) -> StageSpec:
    """Build a :class:`StageSpec` from keyword mapping options."""
    return StageSpec(
        kernel=kernel,
        workload=workload,
        options=tuple(sorted(options.items())),
        calibration=calibration,
    )


@dataclass(frozen=True)
class Scenario:
    """One end-to-end radar chain on one machine.

    ``seed`` feeds the functional data generators of every stage (0 is
    the library default and is omitted from the stage kwargs);
    ``calibration`` applies to every stage that does not carry its own.
    """

    machine: str
    stages: Tuple[StageSpec, ...] = field(
        default_factory=lambda: tuple(StageSpec(k) for k in STAGE_ORDER)
    )
    seed: int = 0
    calibration: Optional[Calibration] = None

    def __post_init__(self) -> None:
        from repro.mappings import registry

        if self.machine not in registry.MACHINES:
            raise ConfigError(
                f"unknown machine {self.machine!r}; "
                f"expected one of {registry.MACHINES}"
            )
        if not self.stages:
            raise ConfigError("a scenario needs at least one stage")
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")
        available = set(registry.available())
        for spec in self.stages:
            if (spec.kernel, self.machine) not in available:
                raise ConfigError(
                    f"no mapping registered for "
                    f"{spec.kernel}/{self.machine}"
                )

    @property
    def scenario_id(self) -> str:
        """Stable content-addressed identity (16 hex chars).

        A pure function of the scenario's content — same fields, same
        ID, in any process — and independent of the model version stamp
        (IDs name the *request*, cache keys name the *response*).
        """
        from repro.perf.cache import content_digest

        digest = content_digest(self)
        if digest is None:  # pragma: no cover - all fields are encodable
            raise ConfigError(f"scenario is not content-addressable: {self}")
        return digest[:16]

    def stage_kwargs(self, spec: StageSpec) -> Dict[str, Any]:
        """The ``registry.run`` kwargs for one stage.

        Defaults are *omitted* (no ``workload`` key for canonical, no
        ``seed`` for 0, no ``calibration`` when unset) so the cache key
        equals a standalone run's key for the same cell.
        """
        kwargs: Dict[str, Any] = {}
        if spec.workload is not None:
            kwargs["workload"] = spec.workload
        calibration = spec.calibration or self.calibration
        if calibration is not None:
            kwargs["calibration"] = calibration
        if self.seed:
            kwargs["seed"] = self.seed
        kwargs.update(dict(spec.options))
        return kwargs


def canonical_scenario(
    machine: str, calibration: Optional[Calibration] = None
) -> Scenario:
    """The paper-size three-stage chain on ``machine``."""
    return Scenario(machine=machine, calibration=calibration)


def scenario_for_workloads(
    machine: str,
    workloads: Optional[Mapping[str, Any]] = None,
    seed: int = 0,
    calibration: Optional[Calibration] = None,
) -> Scenario:
    """A three-stage chain using per-kernel workload overrides (the
    mapping ``run_checks`` and ``full_report`` take; missing kernels run
    canonical)."""
    workloads = workloads or {}
    return Scenario(
        machine=machine,
        stages=tuple(
            StageSpec(kernel, workload=workloads.get(kernel))
            for kernel in STAGE_ORDER
        ),
        seed=seed,
        calibration=calibration,
    )


def small_scenario(
    machine: str, calibration: Optional[Calibration] = None
) -> Scenario:
    """The test-size three-stage chain on ``machine``."""
    from repro.kernels.workloads import (
        small_beam_steering,
        small_corner_turn,
        small_cslc,
    )

    return scenario_for_workloads(
        machine,
        {
            "corner_turn": small_corner_turn(),
            "cslc": small_cslc(),
            "beam_steering": small_beam_steering(),
        },
        calibration=calibration,
    )
