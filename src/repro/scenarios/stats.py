"""Process-wide scenario telemetry (the ``scenario.*`` namespace).

Mirrors :data:`repro.perf.tensorsweep.TENSOR_STATS`: a lock-protected
counter bundle that the pipeline runner and the fuzzer feed, surfaced
through the TELEMETRY registry (so ``--perf`` output, metrics
manifests, and trace ``otherData`` all see it) and rendered as one
summary line by the CLI.
"""

from __future__ import annotations

import threading
from typing import Dict


class ScenarioStats:
    """Counters for pipeline composition and fuzzing activity."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        with self._lock:
            self.pipelines = 0
            self.stages = 0
            self.stage_cycles = 0.0
            self.handoffs = 0
            self.handoff_words = 0
            self.handoff_cycles = 0.0
            self.stage_runs: Dict[str, int] = {}
            self.handoff_levels: Dict[str, int] = {}
            self.fuzz_generated = 0
            self.fuzz_validated = 0
            self.fuzz_violations = 0

    def note_pipeline(self, prun) -> None:
        """Account one assembled :class:`~repro.scenarios.PipelineRun`."""
        with self._lock:
            self.pipelines += 1
            for result in prun.stages:
                self.stages += 1
                self.stage_cycles += result.run.cycles
                key = result.spec.kernel
                self.stage_runs[key] = self.stage_runs.get(key, 0) + 1
                if result.handoff is not None:
                    self.handoffs += 1
                    self.handoff_words += result.handoff.words
                    self.handoff_cycles += result.handoff.cycles
                    level = result.handoff.level
                    self.handoff_levels[level] = (
                        self.handoff_levels.get(level, 0) + 1
                    )

    def note_fuzz_generated(self, count: int) -> None:
        with self._lock:
            self.fuzz_generated += count

    def note_fuzz_validated(self, count: int, violations: int) -> None:
        with self._lock:
            self.fuzz_validated += count
            self.fuzz_violations += violations

    def snapshot(self) -> Dict[str, float]:
        """Flat mapping for the TELEMETRY registry."""
        with self._lock:
            out: Dict[str, float] = {
                "pipelines": self.pipelines,
                "stages": self.stages,
                "stage_cycles": self.stage_cycles,
                "handoffs": self.handoffs,
                "handoff_words": self.handoff_words,
                "handoff_cycles": self.handoff_cycles,
                "fuzz.generated": self.fuzz_generated,
                "fuzz.validated": self.fuzz_validated,
                "fuzz.violations": self.fuzz_violations,
            }
            for kernel, count in sorted(self.stage_runs.items()):
                out[f"stage.{kernel}"] = count
            for level, count in sorted(self.handoff_levels.items()):
                out[f"handoff.{level}"] = count
        return out

    def format_stats(self) -> str:
        """One-line summary for the ``--perf`` view."""
        with self._lock:
            return (
                f"scenarios: {self.pipelines} pipelines, "
                f"{self.stages} stages, "
                f"{self.handoffs} handoffs "
                f"({self.handoff_words} words, "
                f"{self.handoff_cycles:,.0f} cycles), "
                f"fuzz {self.fuzz_generated} generated / "
                f"{self.fuzz_validated} validated / "
                f"{self.fuzz_violations} violations"
            )


#: Process-wide scenario counters (TELEMETRY namespace ``scenario``).
SCENARIO_STATS = ScenarioStats()
