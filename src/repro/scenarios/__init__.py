"""Radar pipeline scenarios: composed kernel chains + seeded fuzzing.

The paper's three kernels — corner turn, CSLC, beam steering — are
stages of one real radar chain.  This package composes the existing
per-machine kernel mappings into end-to-end pipelines with explicit
inter-stage data-movement costs (:mod:`.handoff`), executes scenario
populations through the dedup-aware tensor planner (:mod:`.pipeline`),
and generates seeded deterministic scenario sweeps (:mod:`.fuzz`) that
the ``invariant.pipeline.*`` checks and the chaos harness keep honest.

CLI: ``repro pipeline run`` / ``repro pipeline fuzz``; docs:
docs/scenarios.md.
"""

from repro.scenarios.fuzz import (
    fuzz_manifest,
    generate_scenarios,
    manifest_json,
    shrink,
    validate_pipelines,
)
from repro.scenarios.handoff import (
    Handoff,
    HandoffLevel,
    floor_cycles,
    handoff_levels,
    plan_handoff,
)
from repro.scenarios.model import (
    STAGE_ORDER,
    Scenario,
    StageSpec,
    canonical_scenario,
    scenario_for_workloads,
    small_scenario,
    stage,
)
from repro.scenarios.pipeline import (
    PipelineRun,
    StageResult,
    pipeline_record,
    render_pipeline,
    run_pipeline,
    run_scenarios,
    stage_requests,
)
from repro.scenarios.stats import SCENARIO_STATS

__all__ = [
    "Handoff",
    "HandoffLevel",
    "PipelineRun",
    "SCENARIO_STATS",
    "STAGE_ORDER",
    "Scenario",
    "StageResult",
    "StageSpec",
    "canonical_scenario",
    "floor_cycles",
    "fuzz_manifest",
    "generate_scenarios",
    "handoff_levels",
    "manifest_json",
    "pipeline_record",
    "plan_handoff",
    "render_pipeline",
    "run_pipeline",
    "run_scenarios",
    "scenario_for_workloads",
    "shrink",
    "small_scenario",
    "stage",
    "stage_requests",
    "validate_pipelines",
]
