"""Inter-stage data-movement cost model, per machine.

Between two pipeline stages the producer's output must reach the
consumer's input space.  Where that handoff lands — and what it costs —
depends on each architecture's memory hierarchy (§2):

* **VIRAM** keeps working sets in its 13 MB on-chip DRAM; a payload
  that fits streams at the 8 words/cycle sequential rate in one pass.
  Anything larger round-trips through off-chip memory over the 2
  words/cycle DMA port — out on production, back on consumption (two
  passes).
* **Imagine** stages streams through the 128 KB SRF at 16 words/cycle;
  a payload the SRF cannot hold is spilled to SDRAM and refilled, two
  passes at the 2 words/cycle aggregate memory-controller rate.
* **Raw** holds streams in the tiles' 32 KB data SRAMs (512 KB
  aggregate, 16 words/cycle — one load/store port per tile); larger
  payloads go out and back through the peripheral DRAM ports at the 28
  words/cycle aggregate off-chip rate.
* **PPC/AltiVec** (same G4 memory system) hand off through the cache
  hierarchy: L1 at 1 word/cycle, L2 at one 8-word line per
  ``l2_hit_cycles``, DRAM at one line per ``dram_latency_cycles`` —
  the cache levels' costs come from the same default calibration
  constants the kernel models use.

The model is deliberately first-order — capacity selects the level, a
flat per-level ``words/cycle`` rate and a pass count (1 for "stays
resident", 2 for "write out + read back") price the movement — and it
is *fixed per machine*: scenario calibrations retune kernel interiors,
not the handoff fabric, so a scenario's handoff cost depends only on
(machine, payload words).  The ``invariant.pipeline.*`` checks recompute
it independently from this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class HandoffLevel:
    """One rung of a machine's handoff hierarchy.

    ``capacity_words`` ``None`` means unbounded (the backstop level);
    ``passes`` is how many times the payload crosses the level's port
    (1: produced in place; 2: written out then read back).
    """

    name: str
    capacity_words: Optional[int]
    words_per_cycle: float
    passes: int


@dataclass(frozen=True)
class Handoff:
    """A priced inter-stage transfer."""

    machine: str
    level: str
    words: int
    words_per_cycle: float
    passes: int

    @property
    def cycles(self) -> float:
        return self.words * self.passes / self.words_per_cycle


def _viram_levels() -> Tuple[HandoffLevel, ...]:
    from repro.arch.viram.config import ViramConfig

    cfg = ViramConfig()
    return (
        HandoffLevel(
            "onchip-dram",
            cfg.onchip_dram_words,
            float(cfg.seq_words_per_cycle),
            1,
        ),
        HandoffLevel(
            "offchip-dma", None, float(cfg.offchip_dma_words_per_cycle), 2
        ),
    )


def _imagine_levels() -> Tuple[HandoffLevel, ...]:
    from repro.arch.imagine.config import ImagineConfig

    cfg = ImagineConfig()
    return (
        HandoffLevel(
            "srf", cfg.srf_words, float(cfg.srf_words_per_cycle), 1
        ),
        HandoffLevel("sdram", None, float(cfg.memory_words_per_cycle), 2),
    )


def _raw_levels() -> Tuple[HandoffLevel, ...]:
    from repro.arch.raw.config import RawConfig

    cfg = RawConfig()
    tiles = cfg.mesh_rows * cfg.mesh_cols
    return (
        HandoffLevel(
            "tile-sram",
            tiles * cfg.tile_data_bytes // 4,
            float(cfg.onchip_words_per_cycle),
            1,
        ),
        HandoffLevel(
            "offchip-dram", None, float(cfg.offchip_words_per_cycle), 2
        ),
    )


def _ppc_levels() -> Tuple[HandoffLevel, ...]:
    from repro.arch.ppc.config import PpcConfig
    from repro.calibration import DEFAULT_CALIBRATION

    cfg = PpcConfig()
    cal = DEFAULT_CALIBRATION.ppc
    line_words = cfg.l1_line_bytes // 4
    return (
        HandoffLevel("l1", cfg.l1_size_bytes // 4, 1.0, 1),
        HandoffLevel(
            "l2", cfg.l2_size_bytes // 4, line_words / cal.l2_hit_cycles, 2
        ),
        HandoffLevel(
            "dram", None, line_words / cal.dram_latency_cycles, 2
        ),
    )


_BUILDERS = {
    "viram": _viram_levels,
    "imagine": _imagine_levels,
    "raw": _raw_levels,
    "ppc": _ppc_levels,
    "altivec": _ppc_levels,  # same G4 memory system
}

_LEVELS: Dict[str, Tuple[HandoffLevel, ...]] = {}


def handoff_levels(machine: str) -> Tuple[HandoffLevel, ...]:
    """The machine's handoff hierarchy, fastest/smallest first."""
    try:
        builder = _BUILDERS[machine]
    except KeyError:
        raise ConfigError(
            f"no handoff model for machine {machine!r}; "
            f"expected one of {tuple(_BUILDERS)}"
        ) from None
    if machine not in _LEVELS:
        _LEVELS[machine] = builder()
    return _LEVELS[machine]


def plan_handoff(machine: str, words: int) -> Handoff:
    """Price moving ``words`` between stages on ``machine``.

    The payload lands in the first (fastest) level that can hold it;
    the backstop level is unbounded, so planning always succeeds.
    """
    if words <= 0:
        raise ConfigError(f"handoff payload must be positive, got {words}")
    for level in handoff_levels(machine):
        if level.capacity_words is None or words <= level.capacity_words:
            return Handoff(
                machine=machine,
                level=level.name,
                words=words,
                words_per_cycle=level.words_per_cycle,
                passes=level.passes,
            )
    raise ConfigError(  # pragma: no cover - last level is unbounded
        f"no handoff level can hold {words} words on {machine}"
    )


def floor_cycles(machine: str, words: int) -> float:
    """The cheapest conceivable handoff of ``words`` on ``machine`` —
    one pass at the fastest level's rate.  The footprint-conservation
    invariant uses this as its lower bound: no priced handoff may beat
    the machine's best port."""
    best = max(
        level.words_per_cycle / level.passes
        for level in handoff_levels(machine)
    )
    return words / best
