"""Seeded deterministic scenario fuzzer.

Generates radar-chain scenarios — shapes, channel counts, precisions,
mapping options, calibration perturbations — as a **pure function of
the seed**.  The seeding contract (docs/scenarios.md):

* scenario ``i`` of seed ``s`` is drawn from its own
  ``numpy.random.default_rng([s, i])`` stream (PCG64 seeded through
  ``SeedSequence``, stable across processes and platforms), so
* same ``(seed, count)`` → byte-identical scenario list and manifest in
  any two processes, and
* ``generate_scenarios(s, k)`` is a prefix of
  ``generate_scenarios(s, n)`` for ``k <= n`` — growing a fuzz run
  never reshuffles the scenarios CI already archived.

Every generated scenario satisfies the mappings' structural
preconditions by construction: corner-turn dimensions are multiples of
64 (VIRAM's 16-block, Raw's 64-block, Imagine's 8-row strips all
divide), CSLC sub-bands exactly tile the interval with power-of-two
FFT sizes, and beam-steering precisions respect ``0 < phase_bits <=
accumulator_bits``.  Calibration constants are only ever perturbed
*upward* (factor in [1, 1.3] above their floors), so fuzzed runs can
slow down but never dip below the §2.5 analytic lower bounds the
invariant checker enforces.

A small fraction of scenarios carry a per-stage *structural*
calibration override (VIRAM TLB geometry) — deliberately non-uniform
across the population so the tensor planner's singleton/per-cell
fallback path stays under fuzz (see
``tests/scenarios/test_fuzz_fallback_regression.py``).
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.calibration import DEFAULT_CALIBRATION, Calibration
from repro.errors import ConfigError
from repro.kernels.beam_steering import BeamSteeringWorkload
from repro.kernels.corner_turn import CornerTurnWorkload
from repro.kernels.cslc import CSLCWorkload
from repro.mappings.batch import CAL_GROUP
from repro.scenarios.model import STAGE_ORDER, Scenario, StageSpec
from repro.scenarios.pipeline import PipelineRun, pipeline_record

#: Corner-turn dimensions: multiples of 64 so every mapping's blocking
#: precondition (VIRAM 16, Raw 64, Imagine 8-row strips) is satisfied.
CT_DIMS = (64, 128, 192, 256)

#: CSLC sub-band lengths: powers of two (the FFT planner's radices).
SUBBAND_LENS = (16, 32, 64, 128)

#: Beam-steering accumulator precisions (phase_bits is drawn <= this).
ACCUMULATOR_BITS = (16, 20, 24, 28)

#: Mapping options per (kernel, machine) the fuzzer may toggle — the
#: same surface `repro list` documents.
OPTION_SPACE: Dict[tuple, tuple] = {
    ("cslc", "raw"): ("balanced", "streamed_fft"),
    ("cslc", "imagine"): ("independent_ffts",),
    ("corner_turn", "imagine"): ("via_network_port",),
    ("beam_steering", "imagine"): ("tables_in_srf",),
}

#: Float calibration constants the fuzzer may scale up, per group.
#: Cost-increasing only: every constant here prices overhead, so a
#: factor >= 1 moves simulated cycles away from the analytic bounds.
#: (raw.streamed_fft_speedup is deliberately absent — scaling a
#: *speedup* up would cut cycles toward the bound.)
FUZZ_CONSTANTS: Dict[str, tuple] = {
    "viram": (
        "dram_row_cycle",
        "tlb_miss_cycles",
        "exposed_load_latency",
        "vector_dead_time",
    ),
    "imagine": (
        "dram_row_cycle",
        "kernel_startup",
        "gather_derate",
        "cluster_schedule_inefficiency",
        "comm_exposure",
    ),
    "raw": (
        "block_loop_overhead_per_row",
        "cache_stall_fraction",
        "fft_addr_ops_per_butterfly",
        "fft_loop_ops_per_butterfly",
        "stream_ops_per_output",
    ),
    "ppc": (
        "l2_hit_cycles",
        "dram_latency_cycles",
        "trig_call_cycles",
        "fp_dependency_stall",
        "vector_dependency_stall_per_butterfly",
    ),
}

#: VIRAM TLB reach choices for the rare structural override (default is
#: 48 entries; both alternatives only redistribute TLB-miss overhead).
TLB_ENTRY_CHOICES = (32, 64)

#: Probability knobs (documented parts of the seeding contract — they
#: change what a seed generates, so changing them re-pins manifests).
P_CALIBRATION = 0.5
P_OPTION = 0.5
P_STRUCTURAL = 0.15


def _sample_corner_turn(rng: np.random.Generator) -> CornerTurnWorkload:
    return CornerTurnWorkload(
        rows=int(rng.choice(CT_DIMS)), cols=int(rng.choice(CT_DIMS))
    )


def _sample_cslc(rng: np.random.Generator) -> CSLCWorkload:
    n_mains = int(rng.integers(1, 4))
    n_aux = int(rng.integers(1, 4))
    subband_len = int(rng.choice(SUBBAND_LENS))
    n_subbands = int(rng.integers(1, 17))
    if n_subbands == 1:
        samples = subband_len
    else:
        hop = int(rng.integers(subband_len // 2, subband_len + 1))
        samples = hop * (n_subbands - 1) + subband_len
    return CSLCWorkload(
        n_mains=n_mains,
        n_aux=n_aux,
        samples=samples,
        n_subbands=n_subbands,
        subband_len=subband_len,
    )


def _sample_beam_steering(rng: np.random.Generator) -> BeamSteeringWorkload:
    accumulator_bits = int(rng.choice(ACCUMULATOR_BITS))
    phase_bits = int(rng.integers(8, min(16, accumulator_bits) + 1))
    return BeamSteeringWorkload(
        elements=int(rng.integers(16, 257)),
        directions=int(rng.integers(1, 7)),
        dwells=int(rng.integers(1, 5)),
        accumulator_bits=accumulator_bits,
        phase_bits=phase_bits,
    )


_SAMPLERS: Dict[str, Callable[[np.random.Generator], Any]] = {
    "corner_turn": _sample_corner_turn,
    "cslc": _sample_cslc,
    "beam_steering": _sample_beam_steering,
}


def _sample_calibration(
    rng: np.random.Generator, group: str
) -> Optional[Calibration]:
    """Maybe an upward-perturbed calibration for ``group`` (else None)."""
    from repro.eval.sensitivity import perturbed_calibration

    if rng.random() >= P_CALIBRATION:
        return None
    names = FUZZ_CONSTANTS[group]
    n_fields = 1 + int(rng.integers(0, 2))
    picked = sorted(
        int(i) for i in rng.choice(len(names), size=n_fields, replace=False)
    )
    cal = DEFAULT_CALIBRATION
    for index in picked:
        factor = 1.0 + float(rng.uniform(0.0, 0.3))
        cal = perturbed_calibration(group, names[index], factor, base=cal)
    return cal


def _sample_scenario(
    rng: np.random.Generator, machines: Sequence[str]
) -> Scenario:
    machine = machines[int(rng.integers(0, len(machines)))]
    group = CAL_GROUP[machine]
    # Functional seeds come from a small set on purpose: shape
    # collisions across the population then share content keys, so a
    # fuzz run exercises the planner's dedup and tensor-batch grouping,
    # not just its per-cell path.
    seed = int(rng.integers(0, 4))
    calibration = _sample_calibration(rng, group)

    stages: List[StageSpec] = []
    for kernel in STAGE_ORDER:
        workload = _SAMPLERS[kernel](rng)
        options: Dict[str, Any] = {}
        for name in OPTION_SPACE.get((kernel, machine), ()):
            if rng.random() < P_OPTION:
                options[name] = bool(rng.integers(0, 2))
        stages.append(
            StageSpec(
                kernel=kernel,
                workload=workload,
                options=tuple(sorted(options.items())),
            )
        )

    # Rare per-stage structural override: one VIRAM stage gets a
    # different TLB geometry, making the population's structural
    # signatures non-uniform (the planner must demote those cells to
    # per-cell fallback and still match batched execution bit for bit).
    if group == "viram" and rng.random() < P_STRUCTURAL:
        index = int(rng.integers(0, len(stages)))
        entries = int(
            TLB_ENTRY_CHOICES[int(rng.integers(0, len(TLB_ENTRY_CHOICES)))]
        )
        base = calibration or DEFAULT_CALIBRATION
        stage_cal = replace(
            base, viram=replace(base.viram, tlb_entries=entries)
        )
        stages[index] = replace(stages[index], calibration=stage_cal)

    return Scenario(
        machine=machine,
        stages=tuple(stages),
        seed=seed,
        calibration=calibration,
    )


def generate_scenarios(
    seed: int, count: int, machines: Optional[Sequence[str]] = None
) -> List[Scenario]:
    """``count`` scenarios for ``seed`` — deterministic, prefix-stable."""
    from repro.mappings import registry
    from repro.scenarios.stats import SCENARIO_STATS

    if seed < 0:
        raise ConfigError(f"fuzz seed must be >= 0, got {seed}")
    if count < 0:
        raise ConfigError(f"fuzz count must be >= 0, got {count}")
    machines = tuple(machines) if machines else tuple(registry.MACHINES)
    for machine in machines:
        if machine not in registry.MACHINES:
            raise ConfigError(
                f"unknown machine {machine!r}; "
                f"expected one of {registry.MACHINES}"
            )
    scenarios = [
        _sample_scenario(np.random.default_rng([seed, i]), machines)
        for i in range(count)
    ]
    SCENARIO_STATS.note_fuzz_generated(len(scenarios))
    return scenarios


def validate_pipelines(
    pruns: Sequence[PipelineRun],
) -> Dict[str, List[str]]:
    """Apply the pipeline and per-run invariants to executed scenarios.

    Returns ``{scenario_id: [failure descriptions]}`` for the scenarios
    that violated anything; empty dict means the population is clean.
    """
    from repro.check.invariants import validate_run
    from repro.check.pipeline import validate_pipeline_run
    from repro.check.report import FAIL
    from repro.scenarios.stats import SCENARIO_STATS

    violations: Dict[str, List[str]] = {}
    for prun in pruns:
        failures = [
            r.format()
            for r in validate_pipeline_run(prun)
            if r.status == FAIL
        ]
        for result in prun.stages:
            workload = result.spec.resolved_workload()
            failures.extend(
                r.format()
                for r in validate_run(result.run, workload)
                if r.status == FAIL
            )
        if failures:
            violations[prun.scenario_id] = failures
    SCENARIO_STATS.note_fuzz_validated(
        len(pruns), sum(len(v) for v in violations.values())
    )
    return violations


def fuzz_manifest(
    seed: int,
    count: int,
    machines: Sequence[str],
    pruns: Sequence[PipelineRun],
    violations: Dict[str, List[str]],
) -> Dict[str, Any]:
    """The deterministic fuzz-run manifest (no timestamps, no paths —
    two fresh processes with the same inputs emit identical bytes)."""
    return {
        "schema": 1,
        "seed": seed,
        "count": count,
        "machines": list(machines),
        "scenarios": [
            dict(
                pipeline_record(prun),
                violations=violations.get(prun.scenario_id, []),
            )
            for prun in pruns
        ],
        "violation_count": sum(len(v) for v in violations.values()),
    }


def manifest_json(manifest: Dict[str, Any]) -> str:
    """Canonical manifest bytes (sorted keys, fixed indent, newline)."""
    return json.dumps(manifest, indent=1, sort_keys=True) + "\n"


def _shrink_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Single-step reductions of ``scenario``, most drastic first."""
    if scenario.calibration is not None:
        yield replace(scenario, calibration=None)
    for i, spec in enumerate(scenario.stages):
        if spec.calibration is not None:
            yield _with_stage(scenario, i, replace(spec, calibration=None))
        for j in range(len(spec.options)):
            options = spec.options[:j] + spec.options[j + 1:]
            yield _with_stage(scenario, i, replace(spec, options=options))
    if scenario.seed:
        yield replace(scenario, seed=0)
    for i, spec in enumerate(scenario.stages):
        for workload in _shrink_workload(spec.kernel, spec.workload):
            yield _with_stage(scenario, i, replace(spec, workload=workload))


def _with_stage(scenario: Scenario, index: int, spec: StageSpec) -> Scenario:
    stages = list(scenario.stages)
    stages[index] = spec
    return replace(scenario, stages=tuple(stages))


def _lower(value: int, choices: Sequence[int]) -> Optional[int]:
    below = [c for c in choices if c < value]
    return max(below) if below else None


def _shrink_workload(kernel: str, workload: Any) -> Iterator[Any]:
    if workload is None:
        return
    if kernel == "corner_turn":
        for name in ("rows", "cols"):
            lower = _lower(getattr(workload, name), CT_DIMS)
            if lower is not None:
                yield replace(workload, **{name: lower})
    elif kernel == "cslc":
        def rebuild(**fields: int) -> CSLCWorkload:
            merged = dict(
                n_mains=workload.n_mains,
                n_aux=workload.n_aux,
                n_subbands=workload.n_subbands,
                subband_len=workload.subband_len,
            )
            merged.update(fields)
            # Re-tile disjointly: shrunk sub-bands always cover exactly
            # n_subbands * subband_len samples, the minimal valid span.
            if merged["n_subbands"] == 1:
                samples = merged["subband_len"]
            else:
                samples = merged["n_subbands"] * merged["subband_len"]
            return CSLCWorkload(samples=samples, **merged)

        for name in ("n_mains", "n_aux", "n_subbands"):
            value = getattr(workload, name)
            if value > 1:
                yield rebuild(**{name: value - 1})
        lower = _lower(workload.subband_len, SUBBAND_LENS)
        if lower is not None:
            yield rebuild(subband_len=lower)
        if (
            workload.n_subbands > 1
            and workload.samples
            != workload.n_subbands * workload.subband_len
        ):
            yield rebuild()  # drop the overlap, keep the counts
    else:
        if workload.elements > 16:
            yield replace(
                workload, elements=max(16, workload.elements // 2)
            )
        for name in ("directions", "dwells"):
            value = getattr(workload, name)
            if value > 1:
                yield replace(workload, **{name: value - 1})
        if workload.phase_bits > 8:
            yield replace(workload, phase_bits=8)
        lower = _lower(workload.accumulator_bits, ACCUMULATOR_BITS)
        if lower is not None and lower >= workload.phase_bits:
            yield replace(workload, accumulator_bits=lower)


def shrink(
    scenario: Scenario,
    predicate: Callable[[Scenario], bool],
    max_steps: int = 2000,
) -> Scenario:
    """Greedy minimisation of a failing scenario.

    ``predicate`` must hold for ``scenario`` (True = "still fails") and
    is assumed cheap; the result still satisfies it, and no single
    shrink step (drop a calibration or option, zero the seed, reduce
    one workload dimension) can reduce it further — for monotone
    predicates that is the global per-dimension minimum.
    """
    if not predicate(scenario):
        raise ConfigError(
            "shrink needs a failing scenario (predicate(scenario) is False)"
        )
    current = scenario
    steps = 0
    progressed = True
    while progressed and steps < max_steps:
        progressed = False
        for candidate in _shrink_candidates(current):
            steps += 1
            if predicate(candidate):
                current = candidate
                progressed = True
                break
            if steps >= max_steps:
                break
    return current
