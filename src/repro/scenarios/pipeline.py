"""Pipeline execution: compose stage runs + handoffs into one record.

A scenario's stages become ordinary planner requests — ``(kernel,
machine, kwargs)`` cells with content-addressed keys identical to
standalone runs — so one :func:`run_scenarios` call over a fuzz
population flows through the dedup-aware planner exactly like a
sensitivity sweep: duplicate cells collapse, cache tiers answer warm
cells, and cells differing only in float calibration constants fuse
into tensor batches (:mod:`repro.perf.tensorsweep`).  The pipeline
layer then reassembles per-scenario records, pricing each inter-stage
handoff from :mod:`repro.scenarios.handoff`.

The composition law is deliberately simple and *checkable*::

    total_cycles == sum(stage cycles) + sum(handoff cycles)

in stage order, left to right — ``invariant.pipeline.additivity``
recomputes both sides independently and requires exact equality, and
the fuzz CLI applies it (plus the per-run §2.5 invariants) to every
generated scenario.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.arch.base import KernelRun
from repro.scenarios.handoff import Handoff, plan_handoff
from repro.scenarios.model import Scenario, StageSpec
from repro.scenarios.stats import SCENARIO_STATS


@dataclass
class StageResult:
    """One executed stage and its handoff to the next stage (``None``
    for the last stage — pipeline output delivery is out of scope)."""

    spec: StageSpec
    run: KernelRun
    handoff: Optional[Handoff] = None


@dataclass
class PipelineRun:
    """One executed scenario: stage results in dataflow order."""

    scenario: Scenario
    stages: List[StageResult]

    @property
    def scenario_id(self) -> str:
        return self.scenario.scenario_id

    @property
    def stage_cycles(self) -> float:
        return sum(result.run.cycles for result in self.stages)

    @property
    def handoff_cycles(self) -> float:
        return sum(
            result.handoff.cycles
            for result in self.stages
            if result.handoff is not None
        )

    @property
    def total_cycles(self) -> float:
        """The composed pipeline cost (the additivity invariant's LHS)."""
        total = 0.0
        for result in self.stages:
            total += result.run.cycles
            if result.handoff is not None:
                total += result.handoff.cycles
        return total

    @property
    def clock_hz(self) -> float:
        return self.stages[0].run.spec.clock_hz

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.clock_hz


def stage_requests(scenario: Scenario) -> List[Any]:
    """The scenario's stages as planner run requests, in stage order."""
    return [
        (spec.kernel, scenario.machine, scenario.stage_kwargs(spec))
        for spec in scenario.stages
    ]


def assemble_pipeline(
    scenario: Scenario, runs: Sequence[KernelRun]
) -> PipelineRun:
    """Pair stage runs with priced handoffs into a :class:`PipelineRun`."""
    stages: List[StageResult] = []
    for i, (spec, run) in enumerate(zip(scenario.stages, runs)):
        handoff = None
        if i + 1 < len(scenario.stages):
            handoff = plan_handoff(scenario.machine, spec.output_words())
        stages.append(StageResult(spec=spec, run=run, handoff=handoff))
    prun = PipelineRun(scenario=scenario, stages=stages)
    SCENARIO_STATS.note_pipeline(prun)
    return prun


def run_pipeline(
    scenario: Scenario, jobs: Optional[int] = None
) -> PipelineRun:
    """Execute one scenario through the planner."""
    return run_scenarios([scenario], jobs=jobs)[0]


def run_scenarios(
    scenarios: Sequence[Scenario], jobs: Optional[int] = None
) -> List[PipelineRun]:
    """Execute a scenario population as *one* planner invocation.

    All stages of all scenarios are flattened into a single request
    list, so deduplication and tensor batching operate across the whole
    population (two scenarios sharing a shape but differing in a float
    calibration constant land in one batch group), then per-scenario
    records are reassembled in order.
    """
    from repro.obs.ledger import record
    from repro.perf.planner import execute_requests

    requests: List[Any] = []
    for scenario in scenarios:
        requests.extend(stage_requests(scenario))
    record(
        "pipeline.run",
        scenarios=len(scenarios),
        stages=len(requests),
    )
    results = execute_requests(requests, jobs=jobs)
    pruns: List[PipelineRun] = []
    cursor = 0
    for scenario in scenarios:
        n = len(scenario.stages)
        pruns.append(
            assemble_pipeline(scenario, results[cursor:cursor + n])
        )
        cursor += n
    record(
        "pipeline.done",
        scenarios=len(pruns),
        total_cycles=sum(p.total_cycles for p in pruns),
    )
    return pruns


def describe_workload(kernel: str, workload: Any) -> str:
    """Compact fixed-format shape tag for the rendered report."""
    if kernel == "corner_turn":
        return f"{workload.rows}x{workload.cols}"
    if kernel == "cslc":
        return (
            f"{workload.n_mains}+{workload.n_aux}ch "
            f"{workload.samples}s {workload.n_subbands}x"
            f"{workload.subband_len}"
        )
    return (
        f"{workload.elements}el x {workload.directions}dir "
        f"x {workload.dwells}dw"
    )


def render_pipeline(prun: PipelineRun) -> str:
    """Deterministic human-readable pipeline report (golden-pinned)."""
    run0 = prun.stages[0].run
    lines = [
        f"== radar pipeline on {run0.spec.display_name} ==",
        f"scenario {prun.scenario_id} (seed {prun.scenario.seed})",
    ]
    for i, result in enumerate(prun.stages, start=1):
        spec, run = result.spec, result.run
        shape = describe_workload(spec.kernel, spec.resolved_workload())
        tags = "".join(
            f" [{name}={str(value).lower()}]" for name, value in spec.options
        )
        lines.append(
            f"stage {i}: {spec.kernel:<14s} {shape:<24s} "
            f"{run.kilocycles:>12,.1f} kcycles{tags}"
        )
        if result.handoff is not None:
            h = result.handoff
            lines.append(
                f"  handoff: {h.words:>10,d} words via {h.level:<12s} "
                f"{h.cycles / 1e3:>12,.1f} kcycles"
            )
    lines.append(
        f"pipeline total: {prun.total_cycles / 1e3:,.1f} kcycles "
        f"({prun.seconds * 1e3:.2f} ms at {run0.spec.clock_mhz:.0f} MHz)"
    )
    movement = (
        100.0 * prun.handoff_cycles / prun.total_cycles
        if prun.total_cycles
        else 0.0
    )
    lines.append(
        f"  stages {prun.stage_cycles / 1e3:,.1f} k + "
        f"handoffs {prun.handoff_cycles / 1e3:,.1f} k "
        f"({movement:.1f}% movement)"
    )
    return "\n".join(lines)


def pipeline_record(prun: PipelineRun) -> Dict[str, Any]:
    """JSON-safe record of one pipeline run (the ``--json`` shape and
    the fuzz manifest's per-scenario entry)."""
    stages = []
    for result in prun.stages:
        spec, run = result.spec, result.run
        entry: Dict[str, Any] = {
            "kernel": spec.kernel,
            "workload": dataclasses.asdict(spec.resolved_workload()),
            "options": dict(spec.options),
            "calibrated": (
                spec.calibration is not None
                or prun.scenario.calibration is not None
            ),
            "cycles": run.cycles,
            "functional_ok": bool(run.functional_ok),
            "output_words": spec.output_words(),
        }
        if result.handoff is not None:
            h = result.handoff
            entry["handoff"] = {
                "level": h.level,
                "words": h.words,
                "passes": h.passes,
                "words_per_cycle": h.words_per_cycle,
                "cycles": h.cycles,
            }
        stages.append(entry)
    return {
        "scenario_id": prun.scenario_id,
        "machine": prun.scenario.machine,
        "seed": prun.scenario.seed,
        "stages": stages,
        "stage_cycles": prun.stage_cycles,
        "handoff_cycles": prun.handoff_cycles,
        "total_cycles": prun.total_cycles,
        "seconds": prun.seconds,
    }
