"""Calibrated timing constants for the cycle-approximate machine models.

Every free constant in the reproduction lives here, with the *paper anchor*
that justifies it.  The calibration policy (DESIGN.md §5) is that constants
are tied to mechanisms and percentage/ratio statements in the paper's
analysis sections (§4.2-§4.5), never to the headline Table 3 cycle counts;
the Table 3 reproduction is then an emergent check, recorded in
EXPERIMENTS.md.

The constants are grouped per machine.  Units are processor clock cycles
of the owning machine unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ViramCalibration:
    """Timing constants for the VIRAM model.

    Anchors:

    * ``dram_row_cycle`` — §4.2: "about 21% of the total cycles are
      overhead due to DRAM pre-charge cycles (which would be mostly hidden
      with sequential accesses) and TLB misses" on the corner turn.  A
      16x16 block's strided column walk cycles each of the eight banks
      through multiple rows, so every access reopens a row; with a
      2.75-cycle activate+precharge the banks sustain 8/2.75 ~ 2.9
      strided words/cycle against the 4/cycle address generators, and the
      excess puts the DRAM share of the overhead at ~17% of the
      corner-turn total (TLB misses supply the rest).  Sequential streams
      switch rows once per kiloword and expose nothing — the "mostly
      hidden" clause.
    * ``tlb_miss_cycles`` / ``tlb_entries`` / ``page_words`` — the
      remaining ~4-5 points of the 21% anchor: a hardware-walked refill
      of 6 cycles; the block-column sweep of the source matrix touches
      64 of the 16384-word (64 KB) pages per sweep against a 48-entry
      TLB, so every sweep misses.
    * ``exposed_load_latency`` — §3.1: "initial load latencies are not
      hidden"; one DRAM access latency exposed per 16x16 block.
    * ``vector_dead_time`` — §4.4: on beam steering "the difference
      between the expected time [the 56% compute lower bound] and
      simulation cycles comes from waiting for the results from previous
      vector operations and the cycles needed to initialize the vector
      operations"; ~4 cycles of exposed dependency/startup time per vector
      instruction reproduces that gap and, applied to the CSLC instruction
      stream, the startup component of §4.3's x1.41 memory/startup factor.
    * ``shuffle_exposed_fraction`` — §4.3: shuffle "overhead instructions"
      inflate CSLC cycles by x1.67; shuffles issue on the second vector
      unit (which cannot execute FP anyway, the x1.52 factor) but
      butterfly dataflow makes them dependency-serialised with the FP ops,
      so their issue time is fully exposed.
    * ``spill_passes`` / ``memory_exposed_fraction`` — §4.3's x1.41
      latency/startup factor includes sub-band data movement: the
      vectorised FFT holds two stages in the 8 KB register file and makes
      one intermediate pass through memory; half of that traffic is hidden
      under computation.
    """

    dram_row_cycle: float = 2.75
    tlb_miss_cycles: float = 6.0
    tlb_entries: int = 48
    page_words: int = 16384  # 64 KB pages
    exposed_load_latency: float = 12.0
    vector_dead_time: float = 4.0
    shuffle_exposed_fraction: float = 1.0
    spill_passes: int = 1
    memory_exposed_fraction: float = 0.5


@dataclass(frozen=True)
class ImagineCalibration:
    """Timing constants for the Imagine model.

    Anchors:

    * ``dram_row_cycle`` — §4.2: the corner-turn "blocks are written with
      a non-unit stride" and 87% of the corner-turn cycles are memory
      transfers; a 4-cycle row penalty per 8-word non-unit-stride block
      reproduces that fraction with the documented two 1-word/cycle
      memory controllers.
    * ``kernel_startup`` — §4.3/§4.4: short streams expose a software-
      pipeline prologue per kernel invocation ("the small size of the FFT
      reduces the amount of software pipelining and increases start-up
      overheads"; beam steering's prologue is ~11% of its time).
    * ``gather_derate`` — §4.4: beam steering's two calibration-table
      reads per output are index gathers; with loads and stores taking
      "89% of the simulation time" and table reads costing half the
      memory traffic (the SRF what-if is "a factor of about two"), each
      gathered word costs ~2 controller cycles instead of 1.
    * ``cluster_schedule_inefficiency`` — §4.3: the cluster VLIW schedule
      of the small FFT cannot be perfectly packed; a modest slack factor
      over the resource-bound schedule matches the reported 25-30% FFT
      ALU utilization together with the startup and communication terms.
    * ``comm_exposure`` — §4.3: "performance is reduced by 30% because
      inter-cluster communication is used to perform parallel FFTs"; the
      communication unit runs in parallel with the ALUs, but the butterfly
      dataflow serialises on remote operands, exposing ~1.2 cycles per
      transferred word.
    """

    dram_row_cycle: float = 4.0
    kernel_startup: float = 300.0
    gather_derate: float = 2.0
    cluster_schedule_inefficiency: float = 1.15
    comm_exposure: float = 1.2


@dataclass(frozen=True)
class RawCalibration:
    """Timing constants for the Raw model.

    Anchors:

    * ``block_loop_overhead_per_row`` — §4.2: corner-turn performance is
      "nearly identical to the maximum performance predicted by the
      instruction issue rate"; ~7 address/branch instructions per 64-word
      block row keeps the gap to the load/store issue bound under 10%.
    * ``cache_stall_fraction`` — §4.3: "less than 10% of the execution
      time is spent on memory stalls" when the CSLC working set is cached
      in tile memory.
    * ``fft_addr_ops_per_butterfly`` / ``fft_loop_ops_per_butterfly`` —
      §4.3: after flops and loads/stores, "the remaining cycles are
      consumed by address and index calculations and loop overhead
      instructions" — a C-compiled butterfly carries ~5 index and ~3 loop
      instructions.
    * ``stream_ops_per_output`` — §4.4: beam-steering operands arrive from
      the static network, so "loads and stores are not necessary and ALU
      utilization is very high"; 5 network-sequencing/loop instructions
      accompany the 6 arithmetic ops of each output.
    * ``streamed_fft_speedup`` — §4.3: "a primitive implementation result
      suggests about 70% of FFT performance improvement" when the FFT
      streams over the static network instead of using loads/stores.
    """

    block_loop_overhead_per_row: float = 7.0
    cache_stall_fraction: float = 0.08
    fft_addr_ops_per_butterfly: float = 5.0
    fft_loop_ops_per_butterfly: float = 3.0
    stream_ops_per_output: float = 5.0
    streamed_fft_speedup: float = 0.70


@dataclass(frozen=True)
class PpcCalibration:
    """Timing constants for the PowerPC G4 / AltiVec baseline model.

    Anchors:

    * ``l2_hit_cycles`` / ``dram_latency_cycles`` — G4 (7400-class)
      documentation-era figures at 1 GHz; with the cache model these
      reproduce §4.5's "does not significantly improve performance for
      the corner turn, which is limited by main memory bandwidth".
    * ``trig_call_cycles`` — the scalar baseline is compiled C (§4.1); a
      textbook radix-2 C FFT recomputes twiddles through a libm sin+cos
      pair (~100 cycles per call, 200 per pair on a 1 GHz G4), and
      eliminating that recomputation plus 4-wide SIMD is what §4.5's
      "factor of about six for the CSLC" AltiVec gain consists of.
    * ``fp_dependency_stall`` — scalar butterflies are short dependent FP
      chains the in-order G4 cannot overlap (~3 exposed cycles per
      dependent FP op).
    * ``vector_dependency_stall_per_butterfly`` — hand-inserted AltiVec
      intrinsics keep each butterfly an ~8-op dependency chain whose 4-5
      cycle vector latencies are exposed (~35 cycles per butterfly),
      holding the CSLC AltiVec gain near §4.5's ~6x rather than an ideal
      issue-width product.
    * ``store_queue_exposure`` — streaming write misses are partially
      hidden by the store queue; ~30% of the miss latency reaches the
      retire stage (beam steering's one write per output).
    """

    l2_hit_cycles: float = 10.0
    dram_latency_cycles: float = 95.0
    trig_call_cycles: float = 200.0
    fp_dependency_stall: float = 3.0
    vector_dependency_stall_per_butterfly: float = 35.0
    store_queue_exposure: float = 0.3


@dataclass(frozen=True)
class Calibration:
    """Aggregate calibration bundle (one instance is the library default)."""

    viram: ViramCalibration = field(default_factory=ViramCalibration)
    imagine: ImagineCalibration = field(default_factory=ImagineCalibration)
    raw: RawCalibration = field(default_factory=RawCalibration)
    ppc: PpcCalibration = field(default_factory=PpcCalibration)


#: Library-default calibration used by all machine models unless a caller
#: passes an explicit :class:`Calibration` (e.g. for sensitivity studies).
DEFAULT_CALIBRATION = Calibration()
