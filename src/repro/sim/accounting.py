"""Per-category cycle accounting.

Every kernel mapping in this library reports not just a total cycle count
but a *breakdown* of where the cycles went, because the paper's analysis
sections (§4.2–§4.4) are phrased as breakdowns ("about 21% of the total
cycles are overhead due to DRAM pre-charge cycles and TLB misses", "87% of
the cycles ... are due to memory transfers", ...).  The benchmark harness
compares these fractions directly against the paper.

A :class:`CycleBreakdown` is an ordered mapping from category name to a
non-negative cycle count.  Categories are free-form strings; the module
defines conventional names so mappings stay comparable across machines.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, Mapping, Tuple

# Conventional category names.  Mappings may add machine-specific ones.
COMPUTE = "compute"
MEMORY = "memory"
OVERHEAD = "overhead"
STARTUP = "startup"
IDLE = "idle"
STALL = "stall"


class CycleBreakdown:
    """An ordered ledger of cycles charged to named categories.

    The breakdown is additive: :attr:`total` is the sum of all categories.
    Mappings that model *overlapped* activities charge only the exposed
    (non-overlapped) portion of each activity, so the additive invariant
    holds by construction.

    Examples
    --------
    >>> bd = CycleBreakdown()
    >>> bd.charge("memory", 870.0)
    >>> bd.charge("compute", 130.0)
    >>> bd.total
    1000.0
    >>> round(bd.fraction("memory"), 2)
    0.87
    """

    def __init__(self, items: Mapping[str, float] | None = None) -> None:
        self._cycles: "OrderedDict[str, float]" = OrderedDict()
        if items:
            for name, value in items.items():
                self.charge(name, value)

    def charge(self, category: str, cycles: float) -> None:
        """Add ``cycles`` to ``category`` (creating it if needed)."""
        if cycles < 0:
            raise ValueError(
                f"cannot charge negative cycles ({cycles}) to {category!r}"
            )
        self._cycles[category] = self._cycles.get(category, 0.0) + float(cycles)

    @property
    def total(self) -> float:
        """Sum of cycles over all categories."""
        return sum(self._cycles.values())

    def get(self, category: str) -> float:
        """Cycles charged to ``category`` (0.0 if never charged)."""
        return self._cycles.get(category, 0.0)

    def fraction(self, category: str) -> float:
        """Fraction of the total charged to ``category`` (0.0 if empty)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.get(category) / total

    def categories(self) -> Tuple[str, ...]:
        """Category names in insertion order."""
        return tuple(self._cycles)

    def items(self) -> Iterable[Tuple[str, float]]:
        """(category, cycles) pairs in insertion order."""
        return tuple(self._cycles.items())

    def as_dict(self) -> Dict[str, float]:
        """A plain dict copy of the ledger."""
        return dict(self._cycles)

    def merged(self, other: "CycleBreakdown") -> "CycleBreakdown":
        """A new breakdown with ``other``'s charges added to this one."""
        out = CycleBreakdown(self._cycles)
        for name, value in other.items():
            out.charge(name, value)
        return out

    def scaled(self, factor: float) -> "CycleBreakdown":
        """A new breakdown with every category multiplied by ``factor``.

        Used, e.g., for the paper's Raw CSLC perfect-load-balance
        extrapolation (§4.3), which rescales the measured cycles.
        """
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        out = CycleBreakdown()
        for name, value in self.items():
            out.charge(name, value * factor)
        return out

    def timeline(
        self, start: float = 0.0
    ) -> Tuple[Tuple[str, float, float], ...]:
        """The ledger as ``(category, start, end)`` spans laid end-to-end
        from ``start``, in insertion order.

        This is the breakdown's *timeline view*: the categories tile the
        window ``[start, start + total]`` with no gaps or overlaps, which
        is exactly how the tracer renders a run's accounting tracks and
        what the ``invariant.trace.accounting`` check sums back up.
        """
        spans = []
        cursor = float(start)
        for name, value in self.items():
            spans.append((name, cursor, cursor + value))
            cursor += value
        return tuple(spans)

    def __iter__(self) -> Iterator[str]:
        return iter(self._cycles)

    def __len__(self) -> int:
        return len(self._cycles)

    def __contains__(self, category: object) -> bool:
        return category in self._cycles

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CycleBreakdown):
            return NotImplemented
        return self._cycles == other._cycles

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:.0f}" for k, v in self._cycles.items())
        return f"CycleBreakdown({inner}, total={self.total:.0f})"

    def format(self, indent: str = "  ") -> str:
        """A human-readable multi-line rendering with percentages."""
        total = self.total
        lines = [f"total cycles: {total:,.0f}"]
        for name, value in self.items():
            pct = 100.0 * value / total if total else 0.0
            lines.append(f"{indent}{name:<24s} {value:>14,.0f}  ({pct:5.1f}%)")
        return "\n".join(lines)
