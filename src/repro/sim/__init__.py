"""Simulation substrate: cycle accounting, resources, schedulers, events.

This subpackage contains the machinery shared by all four machine models:

* :mod:`repro.sim.accounting` — :class:`CycleBreakdown`, the per-category
  cycle ledger every kernel mapping returns.
* :mod:`repro.sim.resources` — timeline resources (FUs, ports, controllers)
  with contention and utilization tracking.
* :mod:`repro.sim.schedule` — a dependency-graph earliest-start scheduler
  used for stream programs and block pipelines.
* :mod:`repro.sim.engine` — a small discrete-event engine for models that
  need genuinely dynamic interleaving.
* :mod:`repro.sim.stats` — counters and summary statistics.
"""

from repro.sim.accounting import CycleBreakdown
from repro.sim.engine import Engine, Event
from repro.sim.resources import IssueSlots, ThroughputPort, TimelineResource
from repro.sim.schedule import DependencyScheduler, Task
from repro.sim.stats import Counter, RunningMean

__all__ = [
    "CycleBreakdown",
    "Counter",
    "DependencyScheduler",
    "Engine",
    "Event",
    "IssueSlots",
    "RunningMean",
    "Task",
    "ThroughputPort",
    "TimelineResource",
]
